//! # sip — Sideways Information Passing for Push-Style Query Processing
//!
//! A from-scratch Rust reproduction of Ives & Taylor (ICDE 2008): a
//! multithreaded push-style query engine with **adaptive information
//! passing (AIP)** — runtime construction and injection of Bloom-filter /
//! hash-set semijoins from completed subexpression state into correlated
//! parts of a bushy plan, across blocking operators.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`common`] — values, rows, schemas, ids, hashing.
//! * [`filter`] — Bloom filters and AIP-set summaries.
//! * [`expr`] — scalar expressions and aggregates.
//! * [`data`] — TPC-H-shaped generators (uniform and Zipf-skewed) + catalog.
//! * [`plan`] — logical plans, attribute equivalence, source-predicate graph.
//! * [`optimizer`] — cardinality estimation, cost model, magic-sets rewrite.
//! * [`engine`] — the push executor (pipelined hash joins, taps, metrics).
//! * [`parallel`] — hash-partition parallelism: Exchange/Merge plan
//!   expansion with per-partition AIP taps.
//! * [`core`] — the AIP algorithms (feed-forward §IV-A, cost-based §IV-B).
//! * [`net`] — simulated multi-site execution and filter shipping.
//! * [`queries`] — the Table I workload catalog.
//!
//! ## Quickstart
//!
//! ```
//! use sip::core::{run_query, AipConfig, Strategy};
//! use sip::data::{generate, TpchConfig};
//! use sip::engine::ExecOptions;
//! use sip::queries::build_query;
//!
//! let catalog = generate(&TpchConfig::uniform(0.005)).unwrap();
//! let spec = build_query("Q2A", &catalog).unwrap();
//! let out = run_query(&spec, &catalog, Strategy::FeedForward,
//!                     ExecOptions::default(), &AipConfig::paper()).unwrap();
//! println!("{} rows in {:?}, peak state {} bytes",
//!          out.metrics.rows_out, out.metrics.wall_time,
//!          out.metrics.peak_state_bytes);
//! ```

pub use sip_common as common;
pub use sip_core as core;
pub use sip_data as data;
pub use sip_engine as engine;
pub use sip_expr as expr;
pub use sip_filter as filter;
pub use sip_net as net;
pub use sip_optimizer as optimizer;
pub use sip_parallel as parallel;
pub use sip_plan as plan;
pub use sip_queries as queries;
