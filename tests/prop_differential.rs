//! Randomized differential testing: small synthetic join/aggregate plans
//! with random data and random predicates, executed by the threaded engine
//! under every strategy — and by the partition-parallel executor at every
//! dop — must match the single-threaded oracle.

use proptest::prelude::*;
use sip::common::{DataType, Field, Row, Schema, Value};
use sip::core::{run_query, run_query_dop, AipConfig, QuerySpec, Strategy};
use sip::data::{generate, Catalog, Table, TpchConfig};
use sip::engine::{canonical, execute_oracle, ExecOptions};
use sip::expr::{AggFunc, CmpOp, Expr};
use sip::plan::QueryBuilder;
use sip::queries::{all_queries, build_query};

/// Build a tiny catalog with two fact tables and a dimension, from raw
/// integer tuples chosen by proptest.
fn mini_catalog(facts: &[(i64, i64)], dims: &[(i64, i64)]) -> Catalog {
    let fact_schema = Schema::new(vec![
        Field::new("f_key", DataType::Int),
        Field::new("f_val", DataType::Int),
    ]);
    let dim_schema = Schema::new(vec![
        Field::new("d_key", DataType::Int),
        Field::new("d_weight", DataType::Int),
    ]);
    let fact_rows: Vec<Row> = facts
        .iter()
        .map(|&(k, v)| Row::new(vec![Value::Int(k), Value::Int(v)]))
        .collect();
    let dim_rows: Vec<Row> = dims
        .iter()
        .map(|&(k, w)| Row::new(vec![Value::Int(k), Value::Int(w)]))
        .collect();
    let mut c = Catalog::new();
    c.add(Table::new("fact", fact_schema, vec![], vec![], fact_rows).unwrap());
    c.add(Table::new("dim", dim_schema, vec![0], vec![], dim_rows).unwrap());
    c
}

/// fact ⋈ dim ⋈ (sum of f_val per key) with a random residual threshold —
/// the Fig. 1 shape in miniature.
fn mini_query(c: &Catalog, dim_cut: i64, sum_cut: i64) -> QuerySpec {
    let mut q = QueryBuilder::new(c);
    let f = q.scan("fact", "f", &["f_key", "f_val"]).unwrap();
    let d = q.scan("dim", "d", &["d_key", "d_weight"]).unwrap();
    let d_pred = d
        .col("d_weight")
        .unwrap()
        .cmp(CmpOp::Lt, Expr::lit(dim_cut));
    let d = q.filter(d, d_pred);
    let fd = q.join(f, d, &[("f.f_key", "d.d_key")]).unwrap();

    let f2 = q.scan("fact", "f2", &["f_key", "f_val"]).unwrap();
    let val = f2.col("f_val").unwrap();
    let sums = q
        .aggregate(f2, &["f_key"], &[(AggFunc::Sum, val, "total")])
        .unwrap();
    let residual = fd
        .col("f.f_val")
        .unwrap()
        .add(Expr::lit(sum_cut))
        .cmp(CmpOp::Lt, Expr::attr(sums.attr("total").unwrap()));
    let joined = q
        .join_residual(fd, sums, &[("f.f_key", "f2.f_key")], Some(residual))
        .unwrap();
    let out = q
        .project_cols(joined, &["f.f_key", "f.f_val", "total"])
        .unwrap();
    QuerySpec::new(out.into_plan(), q.into_attrs()).unwrap()
}

/// Every query of the Table I workload, executed partition-parallel at
/// dop ∈ {1, 2, 4} over Zipf-skewed data (`sip_data::zipf`), must produce
/// the same multiset of rows as the single-threaded oracle. This is the
/// correctness gate for the whole `sip-parallel` subsystem: partitioned
/// scans, Exchange/Merge boundaries, partial+final aggregate splits, and
/// partition-scoped AIP filters all sit on this path.
#[test]
fn partitioned_execution_matches_serial_for_all_catalog_queries() {
    let catalog = generate(&TpchConfig {
        scale_factor: 0.004,
        seed: 0xBEEF,
        zipf_z: 0.5,
    })
    .unwrap();
    for def in all_queries() {
        let spec = build_query(def.id, &catalog).unwrap();
        let phys = spec.lower(&catalog, Strategy::Baseline).unwrap();
        let expected = canonical(&execute_oracle(&phys).unwrap());
        for dop in [1u32, 2, 4] {
            let (out, map) = run_query_dop(
                &spec,
                &catalog,
                Strategy::FeedForward,
                ExecOptions::default(),
                &AipConfig::paper(),
                dop,
            )
            .unwrap();
            assert_eq!(
                canonical(&out.rows),
                expected,
                "{} diverged at dop {dop}",
                def.id
            );
            if dop > 1 {
                assert!(
                    map.is_some(),
                    "{} offered no parallel region at dop {dop}",
                    def.id
                );
            }
        }
    }
}

proptest! {
    // Each case spins up threads for four strategies; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_plans_agree_with_oracle(
        facts in prop::collection::vec((0i64..30, -50i64..50), 1..120),
        dims in prop::collection::vec((0i64..30, -50i64..50), 1..40),
        dim_cut in -40i64..40,
        sum_cut in -100i64..100,
        batch_choice in 0u8..8,
        extra_batch in 1usize..128,
    ) {
        // Hit the batch-kernel boundary cases deliberately: single-row
        // batches, the 63/64/65 neighborhood, and row_count ± 1 (the last
        // batch exactly full / one short / one over).
        let n = facts.len();
        let batch = match batch_choice % 8 {
            0 => 1,
            1 => 2,
            2 => 63,
            3 => 64,
            4 => 65,
            5 => n.saturating_sub(1).max(1),
            6 => n + 1,
            _ => extra_batch,
        };
        let catalog = mini_catalog(&facts, &dims);
        let spec = mini_query(&catalog, dim_cut, sum_cut);
        let phys = spec.lower(&catalog, Strategy::Baseline).unwrap();
        let expected = canonical(&execute_oracle(&phys).unwrap());
        for strategy in Strategy::ALL {
            let opts = ExecOptions {
                batch_size: batch,
                channel_capacity: 2,
                ..Default::default()
            };
            let out = run_query(&spec, &catalog, strategy, opts, &AipConfig::paper()).unwrap();
            prop_assert_eq!(
                canonical(&out.rows),
                expected.clone(),
                "strategy {} diverged (facts={}, dims={})",
                strategy,
                facts.len(),
                dims.len()
            );
        }
    }

    #[test]
    fn random_plans_agree_with_oracle_partitioned(
        facts in prop::collection::vec((0i64..30, -50i64..50), 1..120),
        dims in prop::collection::vec((0i64..30, -50i64..50), 1..40),
        dim_cut in -40i64..40,
        sum_cut in -100i64..100,
        dop in 2u32..5,
    ) {
        let catalog = mini_catalog(&facts, &dims);
        let spec = mini_query(&catalog, dim_cut, sum_cut);
        let phys = spec.lower(&catalog, Strategy::Baseline).unwrap();
        let expected = canonical(&execute_oracle(&phys).unwrap());
        for strategy in [Strategy::Baseline, Strategy::FeedForward, Strategy::CostBased] {
            let opts = ExecOptions {
                batch_size: 7,
                channel_capacity: 2,
                ..Default::default()
            };
            let (out, _) =
                run_query_dop(&spec, &catalog, strategy, opts, &AipConfig::paper(), dop).unwrap();
            prop_assert_eq!(
                canonical(&out.rows),
                expected.clone(),
                "strategy {} dop {} diverged (facts={}, dims={})",
                strategy,
                dop,
                facts.len(),
                dims.len()
            );
        }
    }
}
