//! Randomized differential testing: small synthetic join/aggregate plans
//! with random data and random predicates, executed by the threaded engine
//! under every strategy, must match the single-threaded oracle.

use proptest::prelude::*;
use sip::core::{run_query, AipConfig, QuerySpec, Strategy};
use sip::data::{Catalog, Table};
use sip::engine::{canonical, execute_oracle, ExecOptions};
use sip::expr::{AggFunc, CmpOp, Expr};
use sip::plan::QueryBuilder;
use sip::common::{DataType, Field, Row, Schema, Value};

/// Build a tiny catalog with two fact tables and a dimension, from raw
/// integer tuples chosen by proptest.
fn mini_catalog(facts: &[(i64, i64)], dims: &[(i64, i64)]) -> Catalog {
    let fact_schema = Schema::new(vec![
        Field::new("f_key", DataType::Int),
        Field::new("f_val", DataType::Int),
    ]);
    let dim_schema = Schema::new(vec![
        Field::new("d_key", DataType::Int),
        Field::new("d_weight", DataType::Int),
    ]);
    let fact_rows: Vec<Row> = facts
        .iter()
        .map(|&(k, v)| Row::new(vec![Value::Int(k), Value::Int(v)]))
        .collect();
    let dim_rows: Vec<Row> = dims
        .iter()
        .map(|&(k, w)| Row::new(vec![Value::Int(k), Value::Int(w)]))
        .collect();
    let mut c = Catalog::new();
    c.add(Table::new("fact", fact_schema, vec![], vec![], fact_rows).unwrap());
    c.add(Table::new("dim", dim_schema, vec![0], vec![], dim_rows).unwrap());
    c
}

/// fact ⋈ dim ⋈ (sum of f_val per key) with a random residual threshold —
/// the Fig. 1 shape in miniature.
fn mini_query(c: &Catalog, dim_cut: i64, sum_cut: i64) -> QuerySpec {
    let mut q = QueryBuilder::new(c);
    let f = q.scan("fact", "f", &["f_key", "f_val"]).unwrap();
    let d = q.scan("dim", "d", &["d_key", "d_weight"]).unwrap();
    let d_pred = d.col("d_weight").unwrap().cmp(CmpOp::Lt, Expr::lit(dim_cut));
    let d = q.filter(d, d_pred);
    let fd = q.join(f, d, &[("f.f_key", "d.d_key")]).unwrap();

    let f2 = q.scan("fact", "f2", &["f_key", "f_val"]).unwrap();
    let val = f2.col("f_val").unwrap();
    let sums = q
        .aggregate(f2, &["f_key"], &[(AggFunc::Sum, val, "total")])
        .unwrap();
    let residual = fd
        .col("f.f_val")
        .unwrap()
        .add(Expr::lit(sum_cut))
        .cmp(CmpOp::Lt, Expr::attr(sums.attr("total").unwrap()));
    let joined = q
        .join_residual(fd, sums, &[("f.f_key", "f2.f_key")], Some(residual))
        .unwrap();
    let out = q
        .project_cols(joined, &["f.f_key", "f.f_val", "total"])
        .unwrap();
    QuerySpec::new(out.into_plan(), q.into_attrs()).unwrap()
}

proptest! {
    // Each case spins up threads for four strategies; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_plans_agree_with_oracle(
        facts in prop::collection::vec((0i64..30, -50i64..50), 1..120),
        dims in prop::collection::vec((0i64..30, -50i64..50), 1..40),
        dim_cut in -40i64..40,
        sum_cut in -100i64..100,
        batch in 1usize..64,
    ) {
        let catalog = mini_catalog(&facts, &dims);
        let spec = mini_query(&catalog, dim_cut, sum_cut);
        let phys = spec.lower(&catalog, Strategy::Baseline).unwrap();
        let expected = canonical(&execute_oracle(&phys).unwrap());
        for strategy in Strategy::ALL {
            let opts = ExecOptions {
                batch_size: batch,
                channel_capacity: 2,
                ..Default::default()
            };
            let out = run_query(&spec, &catalog, strategy, opts, &AipConfig::paper()).unwrap();
            prop_assert_eq!(
                canonical(&out.rows),
                expected.clone(),
                "strategy {} diverged (facts={}, dims={})",
                strategy,
                facts.len(),
                dims.len()
            );
        }
    }
}
