//! Workspace-level correctness gate: every query of Table I (plus the
//! running example) produces the oracle's result multiset under all four
//! execution strategies, on uniform and skewed data — the §III-B
//! semijoin-equivalence guarantee, checked end to end.

use sip::core::{run_query, AipConfig, Strategy};
use sip::data::{generate, Catalog, TpchConfig};
use sip::engine::{canonical, execute_oracle, ExecOptions};
use sip::queries::{all_queries, build_query};

const SF: f64 = 0.004;

fn check_query(id: &str, catalog: &Catalog) {
    let spec = build_query(id, catalog).unwrap();
    let phys = spec.lower(catalog, Strategy::Baseline).unwrap();
    let expected = canonical(&execute_oracle(&phys).unwrap());
    for strategy in Strategy::ALL {
        let out = run_query(
            &spec,
            catalog,
            strategy,
            ExecOptions::default(),
            &AipConfig::paper(),
        )
        .unwrap_or_else(|e| panic!("{id}/{strategy}: {e}"));
        assert_eq!(
            canonical(&out.rows),
            expected,
            "{id} under {strategy} diverged from oracle"
        );
    }
}

#[test]
fn q1_family_all_strategies_match_oracle() {
    let c = generate(&TpchConfig::uniform(SF)).unwrap();
    for id in ["Q1A", "Q1D", "Q1E"] {
        check_query(id, &c);
    }
}

#[test]
fn q2_family_all_strategies_match_oracle() {
    let c = generate(&TpchConfig::uniform(SF)).unwrap();
    for id in ["Q2A", "Q2C", "Q2D", "Q2E"] {
        check_query(id, &c);
    }
}

#[test]
fn q3_family_all_strategies_match_oracle() {
    let c = generate(&TpchConfig::uniform(SF)).unwrap();
    for id in ["Q3A", "Q3D", "Q3E"] {
        check_query(id, &c);
    }
}

#[test]
fn join_queries_all_strategies_match_oracle() {
    let c = generate(&TpchConfig::uniform(SF)).unwrap();
    for id in ["Q4A", "Q4B", "Q5A", "Q5B", "EX"] {
        check_query(id, &c);
    }
}

#[test]
fn skewed_variants_match_oracle() {
    let c = generate(&TpchConfig::skewed(SF)).unwrap();
    for id in ["Q1B", "Q2B", "Q3B"] {
        check_query(id, &c);
    }
}

#[test]
fn catalog_is_complete() {
    let defs = all_queries();
    assert_eq!(defs.len(), 20); // 5+5+5+2+2 Table I + EX
    let c = generate(&TpchConfig::uniform(0.002)).unwrap();
    for def in defs {
        let spec = build_query(def.id, &c).unwrap();
        spec.plan.validate().unwrap();
        assert!(!def.sql.is_empty());
        assert!(!def.family.is_empty());
    }
}
