//! Distributed execution (§V-B) must be result-identical to local
//! execution for the Table I distributed queries, under every strategy,
//! with and without source delays — and shipped filters must never lose
//! rows (the Bloomjoin no-false-negatives guarantee, end to end).

use sip::core::{AipConfig, Strategy};
use sip::data::{generate, TpchConfig};
use sip::engine::{canonical, execute_oracle, ExecOptions};
use sip::net::{run_distributed, LinkSpec, RemoteConfig};
use sip::queries::{build_query, query_def};
use std::sync::atomic::Ordering;
use std::time::Duration;

fn fast_link() -> LinkSpec {
    // High bandwidth so tests stay quick; the protocol path is identical.
    LinkSpec {
        bandwidth_mbps: 2_000.0,
        latency: Duration::from_micros(100),
    }
}

#[test]
fn distributed_queries_match_local_oracle() {
    let catalog = generate(&TpchConfig::uniform(0.004)).unwrap();
    for id in ["Q1C", "Q3C"] {
        let spec = build_query(id, &catalog).unwrap();
        let phys = spec.lower(&catalog, Strategy::Baseline).unwrap();
        let expected = canonical(&execute_oracle(&phys).unwrap());
        let remote_table = query_def(id).unwrap().remote_table.unwrap();
        for strategy in [
            Strategy::Baseline,
            Strategy::FeedForward,
            Strategy::CostBased,
        ] {
            let run = run_distributed(
                &spec,
                &catalog,
                strategy,
                ExecOptions::default(),
                &AipConfig::paper(),
                &RemoteConfig::new(remote_table, fast_link()),
            )
            .unwrap();
            assert_eq!(
                canonical(&run.output.rows),
                expected,
                "{id}/{strategy} diverged from local oracle"
            );
        }
    }
}

#[test]
fn shipped_filters_save_bytes_without_losing_rows() {
    let catalog = generate(&TpchConfig::uniform(0.008)).unwrap();
    let spec = build_query("Q1C", &catalog).unwrap();
    let phys = spec.lower(&catalog, Strategy::Baseline).unwrap();
    let expected = canonical(&execute_oracle(&phys).unwrap());
    let cfg = RemoteConfig::new("partsupp", LinkSpec::lan_100mbps());
    let base = run_distributed(
        &spec,
        &catalog,
        Strategy::Baseline,
        ExecOptions::default(),
        &AipConfig::paper(),
        &cfg,
    )
    .unwrap();
    let cb = run_distributed(
        &spec,
        &catalog,
        Strategy::CostBased,
        ExecOptions::default(),
        &AipConfig::paper(),
        &cfg,
    )
    .unwrap();
    assert_eq!(canonical(&base.output.rows), expected);
    assert_eq!(canonical(&cb.output.rows), expected);
    let base_bytes = base.net.row_bytes.load(Ordering::Relaxed);
    let cb_bytes = cb.net.row_bytes.load(Ordering::Relaxed);
    assert!(
        cb_bytes < base_bytes,
        "CB should ship fewer row bytes: {cb_bytes} vs {base_bytes}"
    );
    // And the filter itself was shipped (and paid for).
    assert!(cb.net.filters_shipped.load(Ordering::Relaxed) > 0);
    assert!(cb.net.filter_bytes.load(Ordering::Relaxed) > 0);
}

#[test]
fn distributed_with_delayed_local_sources_still_correct() {
    let catalog = generate(&TpchConfig::uniform(0.004)).unwrap();
    let spec = build_query("Q3C", &catalog).unwrap();
    let phys = spec.lower(&catalog, Strategy::Baseline).unwrap();
    let expected = canonical(&execute_oracle(&phys).unwrap());
    for strategy in [Strategy::FeedForward, Strategy::CostBased] {
        let opts = ExecOptions::default().with_delay(
            "part",
            sip::engine::DelayModel::initial_only(Duration::from_millis(40)),
        );
        let run = run_distributed(
            &spec,
            &catalog,
            strategy,
            opts,
            &AipConfig::paper(),
            &RemoteConfig::new("partsupp", fast_link()),
        )
        .unwrap();
        assert_eq!(canonical(&run.output.rows), expected, "{strategy}");
    }
}
