//! Property-based tests for the AIP-set substrate: the §III-B guarantee —
//! summaries may admit extra tuples but may never reject a genuine match —
//! must hold for every representation over arbitrary key sets.

use proptest::prelude::*;
use sip_common::{hash_key, Value};
use sip_filter::{AipSet, AipSetBuilder, AipSetKind, BloomFilter, BucketedKeySet, MinMaxSummary};

fn key(v: i64) -> Vec<Value> {
    vec![Value::Int(v)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bloom_never_false_negative(keys in prop::collection::vec(any::<i64>(), 0..300), k in 1u32..4) {
        let mut f = BloomFilter::with_fpr(keys.len().max(1), 0.05, k);
        for &x in &keys {
            f.insert(hash_key(&key(x)));
        }
        for &x in &keys {
            prop_assert!(f.contains(hash_key(&key(x))), "lost {x}");
        }
    }

    #[test]
    fn bloom_intersection_superset_of_common(
        a in prop::collection::hash_set(0i64..500, 0..120),
        b in prop::collection::hash_set(0i64..500, 0..120),
    ) {
        let mut fa = BloomFilter::with_bits(1 << 13, 1);
        let mut fb = BloomFilter::with_bits(1 << 13, 1);
        for &x in &a { fa.insert(hash_key(&key(x))); }
        for &x in &b { fb.insert(hash_key(&key(x))); }
        fa.intersect(&fb).unwrap();
        for x in a.intersection(&b) {
            prop_assert!(fa.contains(hash_key(&key(*x))), "lost common {x}");
        }
    }

    #[test]
    fn bloom_union_covers_both(
        a in prop::collection::vec(any::<i64>(), 0..100),
        b in prop::collection::vec(any::<i64>(), 0..100),
    ) {
        let mut fa = BloomFilter::with_bits(1 << 12, 2);
        let mut fb = BloomFilter::with_bits(1 << 12, 2);
        for &x in &a { fa.insert(hash_key(&key(x))); }
        for &x in &b { fb.insert(hash_key(&key(x))); }
        fa.union(&fb).unwrap();
        for &x in a.iter().chain(b.iter()) {
            prop_assert!(fa.contains(hash_key(&key(x))));
        }
    }

    #[test]
    fn bucketed_set_is_exact(
        members in prop::collection::hash_set(any::<i64>(), 0..200),
        probes in prop::collection::vec(any::<i64>(), 0..200),
    ) {
        let mut s = BucketedKeySet::new();
        for &x in &members {
            s.insert(hash_key(&key(x)), key(x));
        }
        for &x in &probes {
            let expected = members.contains(&x);
            prop_assert_eq!(s.contains(hash_key(&key(x)), &key(x)), expected, "probe {}", x);
        }
    }

    #[test]
    fn bucketed_discard_never_false_negative(
        members in prop::collection::hash_set(any::<i64>(), 1..200),
        discard in prop::collection::vec(0usize..64, 0..32),
    ) {
        let mut s = BucketedKeySet::new();
        for &x in &members {
            s.insert(hash_key(&key(x)), key(x));
        }
        for b in discard {
            s.discard_bucket(b);
        }
        // Every member still passes (either matched or passed-through).
        for &x in &members {
            prop_assert!(s.contains(hash_key(&key(x)), &key(x)));
        }
    }

    #[test]
    fn minmax_envelope_sound(values in prop::collection::vec(any::<i64>(), 1..200)) {
        let mut m = MinMaxSummary::new();
        for &v in &values {
            m.insert(&Value::Int(v));
        }
        for &v in &values {
            prop_assert!(m.may_contain(&Value::Int(v)));
        }
        let lo = *values.iter().min().unwrap();
        let hi = *values.iter().max().unwrap();
        if lo > i64::MIN {
            prop_assert!(!m.may_contain(&Value::Int(lo - 1)));
        }
        if hi < i64::MAX {
            prop_assert!(!m.may_contain(&Value::Int(hi + 1)));
        }
    }

    #[test]
    fn every_kind_admits_members(
        members in prop::collection::vec(any::<i64>(), 0..150),
        kind_idx in 0usize..3,
    ) {
        let kind = [AipSetKind::Bloom, AipSetKind::Hash, AipSetKind::MinMax][kind_idx];
        let mut b = AipSetBuilder::new(kind, members.len().max(1), 0.05, 1);
        for &x in &members {
            b.insert(hash_key(&key(x)), &key(x));
        }
        let set: AipSet = b.finish();
        for &x in &members {
            prop_assert!(set.probe(hash_key(&key(x)), &key(x)), "{kind:?} lost {x}");
        }
    }

    #[test]
    fn string_keys_work_everywhere(
        members in prop::collection::hash_set("[a-z]{1,8}", 0..100),
        probes in prop::collection::vec("[a-z]{1,8}", 0..100),
    ) {
        let mut s = BucketedKeySet::new();
        for m in &members {
            let k = vec![Value::str(m)];
            s.insert(hash_key(&k), k);
        }
        for p in &probes {
            let k = vec![Value::str(p)];
            prop_assert_eq!(s.contains(hash_key(&k), &k), members.contains(p));
        }
    }
}
