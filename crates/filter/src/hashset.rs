//! Exact key sets with per-bucket discard.
//!
//! §V of the paper: "With a hash-based AIP set one can discard portions, on a
//! per-bucket basis: any probe tuple that corresponds to a discarded bucket
//! will simply be passed through the filter, and any probe tuple that
//! corresponds to an existing bucket will be matched against the hash table."
//!
//! Keys are stored as exact value vectors (no false positives) under their
//! 64-bit digest, partitioned into a fixed number of buckets by digest so
//! that memory pressure can be relieved incrementally without giving up the
//! whole filter. Storing by digest lets batch kernels probe with a
//! precomputed digest and compare key values in place
//! ([`BucketedKeySet::contains_at`]) — the hot probe path never re-hashes
//! nor clones a key.

use sip_common::{FxHashMap, Value};

/// Number of discardable partitions. 64 gives fine-grained relief while
/// keeping the discarded-bitmap a single word.
const N_BUCKETS: usize = 64;

/// Distinct keys sharing one digest (64-bit collisions are possible, never
/// wrong: membership always re-checks the exact values).
type KeyBucket = FxHashMap<u64, Vec<Vec<Value>>>;

/// An exact, bucketed key set.
#[derive(Clone, Debug)]
pub struct BucketedKeySet {
    buckets: Vec<Option<KeyBucket>>,
    discarded_mask: u64,
    n_keys: usize,
    bytes: usize,
}

impl Default for BucketedKeySet {
    fn default() -> Self {
        Self::new()
    }
}

impl BucketedKeySet {
    /// An empty set with all buckets live.
    pub fn new() -> Self {
        BucketedKeySet {
            buckets: (0..N_BUCKETS).map(|_| Some(KeyBucket::default())).collect(),
            discarded_mask: 0,
            n_keys: 0,
            bytes: 0,
        }
    }

    #[inline]
    fn bucket_of(digest: u64) -> usize {
        // High bits: the low bits also pick hash-table slots downstream.
        (digest >> 58) as usize % N_BUCKETS
    }

    /// Insert a key (digest must be the key's `Row::key_hash`-style digest).
    /// Inserts into a discarded bucket are dropped — the bucket already
    /// passes everything through.
    pub fn insert(&mut self, digest: u64, key: Vec<Value>) {
        let b = Self::bucket_of(digest);
        if let Some(map) = &mut self.buckets[b] {
            let slot = map.entry(digest).or_default();
            if slot.iter().any(|k| k == &key) {
                return;
            }
            self.bytes += key.iter().map(Value::size_bytes).sum::<usize>() + 24;
            self.n_keys += 1;
            slot.push(key);
        }
    }

    /// Insert without materializing the key up front: the key is
    /// `values[p]` for each `p` in `positions`, in order — the layout bulk
    /// build kernels already have (a row's value slice plus the source's
    /// key columns). The key vector is cloned **only when it is actually
    /// new**; duplicate keys (the common case while summarizing a stream)
    /// and keys landing in discarded buckets allocate nothing. `digest`
    /// must be the digest of that key sequence.
    pub fn insert_at(&mut self, digest: u64, values: &[Value], positions: &[usize]) {
        let b = Self::bucket_of(digest);
        if let Some(map) = &mut self.buckets[b] {
            let slot = map.entry(digest).or_default();
            if slot.iter().any(|k| {
                k.len() == positions.len()
                    && k.iter()
                        .zip(positions.iter())
                        .all(|(v, &p)| v == &values[p])
            }) {
                return;
            }
            let key: Vec<Value> = positions.iter().map(|&p| values[p].clone()).collect();
            self.bytes += key.iter().map(Value::size_bytes).sum::<usize>() + 24;
            self.n_keys += 1;
            slot.push(key);
        }
    }

    /// Probe: `true` means "may contribute to the result" (exact match or
    /// discarded bucket), `false` means "provably cannot". `digest` must be
    /// the digest of `key`.
    pub fn contains(&self, digest: u64, key: &[Value]) -> bool {
        self.probe_keys(digest, |stored| stored == key)
    }

    /// Probe without materializing the key: the key is `values[p]` for each
    /// `p` in `positions`, in order — the layout batch kernels already have
    /// (a row's value slice plus the filter's probe columns). `digest` must
    /// be the digest of that key sequence.
    #[inline]
    pub fn contains_at(&self, digest: u64, values: &[Value], positions: &[usize]) -> bool {
        self.probe_keys(digest, |stored| {
            stored.len() == positions.len()
                && stored
                    .iter()
                    .zip(positions.iter())
                    .all(|(k, &p)| k == &values[p])
        })
    }

    /// Probe with a caller-supplied exact-match predicate over the stored
    /// key values — the columnar twin of [`BucketedKeySet::contains_at`],
    /// letting column kernels compare in place instead of materializing a
    /// `Value` slice. The predicate is only consulted for keys whose digest
    /// collides; discarded buckets pass through as always.
    #[inline]
    pub fn contains_by(&self, digest: u64, matches: impl Fn(&[Value]) -> bool) -> bool {
        self.probe_keys(digest, matches)
    }

    #[inline]
    fn probe_keys(&self, digest: u64, matches: impl Fn(&[Value]) -> bool) -> bool {
        let b = Self::bucket_of(digest);
        match &self.buckets[b] {
            None => true, // discarded: pass-through, never a false negative
            Some(map) => map
                .get(&digest)
                .is_some_and(|keys| keys.iter().any(|k| matches(k))),
        }
    }

    /// Discard bucket `b` (0..64), releasing its memory. Probes hitting it
    /// pass through from now on. Returns bytes released.
    pub fn discard_bucket(&mut self, b: usize) -> usize {
        assert!(b < N_BUCKETS);
        if let Some(map) = self.buckets[b].take() {
            self.discarded_mask |= 1 << b;
            let mut released = 0usize;
            let mut keys = 0usize;
            for k in map.values().flatten() {
                released += k.iter().map(Value::size_bytes).sum::<usize>() + 24;
                keys += 1;
            }
            self.n_keys -= keys;
            self.bytes -= released;
            released
        } else {
            0
        }
    }

    /// Discard the largest live buckets until at least `target_bytes` have
    /// been released. Returns total released.
    pub fn shed(&mut self, target_bytes: usize) -> usize {
        let mut released = 0;
        while released < target_bytes {
            let victim = self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    b.as_ref()
                        .map(|m| (i, m.values().map(Vec::len).sum::<usize>()))
                })
                .max_by_key(|&(_, len)| len);
            match victim {
                Some((i, len)) if len > 0 => released += self.discard_bucket(i),
                _ => break,
            }
        }
        released
    }

    /// Union another set in, bucket by bucket (used to OR-merge the
    /// per-partition AIP sets of a parallel plan into one plan-wide set).
    ///
    /// A bucket discarded on *either* side is discarded in the result — it
    /// must pass everything through, because the discarded side's keys for
    /// that bucket are unknown.
    pub fn union(&mut self, other: &BucketedKeySet) {
        for b in 0..N_BUCKETS {
            if other.buckets[b].is_none() {
                self.discard_bucket(b);
                continue;
            }
            let Some(dst) = self.buckets[b].as_mut() else {
                continue;
            };
            let mut added_keys = 0usize;
            let mut added_bytes = 0usize;
            for (&digest, keys) in other.buckets[b].as_ref().expect("checked above") {
                let slot = dst.entry(digest).or_default();
                for key in keys {
                    if !slot.iter().any(|k| k == key) {
                        added_keys += 1;
                        added_bytes += key.iter().map(Value::size_bytes).sum::<usize>() + 24;
                        slot.push(key.clone());
                    }
                }
            }
            self.n_keys += added_keys;
            self.bytes += added_bytes;
        }
    }

    /// Number of live (still-exact) keys.
    pub fn n_keys(&self) -> usize {
        self.n_keys
    }

    /// Number of discarded buckets.
    pub fn n_discarded(&self) -> usize {
        self.discarded_mask.count_ones() as usize
    }

    /// Approximate footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bytes + std::mem::size_of::<Self>() + N_BUCKETS * 8
    }

    /// True once every bucket has been discarded (the filter is useless and
    /// should be dropped entirely).
    pub fn fully_discarded(&self) -> bool {
        self.discarded_mask == u64::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sip_common::hash::fx_hash64;

    fn key(i: i64) -> Vec<Value> {
        vec![Value::Int(i)]
    }

    fn digest(i: i64) -> u64 {
        fx_hash64(&key(i))
    }

    #[test]
    fn exact_membership() {
        let mut s = BucketedKeySet::new();
        for i in 0..1000 {
            s.insert(digest(i), key(i));
        }
        for i in 0..1000 {
            assert!(s.contains(digest(i), &key(i)));
        }
        for i in 1000..2000 {
            assert!(!s.contains(digest(i), &key(i)), "false positive at {i}");
        }
        assert_eq!(s.n_keys(), 1000);
    }

    #[test]
    fn contains_at_matches_contains() {
        let mut s = BucketedKeySet::new();
        for i in 0..200 {
            s.insert(digest(i), key(i));
        }
        // A "row" whose key column sits at position 1.
        for i in 0..400i64 {
            let row_values = vec![Value::str("payload"), Value::Int(i)];
            assert_eq!(
                s.contains_at(digest(i), &row_values, &[1]),
                s.contains(digest(i), &key(i)),
                "diverged at {i}"
            );
        }
        // Arity mismatch (same digest, different key length) never matches.
        let k2 = vec![Value::Int(3), Value::Int(4)];
        let d2 = fx_hash64(&k2);
        s.insert(d2, k2.clone());
        let row_values = vec![Value::Int(3)];
        assert!(!s.contains_at(d2, &row_values, &[0]));
        assert!(s.contains_at(d2, &[Value::Int(3), Value::Int(4)], &[0, 1]));
    }

    #[test]
    fn insert_at_matches_insert() {
        let mut by_key = BucketedKeySet::new();
        let mut by_pos = BucketedKeySet::new();
        for i in 0..300i64 {
            // A "row" with the key scattered: payload, key, payload.
            let row_values = vec![Value::str("x"), Value::Int(i % 100), Value::str("y")];
            by_key.insert(digest(i % 100), key(i % 100));
            by_pos.insert_at(digest(i % 100), &row_values, &[1]);
        }
        assert_eq!(by_pos.n_keys(), by_key.n_keys());
        assert_eq!(by_pos.size_bytes(), by_key.size_bytes());
        for i in 0..200 {
            assert_eq!(
                by_pos.contains(digest(i), &key(i)),
                by_key.contains(digest(i), &key(i)),
                "diverged at {i}"
            );
        }
        // Inserts into a discarded bucket are dropped without allocating.
        let b = (digest(7) >> 58) as usize % 64;
        by_pos.discard_bucket(b);
        let n = by_pos.n_keys();
        by_pos.insert_at(digest(7), &[Value::Int(7)], &[0]);
        assert_eq!(by_pos.n_keys(), n);
    }

    #[test]
    fn duplicate_inserts_counted_once() {
        let mut s = BucketedKeySet::new();
        s.insert(digest(7), key(7));
        s.insert(digest(7), key(7));
        assert_eq!(s.n_keys(), 1);
    }

    #[test]
    fn discarded_bucket_passes_through() {
        let mut s = BucketedKeySet::new();
        for i in 0..1000 {
            s.insert(digest(i), key(i));
        }
        // Find the bucket holding key 0 and discard it.
        let b = (digest(0) >> 58) as usize % 64;
        let released = s.discard_bucket(b);
        assert!(released > 0);
        // Key 0 now passes through (no false negative).
        assert!(s.contains(digest(0), &key(0)));
        // A non-member hashing to the same bucket also passes (pass-through).
        let stranger = (1000..)
            .find(|&i| (digest(i) >> 58) as usize % 64 == b)
            .unwrap();
        assert!(s.contains(digest(stranger), &key(stranger)));
        assert!(s.contains_at(digest(stranger), &key(stranger), &[0]));
        assert_eq!(s.n_discarded(), 1);
    }

    #[test]
    fn inserts_into_discarded_bucket_are_dropped() {
        let mut s = BucketedKeySet::new();
        let b = (digest(42) >> 58) as usize % 64;
        s.discard_bucket(b);
        let before = s.n_keys();
        s.insert(digest(42), key(42));
        assert_eq!(s.n_keys(), before);
        assert!(s.contains(digest(42), &key(42))); // pass-through
    }

    #[test]
    fn shed_releases_at_least_target() {
        let mut s = BucketedKeySet::new();
        for i in 0..10_000 {
            s.insert(digest(i), key(i));
        }
        let before = s.size_bytes();
        let released = s.shed(before / 2);
        assert!(released >= before / 4, "released {released} of {before}");
        assert!(s.size_bytes() < before);
        // All remaining live keys are still exact members.
        for i in 0..10_000 {
            let b = (digest(i) >> 58) as usize % 64;
            if s.n_discarded() < 64 && (s.buckets[b].is_some()) {
                assert!(s.contains(digest(i), &key(i)));
            }
        }
    }

    #[test]
    fn fully_discarded_detection() {
        let mut s = BucketedKeySet::new();
        s.insert(digest(1), key(1));
        for b in 0..64 {
            s.discard_bucket(b);
        }
        assert!(s.fully_discarded());
        assert_eq!(s.n_keys(), 0);
        assert!(s.contains(digest(9999), &key(9999)));
    }

    #[test]
    fn union_merges_keys_and_discards() {
        let mut a = BucketedKeySet::new();
        let mut b = BucketedKeySet::new();
        for i in 0..100 {
            a.insert(digest(i), key(i));
        }
        for i in 50..150 {
            b.insert(digest(i), key(i));
        }
        // Discard one bucket on b; the union must pass that bucket through.
        let victim = (digest(50) >> 58) as usize % 64;
        b.discard_bucket(victim);
        a.union(&b);
        for i in 0..150 {
            assert!(a.contains(digest(i), &key(i)), "union lost key {i}");
        }
        assert!(a.n_discarded() >= 1);
        // A live-bucket non-member still misses.
        let stranger = (1000..)
            .find(|&i| (digest(i) >> 58) as usize % 64 != victim)
            .unwrap();
        assert!(!a.contains(digest(stranger), &key(stranger)));
        // Union stays duplicate-free.
        let n = a.n_keys();
        let b2 = a.clone();
        a.union(&b2);
        assert_eq!(a.n_keys(), n);
    }

    #[test]
    fn multi_column_keys() {
        let mut s = BucketedKeySet::new();
        let k = vec![Value::Int(1), Value::str("FRANCE")];
        let d = fx_hash64(&k);
        s.insert(d, k.clone());
        assert!(s.contains(d, &k));
        let other = vec![Value::Int(1), Value::str("GERMANY")];
        assert!(!s.contains(fx_hash64(&other), &other));
        // contains_at over a wider row with the key scattered.
        let row_values = vec![Value::str("x"), Value::Int(1), Value::str("FRANCE")];
        assert!(s.contains_at(d, &row_values, &[1, 2]));
        assert!(!s.contains_at(fx_hash64(&other), &row_values, &[1, 0]));
    }
}
