//! Bloom filters over 64-bit key digests.
//!
//! The paper's implementation uses Bloom filters with **one hash function,
//! sized for a 5% false-positive rate** (§VI); both the hash-function count
//! and the target FPR are parameters here so the ablation benches can sweep
//! them. Filters of identical geometry (same bit length, same hash count)
//! can be merged by bitwise intersection or union, which the AIP registry
//! uses to combine sets over the same attribute class (§IV-A).

use sip_common::hash::{double_hash, mix64};
use sip_common::{Result, SipError};

/// A fixed-size Bloom filter keyed by 64-bit digests.
#[derive(Clone, Debug)]
pub struct BloomFilter {
    bits: Vec<u64>,
    n_bits: u64,
    n_hashes: u32,
    n_inserted: u64,
}

impl BloomFilter {
    /// Size a filter for `expected_items` at `target_fpr` using `n_hashes`
    /// hash functions.
    ///
    /// For `k` hashes the false-positive rate is `(1 - e^{-kn/m})^k`; solving
    /// for `m` gives `m = -k·n / ln(1 - fpr^{1/k})`. With the paper's `k = 1`
    /// and 5% FPR this is ≈ 19.5 bits per key.
    pub fn with_fpr(expected_items: usize, target_fpr: f64, n_hashes: u32) -> Self {
        let k = n_hashes.max(1);
        let fpr = target_fpr.clamp(1e-9, 0.999);
        let n = expected_items.max(1) as f64;
        let per_hash_rate = fpr.powf(1.0 / k as f64);
        let m = (-(k as f64) * n / (1.0 - per_hash_rate).ln()).ceil();
        Self::with_bits(m as u64, k)
    }

    /// A filter with exactly `n_bits` bits (rounded up to a 64-bit word) and
    /// `n_hashes` hash functions.
    pub fn with_bits(n_bits: u64, n_hashes: u32) -> Self {
        let n_bits = n_bits.max(64);
        let words = n_bits.div_ceil(64) as usize;
        BloomFilter {
            bits: vec![0u64; words],
            n_bits: words as u64 * 64,
            n_hashes: n_hashes.max(1),
            n_inserted: 0,
        }
    }

    /// Insert a key digest.
    #[inline]
    pub fn insert(&mut self, digest: u64) {
        let mixed = mix64(digest);
        for i in 0..self.n_hashes {
            let bit = double_hash(mixed, i) % self.n_bits;
            self.bits[(bit / 64) as usize] |= 1u64 << (bit % 64);
        }
        self.n_inserted += 1;
    }

    /// Probe a key digest. False positives possible; false negatives never.
    #[inline]
    pub fn contains(&self, digest: u64) -> bool {
        let mixed = mix64(digest);
        for i in 0..self.n_hashes {
            let bit = double_hash(mixed, i) % self.n_bits;
            if self.bits[(bit / 64) as usize] & (1u64 << (bit % 64)) == 0 {
                return false;
            }
        }
        true
    }

    /// Bitwise-intersect with another filter of identical geometry.
    ///
    /// The result matches only keys that *both* filters match, and therefore
    /// contains (at least) the intersection of the underlying key sets —
    /// still no false negatives for keys present in both. This is the merge
    /// the paper applies when two AIP sets cover the same attributes
    /// ("merged via bitwise intersection if they are of the same length and
    /// based on the same hash function", §IV-A).
    pub fn intersect(&mut self, other: &BloomFilter) -> Result<()> {
        self.check_geometry(other)?;
        for (a, b) in self.bits.iter_mut().zip(other.bits.iter()) {
            *a &= *b;
        }
        self.n_inserted = self.n_inserted.min(other.n_inserted);
        Ok(())
    }

    /// Bitwise-union with another filter of identical geometry (used when
    /// combining partial sets from distributed fragments of the *same*
    /// subexpression).
    pub fn union(&mut self, other: &BloomFilter) -> Result<()> {
        self.check_geometry(other)?;
        for (a, b) in self.bits.iter_mut().zip(other.bits.iter()) {
            *a |= *b;
        }
        self.n_inserted += other.n_inserted;
        Ok(())
    }

    fn check_geometry(&self, other: &BloomFilter) -> Result<()> {
        if self.n_bits != other.n_bits || self.n_hashes != other.n_hashes {
            return Err(SipError::Exec(format!(
                "bloom geometry mismatch: {}x{} vs {}x{}",
                self.n_bits, self.n_hashes, other.n_bits, other.n_hashes
            )));
        }
        Ok(())
    }

    /// Fraction of set bits.
    pub fn fill_ratio(&self) -> f64 {
        let set: u64 = self.bits.iter().map(|w| w.count_ones() as u64).sum();
        set as f64 / self.n_bits as f64
    }

    /// Expected false-positive rate at the current fill: `fill^k`.
    pub fn estimated_fpr(&self) -> f64 {
        self.fill_ratio().powi(self.n_hashes as i32)
    }

    /// Bits in the filter.
    pub fn n_bits(&self) -> u64 {
        self.n_bits
    }

    /// Hash functions used.
    pub fn n_hashes(&self) -> u32 {
        self.n_hashes
    }

    /// Number of insert calls (not distinct keys).
    pub fn n_inserted(&self) -> u64 {
        self.n_inserted
    }

    /// Memory footprint in bytes (the quantity shipped across the simulated
    /// network in the distributed AIP scheme, §V-B).
    pub fn size_bytes(&self) -> usize {
        self.bits.len() * 8 + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sip_common::hash::fx_hash64;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::with_fpr(1000, 0.05, 1);
        for i in 0..1000u64 {
            f.insert(fx_hash64(&i));
        }
        for i in 0..1000u64 {
            assert!(f.contains(fx_hash64(&i)), "lost key {i}");
        }
    }

    #[test]
    fn fpr_close_to_target_k1() {
        let n = 20_000u64;
        let mut f = BloomFilter::with_fpr(n as usize, 0.05, 1);
        for i in 0..n {
            f.insert(fx_hash64(&i));
        }
        let mut fp = 0usize;
        let probes = 50_000u64;
        for i in n..n + probes {
            if f.contains(fx_hash64(&i)) {
                fp += 1;
            }
        }
        let rate = fp as f64 / probes as f64;
        assert!(rate < 0.08, "observed FPR {rate} too high");
        assert!(rate > 0.02, "observed FPR {rate} suspiciously low");
    }

    #[test]
    fn fpr_close_to_target_k4() {
        let n = 10_000u64;
        let mut f = BloomFilter::with_fpr(n as usize, 0.01, 4);
        for i in 0..n {
            f.insert(fx_hash64(&i));
        }
        let mut fp = 0usize;
        for i in n..n + 50_000 {
            if f.contains(fx_hash64(&i)) {
                fp += 1;
            }
        }
        let rate = fp as f64 / 50_000.0;
        assert!(
            rate < 0.025,
            "observed FPR {rate} too high for k=4 target 1%"
        );
    }

    #[test]
    fn intersection_keeps_common_keys() {
        let mut a = BloomFilter::with_bits(1 << 14, 1);
        let mut b = BloomFilter::with_bits(1 << 14, 1);
        for i in 0..500u64 {
            a.insert(fx_hash64(&i));
        }
        for i in 250..750u64 {
            b.insert(fx_hash64(&i));
        }
        a.intersect(&b).unwrap();
        for i in 250..500u64 {
            assert!(a.contains(fx_hash64(&i)), "lost common key {i}");
        }
        // Most non-common keys should now miss.
        let misses = (500..750u64).filter(|i| !a.contains(fx_hash64(i))).count();
        assert!(misses > 200, "intersection barely filtered: {misses}");
    }

    #[test]
    fn union_covers_both() {
        let mut a = BloomFilter::with_bits(1 << 12, 2);
        let mut b = BloomFilter::with_bits(1 << 12, 2);
        a.insert(fx_hash64(&1u64));
        b.insert(fx_hash64(&2u64));
        a.union(&b).unwrap();
        assert!(a.contains(fx_hash64(&1u64)));
        assert!(a.contains(fx_hash64(&2u64)));
    }

    #[test]
    fn geometry_mismatch_rejected() {
        let mut a = BloomFilter::with_bits(128, 1);
        let b = BloomFilter::with_bits(256, 1);
        assert!(a.intersect(&b).is_err());
        let c = BloomFilter::with_bits(128, 2);
        assert!(a.union(&c).is_err());
    }

    #[test]
    fn sizing_matches_formula_k1() {
        // k=1, 5% → m ≈ n / -ln(0.95) ≈ 19.5 n bits.
        let f = BloomFilter::with_fpr(1000, 0.05, 1);
        let bits_per_key = f.n_bits() as f64 / 1000.0;
        assert!(
            (19.0..21.0).contains(&bits_per_key),
            "bits/key = {bits_per_key}"
        );
    }

    #[test]
    fn fill_and_estimate() {
        let mut f = BloomFilter::with_bits(64, 1);
        assert_eq!(f.fill_ratio(), 0.0);
        f.insert(fx_hash64(&1u64));
        assert!(f.fill_ratio() > 0.0);
        assert!(f.estimated_fpr() > 0.0);
        assert_eq!(f.n_inserted(), 1);
    }

    #[test]
    fn empty_filter_matches_nothing() {
        let f = BloomFilter::with_fpr(100, 0.05, 1);
        for i in 0..100u64 {
            assert!(!f.contains(fx_hash64(&i)));
        }
    }

    #[test]
    fn size_bytes_scales_with_bits() {
        let small = BloomFilter::with_bits(1 << 10, 1).size_bytes();
        let big = BloomFilter::with_bits(1 << 16, 1).size_bytes();
        assert!(big > small);
    }
}
