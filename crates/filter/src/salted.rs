//! Salted-key sets: the key domain whose rows are routed *outside* the
//! partition-hash invariant.
//!
//! Skew-adaptive shuffles (see `sip-parallel`) deal a hot key's probe rows
//! round-robin across every partition and replicate its build rows to all
//! of them. For AIP this changes the meaning of a *partition-scoped*
//! filter: partition `p`'s working set no longer covers `p`'s full hash
//! class — a salted key that hashes home to `p` may have contributed rows
//! to any partition — so a scoped filter must pass salted keys unprobed and
//! leave them to the plan-wide OR-merged union, which always covers the
//! whole subexpression regardless of routing. [`SaltedKeys`] is that
//! exemption set, shared (one `Arc`) between the plan's shuffle operators,
//! the `PartitionMap`, and every scoped `InjectedFilter`.

use sip_common::FxHashSet;
use std::sync::Arc;

/// The set of key digests a skew-adaptive shuffle routes outside the
/// partition-hash invariant. `All` is the replicated-build fallback for the
/// pathological everything-hot case: every key of the stream is salted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SaltedKeys {
    /// Exactly these key digests are salted.
    Digests(FxHashSet<u64>),
    /// Every key is salted (entire build side replicated, probe side dealt
    /// round-robin).
    All,
}

impl SaltedKeys {
    /// Build from an explicit digest set.
    pub fn from_digests(digests: FxHashSet<u64>) -> Arc<SaltedKeys> {
        Arc::new(SaltedKeys::Digests(digests))
    }

    /// Is `digest` routed outside the partition-hash invariant?
    #[inline]
    pub fn covers(&self, digest: u64) -> bool {
        match self {
            SaltedKeys::Digests(set) => set.contains(&digest),
            SaltedKeys::All => true,
        }
    }

    /// Number of salted digests (`None` = all of them).
    pub fn len(&self) -> Option<usize> {
        match self {
            SaltedKeys::Digests(set) => Some(set.len()),
            SaltedKeys::All => None,
        }
    }

    /// True when no digest is salted.
    pub fn is_empty(&self) -> bool {
        matches!(self, SaltedKeys::Digests(set) if set.is_empty())
    }

    /// Widen with another exemption set (used when two salted meshes share
    /// one partitioning class: passing extra keys unprobed is always safe).
    pub fn merge(&mut self, other: &SaltedKeys) {
        match (self, other) {
            (SaltedKeys::All, _) => {}
            (this @ SaltedKeys::Digests(_), SaltedKeys::All) => *this = SaltedKeys::All,
            (SaltedKeys::Digests(a), SaltedKeys::Digests(b)) => {
                a.extend(b.iter().copied());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digests(ds: &[u64]) -> SaltedKeys {
        SaltedKeys::Digests(ds.iter().copied().collect())
    }

    #[test]
    fn covers_and_len() {
        let s = digests(&[1, 2, 3]);
        assert!(s.covers(2));
        assert!(!s.covers(9));
        assert_eq!(s.len(), Some(3));
        assert!(!s.is_empty());
        assert!(digests(&[]).is_empty());
        assert!(SaltedKeys::All.covers(9));
        assert_eq!(SaltedKeys::All.len(), None);
        assert!(!SaltedKeys::All.is_empty());
    }

    #[test]
    fn merge_widens() {
        let mut a = digests(&[1]);
        a.merge(&digests(&[2]));
        assert!(a.covers(1) && a.covers(2) && !a.covers(3));
        a.merge(&SaltedKeys::All);
        assert!(a.covers(3));
        let mut b = SaltedKeys::All;
        b.merge(&digests(&[5]));
        assert_eq!(b, SaltedKeys::All);
    }
}
