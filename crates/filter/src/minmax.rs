//! Min/max range summaries — the §III-C extension.
//!
//! The paper restricts its implementation to equality conditions evaluated
//! with Bloom filters, noting that "range conditions ... are in principle
//! simple to implement" but need different summary structures. This module
//! provides the simplest such structure: a [min, max] envelope over a key
//! attribute, usable to prune tuples that fall outside the range of any
//! possible join partner. It is exercised by the ablation benches.

use sip_common::Value;

/// A closed [min, max] envelope over an ordered attribute.
///
/// Probes return `true` ("may join") for any value inside the envelope —
/// never a false negative for values actually present, since the envelope
/// contains every inserted value.
#[derive(Clone, Debug, Default)]
pub struct MinMaxSummary {
    bounds: Option<(Value, Value)>,
    n_inserted: u64,
}

impl MinMaxSummary {
    /// An empty summary (matches nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a value, widening the envelope. NULLs are ignored (they never
    /// satisfy equality or range predicates).
    pub fn insert(&mut self, v: &Value) {
        if v.is_null() {
            return;
        }
        self.n_inserted += 1;
        match &mut self.bounds {
            None => self.bounds = Some((v.clone(), v.clone())),
            Some((lo, hi)) => {
                if v < lo {
                    *lo = v.clone();
                }
                if v > hi {
                    *hi = v.clone();
                }
            }
        }
    }

    /// May `v` equal some inserted value?
    pub fn may_contain(&self, v: &Value) -> bool {
        match &self.bounds {
            None => false,
            Some((lo, hi)) => !v.is_null() && v >= lo && v <= hi,
        }
    }

    /// The current envelope.
    pub fn bounds(&self) -> Option<(&Value, &Value)> {
        self.bounds.as_ref().map(|(lo, hi)| (lo, hi))
    }

    /// Number of inserted (non-NULL) values.
    pub fn n_inserted(&self) -> u64 {
        self.n_inserted
    }

    /// Merge another summary in (envelope union).
    pub fn merge(&mut self, other: &MinMaxSummary) {
        if let Some((lo, hi)) = &other.bounds {
            self.insert(lo);
            self.insert(hi);
            // insert() bumped n_inserted twice for bookkeeping we don't want:
            self.n_inserted = self.n_inserted - 2 + other.n_inserted;
        }
    }

    /// Envelope intersection: keep only the overlapping range. If the ranges
    /// are disjoint the summary becomes empty (matches nothing).
    pub fn intersect(&mut self, other: &MinMaxSummary) {
        self.bounds = match (&self.bounds, &other.bounds) {
            (Some((alo, ahi)), Some((blo, bhi))) => {
                let lo = alo.clone().max(blo.clone());
                let hi = ahi.clone().min(bhi.clone());
                if lo <= hi {
                    Some((lo, hi))
                } else {
                    None
                }
            }
            _ => None,
        };
    }

    /// Memory footprint.
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .bounds
                .as_ref()
                .map(|(lo, hi)| lo.size_bytes() + hi.size_bytes())
                .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matches_nothing() {
        let s = MinMaxSummary::new();
        assert!(!s.may_contain(&Value::Int(0)));
        assert_eq!(s.bounds(), None);
    }

    #[test]
    fn envelope_widens() {
        let mut s = MinMaxSummary::new();
        s.insert(&Value::Int(10));
        s.insert(&Value::Int(5));
        s.insert(&Value::Int(20));
        assert!(s.may_contain(&Value::Int(5)));
        assert!(s.may_contain(&Value::Int(12))); // inside envelope: may
        assert!(s.may_contain(&Value::Int(20)));
        assert!(!s.may_contain(&Value::Int(4)));
        assert!(!s.may_contain(&Value::Int(21)));
        assert_eq!(s.n_inserted(), 3);
    }

    #[test]
    fn nulls_ignored() {
        let mut s = MinMaxSummary::new();
        s.insert(&Value::Null);
        assert_eq!(s.n_inserted(), 0);
        s.insert(&Value::Int(1));
        assert!(!s.may_contain(&Value::Null));
    }

    #[test]
    fn merge_unions_envelopes() {
        let mut a = MinMaxSummary::new();
        a.insert(&Value::Int(0));
        a.insert(&Value::Int(10));
        let mut b = MinMaxSummary::new();
        b.insert(&Value::Int(50));
        b.insert(&Value::Int(60));
        a.merge(&b);
        assert!(a.may_contain(&Value::Int(55)));
        assert!(a.may_contain(&Value::Int(5)));
        assert_eq!(a.n_inserted(), 4);
    }

    #[test]
    fn intersect_narrows_or_empties() {
        let mut a = MinMaxSummary::new();
        a.insert(&Value::Int(0));
        a.insert(&Value::Int(10));
        let mut b = MinMaxSummary::new();
        b.insert(&Value::Int(5));
        b.insert(&Value::Int(15));
        a.intersect(&b);
        assert!(a.may_contain(&Value::Int(7)));
        assert!(!a.may_contain(&Value::Int(3)));
        let mut c = MinMaxSummary::new();
        c.insert(&Value::Int(100));
        a.intersect(&c);
        assert!(!a.may_contain(&Value::Int(100)));
        assert_eq!(a.bounds(), None);
    }

    #[test]
    fn works_over_dates_and_strings() {
        use sip_common::Date;
        let mut s = MinMaxSummary::new();
        s.insert(&Value::Date(Date::parse("1995-01-01").unwrap()));
        s.insert(&Value::Date(Date::parse("1996-01-01").unwrap()));
        assert!(s.may_contain(&Value::Date(Date::parse("1995-06-15").unwrap())));
        assert!(!s.may_contain(&Value::Date(Date::parse("1994-12-31").unwrap())));

        let mut t = MinMaxSummary::new();
        t.insert(&Value::str("FRANCE"));
        t.insert(&Value::str("GERMANY"));
        assert!(t.may_contain(&Value::str("FRANCE")));
        assert!(!t.may_contain(&Value::str("ALGERIA")));
    }
}
