#![warn(missing_docs)]
//! # sip-filter
//!
//! Summary structures used as *AIP sets* (§III, §V of the paper): Bloom
//! filters with configurable false-positive rate and hash-function count,
//! exact hash sets with the paper's per-bucket discard safety valve, and an
//! optional min/max range summary (the §III-C extension).
//!
//! All structures operate on stable 64-bit key digests produced by
//! `sip_common::hash::fx_hash64` / `Row::key_hash`, so a filter built on one
//! thread or site probes identically anywhere.

pub mod aipset;
pub mod bloom;
pub mod hashset;
pub mod minmax;
pub mod salted;

pub use aipset::{AipSet, AipSetBuilder, AipSetKind};
pub use bloom::BloomFilter;
pub use hashset::BucketedKeySet;
pub use minmax::MinMaxSummary;
pub use salted::SaltedKeys;
