//! The unified AIP-set abstraction.
//!
//! An *AIP set* (§III-A) is a summary of a completed subexpression's key
//! values, probed by semijoins injected elsewhere in the plan. The paper's
//! implementation supports Bloom filters (small, false positives) and hash
//! tables (exact, larger); this module adds the optional min/max range
//! summary of §III-C. All variants share one probe interface so operators
//! are agnostic to the representation.

use crate::bloom::BloomFilter;
use crate::hashset::BucketedKeySet;
use crate::minmax::MinMaxSummary;
use sip_common::{ColumnarBatch, DigestBuffer, Result, Row, SipError, Value};

/// Which summary representation to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AipSetKind {
    /// Bloom filter — the paper's default (1 hash function, 5% FPR).
    Bloom,
    /// Exact bucketed hash set — no false positives, more memory.
    Hash,
    /// Min/max envelope — range pruning only (§III-C extension).
    MinMax,
}

/// A completed, immutable AIP set.
#[derive(Clone, Debug)]
pub enum AipSet {
    /// Bloom-filter summary (probe by key digest).
    Bloom(BloomFilter),
    /// Exact key set (probe by digest + key values).
    Hash(BucketedKeySet),
    /// Range envelope over a single attribute.
    MinMax(MinMaxSummary),
}

impl AipSet {
    /// Probe with a key digest and the exact key values.
    ///
    /// Returns `true` when the key *may* have a join partner in the
    /// summarized subexpression (false positives allowed), `false` when it
    /// provably does not (never a false negative).
    #[inline]
    pub fn probe(&self, digest: u64, key: &[Value]) -> bool {
        match self {
            AipSet::Bloom(b) => b.contains(digest),
            AipSet::Hash(h) => h.contains(digest, key),
            // A range envelope only understands single-attribute keys; a
            // key it cannot decide must pass (a drop here would be a false
            // negative).
            AipSet::MinMax(m) => match key {
                [v] => m.may_contain(v),
                _ => true,
            },
        }
    }

    /// Probe without materializing the key: the key is `values[p]` for each
    /// `p` in `positions`, in order, and `digest` is its
    /// `Row::key_hash`-style digest (batch kernels compute it once per batch
    /// per key-column set). Semantically identical to [`AipSet::probe`] on
    /// the gathered key, but the hot path never clones a `Value`.
    #[inline]
    pub fn probe_at(&self, digest: u64, values: &[Value], positions: &[usize]) -> bool {
        match self {
            AipSet::Bloom(b) => b.contains(digest),
            AipSet::Hash(h) => h.contains_at(digest, values, positions),
            AipSet::MinMax(m) => match positions {
                [p] => m.may_contain(&values[*p]),
                _ => true,
            },
        }
    }

    /// Probe row `i` of a columnar batch: the key is the batch's
    /// `positions` columns at row `i`, and `digest` its
    /// `Row::key_hash`-style digest. Semantically identical to
    /// [`AipSet::probe_at`] on the materialized row, but exact-set compares
    /// run against the column storage in place (`ColumnarBatch::value_eq`)
    /// and only MinMax clones a value (single-attribute, realistically
    /// numeric).
    #[inline]
    pub fn probe_cols(
        &self,
        digest: u64,
        batch: &ColumnarBatch,
        i: usize,
        positions: &[usize],
    ) -> bool {
        match self {
            AipSet::Bloom(b) => b.contains(digest),
            AipSet::Hash(h) => h.contains_by(digest, |stored| {
                stored.len() == positions.len()
                    && positions
                        .iter()
                        .zip(stored.iter())
                        .all(|(&p, k)| batch.value_eq(p, i, k))
            }),
            AipSet::MinMax(m) => match positions {
                [p] => m.may_contain(&batch.value_at(*p, i)),
                _ => true,
            },
        }
    }

    /// Number of keys the producer inserted (with multiplicity for Bloom).
    pub fn n_keys(&self) -> u64 {
        match self {
            AipSet::Bloom(b) => b.n_inserted(),
            AipSet::Hash(h) => h.n_keys() as u64,
            AipSet::MinMax(m) => m.n_inserted(),
        }
    }

    /// Memory footprint — also the simulated shipping cost in bytes.
    pub fn size_bytes(&self) -> usize {
        match self {
            AipSet::Bloom(b) => b.size_bytes(),
            AipSet::Hash(h) => h.size_bytes(),
            AipSet::MinMax(m) => m.size_bytes(),
        }
    }

    /// The representation tag.
    pub fn kind(&self) -> AipSetKind {
        match self {
            AipSet::Bloom(_) => AipSetKind::Bloom,
            AipSet::Hash(_) => AipSetKind::Hash,
            AipSet::MinMax(_) => AipSetKind::MinMax,
        }
    }

    /// Union with another set of the same representation, *widening* the
    /// filter so it admits everything either side admits. This is the
    /// OR-merge applied to per-partition AIP sets: each partition's set
    /// covers only its hash class of the producing subexpression, and the
    /// union of all `dop` of them covers the whole subexpression, making
    /// the merged filter safe to probe unscoped anywhere in the plan.
    pub fn union(&mut self, other: &AipSet) -> Result<()> {
        match (self, other) {
            (AipSet::Bloom(a), AipSet::Bloom(b)) => a.union(b),
            (AipSet::Hash(a), AipSet::Hash(b)) => {
                a.union(b);
                Ok(())
            }
            (AipSet::MinMax(a), AipSet::MinMax(b)) => {
                a.merge(b);
                Ok(())
            }
            (a, b) => Err(SipError::Exec(format!(
                "cannot union AIP sets of kinds {:?} and {:?}",
                a.kind(),
                b.kind()
            ))),
        }
    }

    /// Intersect with another set of the same representation, tightening the
    /// filter (both constraints must hold). Used by the registry when a
    /// second producer covers the same attribute class (§IV-B: "that filter
    /// can either be intersected or ... directly replaced").
    pub fn intersect(&mut self, other: &AipSet) -> Result<()> {
        match (self, other) {
            (AipSet::Bloom(a), AipSet::Bloom(b)) => a.intersect(b),
            (AipSet::MinMax(a), AipSet::MinMax(b)) => {
                a.intersect(b);
                Ok(())
            }
            (a, b) => Err(SipError::Exec(format!(
                "cannot intersect AIP sets of kinds {:?} and {:?}",
                a.kind(),
                b.kind()
            ))),
        }
    }
}

/// Incremental builder for an [`AipSet`], fed tuple-by-tuple by the
/// feed-forward algorithm's "working copy" (§IV-A) or by a bulk state scan
/// in the cost-based algorithm (§IV-B).
#[derive(Clone, Debug)]
pub struct AipSetBuilder {
    inner: AipSet,
}

impl AipSetBuilder {
    /// Start building. `expected_keys` sizes Bloom filters; `fpr` and
    /// `n_hashes` carry the paper's defaults (0.05, 1) unless overridden.
    pub fn new(kind: AipSetKind, expected_keys: usize, fpr: f64, n_hashes: u32) -> Self {
        let inner = match kind {
            AipSetKind::Bloom => AipSet::Bloom(BloomFilter::with_fpr(expected_keys, fpr, n_hashes)),
            AipSetKind::Hash => AipSet::Hash(BucketedKeySet::new()),
            AipSetKind::MinMax => AipSet::MinMax(MinMaxSummary::new()),
        };
        AipSetBuilder { inner }
    }

    /// Builder with the paper's defaults: Bloom, 5% FPR, one hash function.
    pub fn paper_default(expected_keys: usize) -> Self {
        Self::new(AipSetKind::Bloom, expected_keys, 0.05, 1)
    }

    /// Insert one key.
    #[inline]
    pub fn insert(&mut self, digest: u64, key: &[Value]) {
        match &mut self.inner {
            AipSet::Bloom(b) => b.insert(digest),
            AipSet::Hash(h) => h.insert(digest, key.to_vec()),
            AipSet::MinMax(m) => {
                if let [v] = key {
                    m.insert(v);
                }
            }
        }
    }

    /// Insert without materializing the key: the key is `values[p]` for
    /// each `p` in `positions`, in order, and `digest` is its
    /// `Row::key_hash`-style digest. Semantically identical to
    /// [`AipSetBuilder::insert`] on the gathered key, but the build hot
    /// path clones a `Value` only when an exact set stores a genuinely new
    /// key — Bloom and min/max builds never allocate at all.
    #[inline]
    pub fn insert_at(&mut self, digest: u64, values: &[Value], positions: &[usize]) {
        match &mut self.inner {
            AipSet::Bloom(b) => b.insert(digest),
            AipSet::Hash(h) => h.insert_at(digest, values, positions),
            AipSet::MinMax(m) => {
                if let [p] = positions {
                    m.insert(&values[*p]);
                }
            }
        }
    }

    /// Bulk insert one batch: every row's key at `positions`, with the
    /// digests taken from a shared per-batch hash pass (`digests[i]` must
    /// cover row `i` over exactly `positions` — NULL keys hash like any
    /// value and are inserted, matching the row-at-a-time working-copy
    /// semantics). This is the feed-forward working copy's batch admit path
    /// and the cost-based bulk state scan.
    pub fn extend_batch(&mut self, rows: &[Row], positions: &[usize], digests: &DigestBuffer) {
        debug_assert_eq!(rows.len(), digests.len());
        match &mut self.inner {
            // One tight loop over the digest slice; no per-row dispatch.
            AipSet::Bloom(b) => {
                for &d in digests.digests() {
                    b.insert(d);
                }
            }
            AipSet::Hash(h) => {
                for (row, &d) in rows.iter().zip(digests.digests()) {
                    h.insert_at(d, row.values(), positions);
                }
            }
            AipSet::MinMax(m) => {
                if let [p] = positions {
                    for row in rows {
                        m.insert(row.get(*p));
                    }
                }
            }
        }
    }

    /// Current footprint while building.
    pub fn size_bytes(&self) -> usize {
        self.inner.size_bytes()
    }

    /// Finish and freeze.
    pub fn finish(self) -> AipSet {
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sip_common::hash::fx_hash64;

    fn key(i: i64) -> Vec<Value> {
        vec![Value::Int(i)]
    }

    fn digest(k: &[Value]) -> u64 {
        fx_hash64(k)
    }

    fn build(kind: AipSetKind, keys: impl Iterator<Item = i64>) -> AipSet {
        let keys: Vec<_> = keys.collect();
        let mut b = AipSetBuilder::new(kind, keys.len(), 0.05, 1);
        for i in keys {
            let k = key(i);
            b.insert(digest(&k), &k);
        }
        b.finish()
    }

    #[test]
    fn all_kinds_have_no_false_negatives() {
        for kind in [AipSetKind::Bloom, AipSetKind::Hash, AipSetKind::MinMax] {
            let s = build(kind, 0..500);
            for i in 0..500 {
                let k = key(i);
                assert!(s.probe(digest(&k), &k), "{kind:?} lost key {i}");
            }
        }
    }

    #[test]
    fn probe_cols_agrees_with_probe_at_for_all_kinds() {
        let rows: Vec<Row> = (0..120)
            .map(|i| {
                Row::new(vec![
                    Value::str(format!("pad{i}")),
                    Value::Int(i * 3), // every third key inserted below
                ])
            })
            .collect();
        let batch = ColumnarBatch::from_rows(&rows);
        let mut digests = DigestBuffer::default();
        digests.compute(&rows, &[1]);
        for kind in [AipSetKind::Bloom, AipSetKind::Hash, AipSetKind::MinMax] {
            let s = build(kind, (0..100).map(|i| i * 9));
            for (i, row) in rows.iter().enumerate() {
                let d = digests.digests()[i];
                assert_eq!(
                    s.probe_cols(d, &batch, i, &[1]),
                    s.probe_at(d, row.values(), &[1]),
                    "{kind:?} row {i}"
                );
            }
        }
    }

    #[test]
    fn hash_kind_is_exact() {
        let s = build(AipSetKind::Hash, 0..500);
        for i in 500..1500 {
            let k = key(i);
            assert!(!s.probe(digest(&k), &k));
        }
    }

    #[test]
    fn minmax_prunes_out_of_range_only() {
        let s = build(AipSetKind::MinMax, 100..200);
        let inside = key(150); // not inserted? 150 IS inserted; use range check
        assert!(s.probe(digest(&inside), &inside));
        let below = key(50);
        assert!(!s.probe(digest(&below), &below));
        let above = key(1000);
        assert!(!s.probe(digest(&above), &above));
    }

    #[test]
    fn bloom_mostly_prunes_non_members() {
        let s = build(AipSetKind::Bloom, 0..2000);
        let fp = (2000..12_000)
            .filter(|&i| {
                let k = key(i);
                s.probe(digest(&k), &k)
            })
            .count();
        let rate = fp as f64 / 10_000.0;
        assert!(rate < 0.09, "FPR {rate}");
    }

    #[test]
    fn paper_default_is_bloom() {
        let b = AipSetBuilder::paper_default(10).finish();
        assert_eq!(b.kind(), AipSetKind::Bloom);
        if let AipSet::Bloom(f) = &b {
            assert_eq!(f.n_hashes(), 1);
        }
    }

    #[test]
    fn intersect_same_kind_tightens() {
        let mut a = build(AipSetKind::MinMax, 0..100);
        let b = build(AipSetKind::MinMax, 50..150);
        a.intersect(&b).unwrap();
        let k = key(75);
        assert!(a.probe(digest(&k), &k));
        let k = key(25);
        assert!(!a.probe(digest(&k), &k));
    }

    #[test]
    fn intersect_mismatched_kinds_errors() {
        let mut a = build(AipSetKind::Bloom, 0..10);
        let b = build(AipSetKind::Hash, 0..10);
        assert!(a.intersect(&b).is_err());
        assert!(a.union(&b).is_err());
    }

    #[test]
    fn union_admits_both_sides_for_all_kinds() {
        for kind in [AipSetKind::Bloom, AipSetKind::Hash, AipSetKind::MinMax] {
            let mut a = build(kind, 0..50);
            let b = build(kind, 200..250);
            a.union(&b).unwrap();
            for i in (0..50).chain(200..250) {
                let k = key(i);
                assert!(a.probe(digest(&k), &k), "{kind:?} union lost key {i}");
            }
        }
        // The exact hash union stays exact outside both inputs.
        let mut a = build(AipSetKind::Hash, 0..50);
        let b = build(AipSetKind::Hash, 200..250);
        a.union(&b).unwrap();
        let k = key(100);
        assert!(!a.probe(digest(&k), &k));
        assert_eq!(a.n_keys(), 100);
    }

    #[test]
    fn n_keys_reported() {
        assert_eq!(build(AipSetKind::Hash, 0..42).n_keys(), 42);
        assert_eq!(build(AipSetKind::Bloom, 0..42).n_keys(), 42);
    }

    #[test]
    fn extend_batch_matches_per_row_insert() {
        use sip_common::DigestBuffer;
        // Rows with the key scattered at position 1; duplicates included.
        let rows: Vec<Row> = (0..200i64)
            .map(|i| Row::new(vec![Value::str("pay"), Value::Int(i % 60)]))
            .collect();
        let positions = [1usize];
        for kind in [AipSetKind::Bloom, AipSetKind::Hash, AipSetKind::MinMax] {
            let mut by_row = AipSetBuilder::new(kind, rows.len(), 0.05, 1);
            for r in &rows {
                let k = r.key_values(&positions);
                by_row.insert(r.key_hash(&positions), &k);
            }
            let mut by_batch = AipSetBuilder::new(kind, rows.len(), 0.05, 1);
            let mut digests = DigestBuffer::default();
            // Batch boundaries must not matter.
            for chunk in rows.chunks(63) {
                digests.compute(chunk, &positions);
                by_batch.extend_batch(chunk, &positions, &digests);
            }
            let a = by_row.finish();
            let b = by_batch.finish();
            assert_eq!(a.n_keys(), b.n_keys(), "{kind:?} key counts");
            assert_eq!(a.size_bytes(), b.size_bytes(), "{kind:?} footprint");
            for i in -20..100i64 {
                let k = key(i);
                assert_eq!(
                    a.probe(digest(&k), &k),
                    b.probe(digest(&k), &k),
                    "{kind:?} probe diverged at {i}"
                );
            }
        }
    }

    #[test]
    fn insert_at_handles_nulls_like_insert() {
        let rows = vec![
            Row::new(vec![Value::Null, Value::Int(1)]),
            Row::new(vec![Value::Int(2), Value::Int(3)]),
        ];
        for kind in [AipSetKind::Bloom, AipSetKind::Hash, AipSetKind::MinMax] {
            let mut by_row = AipSetBuilder::new(kind, 4, 0.05, 1);
            let mut by_pos = AipSetBuilder::new(kind, 4, 0.05, 1);
            for r in &rows {
                let k = r.key_values(&[0]);
                by_row.insert(r.key_hash(&[0]), &k);
                by_pos.insert_at(r.key_hash(&[0]), r.values(), &[0]);
            }
            let (a, b) = (by_row.finish(), by_pos.finish());
            assert_eq!(a.n_keys(), b.n_keys(), "{kind:?}");
            let null_key = vec![Value::Null];
            let d = fx_hash64(&null_key);
            assert_eq!(a.probe(d, &null_key), b.probe(d, &null_key), "{kind:?}");
        }
    }

    #[test]
    fn multi_attr_keys_probe_exactly() {
        let mut b = AipSetBuilder::new(AipSetKind::Hash, 4, 0.05, 1);
        let k1 = vec![Value::Int(1), Value::str("x")];
        b.insert(fx_hash64(&k1), &k1);
        let s = b.finish();
        assert!(s.probe(fx_hash64(&k1), &k1));
        let k2 = vec![Value::Int(1), Value::str("y")];
        assert!(!s.probe(fx_hash64(&k2), &k2));
    }
}
