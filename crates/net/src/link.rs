//! Simulated network links.

use std::time::Duration;

/// A point-to-point link between the master and a remote site.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkSpec {
    /// Bandwidth in megabits per second.
    pub bandwidth_mbps: f64,
    /// One-way latency.
    pub latency: Duration,
}

impl LinkSpec {
    /// The paper's WAN assumption: 10 Mbps (§V-A, §VI).
    pub fn wan_10mbps() -> Self {
        LinkSpec {
            bandwidth_mbps: 10.0,
            latency: Duration::from_millis(20),
        }
    }

    /// The paper's distributed-join experiments: 100 Mb Ethernet (§VI-C).
    pub fn lan_100mbps() -> Self {
        LinkSpec {
            bandwidth_mbps: 100.0,
            latency: Duration::from_millis(1),
        }
    }

    /// Bytes per second.
    pub fn bytes_per_sec(&self) -> f64 {
        self.bandwidth_mbps * 1_000_000.0 / 8.0
    }

    /// Transmission time for `bytes` (excluding latency).
    pub fn transfer_time(&self, bytes: u64) -> Duration {
        Duration::from_secs_f64(bytes as f64 / self.bytes_per_sec())
    }

    /// Cost-model units per byte (for `AipConfig::ship_cost_per_byte`,
    /// matching the `CostModel` convention of ≈1 unit per row-touch; a
    /// 10 Mbps link moves 1.25 bytes per microsecond-ish unit).
    pub fn cost_per_byte(&self) -> f64 {
        8.0 / self.bandwidth_mbps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales() {
        let l = LinkSpec::wan_10mbps();
        // 1.25 MB at 10 Mbps = 1 second.
        let t = l.transfer_time(1_250_000);
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-9);
        let fast = LinkSpec::lan_100mbps();
        assert!(fast.transfer_time(1_250_000) < t);
    }

    #[test]
    fn cost_per_byte_inverse_to_bandwidth() {
        assert!(LinkSpec::wan_10mbps().cost_per_byte() > LinkSpec::lan_100mbps().cost_per_byte());
    }
}
