//! Distributed execution: remote scans over simulated links, with
//! AIP-filter shipping.

use crate::link::LinkSpec;
use crossbeam::channel::bounded;
use sip_common::trace::{FilterEvent, FilterEventKind};
use sip_common::{OpId, Result, SipError};
use sip_core::{AipConfig, CostBased, FeedForward, QuerySpec, Strategy};
use sip_engine::{
    execute_ctx, ExecContext, ExecMonitor, ExecOptions, Msg, NoopMonitor, PhysKind, PhysPlan,
    QueryOutput, TapKernel,
};
use sip_optimizer::CostModel;
use sip_plan::PredicateIndex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Configuration of the distributed setting.
#[derive(Clone, Debug)]
pub struct RemoteConfig {
    /// Tables served by the remote site (scans of these become remote).
    pub remote_tables: Vec<String>,
    /// The master ↔ site link.
    pub link: LinkSpec,
}

impl RemoteConfig {
    /// One remote table over a link.
    pub fn new(table: impl Into<String>, link: LinkSpec) -> Self {
        RemoteConfig {
            remote_tables: vec![table.into()],
            link,
        }
    }
}

/// Network counters for one run.
#[derive(Debug, Default)]
pub struct NetStats {
    /// Row payload bytes that actually crossed the link.
    pub row_bytes: AtomicU64,
    /// Rows that crossed the link.
    pub rows_shipped: AtomicU64,
    /// Rows pruned at the remote site by shipped filters.
    pub rows_pruned_remote: AtomicU64,
    /// Filter payload bytes shipped master → site.
    pub filter_bytes: AtomicU64,
    /// Filters shipped.
    pub filters_shipped: AtomicU64,
}

impl NetStats {
    /// Total bytes over the link in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.row_bytes.load(Ordering::Relaxed) + self.filter_bytes.load(Ordering::Relaxed)
    }
}

/// Result of a distributed run.
#[derive(Debug)]
pub struct DistributedRun {
    /// The query output (rows + engine metrics).
    pub output: QueryOutput,
    /// Link counters.
    pub net: NetStats,
}

/// Execute `spec` with the configured tables fetched from a simulated
/// remote site, under any strategy. Cost-based AIP prices filter shipping
/// at the link's cost-per-byte, as in §V-B.
pub fn run_distributed(
    spec: &QuerySpec,
    catalog: &sip_data::Catalog,
    strategy: Strategy,
    options: ExecOptions,
    aip: &AipConfig,
    remote: &RemoteConfig,
) -> Result<DistributedRun> {
    let mut phys = spec.lower(catalog, strategy)?;
    let feeds = externalize_remote_scans(&mut phys, &remote.remote_tables)?;
    if feeds.is_empty() {
        return Err(SipError::Net(format!(
            "no scans of {:?} found in the plan",
            remote.remote_tables
        )));
    }
    let phys = Arc::new(phys);

    // Wire an external channel per remote scan.
    let mut receivers = Vec::new();
    for feed in &feeds {
        let (tx, rx) = bounded::<Msg>(options.channel_capacity.max(1));
        options.external_inputs.lock().insert(feed.op.0, rx);
        receivers.push((feed.clone(), tx));
    }
    let ctx = ExecContext::new(Arc::clone(&phys), options);
    let stats = Arc::new(NetStats::default());

    // Site feeder threads: stream the table over the simulated link,
    // honoring filters shipped to the site.
    let mut feeder_handles = Vec::new();
    for (feed, tx) in receivers {
        let ctx = Arc::clone(&ctx);
        let stats = Arc::clone(&stats);
        let link = remote.link;
        feeder_handles.push(std::thread::spawn(move || {
            feed_remote_scan(&ctx, &stats, feed, link, tx);
        }));
    }

    let monitor: Arc<dyn ExecMonitor> = match strategy {
        Strategy::Baseline | Strategy::Magic => Arc::new(NoopMonitor),
        Strategy::FeedForward => {
            let eq = PredicateIndex::build(&spec.plan).eq;
            FeedForward::new(eq, aip.clone())
        }
        Strategy::CostBased => {
            let eq = PredicateIndex::build(&spec.plan).eq;
            let mut cfg = aip.clone();
            cfg.ship_cost_per_byte = remote.link.cost_per_byte();
            CostBased::new(
                eq,
                cfg,
                CostModel::default().with_bandwidth_mbps(remote.link.bandwidth_mbps),
            )
        }
    };
    let output = execute_ctx(Arc::clone(&ctx), monitor)?;
    for h in feeder_handles {
        let _ = h.join();
    }
    let net = Arc::try_unwrap(stats).unwrap_or_default();
    Ok(DistributedRun { output, net })
}

/// One externalized scan: the node to feed plus what to read.
#[derive(Clone, Debug)]
struct RemoteFeed {
    op: OpId,
    table: Arc<sip_data::Table>,
    cols: Vec<usize>,
}

/// Replace scans of remote tables with `ExternalSource` nodes, returning
/// feed descriptors.
fn externalize_remote_scans(plan: &mut PhysPlan, tables: &[String]) -> Result<Vec<RemoteFeed>> {
    let mut feeds = Vec::new();
    for node in plan.nodes.iter_mut() {
        if let PhysKind::Scan {
            table,
            cols,
            binding,
            ..
        } = &node.kind
        {
            if tables.iter().any(|t| t == table.name()) {
                feeds.push(RemoteFeed {
                    op: node.id,
                    table: Arc::clone(table),
                    cols: cols.clone(),
                });
                node.kind = PhysKind::ExternalSource {
                    label: format!("remote:{}@{binding}", table.name()),
                };
            }
        }
    }
    Ok(feeds)
}

/// The remote site: scan, apply shipped filters, pay the link, send.
///
/// Shipped filters run as the same batch kernel the engine's taps use
/// ([`sip_engine::TapKernel`]): one digest pass per batch per probe-column
/// set, selection-vector survivor gathers, per-filter counters published
/// once per batch — the remote site is no longer the last per-row
/// `admits` loop in the system.
///
/// The site reads the table's columnar storage directly: each chunk is a
/// metadata-only slice + column selection, filter probes run over the
/// typed column vectors, and the batch crosses the link columnar. Link
/// accounting uses [`ColumnarBatch::size_bytes`](sip_common::ColumnarBatch::size_bytes),
/// which is O(columns) per batch (cached per-column totals) instead of the
/// row path's O(rows × columns) per-value walk.
fn feed_remote_scan(
    ctx: &Arc<ExecContext>,
    stats: &NetStats,
    feed: RemoteFeed,
    link: LinkSpec,
    tx: crossbeam::channel::Sender<Msg>,
) {
    let tap = &ctx.taps[feed.op.index()];
    let mut known_filters = 0usize;
    let mut kernel = TapKernel::new();
    // Connection setup latency.
    std::thread::sleep(link.latency);
    let batch_size = ctx.options.batch_size;
    let source = feed.table.columns();
    let total = source.len();
    let mut offset = 0usize;
    while offset < total {
        let n = batch_size.min(total - offset);
        // Poll for newly shipped filters; pay their transfer cost once.
        let filters = tap.snapshot();
        if filters.len() > known_filters {
            for f in filters.iter().skip(known_filters) {
                let bytes = f.set.size_bytes() as u64;
                stats.filter_bytes.fetch_add(bytes, Ordering::Relaxed);
                stats.filters_shipped.fetch_add(1, Ordering::Relaxed);
                ctx.hub.trace.filter_event(FilterEvent {
                    kind: FilterEventKind::Shipped,
                    site: feed.op.0,
                    label: f.label.clone(),
                    t_nanos: ctx.hub.trace.now(),
                    build_nanos: 0,
                    keys: f.set.n_keys(),
                    bytes,
                });
                std::thread::sleep(link.transfer_time(bytes) + link.latency);
            }
            known_filters = filters.len();
        }
        // Remote-side projection + batch filtering (the Bloomjoin effect:
        // pruned rows never cross the link).
        let mut batch = source.slice(offset, n).select_columns(&feed.cols);
        offset += n;
        if !filters.is_empty() {
            kernel.begin(batch.len());
            let (_, dropped) = kernel.probe_chain_cols(&filters, &batch);
            if dropped > 0 {
                stats
                    .rows_pruned_remote
                    .fetch_add(dropped, Ordering::Relaxed);
                batch = batch.gather(kernel.sel().as_slice());
            }
        }
        if batch.is_empty() {
            continue;
        }
        let bytes = batch.size_bytes() as u64;
        stats.row_bytes.fetch_add(bytes, Ordering::Relaxed);
        stats
            .rows_shipped
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        std::thread::sleep(link.transfer_time(bytes));
        if tx.send(Msg::Cols(batch)).is_err() {
            return; // master cancelled
        }
    }
    let _ = tx.send(Msg::Eof);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sip_core::run_query;
    use sip_data::{generate, TpchConfig};
    use sip_engine::canonical;
    use sip_queries::build_query;

    fn catalog() -> sip_data::Catalog {
        generate(&TpchConfig::uniform(0.004)).unwrap()
    }

    fn fast_link() -> LinkSpec {
        LinkSpec {
            bandwidth_mbps: 2_000.0,
            latency: std::time::Duration::from_micros(200),
        }
    }

    #[test]
    fn distributed_matches_local_results() {
        let c = catalog();
        let spec = build_query("Q3A", &c).unwrap();
        let local = run_query(
            &spec,
            &c,
            Strategy::Baseline,
            ExecOptions::default(),
            &AipConfig::paper(),
        )
        .unwrap();
        for strategy in [
            Strategy::Baseline,
            Strategy::FeedForward,
            Strategy::CostBased,
        ] {
            let run = run_distributed(
                &spec,
                &c,
                strategy,
                ExecOptions::default(),
                &AipConfig::paper(),
                &RemoteConfig::new("partsupp", fast_link()),
            )
            .unwrap();
            assert_eq!(
                canonical(&run.output.rows),
                canonical(&local.rows),
                "{strategy} distributed diverged"
            );
            assert!(run.net.rows_shipped.load(Ordering::Relaxed) > 0);
        }
    }

    #[test]
    fn filters_reduce_shipped_bytes() {
        // Delay-free CB on Q3A: the local part/supplier side completes fast,
        // a partkey filter ships to the site, and remote pruning cuts row
        // bytes relative to baseline.
        let c = catalog();
        let spec = build_query("Q3A", &c).unwrap();
        let cfg = RemoteConfig::new("partsupp", LinkSpec::lan_100mbps());
        let base = run_distributed(
            &spec,
            &c,
            Strategy::Baseline,
            ExecOptions::default(),
            &AipConfig::paper(),
            &cfg,
        )
        .unwrap();
        let ff = run_distributed(
            &spec,
            &c,
            Strategy::FeedForward,
            ExecOptions::default(),
            &AipConfig::paper(),
            &cfg,
        )
        .unwrap();
        let base_bytes = base.net.row_bytes.load(Ordering::Relaxed);
        let ff_bytes = ff.net.row_bytes.load(Ordering::Relaxed);
        assert!(
            ff_bytes < base_bytes,
            "FF shipped {ff_bytes} vs baseline {base_bytes}"
        );
        assert!(ff.net.rows_pruned_remote.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn missing_remote_table_is_an_error() {
        let c = catalog();
        let spec = build_query("Q4A", &c).unwrap();
        let err = run_distributed(
            &spec,
            &c,
            Strategy::Baseline,
            ExecOptions::default(),
            &AipConfig::paper(),
            &RemoteConfig::new("part_does_not_appear", fast_link()),
        );
        assert!(err.is_err());
    }
}
