//! Distributed execution: remote scans over simulated links, with
//! AIP-filter shipping.

use crate::link::LinkSpec;
use crossbeam::channel::bounded;
use sip_common::error::ExecFailure;
use sip_common::retry::{RetryPolicy, RetryState};
use sip_common::trace::{FilterEvent, FilterEventKind};
use sip_common::{OpId, Result, SipError};
use sip_core::{AipConfig, CostBased, FeedForward, QuerySpec, Strategy};
use sip_engine::{
    execute_ctx, ExecContext, ExecMonitor, ExecOptions, LinkFaultKind, Msg, NoopMonitor, PhysKind,
    PhysPlan, QueryOutput, TapKernel,
};
use sip_optimizer::CostModel;
use sip_plan::PredicateIndex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Configuration of the distributed setting.
#[derive(Clone, Debug)]
pub struct RemoteConfig {
    /// Tables served by the remote site (scans of these become remote).
    pub remote_tables: Vec<String>,
    /// The master ↔ site link.
    pub link: LinkSpec,
    /// Reconnect policy when the link drops (an injected
    /// [`sip_engine::LinkFault`]): exponential backoff between reconnect
    /// attempts (the feeder also re-pays the link's connection latency
    /// on each), giving up and failing the query when the budget is
    /// spent. Shares [`sip_common::retry::RetryPolicy`] with the
    /// engine's recovery layer.
    pub retry: RetryPolicy,
}

impl RemoteConfig {
    /// One remote table over a link, with a small default retry budget
    /// (three reconnects, 5ms base backoff).
    pub fn new(table: impl Into<String>, link: LinkSpec) -> Self {
        RemoteConfig {
            remote_tables: vec![table.into()],
            link,
            retry: RetryPolicy {
                base_backoff: std::time::Duration::from_millis(5),
                ..RetryPolicy::with_attempts(4)
            },
        }
    }
}

/// Network counters for one run.
#[derive(Debug, Default)]
pub struct NetStats {
    /// Row payload bytes that actually crossed the link.
    pub row_bytes: AtomicU64,
    /// Rows that crossed the link.
    pub rows_shipped: AtomicU64,
    /// Rows pruned at the remote site by shipped filters.
    pub rows_pruned_remote: AtomicU64,
    /// Filter payload bytes shipped master → site.
    pub filter_bytes: AtomicU64,
    /// Filters shipped.
    pub filters_shipped: AtomicU64,
    /// Link failures observed (injected drops and hangs).
    pub link_failures: AtomicU64,
    /// Reconnect attempts made after link drops.
    pub retries: AtomicU64,
}

impl NetStats {
    /// Total bytes over the link in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.row_bytes.load(Ordering::Relaxed) + self.filter_bytes.load(Ordering::Relaxed)
    }

    /// An owned copy of the current counter values. Unlike
    /// `Arc::try_unwrap(..).unwrap_or_default()` — which silently zeroes
    /// every counter whenever any clone of the handle is still alive —
    /// this is correct regardless of who else holds the stats.
    pub fn snapshot(&self) -> NetStats {
        let copy = |a: &AtomicU64| AtomicU64::new(a.load(Ordering::Relaxed));
        NetStats {
            row_bytes: copy(&self.row_bytes),
            rows_shipped: copy(&self.rows_shipped),
            rows_pruned_remote: copy(&self.rows_pruned_remote),
            filter_bytes: copy(&self.filter_bytes),
            filters_shipped: copy(&self.filters_shipped),
            link_failures: copy(&self.link_failures),
            retries: copy(&self.retries),
        }
    }
}

/// Result of a distributed run.
#[derive(Debug)]
pub struct DistributedRun {
    /// The query output (rows + engine metrics).
    pub output: QueryOutput,
    /// Link counters.
    pub net: NetStats,
}

/// Execute `spec` with the configured tables fetched from a simulated
/// remote site, under any strategy. Cost-based AIP prices filter shipping
/// at the link's cost-per-byte, as in §V-B.
pub fn run_distributed(
    spec: &QuerySpec,
    catalog: &sip_data::Catalog,
    strategy: Strategy,
    options: ExecOptions,
    aip: &AipConfig,
    remote: &RemoteConfig,
) -> Result<DistributedRun> {
    let mut phys = spec.lower(catalog, strategy)?;
    let feeds = externalize_remote_scans(&mut phys, &remote.remote_tables)?;
    if feeds.is_empty() {
        return Err(SipError::Net(format!(
            "no scans of {:?} found in the plan",
            remote.remote_tables
        )));
    }
    let phys = Arc::new(phys);

    // Wire an external channel per remote scan.
    let mut receivers = Vec::new();
    for feed in &feeds {
        let (tx, rx) = bounded::<Msg>(options.channel_capacity.max(1));
        options.external_inputs.lock().insert(feed.op.0, rx);
        receivers.push((feed.clone(), tx));
    }
    let ctx = ExecContext::new(Arc::clone(&phys), options);
    let stats = Arc::new(NetStats::default());

    // Site feeder threads: stream the table over the simulated link,
    // honoring filters shipped to the site.
    let mut feeder_handles = Vec::new();
    for (feed, tx) in receivers {
        let ctx = Arc::clone(&ctx);
        let stats = Arc::clone(&stats);
        // Per-feeder reseed: independent jitter streams, still
        // deterministic for a given plan.
        let retry = remote.retry.clone().reseeded(u64::from(feed.op.0));
        let link = remote.link;
        feeder_handles.push(std::thread::spawn(move || {
            feed_remote_scan(&ctx, &stats, feed, link, retry, tx);
        }));
    }

    let monitor: Arc<dyn ExecMonitor> = match strategy {
        Strategy::Baseline | Strategy::Magic => Arc::new(NoopMonitor),
        Strategy::FeedForward => {
            let eq = PredicateIndex::build(&spec.plan).eq;
            FeedForward::new(eq, aip.clone())
        }
        Strategy::CostBased => {
            let eq = PredicateIndex::build(&spec.plan).eq;
            let mut cfg = aip.clone();
            cfg.ship_cost_per_byte = remote.link.cost_per_byte();
            CostBased::new(
                eq,
                cfg,
                CostModel::default().with_bandwidth_mbps(remote.link.bandwidth_mbps),
            )
        }
    };
    // Join the feeders even when the query failed (on the failure path
    // their channel receivers are gone, so sends fail and they return
    // promptly) — no thread outlives the run.
    let result = execute_ctx(Arc::clone(&ctx), monitor);
    let mut feeder_panicked = false;
    for h in feeder_handles {
        if h.join().is_err() {
            feeder_panicked = true;
        }
    }
    let net = stats.snapshot();
    let output = result?;
    if feeder_panicked {
        // The engine saw a clean stream (or the disconnect error above
        // took the early return) — a panicked feeder must still fail the
        // run rather than vanish into a discarded join result.
        return Err(SipError::Net("remote feeder thread panicked".into()));
    }
    Ok(DistributedRun { output, net })
}

/// One externalized scan: the node to feed plus what to read.
#[derive(Clone, Debug)]
struct RemoteFeed {
    op: OpId,
    table: Arc<sip_data::Table>,
    cols: Vec<usize>,
}

/// Replace scans of remote tables with `ExternalSource` nodes, returning
/// feed descriptors.
fn externalize_remote_scans(plan: &mut PhysPlan, tables: &[String]) -> Result<Vec<RemoteFeed>> {
    let mut feeds = Vec::new();
    for node in plan.nodes.iter_mut() {
        if let PhysKind::Scan {
            table,
            cols,
            binding,
            ..
        } = &node.kind
        {
            if tables.iter().any(|t| t == table.name()) {
                feeds.push(RemoteFeed {
                    op: node.id,
                    table: Arc::clone(table),
                    cols: cols.clone(),
                });
                node.kind = PhysKind::ExternalSource {
                    label: format!("remote:{}@{binding}", table.name()),
                };
            }
        }
    }
    Ok(feeds)
}

/// The remote site: scan, apply shipped filters, pay the link, send.
///
/// Shipped filters run as the same batch kernel the engine's taps use
/// ([`sip_engine::TapKernel`]): one digest pass per batch per probe-column
/// set, selection-vector survivor gathers, per-filter counters published
/// once per batch — the remote site is no longer the last per-row
/// `admits` loop in the system.
///
/// The site reads the table's columnar storage directly: each chunk is a
/// metadata-only slice + column selection, filter probes run over the
/// typed column vectors, and the batch crosses the link columnar. Link
/// accounting uses [`ColumnarBatch::size_bytes`](sip_common::ColumnarBatch::size_bytes),
/// which is O(columns) per batch (cached per-column totals) instead of the
/// row path's O(rows × columns) per-value walk.
fn feed_remote_scan(
    ctx: &Arc<ExecContext>,
    stats: &NetStats,
    feed: RemoteFeed,
    link: LinkSpec,
    retry: RetryPolicy,
    tx: crossbeam::channel::Sender<Msg>,
) {
    let tap = &ctx.taps[feed.op.index()];
    let mut known_filters = 0usize;
    let mut kernel = TapKernel::new();
    // Injected link fault, if any. `acked` counts batches the master has
    // accepted (a bounded send that returned Ok *is* the ack); a dropped
    // link re-feeds from the first unacked batch, which the feeder still
    // holds — no replay buffer needed. The reconnect budget spans the
    // whole stream (one flaky link, however many drops).
    let fault = ctx.options.faults.link.clone();
    let mut fault_remaining = fault.as_ref().map_or(0, |f| f.fail_times);
    let mut state = RetryState::new(retry);
    let mut acked = 0u64;
    // Connection setup latency (cancellable: a feeder must not hold a
    // failed or deadline-blown query open for its full simulated delay).
    if !ctx.cancel.sleep_cancellable(link.latency) {
        return;
    }
    let batch_size = ctx.options.batch_size;
    let source = feed.table.columns();
    let total = source.len();
    let mut offset = 0usize;
    while offset < total {
        let n = batch_size.min(total - offset);
        // Poll for newly shipped filters; pay their transfer cost once.
        let filters = tap.snapshot();
        if filters.len() > known_filters {
            for f in filters.iter().skip(known_filters) {
                let bytes = f.set.size_bytes() as u64;
                stats.filter_bytes.fetch_add(bytes, Ordering::Relaxed);
                stats.filters_shipped.fetch_add(1, Ordering::Relaxed);
                ctx.hub.trace.filter_event(FilterEvent {
                    kind: FilterEventKind::Shipped,
                    site: feed.op.0,
                    label: f.label.clone(),
                    t_nanos: ctx.hub.trace.now(),
                    build_nanos: 0,
                    keys: f.set.n_keys(),
                    bytes,
                });
                if !ctx
                    .cancel
                    .sleep_cancellable(link.transfer_time(bytes) + link.latency)
                {
                    return;
                }
            }
            known_filters = filters.len();
        }
        // Remote-side projection + batch filtering (the Bloomjoin effect:
        // pruned rows never cross the link).
        let mut batch = source.slice(offset, n).select_columns(&feed.cols);
        offset += n;
        if !filters.is_empty() {
            kernel.begin(batch.len());
            let (_, dropped) = kernel.probe_chain_cols(&filters, &batch);
            if dropped > 0 {
                stats
                    .rows_pruned_remote
                    .fetch_add(dropped, Ordering::Relaxed);
                batch = batch.gather(kernel.sel().as_slice());
            }
        }
        if batch.is_empty() {
            continue;
        }
        // Deliver the batch, riding out injected link faults with bounded
        // retry + backoff.
        loop {
            if ctx.cancel.is_cancelled() {
                return;
            }
            if let Some(f) = &fault {
                if acked >= f.after_batches && fault_remaining > 0 {
                    fault_remaining -= 1;
                    stats.link_failures.fetch_add(1, Ordering::Relaxed);
                    match f.kind {
                        LinkFaultKind::Drop => match state.again(ExecFailure::Error) {
                            Some(backoff) => {
                                stats.retries.fetch_add(1, Ordering::Relaxed);
                                // Backoff, then re-pay the connection
                                // latency and re-send from the first
                                // unacked batch.
                                if !ctx.cancel.sleep_cancellable(backoff)
                                    || !ctx.cancel.sleep_cancellable(link.latency)
                                {
                                    return;
                                }
                                continue;
                            }
                            None => {
                                // Out of budget: record the root cause and
                                // hang up *without* Eof — the consumer's
                                // disconnect error is the symptom; this
                                // Net error (naming the exhausted policy)
                                // is what the query reports.
                                let reconnects = state.attempt() - 1;
                                ctx.fail(state.give_up(SipError::Net(format!(
                                    "remote link for {} dropped; gave up after {reconnects} \
                                     reconnect attempts",
                                    feed.table.name()
                                ))));
                                return;
                            }
                        },
                        LinkFaultKind::Hang(d) => {
                            if !ctx.cancel.sleep_cancellable(d) {
                                return;
                            }
                        }
                    }
                }
            }
            let bytes = batch.size_bytes() as u64;
            if !ctx.cancel.sleep_cancellable(link.transfer_time(bytes)) {
                return;
            }
            stats.row_bytes.fetch_add(bytes, Ordering::Relaxed);
            stats
                .rows_shipped
                .fetch_add(batch.len() as u64, Ordering::Relaxed);
            if tx.send(Msg::Cols(batch)).is_err() {
                return; // master hung up (query failed or cancelled)
            }
            acked += 1;
            break;
        }
    }
    let _ = tx.send(Msg::Eof);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sip_core::run_query;
    use sip_data::{generate, TpchConfig};
    use sip_engine::canonical;
    use sip_queries::build_query;

    fn catalog() -> sip_data::Catalog {
        generate(&TpchConfig::uniform(0.004)).unwrap()
    }

    fn fast_link() -> LinkSpec {
        LinkSpec {
            bandwidth_mbps: 2_000.0,
            latency: std::time::Duration::from_micros(200),
        }
    }

    #[test]
    fn distributed_matches_local_results() {
        let c = catalog();
        let spec = build_query("Q3A", &c).unwrap();
        let local = run_query(
            &spec,
            &c,
            Strategy::Baseline,
            ExecOptions::default(),
            &AipConfig::paper(),
        )
        .unwrap();
        for strategy in [
            Strategy::Baseline,
            Strategy::FeedForward,
            Strategy::CostBased,
        ] {
            let run = run_distributed(
                &spec,
                &c,
                strategy,
                ExecOptions::default(),
                &AipConfig::paper(),
                &RemoteConfig::new("partsupp", fast_link()),
            )
            .unwrap();
            assert_eq!(
                canonical(&run.output.rows),
                canonical(&local.rows),
                "{strategy} distributed diverged"
            );
            assert!(run.net.rows_shipped.load(Ordering::Relaxed) > 0);
        }
    }

    #[test]
    fn filters_reduce_shipped_bytes() {
        // Delay-free CB on Q3A: the local part/supplier side completes fast,
        // a partkey filter ships to the site, and remote pruning cuts row
        // bytes relative to baseline.
        let c = catalog();
        let spec = build_query("Q3A", &c).unwrap();
        let cfg = RemoteConfig::new("partsupp", LinkSpec::lan_100mbps());
        let base = run_distributed(
            &spec,
            &c,
            Strategy::Baseline,
            ExecOptions::default(),
            &AipConfig::paper(),
            &cfg,
        )
        .unwrap();
        let ff = run_distributed(
            &spec,
            &c,
            Strategy::FeedForward,
            ExecOptions::default(),
            &AipConfig::paper(),
            &cfg,
        )
        .unwrap();
        let base_bytes = base.net.row_bytes.load(Ordering::Relaxed);
        let ff_bytes = ff.net.row_bytes.load(Ordering::Relaxed);
        assert!(
            ff_bytes < base_bytes,
            "FF shipped {ff_bytes} vs baseline {base_bytes}"
        );
        assert!(ff.net.rows_pruned_remote.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn missing_remote_table_is_an_error() {
        let c = catalog();
        let spec = build_query("Q4A", &c).unwrap();
        let err = run_distributed(
            &spec,
            &c,
            Strategy::Baseline,
            ExecOptions::default(),
            &AipConfig::paper(),
            &RemoteConfig::new("part_does_not_appear", fast_link()),
        );
        assert!(err.is_err());
    }

    #[test]
    fn dropped_link_retries_within_budget_and_recovers() {
        use sip_engine::{FaultPlan, LinkFault};
        let c = catalog();
        let spec = build_query("Q3A", &c).unwrap();
        let local = run_query(
            &spec,
            &c,
            Strategy::Baseline,
            ExecOptions::default(),
            &AipConfig::paper(),
        )
        .unwrap();
        // Two drops after the first acked batch, against the default
        // budget of three reconnects: the feeder re-sends the unacked
        // batch and the query completes exactly.
        let opts =
            ExecOptions::default().with_faults(FaultPlan::none().with_link_fault(LinkFault {
                after_batches: 1,
                kind: LinkFaultKind::Drop,
                fail_times: 2,
            }));
        let run = run_distributed(
            &spec,
            &c,
            Strategy::Baseline,
            opts,
            &AipConfig::paper(),
            &RemoteConfig::new("partsupp", fast_link()),
        )
        .unwrap();
        assert_eq!(
            canonical(&run.output.rows),
            canonical(&local.rows),
            "retried run diverged from local"
        );
        // Every feeder of the plan fires its own copy of the fault: two
        // drops each, and every drop is ridden out by exactly one
        // reconnect.
        let failures = run.net.link_failures.load(Ordering::Relaxed);
        let retries = run.net.retries.load(Ordering::Relaxed);
        assert!(failures >= 2, "fault never fired (failures {failures})");
        assert_eq!(retries, failures, "each drop must cost one reconnect");
        // Re-sends must not double-count shipped rows: the ack counter
        // only advances on successful delivery.
        assert!(run.net.rows_shipped.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn permanently_dead_link_fails_with_net_error_after_retries() {
        use sip_engine::{FaultPlan, LinkFault};
        let c = catalog();
        let spec = build_query("Q3A", &c).unwrap();
        let opts =
            ExecOptions::default().with_faults(FaultPlan::none().with_link_fault(LinkFault {
                after_batches: 0,
                kind: LinkFaultKind::Drop,
                fail_times: u32::MAX,
            }));
        let err = run_distributed(
            &spec,
            &c,
            Strategy::Baseline,
            opts,
            &AipConfig::paper(),
            &RemoteConfig::new("partsupp", fast_link()),
        )
        .unwrap_err();
        // The root-cause Net error must win over the downstream
        // disconnect symptom.
        assert_eq!(err.layer(), "net", "wrong layer for {err}");
        let msg = err.to_string();
        assert!(
            msg.contains("gave up") && msg.contains("partsupp"),
            "error must name the dead link and the exhausted budget: {msg}"
        );
        // The shared retry machinery marks the error exhausted, so an
        // outer recovery scope never re-spends its own budget on it.
        assert!(
            sip_common::retry::is_exhausted(&err),
            "link exhaustion must carry the RetryPolicy marker: {msg}"
        );
    }

    #[test]
    fn hanging_link_recovers_without_retries() {
        use sip_engine::{FaultPlan, LinkFault};
        let c = catalog();
        let spec = build_query("Q3A", &c).unwrap();
        let local = run_query(
            &spec,
            &c,
            Strategy::Baseline,
            ExecOptions::default(),
            &AipConfig::paper(),
        )
        .unwrap();
        let opts =
            ExecOptions::default().with_faults(FaultPlan::none().with_link_fault(LinkFault {
                after_batches: 1,
                kind: LinkFaultKind::Hang(std::time::Duration::from_millis(2)),
                fail_times: 2,
            }));
        let run = run_distributed(
            &spec,
            &c,
            Strategy::Baseline,
            opts,
            &AipConfig::paper(),
            &RemoteConfig::new("partsupp", fast_link()),
        )
        .unwrap();
        assert_eq!(canonical(&run.output.rows), canonical(&local.rows));
        // A hang delays delivery but never re-connects.
        assert!(run.net.link_failures.load(Ordering::Relaxed) >= 2);
        assert_eq!(run.net.retries.load(Ordering::Relaxed), 0);
    }
}
