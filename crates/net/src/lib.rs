#![warn(missing_docs)]
//! # sip-net
//!
//! Simulated multi-site execution (§V-B's distributed query extensions).
//!
//! A *remote site* serves one or more base tables over a link of configured
//! bandwidth and latency. The master's plan replaces each remote scan with
//! an [`sip_engine::PhysKind::ExternalSource`]; a feeder thread plays the
//! site, streaming the table across the simulated link (sleeping
//! `bytes / bandwidth` per batch) into the master pipeline.
//!
//! AIP enters exactly as the paper describes: "when an AIP filter is
//! estimated to be useful, the AIP Manager requests it from the source,
//! relays it to the target node if necessary, and injects it into the
//! appropriate query plan operator". Here the AIP managers inject at the
//! external-source node (the lowest operator carrying the correlated
//! attribute); the feeder observes the injection, pays the simulated
//! shipping delay for the filter's bytes, and then applies it **before**
//! transmission — so, as with a Bloomjoin, pruned tuples never cross the
//! link. The cost-based manager prices that shipment via
//! `sip_core::AipConfig::ship_cost_per_byte`.

pub mod link;
pub mod remote;

pub use link::LinkSpec;
pub use remote::{run_distributed, DistributedRun, NetStats, RemoteConfig};
