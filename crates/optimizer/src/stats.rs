//! Cardinality estimation in the style of the paper's optimizer (§V-A):
//! "its cost modeler does not require histograms: instead, it relies on
//! cardinality estimates and information about keys and foreign keys when
//! estimating the selectivity of join conditions ... assuming uniform
//! distribution and uncorrelated attributes."
//!
//! Estimates can be *re-derived mid-execution* from live operator counters —
//! the `UPDATEESTIMATES` service the cost-based AIP manager invokes
//! (Fig. 4, line 1).

use sip_common::{AttrId, FxHashMap, Value};
use sip_engine::{PhysKind, PhysPlan};
use sip_expr::{CmpOp, Expr};

/// Default selectivities when nothing better is known.
const DEFAULT_EQ_SEL: f64 = 0.05;
const DEFAULT_RANGE_SEL: f64 = 1.0 / 3.0;
const DEFAULT_LIKE_SEL: f64 = 0.1;
/// Assumed cardinality of an external source with no hint.
const DEFAULT_EXTERNAL_ROWS: f64 = 1_000.0;

/// Column-level metadata propagated through the plan.
#[derive(Clone, Debug)]
pub struct ColMeta {
    /// Estimated distinct values.
    pub distinct: f64,
    /// Minimum (base columns only).
    pub min: Option<Value>,
    /// Maximum (base columns only).
    pub max: Option<Value>,
}

impl ColMeta {
    fn derived(rows: f64) -> ColMeta {
        ColMeta {
            distinct: rows.max(1.0),
            min: None,
            max: None,
        }
    }

    fn capped(&self, rows: f64) -> ColMeta {
        ColMeta {
            distinct: self.distinct.min(rows.max(1.0)),
            min: self.min.clone(),
            max: self.max.clone(),
        }
    }

    /// Yao's approximation: distinct values surviving when `rows_before`
    /// rows are reduced to `rows_after` by an uncorrelated predicate:
    /// `d' = d · (1 - (1 - r)^(n/d))` with `r = rows_after / rows_before`.
    fn scaled(&self, rows_before: f64, rows_after: f64) -> ColMeta {
        let d = self.distinct.max(1.0);
        let n = rows_before.max(1.0);
        let r = (rows_after / n).clamp(0.0, 1.0);
        let surviving = d * (1.0 - (1.0 - r).powf(n / d));
        ColMeta {
            distinct: surviving
                .max(if rows_after > 0.0 { 1.0 } else { 0.0 })
                .min(rows_after.max(1.0)),
            min: self.min.clone(),
            max: self.max.clone(),
        }
    }
}

/// Estimated properties of one operator's output.
#[derive(Clone, Debug)]
pub struct NodeEst {
    /// Estimated output rows.
    pub rows: f64,
    /// Per-attribute metadata for the output layout.
    pub cols: FxHashMap<AttrId, ColMeta>,
}

impl NodeEst {
    /// Distinct estimate for an attribute (1 when unknown, division-safe).
    pub fn distinct(&self, attr: AttrId) -> f64 {
        self.cols
            .get(&attr)
            .map(|c| c.distinct.max(1.0))
            .unwrap_or(1.0)
    }
}

/// Live observations for one operator, read from engine counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct RuntimeActual {
    /// Rows emitted so far.
    pub rows_out: u64,
    /// Whether the operator has emitted EOF.
    pub finished: bool,
}

/// The estimator: per-node output estimates for a physical plan.
#[derive(Clone, Debug)]
pub struct Estimator {
    ests: Vec<NodeEst>,
}

impl Estimator {
    /// Static (pre-execution) estimation.
    pub fn estimate(plan: &PhysPlan) -> Estimator {
        Self::estimate_with(plan, None, &FxHashMap::default())
    }

    /// Runtime re-estimation (`UPDATEESTIMATES`): nodes that have finished
    /// pin their actual cardinality; unfinished nodes use
    /// `max(estimate, observed-so-far)`.
    pub fn estimate_with_actuals(plan: &PhysPlan, actuals: &[RuntimeActual]) -> Estimator {
        Self::estimate_with(plan, Some(actuals), &FxHashMap::default())
    }

    /// Full-control estimation with external-source row hints.
    pub fn estimate_with(
        plan: &PhysPlan,
        actuals: Option<&[RuntimeActual]>,
        external_hints: &FxHashMap<u32, f64>,
    ) -> Estimator {
        let mut ests: Vec<NodeEst> = Vec::with_capacity(plan.nodes.len());
        for node in &plan.nodes {
            let mut est = estimate_node(plan, node.id.index(), &ests, external_hints);
            if let Some(acts) = actuals {
                if let Some(a) = acts.get(node.id.index()) {
                    if a.finished {
                        est.rows = a.rows_out as f64;
                    } else {
                        est.rows = est.rows.max(a.rows_out as f64);
                    }
                    let rows = est.rows;
                    for meta in est.cols.values_mut() {
                        meta.distinct = meta.distinct.min(rows.max(1.0));
                    }
                }
            }
            ests.push(est);
        }
        Estimator { ests }
    }

    /// Estimate for one node.
    pub fn node(&self, op: sip_common::OpId) -> &NodeEst {
        &self.ests[op.index()]
    }

    /// All estimates.
    pub fn all(&self) -> &[NodeEst] {
        &self.ests
    }
}

fn estimate_node(
    plan: &PhysPlan,
    idx: usize,
    ests: &[NodeEst],
    external_hints: &FxHashMap<u32, f64>,
) -> NodeEst {
    let node = &plan.nodes[idx];
    match &node.kind {
        PhysKind::Scan {
            table, cols, part, ..
        } => {
            // A hash-partitioned scan ships ~1/dop of the table. Only the
            // partitioning column's *value domain* splits 1/dop (values,
            // not rows, are partitioned); other columns keep their full
            // domain and thin out like any uncorrelated row reduction
            // (Yao, via ColMeta::scaled).
            let frac = part.as_ref().map(|p| 1.0 / p.dop as f64).unwrap_or(1.0);
            let full_rows = table.len() as f64;
            let rows = full_rows * frac;
            let part_col = part.as_ref().map(|p| p.col);
            let mut metas = FxHashMap::default();
            for (out_pos, &base_col) in cols.iter().enumerate() {
                let attr = node.layout[out_pos];
                let stats = &table.meta().column_stats[base_col];
                let full = ColMeta {
                    distinct: stats.distinct.max(1) as f64,
                    min: stats.min.clone(),
                    max: stats.max.clone(),
                };
                let meta = if part_col == Some(out_pos) {
                    ColMeta {
                        distinct: (full.distinct * frac).max(1.0),
                        ..full
                    }
                } else if frac < 1.0 {
                    full.scaled(full_rows, rows)
                } else {
                    full
                };
                metas.insert(attr, meta);
            }
            NodeEst { rows, cols: metas }
        }
        PhysKind::ExternalSource { .. } => {
            let rows = external_hints
                .get(&node.id.0)
                .copied()
                .unwrap_or(DEFAULT_EXTERNAL_ROWS);
            let cols = node
                .layout
                .iter()
                .map(|&a| (a, ColMeta::derived(rows)))
                .collect();
            NodeEst { rows, cols }
        }
        PhysKind::Filter { predicate } => {
            let child = &ests[node.inputs[0].index()];
            let child_layout = &plan.node(node.inputs[0]).layout;
            let sel = expr_selectivity(predicate, child_layout, child);
            let rows = (child.rows * sel).max(0.0);
            let cols = child
                .cols
                .iter()
                .map(|(a, m)| (*a, m.scaled(child.rows, rows)))
                .collect();
            NodeEst { rows, cols }
        }
        PhysKind::Project { exprs } => {
            let child = &ests[node.inputs[0].index()];
            let child_layout = &plan.node(node.inputs[0]).layout;
            let rows = child.rows;
            let mut cols = FxHashMap::default();
            for (i, e) in exprs.iter().enumerate() {
                let attr = node.layout[i];
                match e {
                    Expr::Col(p) => {
                        let src = child_layout[*p];
                        cols.insert(
                            attr,
                            child
                                .cols
                                .get(&src)
                                .cloned()
                                .unwrap_or(ColMeta::derived(rows)),
                        );
                    }
                    _ => {
                        cols.insert(attr, ColMeta::derived(rows));
                    }
                }
            }
            NodeEst { rows, cols }
        }
        PhysKind::HashJoin {
            left_keys,
            right_keys,
            residual,
        } => {
            let l = &ests[node.inputs[0].index()];
            let r = &ests[node.inputs[1].index()];
            let ll = &plan.node(node.inputs[0]).layout;
            let rl = &plan.node(node.inputs[1]).layout;
            let mut sel = 1.0;
            for (&lp, &rp) in left_keys.iter().zip(right_keys.iter()) {
                let dl = l.distinct(ll[lp]);
                let dr = r.distinct(rl[rp]);
                sel *= 1.0 / dl.max(dr).max(1.0);
            }
            let mut rows = (l.rows * r.rows * sel).max(0.0);
            if let Some(res) = residual {
                // Residual evaluated over the concatenated layout; build a
                // merged estimate for selectivity lookup.
                let mut merged = NodeEst {
                    rows,
                    cols: l.cols.clone(),
                };
                merged.cols.extend(r.cols.clone());
                rows *= expr_selectivity(res, &node.layout, &merged);
            }
            let mut cols = FxHashMap::default();
            for (a, m) in l.cols.iter() {
                cols.insert(*a, m.scaled(l.rows * r.rows.max(1.0), rows));
            }
            for (a, m) in r.cols.iter() {
                cols.insert(*a, m.scaled(r.rows * l.rows.max(1.0), rows));
            }
            NodeEst { rows, cols }
        }
        PhysKind::Aggregate { group_cols, .. } => {
            let child = &ests[node.inputs[0].index()];
            let child_layout = &plan.node(node.inputs[0]).layout;
            let mut groups = 1.0f64;
            for &g in group_cols {
                groups *= child.distinct(child_layout[g]);
            }
            let rows = groups
                .min(child.rows)
                .max(if child.rows > 0.0 { 1.0 } else { 0.0 });
            let mut cols = FxHashMap::default();
            for (i, &g) in group_cols.iter().enumerate() {
                let attr = node.layout[i];
                let src = child_layout[g];
                cols.insert(
                    attr,
                    child
                        .cols
                        .get(&src)
                        .cloned()
                        .unwrap_or(ColMeta::derived(rows))
                        .capped(rows),
                );
            }
            for &attr in &node.layout[group_cols.len()..] {
                cols.insert(attr, ColMeta::derived(rows));
            }
            NodeEst { rows, cols }
        }
        PhysKind::Distinct => {
            let child = &ests[node.inputs[0].index()];
            let mut combos = 1.0f64;
            for &a in &node.layout {
                combos *= child.distinct(a);
            }
            let rows = combos.min(child.rows);
            let cols = child
                .cols
                .iter()
                .map(|(a, m)| (*a, m.capped(rows)))
                .collect();
            NodeEst { rows, cols }
        }
        PhysKind::SemiJoin {
            probe_keys,
            build_keys,
        } => {
            let p = &ests[node.inputs[0].index()];
            let b = &ests[node.inputs[1].index()];
            let pl = &plan.node(node.inputs[0]).layout;
            let bl = &plan.node(node.inputs[1]).layout;
            let mut sel = 1.0f64;
            for (&pp, &bp) in probe_keys.iter().zip(build_keys.iter()) {
                let dp = p.distinct(pl[pp]);
                let db = b.distinct(bl[bp]);
                sel *= (db / dp).min(1.0);
            }
            let rows = p.rows * sel;
            let cols = p
                .cols
                .iter()
                .map(|(a, m)| (*a, m.scaled(p.rows, rows)))
                .collect();
            NodeEst { rows, cols }
        }
        PhysKind::ShuffleWrite { .. } => {
            // A writer forwards every input row (over the mesh); its tree
            // output is empty but its row counters see the full stream.
            ests[node.inputs[0].index()].clone()
        }
        PhysKind::ShuffleRead { mesh, dop, .. } => {
            // Each reader owns 1/dop of the mesh's total rows, which is
            // the sum over the mesh's writers (all of which precede every
            // reader in arena order, so their estimates exist). A salted
            // broadcast mesh replicates its hot share to *every* reader,
            // so each reader holds `cold/dop + hot` of the stream (the
            // all-hot fallback degenerates to the full stream).
            let mut total = 0.0f64;
            let mut broadcast_hot = 0.0f64;
            let mut cols: FxHashMap<sip_common::AttrId, ColMeta> = FxHashMap::default();
            for w in &plan.nodes {
                if let PhysKind::ShuffleWrite { mesh: m, salt, .. } = &w.kind {
                    if m == mesh {
                        let west = &ests[w.id.index()];
                        total += west.rows;
                        if let Some(s) = salt {
                            if s.role == sip_engine::SaltRole::Broadcast {
                                broadcast_hot = broadcast_hot.max(s.hot_coverage.clamp(0.0, 1.0));
                            }
                        }
                        for (a, meta) in west.cols.iter() {
                            cols.entry(*a).or_insert_with(|| meta.clone());
                        }
                    }
                }
            }
            let rows = total * ((1.0 - broadcast_hot) / (*dop).max(1) as f64 + broadcast_hot);
            let cols = cols
                .into_iter()
                .map(|(a, m)| (a, m.scaled(total.max(1.0), rows)))
                .collect();
            NodeEst { rows, cols }
        }
        PhysKind::Exchange { dop, .. } => {
            // A hash repartition keeps 1/dop of the rows (and of the key
            // values — partitioning splits the value domain).
            let child = &ests[node.inputs[0].index()];
            let frac = 1.0 / (*dop).max(1) as f64;
            let rows = child.rows * frac;
            let cols = child
                .cols
                .iter()
                .map(|(a, m)| (*a, m.scaled(child.rows, rows)))
                .collect();
            NodeEst { rows, cols }
        }
        PhysKind::Merge => {
            // Union of partition streams: rows add. Distinct counts add
            // only for the partitioning column (whose value domain is
            // split); lacking that knowledge here, summing capped by total
            // rows keeps every column inside the sound
            // [max(children), min(sum, rows)] interval. Min/max envelopes
            // widen to cover every child.
            let mut rows = 0.0;
            let mut cols: FxHashMap<sip_common::AttrId, ColMeta> = FxHashMap::default();
            for &c in &node.inputs {
                let child = &ests[c.index()];
                rows += child.rows;
                for (a, m) in child.cols.iter() {
                    cols.entry(*a)
                        .and_modify(|acc| {
                            acc.distinct += m.distinct;
                            acc.min = match (acc.min.take(), m.min.clone()) {
                                (Some(x), Some(y)) => Some(if y < x { y } else { x }),
                                _ => None,
                            };
                            acc.max = match (acc.max.take(), m.max.clone()) {
                                (Some(x), Some(y)) => Some(if y > x { y } else { x }),
                                _ => None,
                            };
                        })
                        .or_insert_with(|| m.clone());
                }
            }
            for meta in cols.values_mut() {
                meta.distinct = meta.distinct.min(rows.max(1.0));
            }
            NodeEst { rows, cols }
        }
    }
}

/// Heuristic selectivity of a bound predicate, given the host layout and
/// the input estimate.
pub fn expr_selectivity(e: &Expr, layout: &[AttrId], est: &NodeEst) -> f64 {
    match e {
        Expr::And(l, r) => expr_selectivity(l, layout, est) * expr_selectivity(r, layout, est),
        Expr::Or(l, r) => {
            let a = expr_selectivity(l, layout, est);
            let b = expr_selectivity(r, layout, est);
            (a + b - a * b).clamp(0.0, 1.0)
        }
        Expr::Not(x) => 1.0 - expr_selectivity(x, layout, est),
        Expr::Like(inner, pattern) => {
            if let Expr::Col(_) = inner.as_ref() {
                if !pattern.contains('%') && !pattern.contains('_') {
                    return eq_sel_of(inner, layout, est);
                }
            }
            DEFAULT_LIKE_SEL
        }
        Expr::Cmp(l, op, r) => cmp_selectivity(l, *op, r, layout, est),
        // A bare boolean column/expression.
        _ => 0.5,
    }
}

fn eq_sel_of(col: &Expr, layout: &[AttrId], est: &NodeEst) -> f64 {
    if let Expr::Col(p) = col {
        let d = est.distinct(layout[*p]);
        return (1.0 / d).min(1.0);
    }
    DEFAULT_EQ_SEL
}

fn cmp_selectivity(l: &Expr, op: CmpOp, r: &Expr, layout: &[AttrId], est: &NodeEst) -> f64 {
    // Normalize to column-op-literal when possible.
    let (p, op, v) = match (l, r) {
        (Expr::Col(p), Expr::Lit(v)) => (p, op, v),
        (Expr::Lit(v), Expr::Col(p)) => (p, op.flip(), v),
        (Expr::Col(cl), Expr::Col(cr)) => {
            return if op == CmpOp::Eq {
                let dl = est.distinct(layout[*cl]);
                let dr = est.distinct(layout[*cr]);
                (1.0 / dl.max(dr)).min(1.0)
            } else {
                DEFAULT_RANGE_SEL
            };
        }
        _ => {
            return match op {
                CmpOp::Eq => DEFAULT_EQ_SEL,
                CmpOp::Ne => 1.0 - DEFAULT_EQ_SEL,
                _ => DEFAULT_RANGE_SEL,
            }
        }
    };
    let attr = layout[*p];
    let meta = est.cols.get(&attr);
    match op {
        CmpOp::Eq => meta
            .map(|m| (1.0 / m.distinct.max(1.0)).min(1.0))
            .unwrap_or(DEFAULT_EQ_SEL),
        CmpOp::Ne => meta
            .map(|m| 1.0 - (1.0 / m.distinct.max(1.0)).min(1.0))
            .unwrap_or(1.0 - DEFAULT_EQ_SEL),
        CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
            if let Some(m) = meta {
                if let (Some(min), Some(max)) = (&m.min, &m.max) {
                    if let Some(frac) = range_fraction(min, max, v) {
                        return match op {
                            CmpOp::Lt | CmpOp::Le => frac,
                            _ => 1.0 - frac,
                        }
                        .clamp(0.0, 1.0);
                    }
                }
            }
            DEFAULT_RANGE_SEL
        }
    }
}

/// Fraction of the [min, max] interval below `v` (uniformity assumption).
fn range_fraction(min: &Value, max: &Value, v: &Value) -> Option<f64> {
    let to_f = |x: &Value| -> Option<f64> {
        match x {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Date(d) => Some(d.days() as f64),
            _ => None,
        }
    };
    let (lo, hi, x) = (to_f(min)?, to_f(max)?, to_f(v)?);
    if hi <= lo {
        return Some(if x >= hi { 1.0 } else { 0.0 });
    }
    Some(((x - lo) / (hi - lo)).clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sip_data::{generate, Catalog, TpchConfig};
    use sip_engine::lower;
    use sip_expr::AggFunc;
    use sip_plan::QueryBuilder;

    fn catalog() -> Catalog {
        generate(&TpchConfig {
            scale_factor: 0.005,
            seed: 5,
            zipf_z: 0.0,
        })
        .unwrap()
    }

    fn plan_with_filter(c: &Catalog) -> PhysPlan {
        let mut q = QueryBuilder::new(c);
        let p = q.scan("part", "p", &["p_partkey", "p_size"]).unwrap();
        let pred = p.col("p_size").unwrap().eq(Expr::lit(1i64));
        let p = q.filter(p, pred);
        let ps = q.scan("partsupp", "ps", &["ps_partkey"]).unwrap();
        let j = q.join(p, ps, &[("p.p_partkey", "ps.ps_partkey")]).unwrap();
        let plan = j.into_plan();
        lower(&plan, q.into_attrs(), c).unwrap()
    }

    #[test]
    fn scan_estimates_match_stats() {
        let c = catalog();
        let plan = plan_with_filter(&c);
        let est = Estimator::estimate(&plan);
        let scan = &plan.nodes[0];
        let n_parts = c.get("part").unwrap().len() as f64;
        assert_eq!(est.node(scan.id).rows, n_parts);
        // partkey is a key: distinct == rows.
        let pk = scan.layout[0];
        assert_eq!(est.node(scan.id).distinct(pk), n_parts);
    }

    #[test]
    fn equality_filter_uses_distinct() {
        let c = catalog();
        let plan = plan_with_filter(&c);
        let est = Estimator::estimate(&plan);
        let filter = plan
            .nodes
            .iter()
            .find(|n| matches!(n.kind, PhysKind::Filter { .. }))
            .unwrap();
        let scan_est = est.node(plan.node(filter.id).inputs[0]).rows;
        let d_size = c
            .get("part")
            .unwrap()
            .distinct(c.get("part").unwrap().schema().index_of("p_size").unwrap())
            as f64;
        let expected = scan_est / d_size;
        let got = est.node(filter.id).rows;
        assert!((got - expected).abs() < 1e-6, "{got} vs {expected}");
    }

    #[test]
    fn fk_join_estimates_child_rows() {
        // part ⋈ partsupp on partkey: |partsupp| rows expected (before the
        // size filter); with the filter, scaled by its selectivity.
        let c = catalog();
        let plan = plan_with_filter(&c);
        let est = Estimator::estimate(&plan);
        let join = plan
            .nodes
            .iter()
            .find(|n| matches!(n.kind, PhysKind::HashJoin { .. }))
            .unwrap();
        let filtered_parts = est.node(plan.node(join.id).inputs[0]).rows;
        let partsupp = c.get("partsupp").unwrap().len() as f64;
        let n_parts = c.get("part").unwrap().len() as f64;
        let expected = filtered_parts * partsupp / n_parts;
        let got = est.node(join.id).rows;
        assert!(
            (got / expected - 1.0).abs() < 0.05,
            "{got} vs expected {expected}"
        );
    }

    #[test]
    fn aggregate_groups_bounded_by_distinct() {
        let c = catalog();
        let mut q = QueryBuilder::new(&c);
        let ps = q
            .scan("partsupp", "ps", &["ps_partkey", "ps_availqty"])
            .unwrap();
        let qty = ps.col("ps_availqty").unwrap();
        let agg = q
            .aggregate(ps, &["ps_partkey"], &[(AggFunc::Sum, qty, "avail")])
            .unwrap();
        let plan = lower(agg.plan(), q.attrs().clone(), &c).unwrap();
        let est = Estimator::estimate(&plan);
        let n_parts = c.get("part").unwrap().len() as f64;
        let got = est.node(plan.root).rows;
        assert!((got - n_parts).abs() < 1.0, "{got} vs {n_parts}");
    }

    #[test]
    fn range_fraction_interpolates() {
        let f = range_fraction(&Value::Int(0), &Value::Int(100), &Value::Int(25)).unwrap();
        assert!((f - 0.25).abs() < 1e-9);
        let d1 = Value::Date(sip_common::Date::parse("1992-01-01").unwrap());
        let d2 = Value::Date(sip_common::Date::parse("1996-01-01").unwrap());
        let dm = Value::Date(sip_common::Date::parse("1994-01-01").unwrap());
        let f = range_fraction(&d1, &d2, &dm).unwrap();
        assert!((0.4..0.6).contains(&f));
        assert!(range_fraction(&Value::str("a"), &Value::str("z"), &Value::str("m")).is_none());
    }

    #[test]
    fn actuals_override_when_finished() {
        let c = catalog();
        let plan = plan_with_filter(&c);
        let mut actuals = vec![RuntimeActual::default(); plan.nodes.len()];
        actuals[0] = RuntimeActual {
            rows_out: 7,
            finished: true,
        };
        let est = Estimator::estimate_with_actuals(&plan, &actuals);
        assert_eq!(est.node(plan.nodes[0].id).rows, 7.0);
        // Unfinished nodes take max(estimate, observed).
        actuals[0].finished = false;
        actuals[0].rows_out = 1_000_000;
        let est = Estimator::estimate_with_actuals(&plan, &actuals);
        assert_eq!(est.node(plan.nodes[0].id).rows, 1_000_000.0);
    }

    #[test]
    fn like_and_default_selectivities() {
        let c = catalog();
        let plan = plan_with_filter(&c);
        let est = Estimator::estimate(&plan);
        let scan = &plan.nodes[0];
        let e = Expr::Col(1).like("%TIN");
        let s = expr_selectivity(&e, &scan.layout, est.node(scan.id));
        assert!((s - DEFAULT_LIKE_SEL).abs() < 1e-9);
        let and = Expr::Col(1)
            .gt(Expr::lit(10i64))
            .and(Expr::Col(1).le(Expr::lit(20i64)));
        let s = expr_selectivity(&and, &scan.layout, est.node(scan.id));
        assert!(s > 0.0 && s < 1.0);
    }
}
