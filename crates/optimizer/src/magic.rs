//! Magic-sets rewriting — the comparison baseline of §VI.
//!
//! Follows the paper's adaptation of Seshadri et al. \[18\] with the same two
//! search-space heuristics: "(1) the filter set is computed from the entire
//! outer query, and (2) the filter set contains the largest number of
//! attributes that can be joined." The rewrite is fully pipelined: the
//! filter set is a plan fragment executed simultaneously with the outer
//! query and the subquery, feeding the build side of a pipelined
//! [`LogicalPlan::SemiJoin`] inserted below each aggregate block.
//!
//! Correctness: the magic set is always a *superset* of the keys the outer
//! block can produce (predicates that cannot be evaluated in the stripped
//! outer core are dropped, never invented), so the semijoin can only remove
//! subquery rows that provably cannot join — exactly the argument of the
//! paper's §III-B, applied statically.

use sip_common::AttrId;
use sip_plan::LogicalPlan;

/// Result of a magic rewrite.
#[derive(Debug)]
pub struct MagicRewrite {
    /// The rewritten plan (identical to the input when no aggregate
    /// subquery blocks exist).
    pub plan: LogicalPlan,
    /// Number of semijoins inserted.
    pub blocks_rewritten: usize,
}

/// Apply magic-sets rewriting to a decorrelated plan.
pub fn magic_rewrite(plan: &LogicalPlan) -> MagicRewrite {
    // The outer core: the plan with every aggregate block removed.
    let outer_core = strip_blocks(plan);
    let mut count = 0usize;
    let rewritten = rewrite_node(plan, outer_core.as_ref(), &mut count);
    MagicRewrite {
        plan: rewritten,
        blocks_rewritten: count,
    }
}

/// Is this subtree an aggregate block (an Aggregate, possibly under
/// stateless wrappers)?
fn is_agg_block(p: &LogicalPlan) -> bool {
    match p {
        LogicalPlan::Aggregate { .. } => true,
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Distinct { input } => is_agg_block(input),
        _ => false,
    }
}

/// Remove aggregate blocks (and any predicate that can no longer be
/// evaluated), returning the raw outer join tree. Projections and
/// distincts are dropped so correlation keys stay visible; dropping
/// restrictions only widens the magic set, which is safe.
fn strip_blocks(p: &LogicalPlan) -> Option<LogicalPlan> {
    match p {
        LogicalPlan::Scan { .. } => Some(p.clone()),
        LogicalPlan::Filter { input, predicate } => {
            let inner = strip_blocks(input)?;
            let avail = inner.output_attrs();
            if predicate.attrs().iter().all(|a| avail.contains(a)) {
                Some(LogicalPlan::Filter {
                    input: Box::new(inner),
                    predicate: predicate.clone(),
                })
            } else {
                Some(inner)
            }
        }
        LogicalPlan::Project { input, .. } | LogicalPlan::Distinct { input } => strip_blocks(input),
        // Aggregates reached here are *outer* aggregates (true subquery
        // blocks are cut off at their parent join and never recursed into);
        // strip through to the raw join tree beneath.
        LogicalPlan::Aggregate { input, .. } => strip_blocks(input),
        LogicalPlan::SemiJoin { probe, .. } => strip_blocks(probe),
        LogicalPlan::Join {
            left,
            right,
            keys,
            residual,
        } => {
            let l = if is_agg_block(left) {
                None
            } else {
                strip_blocks(left)
            };
            let r = if is_agg_block(right) {
                None
            } else {
                strip_blocks(right)
            };
            match (l, r) {
                (Some(l), Some(r)) => {
                    let la = l.output_attrs();
                    let ra = r.output_attrs();
                    let keys: Vec<(AttrId, AttrId)> = keys
                        .iter()
                        .copied()
                        .filter(|&(a, b)| la.contains(&a) && ra.contains(&b))
                        .collect();
                    if keys.is_empty() {
                        // No usable equi-key between survivors; keep the
                        // larger side (a superset-producing choice).
                        return Some(l);
                    }
                    let residual = residual
                        .as_ref()
                        .filter(|e| e.attrs().iter().all(|a| la.contains(a) || ra.contains(a)));
                    Some(LogicalPlan::Join {
                        left: Box::new(l),
                        right: Box::new(r),
                        keys,
                        residual: residual.cloned(),
                    })
                }
                (Some(x), None) | (None, Some(x)) => Some(x),
                (None, None) => None,
            }
        }
    }
}

/// Rebuild the plan, inserting a semijoin below each aggregate block that
/// is joined to the rest of the query.
fn rewrite_node(
    p: &LogicalPlan,
    outer_core: Option<&LogicalPlan>,
    count: &mut usize,
) -> LogicalPlan {
    match p {
        LogicalPlan::Join {
            left,
            right,
            keys,
            residual,
        } => {
            let new_left = rewrite_side(left, keys, true, outer_core, count);
            let new_right = rewrite_side(right, keys, false, outer_core, count);
            LogicalPlan::Join {
                left: Box::new(new_left),
                right: Box::new(new_right),
                keys: keys.clone(),
                residual: residual.clone(),
            }
        }
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(rewrite_node(input, outer_core, count)),
            predicate: predicate.clone(),
        },
        LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
            input: Box::new(rewrite_node(input, outer_core, count)),
            exprs: exprs.clone(),
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(rewrite_node(input, outer_core, count)),
        },
        // Descend through a top-level aggregate (it is the *outer* block,
        // not a subquery block — blocks are only ever join inputs).
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => LogicalPlan::Aggregate {
            input: Box::new(rewrite_node(input, outer_core, count)),
            group_by: group_by.clone(),
            aggs: aggs.clone(),
        },
        other => other.clone(),
    }
}

fn rewrite_side(
    side: &LogicalPlan,
    join_keys: &[(AttrId, AttrId)],
    side_is_left: bool,
    outer_core: Option<&LogicalPlan>,
    count: &mut usize,
) -> LogicalPlan {
    if !is_agg_block(side) {
        return rewrite_node(side, outer_core, count);
    }
    let Some(core) = outer_core else {
        return side.clone();
    };
    let core_attrs = core.output_attrs();
    // Correlation pairs: (attr inside the block, attr in the outer core).
    // Heuristic (2): take every join key that can be bound on both sides.
    let side_attrs = side.output_attrs();
    let mut pairs: Vec<(AttrId, AttrId)> = Vec::new();
    for &(l, r) in join_keys {
        let (inner, outer) = if side_is_left { (l, r) } else { (r, l) };
        if side_attrs.contains(&inner) && core_attrs.contains(&outer) {
            pairs.push((inner, outer));
        }
    }
    if pairs.is_empty() {
        return side.clone();
    }
    match insert_semijoin(side, &pairs, core) {
        Some(rewritten) => {
            *count += 1;
            rewritten
        }
        None => side.clone(),
    }
}

/// Insert `SemiJoin(input, magic)` below the block's Aggregate. The magic
/// set is `Distinct(Project(outer_core, outer attrs))`.
fn insert_semijoin(
    block: &LogicalPlan,
    pairs: &[(AttrId, AttrId)],
    core: &LogicalPlan,
) -> Option<LogicalPlan> {
    match block {
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            // The correlation attr must be visible in the aggregate input
            // (group keys preserve identity, so it is).
            let input_attrs = input.output_attrs();
            let usable: Vec<(AttrId, AttrId)> = pairs
                .iter()
                .copied()
                .filter(|(inner, _)| input_attrs.contains(inner))
                .collect();
            if usable.is_empty() {
                return None;
            }
            let magic = LogicalPlan::Distinct {
                input: Box::new(LogicalPlan::Project {
                    input: Box::new(core.clone()),
                    exprs: usable
                        .iter()
                        .map(|&(_, outer)| (sip_expr::Expr::attr(outer), outer))
                        .collect(),
                }),
            };
            Some(LogicalPlan::Aggregate {
                input: Box::new(LogicalPlan::SemiJoin {
                    probe: input.clone(),
                    build: Box::new(magic),
                    keys: usable,
                }),
                group_by: group_by.clone(),
                aggs: aggs.clone(),
            })
        }
        LogicalPlan::Filter { input, predicate } => Some(LogicalPlan::Filter {
            input: Box::new(insert_semijoin(input, pairs, core)?),
            predicate: predicate.clone(),
        }),
        LogicalPlan::Project { input, exprs } => Some(LogicalPlan::Project {
            input: Box::new(insert_semijoin(input, pairs, core)?),
            exprs: exprs.clone(),
        }),
        LogicalPlan::Distinct { input } => Some(LogicalPlan::Distinct {
            input: Box::new(insert_semijoin(input, pairs, core)?),
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sip_data::{generate, Catalog, TpchConfig};
    use sip_engine::{canonical, execute_oracle, lower};
    use sip_expr::{AggFunc, CmpOp, Expr};
    use sip_plan::QueryBuilder;

    fn catalog() -> Catalog {
        generate(&TpchConfig {
            scale_factor: 0.005,
            seed: 9,
            zipf_z: 0.0,
        })
        .unwrap()
    }

    /// TPC-H 17 shape: part(σ) ⋈ lineitem ⋈ (avg qty per part), qty < 0.2avg.
    fn q17_shape(c: &Catalog) -> (LogicalPlan, sip_plan::AttrCatalog) {
        let mut q = QueryBuilder::new(c);
        let p = q.scan("part", "p", &["p_partkey", "p_brand"]).unwrap();
        let pred = p.col("p_brand").unwrap().eq(Expr::lit("Brand#34"));
        let p = q.filter(p, pred);
        let l = q
            .scan(
                "lineitem",
                "l",
                &["l_partkey", "l_quantity", "l_extendedprice"],
            )
            .unwrap();
        let pl = q.join(p, l, &[("p.p_partkey", "l.l_partkey")]).unwrap();
        let l2 = q
            .scan("lineitem", "l2", &["l_partkey", "l_quantity"])
            .unwrap();
        let qty2 = l2.col("l_quantity").unwrap();
        let avg = q
            .aggregate(l2, &["l_partkey"], &[(AggFunc::Avg, qty2, "avg_qty")])
            .unwrap();
        let residual = pl.col("l.l_quantity").unwrap().cmp(
            CmpOp::Lt,
            Expr::lit(0.2f64).mul(avg.col("avg_qty").unwrap()),
        );
        let joined = q
            .join_residual(pl, avg, &[("p.p_partkey", "l2.l_partkey")], Some(residual))
            .unwrap();
        let eprice = joined.col("l.l_extendedprice").unwrap();
        let total = q
            .aggregate(joined, &[], &[(AggFunc::Sum, eprice, "total")])
            .unwrap();
        (total.into_plan(), q.into_attrs())
    }

    #[test]
    fn rewrite_inserts_semijoin_for_q17_shape() {
        let c = catalog();
        let (plan, _attrs) = q17_shape(&c);
        let rw = magic_rewrite(&plan);
        assert_eq!(rw.blocks_rewritten, 1);
        let mut semijoins = 0;
        rw.plan.walk(&mut |n| {
            if matches!(n, LogicalPlan::SemiJoin { .. }) {
                semijoins += 1;
            }
        });
        assert_eq!(semijoins, 1);
        rw.plan.validate().unwrap();
    }

    #[test]
    fn rewrite_preserves_results() {
        let c = catalog();
        let (plan, attrs) = q17_shape(&c);
        let baseline = lower(&plan, attrs.clone(), &c).unwrap();
        let rw = magic_rewrite(&plan);
        let magic = lower(&rw.plan, attrs, &c).unwrap();
        let a = canonical(&execute_oracle(&baseline).unwrap());
        let b = canonical(&execute_oracle(&magic).unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn no_blocks_means_identity() {
        let c = catalog();
        let mut q = QueryBuilder::new(&c);
        let p = q.scan("part", "p", &["p_partkey"]).unwrap();
        let ps = q.scan("partsupp", "ps", &["ps_partkey"]).unwrap();
        let j = q.join(p, ps, &[("p.p_partkey", "ps.ps_partkey")]).unwrap();
        let plan = j.into_plan();
        let rw = magic_rewrite(&plan);
        assert_eq!(rw.blocks_rewritten, 0);
        rw.plan.validate().unwrap();
    }

    #[test]
    fn magic_set_respects_outer_filters() {
        // The magic set fragment must include the outer filter on p_brand —
        // check the rewritten plan contains two brand filters (original +
        // magic copy).
        let c = catalog();
        let (plan, _) = q17_shape(&c);
        let rw = magic_rewrite(&plan);
        let mut brand_filters = 0;
        rw.plan.walk(&mut |n| {
            if let LogicalPlan::Filter { predicate, .. } = n {
                if format!("{predicate}").contains("Brand#34") {
                    brand_filters += 1;
                }
            }
        });
        assert_eq!(brand_filters, 2, "{}", rw.blocks_rewritten);
    }
}
