//! The cost model the AIP manager consults at runtime.
//!
//! Costs are in abstract work units (≈ microseconds of CPU on the reference
//! machine); only *ratios* matter for the decisions `ESTIMATEBENEFIT` makes.
//! Network terms use the paper's assumption set: filters are shipped as raw
//! Bloom-filter bytes over a link of configured bandwidth (§V-B: "we simply
//! estimate the cost of shipping n bytes").

/// Tunable cost constants.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Cost to move one row through a stateless operator.
    pub cpu_row: f64,
    /// Cost to insert one row into a hash table.
    pub cpu_build: f64,
    /// Cost to probe a hash table once.
    pub cpu_probe: f64,
    /// Cost to emit one join output row.
    pub cpu_output: f64,
    /// Cost to probe one row against one AIP filter.
    pub aip_probe: f64,
    /// Cost to insert one key while building an AIP set.
    pub aip_insert: f64,
    /// Cost to scan one buffered state row when constructing an AIP set.
    pub state_scan: f64,
    /// Link bandwidth for shipping filters, bytes per cost unit.
    pub net_bytes_per_unit: f64,
    /// Fixed per-message network latency, in cost units.
    pub net_latency: f64,
    /// Cost to hash-route one row across a shuffle mesh (hash + channel
    /// hop). Used by `sip-parallel` to price mid-plan repartitioning
    /// against its serial fallback.
    pub cpu_shuffle_row: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            cpu_row: 1.0,
            cpu_build: 2.0,
            cpu_probe: 1.0,
            cpu_output: 0.5,
            aip_probe: 0.4,
            aip_insert: 0.5,
            state_scan: 0.3,
            // 10 Mbps (the paper's default WAN assumption) expressed as
            // bytes per microsecond-equivalent unit: 1.25 bytes/unit.
            net_bytes_per_unit: 1.25,
            net_latency: 20_000.0,
            cpu_shuffle_row: 0.8,
        }
    }
}

impl CostModel {
    /// A model with network parameters for a given bandwidth in Mbps.
    pub fn with_bandwidth_mbps(mut self, mbps: f64) -> Self {
        self.net_bytes_per_unit = mbps * 1_000_000.0 / 8.0 / 1_000_000.0;
        self
    }

    /// Cost of a symmetric hash join processing `left` and `right` input
    /// rows and emitting `out` rows: both sides build + probe.
    pub fn join_cost(&self, left: f64, right: f64, out: f64) -> f64 {
        (self.cpu_build + self.cpu_probe) * (left.max(0.0) + right.max(0.0))
            + self.cpu_output * out.max(0.0)
    }

    /// Cost of hash aggregation over `rows` inputs.
    pub fn agg_cost(&self, rows: f64) -> f64 {
        (self.cpu_build + self.cpu_probe) * rows.max(0.0)
    }

    /// Cost of constructing an AIP set by scanning `state_rows` buffered
    /// rows and inserting their keys (Fig. 4 line 2, `createCost`).
    pub fn aip_create_cost(&self, state_rows: f64) -> f64 {
        (self.state_scan + self.aip_insert) * state_rows.max(0.0)
    }

    /// Cost of probing `rows` against one injected filter.
    pub fn aip_filter_cost(&self, rows: f64) -> f64 {
        self.aip_probe * rows.max(0.0)
    }

    /// Cost of shipping `bytes` over the configured link.
    pub fn ship_cost(&self, bytes: f64) -> f64 {
        self.net_latency + bytes.max(0.0) / self.net_bytes_per_unit
    }

    /// Cost of hash-routing `rows` through a shuffle mesh.
    pub fn shuffle_cost(&self, rows: f64) -> f64 {
        self.cpu_shuffle_row * rows.max(0.0)
    }

    /// Should a non-co-partitioned join repartition (`moved` rows through
    /// shuffle meshes, then a `dop`-way parallel join) rather than fall
    /// back to a serial join above a merge? Compares per-worker critical
    /// path: the parallel join does 1/dop of the build/probe work but pays
    /// the mesh hop for every moved row. Assumes uniform keys; skewed
    /// streams should use [`CostModel::repartition_wins_skewed`].
    pub fn repartition_wins(&self, left: f64, right: f64, out: f64, moved: f64, dop: u32) -> bool {
        self.repartition_wins_skewed(left, right, out, moved, dop, 1.0)
    }

    /// Critical-path multiplier of hash-partitioning a stream whose
    /// hottest key holds `hot_frac` of the rows: every row of that key
    /// lands on one worker, so the slowest partition processes at least
    /// `max(1/dop, hot_frac)` of the stream — `skew_factor` is that share
    /// relative to the uniform `1/dop`. 1.0 = perfectly splittable.
    pub fn skew_factor(&self, hot_frac: f64, dop: u32) -> f64 {
        let d = dop.max(1) as f64;
        (hot_frac.clamp(0.0, 1.0) * d).max(1.0)
    }

    /// [`CostModel::repartition_wins`] with the uniform-keys assumption
    /// removed: `skew` (≥ 1, from [`CostModel::skew_factor`]) inflates the
    /// parallel join's per-worker share, so a Zipf-hot key that would pile
    /// onto one reader makes the serial fallback (or a salted plan) win
    /// where the uniform model would shuffle and stall.
    pub fn repartition_wins_skewed(
        &self,
        left: f64,
        right: f64,
        out: f64,
        moved: f64,
        dop: u32,
        skew: f64,
    ) -> bool {
        let d = (dop.max(1)) as f64;
        let sf = skew.max(1.0);
        let serial = self.join_cost(left, right, out);
        let parallel = self.join_cost(left * sf / d, right * sf / d, out * sf / d)
            + self.shuffle_cost(moved / d);
        parallel < serial
    }

    /// Should a skewed join salt its hot keys — deal the scatter side's
    /// hot rows round-robin and replicate the matching build rows to every
    /// partition — instead of hash-shuffling and eating the skew? Both
    /// plans are `dop`-way parallel; the salted one pays `extra_moved`
    /// additional mesh-hop rows (the previously aligned side now crosses a
    /// mesh too) and each worker builds the full hot slice of the build
    /// side, but its per-worker share drops from the skewed
    /// `skew_factor/dop` back to `1/dop`.
    pub fn salting_wins(
        &self,
        scatter: f64,
        build: f64,
        out: f64,
        extra_moved: f64,
        dop: u32,
        hot_frac: f64,
    ) -> bool {
        let d = (dop.max(1)) as f64;
        let h = hot_frac.clamp(0.0, 1.0);
        let sf = self.skew_factor(h, dop);
        let unsalted = self.join_cost(scatter * sf / d, build * sf / d, out * sf / d);
        // Per worker: a fair share of the scatter side, the cold build
        // share plus every hot build row (replicated), a fair output
        // share, and the extra mesh hops.
        let salted_build = build * ((1.0 - h) / d + h);
        let salted =
            self.join_cost(scatter / d, salted_build, out / d) + self.shuffle_cost(extra_moved / d);
        salted < unsalted
    }

    /// Pathological all-hot fallback: replicate the *entire* build side to
    /// every partition and deal the probe side round-robin. Wins over the
    /// skewed hash plan when the build is small enough that `dop` copies
    /// cost less than the skew-stalled critical path.
    pub fn replicated_build_wins(
        &self,
        scatter: f64,
        build: f64,
        out: f64,
        dop: u32,
        hot_frac: f64,
    ) -> bool {
        let d = (dop.max(1)) as f64;
        let sf = self.skew_factor(hot_frac, dop);
        let unsalted = self.join_cost(scatter * sf / d, build * sf / d, out * sf / d);
        let replicated = self.join_cost(scatter / d, build, out / d)
            + self.shuffle_cost((scatter + build * d) / d);
        replicated < unsalted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_cost_monotone_in_inputs() {
        let m = CostModel::default();
        assert!(m.join_cost(100.0, 100.0, 10.0) < m.join_cost(1000.0, 100.0, 10.0));
        assert!(m.join_cost(100.0, 100.0, 10.0) < m.join_cost(100.0, 100.0, 1000.0));
    }

    #[test]
    fn filtering_a_join_input_saves_cost() {
        // The core inequality behind ESTIMATEBENEFIT: COST(n ⋈ n') >
        // COST((n < A) ⋈ n') when the filter is selective.
        let m = CostModel::default();
        let full = m.join_cost(10_000.0, 500.0, 2_000.0);
        let filtered = m.join_cost(1_000.0, 500.0, 2_000.0) + m.aip_filter_cost(10_000.0);
        assert!(filtered < full, "{filtered} vs {full}");
    }

    #[test]
    fn unselective_filter_does_not_pay() {
        let m = CostModel::default();
        let full = m.join_cost(10_000.0, 500.0, 2_000.0);
        // Filter keeps 99.5% of rows: benefit below probe overhead.
        let filtered = m.join_cost(9_950.0, 500.0, 2_000.0) + m.aip_filter_cost(10_000.0);
        assert!(filtered > full - m.aip_create_cost(500.0));
    }

    #[test]
    fn ship_cost_scales_with_bytes_and_bandwidth() {
        let slow = CostModel::default().with_bandwidth_mbps(10.0);
        let fast = CostModel::default().with_bandwidth_mbps(100.0);
        let bytes = 100_000.0;
        assert!(slow.ship_cost(bytes) > fast.ship_cost(bytes));
        assert!(slow.ship_cost(bytes) > slow.ship_cost(0.0));
    }

    #[test]
    fn negative_inputs_clamped() {
        let m = CostModel::default();
        assert_eq!(m.join_cost(-5.0, -5.0, -5.0), 0.0);
        assert_eq!(m.aip_create_cost(-1.0), 0.0);
    }

    #[test]
    fn skew_factor_tracks_hot_share() {
        let m = CostModel::default();
        // Uniform keys: splitting is perfect.
        assert_eq!(m.skew_factor(0.0, 4), 1.0);
        assert_eq!(m.skew_factor(0.25, 4), 1.0);
        // A 50%-hot key at dop 4 doubles the critical path.
        assert!((m.skew_factor(0.5, 4) - 2.0).abs() < 1e-9);
        // Everything-hot collapses to serial (dop× the fair share).
        assert!((m.skew_factor(1.0, 4) - 4.0).abs() < 1e-9);
        assert_eq!(m.skew_factor(2.0, 4), 4.0); // clamped
    }

    #[test]
    fn skew_disables_repartition_where_uniform_allows_it() {
        let m = CostModel::default();
        let (l, r, out, moved) = (1e5, 1e5, 1e5, 1e5);
        assert!(m.repartition_wins(l, r, out, moved, 4));
        // A fully hot key leaves no parallelism to win: the skewed model
        // must reject what the uniform model accepts.
        assert!(!m.repartition_wins_skewed(l, r, out, moved, 4, m.skew_factor(1.0, 4)));
        // repartition_wins == skew factor 1.
        assert_eq!(
            m.repartition_wins(l, r, out, moved, 4),
            m.repartition_wins_skewed(l, r, out, moved, 4, 1.0)
        );
    }

    #[test]
    fn salting_pays_on_hot_keys_with_small_builds() {
        let m = CostModel::default();
        // Hot probe key, small build side: salting levels the skew for
        // the cost of replicating a few build rows.
        assert!(m.salting_wins(1e6, 1e3, 1e6, 2e6, 4, 0.4));
        // Uniform keys: no skew to fix, salting is pure overhead.
        assert!(!m.salting_wins(1e6, 1e3, 1e6, 2e6, 4, 0.0));
        // Huge build side: replicating its hot rows costs more than the
        // mild skew it cures.
        assert!(!m.salting_wins(1e4, 1e7, 1e4, 2e7, 4, 0.3));
    }

    #[test]
    fn replicated_build_fallback_needs_small_build_and_heavy_skew() {
        let m = CostModel::default();
        assert!(m.replicated_build_wins(1e6, 1e3, 1e6, 4, 0.9));
        assert!(!m.replicated_build_wins(1e6, 1e3, 1e6, 4, 0.0));
        assert!(!m.replicated_build_wins(1e4, 1e6, 1e4, 4, 0.9));
    }
}
