#![warn(missing_docs)]
//! # sip-optimizer
//!
//! The optimizer services AIP consumes at runtime, modeled on Tukwila's
//! (§V-A): histogram-free cardinality estimation from row counts, key/FK
//! metadata and uniformity assumptions ([`stats::Estimator`], including the
//! `UPDATEESTIMATES` runtime re-derivation), an abstract cost model
//! ([`cost::CostModel`]), and the magic-sets rewriting baseline
//! ([`magic::magic_rewrite`]).
//!
//! "The Tukwila optimizer and its sub-components can be invoked at any time
//! during execution" — here, estimation is a pure function of the plan plus
//! live counters, so the cost-based AIP manager can re-run it on every
//! completion event.

pub mod cost;
pub mod magic;
pub mod stats;

pub use cost::CostModel;
pub use magic::{magic_rewrite, MagicRewrite};
pub use stats::{expr_selectivity, ColMeta, Estimator, NodeEst, RuntimeActual};
