//! Estimator sanity against ground truth: static estimates must be exact
//! for scans, near-exact for key/FK joins and aggregates, and within an
//! order of magnitude for filtered paths — the regime the paper's
//! uniformity-based optimizer (§V-A) is designed for.

use sip_data::{generate, TpchConfig};
use sip_engine::{execute_oracle, lower, PhysKind, PhysPlan};
use sip_expr::{AggFunc, Expr};
use sip_optimizer::Estimator;
use sip_plan::QueryBuilder;

fn catalog() -> sip_data::Catalog {
    generate(&TpchConfig::uniform(0.01)).unwrap()
}

/// Oracle row counts per node, by evaluating each subtree independently.
fn actual_rows(plan: &PhysPlan) -> Vec<f64> {
    plan.nodes
        .iter()
        .map(|n| {
            let sub = subplan(plan, n.id);
            execute_oracle(&sub).unwrap().len() as f64
        })
        .collect()
}

/// Extract the subtree rooted at `op` as a standalone plan.
fn subplan(plan: &PhysPlan, op: sip_common::OpId) -> PhysPlan {
    // Collect subtree nodes in arena order and remap ids.
    let mut keep = vec![false; plan.nodes.len()];
    fn mark(plan: &PhysPlan, op: sip_common::OpId, keep: &mut [bool]) {
        keep[op.index()] = true;
        for &c in &plan.node(op).inputs {
            mark(plan, c, keep);
        }
    }
    mark(plan, op, &mut keep);
    let mut remap = vec![u32::MAX; plan.nodes.len()];
    let mut nodes = Vec::new();
    for (i, k) in keep.iter().enumerate() {
        if *k {
            remap[i] = nodes.len() as u32;
            let mut n = plan.nodes[i].clone();
            n.id = sip_common::OpId(remap[i]);
            n.inputs = n
                .inputs
                .iter()
                .map(|c| sip_common::OpId(remap[c.index()]))
                .collect();
            nodes.push(n);
        }
    }
    let root = sip_common::OpId(remap[op.index()]);
    PhysPlan::from_nodes(nodes, root, plan.attrs.clone()).unwrap()
}

#[test]
fn estimates_track_actuals_on_q17_shape() {
    let c = catalog();
    let mut q = QueryBuilder::new(&c);
    let p = q.scan("part", "p", &["p_partkey", "p_brand"]).unwrap();
    let pred = p.col("p_brand").unwrap().eq(Expr::lit("Brand#34"));
    let p = q.filter(p, pred);
    let l = q
        .scan("lineitem", "l", &["l_partkey", "l_quantity"])
        .unwrap();
    let pl = q.join(p, l, &[("p.p_partkey", "l.l_partkey")]).unwrap();
    let l2 = q
        .scan("lineitem", "l2", &["l_partkey", "l_quantity"])
        .unwrap();
    let qty = l2.col("l_quantity").unwrap();
    let avg = q
        .aggregate(l2, &["l_partkey"], &[(AggFunc::Avg, qty, "avg")])
        .unwrap();
    let j = q.join(pl, avg, &[("p.p_partkey", "l2.l_partkey")]).unwrap();
    let plan = lower(j.plan(), q.attrs().clone(), &c).unwrap();

    let est = Estimator::estimate(&plan);
    let actuals = actual_rows(&plan);
    for node in &plan.nodes {
        let e = est.node(node.id).rows;
        let a = actuals[node.id.index()];
        match &node.kind {
            PhysKind::Scan { .. } => {
                assert_eq!(e, a, "scan estimate must be exact at {}", node.id)
            }
            PhysKind::Aggregate { .. } => {
                let ratio = e / a.max(1.0);
                assert!(
                    (0.5..2.0).contains(&ratio),
                    "aggregate {}: est {e} vs actual {a}",
                    node.id
                );
            }
            PhysKind::Filter { .. } | PhysKind::HashJoin { .. } if a > 0.0 => {
                let ratio = e / a;
                assert!(
                    (0.1..10.0).contains(&ratio),
                    "{} {}: est {e} vs actual {a}",
                    node.kind.name(),
                    node.id
                );
            }
            _ => {}
        }
    }
}

#[test]
fn runtime_actuals_pin_finished_nodes() {
    let c = catalog();
    let mut q = QueryBuilder::new(&c);
    let p = q.scan("part", "p", &["p_partkey", "p_size"]).unwrap();
    let pred = p.col("p_size").unwrap().eq(Expr::lit(1i64));
    let p = q.filter(p, pred);
    let ps = q.scan("partsupp", "ps", &["ps_partkey"]).unwrap();
    let j = q.join(p, ps, &[("p.p_partkey", "ps.ps_partkey")]).unwrap();
    let plan = lower(j.plan(), q.attrs().clone(), &c).unwrap();
    let actual = actual_rows(&plan);
    // Pretend the filter finished with its true cardinality: the join
    // estimate must then land within a few percent of truth (FK join).
    let mut rt = vec![sip_optimizer::RuntimeActual::default(); plan.nodes.len()];
    let filter_id = plan
        .nodes
        .iter()
        .find(|n| matches!(n.kind, PhysKind::Filter { .. }))
        .unwrap()
        .id;
    rt[filter_id.index()] = sip_optimizer::RuntimeActual {
        rows_out: actual[filter_id.index()] as u64,
        finished: true,
    };
    let est = Estimator::estimate_with_actuals(&plan, &rt);
    let join = plan
        .nodes
        .iter()
        .find(|n| matches!(n.kind, PhysKind::HashJoin { .. }))
        .unwrap()
        .id;
    let ratio = est.node(join).rows / actual[join.index()].max(1.0);
    assert!(
        (0.7..1.4).contains(&ratio),
        "join after UPDATEESTIMATES: ratio {ratio}"
    );
}
