//! Property-based tests for the foundation types.

use proptest::prelude::*;
use sip_common::bytes::StateTracker;
use sip_common::{hash_key, Date, FxHashMap, Row, SpaceSaving, Value};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        // Finite floats only; NaN is excluded by workload invariants.
        (-1e12f64..1e12).prop_map(Value::Float),
        "[a-zA-Z0-9 ]{0,12}".prop_map(Value::str),
        (-100_000i32..100_000).prop_map(|d| Value::Date(Date::from_days(d))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn date_round_trips(days in -200_000i32..200_000) {
        let d = Date::from_days(days);
        let (y, m, dd) = d.ymd();
        prop_assert_eq!(Date::from_ymd(y, m, dd).unwrap().days(), days);
        // Display → parse round trip.
        prop_assert_eq!(Date::parse(&d.to_string()).unwrap(), d);
    }

    #[test]
    fn date_ordering_matches_day_count(a in -50_000i32..50_000, b in -50_000i32..50_000) {
        let da = Date::from_days(a);
        let db = Date::from_days(b);
        prop_assert_eq!(da.cmp(&db), a.cmp(&b));
    }

    #[test]
    fn value_ordering_is_total_and_consistent(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering;
        // Antisymmetry.
        prop_assert_eq!(a.sql_cmp(&b), b.sql_cmp(&a).reverse());
        // Transitivity (spot form): if a<=b and b<=c then a<=c.
        if a.sql_cmp(&b) != Ordering::Greater && b.sql_cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.sql_cmp(&c), Ordering::Greater);
        }
        // Eq ⇒ equal hashes.
        if a == b {
            prop_assert_eq!(a.hash64(), b.hash64());
        }
    }

    #[test]
    fn row_key_hash_equals_hash_key(vals in prop::collection::vec(arb_value(), 1..6)) {
        let row = Row::new(vals.clone());
        let positions: Vec<usize> = (0..vals.len()).collect();
        prop_assert_eq!(row.key_hash(&positions), hash_key(&vals));
    }

    #[test]
    fn projection_preserves_values(
        vals in prop::collection::vec(arb_value(), 1..8),
        idx in prop::collection::vec(0usize..8, 0..8),
    ) {
        let row = Row::new(vals.clone());
        let idx: Vec<usize> = idx.into_iter().filter(|&i| i < vals.len()).collect();
        let projected = row.project(&idx);
        for (out_pos, &src) in idx.iter().enumerate() {
            prop_assert_eq!(projected.get(out_pos), &vals[src]);
        }
    }

    #[test]
    fn sketch_merge_is_commutative(
        xs in prop::collection::vec(0u64..40, 0..400),
        ys in prop::collection::vec(0u64..40, 0..400),
        cap in 1usize..24,
    ) {
        let mut a = SpaceSaving::new(cap);
        let mut b = SpaceSaving::new(cap);
        for &d in &xs {
            a.offer(d);
        }
        for &d in &ys {
            b.offer(d);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab.total(), ba.total());
        prop_assert_eq!(ab.entries(), ba.entries());
    }

    #[test]
    fn sketch_merge_never_reports_below_true_lower_bound(
        stream in prop::collection::vec((0u64..60, 0u8..4), 1..600),
        cap in 2usize..20,
        order in prop::collection::vec(0usize..4, 4),
    ) {
        // Split one stream across 4 "writers", merge the per-writer
        // sketches in an arbitrary order, and check the space-saving
        // invariant survives: for every surviving candidate,
        // count - err <= true count <= count — so `heavy_hitters` can
        // never report a key whose guaranteed count exceeds its true one.
        let mut truth: FxHashMap<u64, u64> = FxHashMap::default();
        let mut writers: Vec<SpaceSaving> = (0..4).map(|_| SpaceSaving::new(cap)).collect();
        for &(d, w) in &stream {
            *truth.entry(d).or_default() += 1;
            writers[w as usize].offer(d);
        }
        // Dedup while preserving the randomized merge order.
        let mut seen = [false; 4];
        let order: Vec<usize> = order
            .iter()
            .map(|&i| i % 4)
            .filter(|&i| !std::mem::replace(&mut seen[i], true))
            .collect();
        let mut merged = SpaceSaving::new(cap);
        for &w in &order {
            merged.merge(&writers[w]);
        }
        let in_order: u64 = stream.iter().filter(|&&(_, w)| order.contains(&(w as usize))).count() as u64;
        prop_assert_eq!(merged.total(), in_order);
        for e in merged.entries() {
            let t: u64 = stream
                .iter()
                .filter(|&&(d, w)| d == e.digest && order.contains(&(w as usize)))
                .count() as u64;
            prop_assert!(t <= e.count, "digest {} true {t} > count {}", e.digest, e.count);
            prop_assert!(
                e.count - e.err <= t,
                "digest {} guaranteed {} > true {t}",
                e.digest,
                e.count - e.err
            );
        }
    }

    #[test]
    fn state_tracker_balanced_ops_return_to_zero(deltas in prop::collection::vec(1i64..10_000, 0..50)) {
        let t = StateTracker::new();
        for &d in &deltas {
            t.add(d);
        }
        let max_sum: i64 = deltas.iter().sum();
        prop_assert!(t.peak() <= max_sum.max(0) as u64);
        for &d in &deltas {
            t.add(-d);
        }
        prop_assert_eq!(t.current(), 0);
    }
}

/// The same stream rolled up through per-writer sketches at dop 2 and at
/// dop 4 must agree on the heavy hitters: the report a stage-boundary
/// controller acts on cannot depend on how many shuffle writers the plan
/// happened to use.
#[test]
fn sketch_rollup_deterministic_across_dop() {
    // Three hot keys at ~20% each plus a long cold tail, interleaved.
    let mut stream: Vec<u64> = Vec::new();
    for i in 0..6000u64 {
        stream.push(1000 + i % 3); // hot: each ~2000 occurrences
        stream.push(2000 + (i * 7) % 499); // cold tail
    }
    let n = stream.len() as u64;
    let rollup = |dop: usize| -> Vec<(u64, u64)> {
        let mut writers: Vec<SpaceSaving> = (0..dop).map(|_| SpaceSaving::new(32)).collect();
        for (i, &d) in stream.iter().enumerate() {
            writers[i % dop].offer(d);
        }
        let mut merged = writers[0].clone();
        for w in &writers[1..] {
            merged.merge(w);
        }
        assert_eq!(merged.total(), n);
        merged
            .heavy_hitters(n / 10)
            .into_iter()
            .map(|e| (e.digest, e.count))
            .collect()
    };
    let d2 = rollup(2);
    let d4 = rollup(4);
    let keys = |v: &[(u64, u64)]| v.iter().map(|&(d, _)| d).collect::<Vec<_>>();
    assert_eq!(keys(&d2), vec![1000, 1001, 1002], "{d2:?}");
    assert_eq!(
        keys(&d2),
        keys(&d4),
        "dop 2 vs 4 rollups disagree: {d2:?} vs {d4:?}"
    );
    // Estimates stay within the merge error envelope of the true counts.
    for &(_, count) in d2.iter().chain(d4.iter()) {
        assert!((2000..2300).contains(&count), "estimate {count} drifted");
    }
}
