//! Property-based tests for the foundation types.

use proptest::prelude::*;
use sip_common::bytes::StateTracker;
use sip_common::{hash_key, Date, Row, Value};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        // Finite floats only; NaN is excluded by workload invariants.
        (-1e12f64..1e12).prop_map(Value::Float),
        "[a-zA-Z0-9 ]{0,12}".prop_map(Value::str),
        (-100_000i32..100_000).prop_map(|d| Value::Date(Date::from_days(d))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn date_round_trips(days in -200_000i32..200_000) {
        let d = Date::from_days(days);
        let (y, m, dd) = d.ymd();
        prop_assert_eq!(Date::from_ymd(y, m, dd).unwrap().days(), days);
        // Display → parse round trip.
        prop_assert_eq!(Date::parse(&d.to_string()).unwrap(), d);
    }

    #[test]
    fn date_ordering_matches_day_count(a in -50_000i32..50_000, b in -50_000i32..50_000) {
        let da = Date::from_days(a);
        let db = Date::from_days(b);
        prop_assert_eq!(da.cmp(&db), a.cmp(&b));
    }

    #[test]
    fn value_ordering_is_total_and_consistent(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering;
        // Antisymmetry.
        prop_assert_eq!(a.sql_cmp(&b), b.sql_cmp(&a).reverse());
        // Transitivity (spot form): if a<=b and b<=c then a<=c.
        if a.sql_cmp(&b) != Ordering::Greater && b.sql_cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.sql_cmp(&c), Ordering::Greater);
        }
        // Eq ⇒ equal hashes.
        if a == b {
            prop_assert_eq!(a.hash64(), b.hash64());
        }
    }

    #[test]
    fn row_key_hash_equals_hash_key(vals in prop::collection::vec(arb_value(), 1..6)) {
        let row = Row::new(vals.clone());
        let positions: Vec<usize> = (0..vals.len()).collect();
        prop_assert_eq!(row.key_hash(&positions), hash_key(&vals));
    }

    #[test]
    fn projection_preserves_values(
        vals in prop::collection::vec(arb_value(), 1..8),
        idx in prop::collection::vec(0usize..8, 0..8),
    ) {
        let row = Row::new(vals.clone());
        let idx: Vec<usize> = idx.into_iter().filter(|&i| i < vals.len()).collect();
        let projected = row.project(&idx);
        for (out_pos, &src) in idx.iter().enumerate() {
            prop_assert_eq!(projected.get(out_pos), &vals[src]);
        }
    }

    #[test]
    fn state_tracker_balanced_ops_return_to_zero(deltas in prop::collection::vec(1i64..10_000, 0..50)) {
        let t = StateTracker::new();
        for &d in &deltas {
            t.add(d);
        }
        let max_sum: i64 = deltas.iter().sum();
        prop_assert!(t.peak() <= max_sum.max(0) as u64);
        for &d in &deltas {
            t.add(-d);
        }
        prop_assert_eq!(t.current(), 0);
    }
}
