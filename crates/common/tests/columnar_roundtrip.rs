//! Property tests for the row ↔ columnar seam.
//!
//! The columnar layout is only safe to thread through the engine if (a)
//! `Row` batches round-trip through `ColumnarBatch` value-exactly, and (b)
//! the columnar digest pass agrees bit-for-bit with the row-based
//! `Row::key_hash` — AIP sets built on one side of the seam are probed on
//! the other, so a single digest mismatch silently drops rows.

use proptest::prelude::*;
use sip_common::{ColumnarBatch, Date, DigestBuffer, Row, Value};
use std::sync::Arc;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        // Finite floats only; includes ±0.0 via the range.
        (-1e12f64..1e12).prop_map(Value::Float),
        "[a-zA-Z0-9 ]{0,12}".prop_map(Value::str),
        (-100_000i32..100_000).prop_map(|d| Value::Date(Date::from_days(d))),
    ]
}

/// Chunk a flat cell vector into uniform-width rows (trailing remainder
/// dropped) — the shimmed proptest has no flat-map, so width and cells are
/// drawn independently.
fn rows_from(n_cols: usize, cells: &[Value]) -> Vec<Row> {
    cells
        .chunks_exact(n_cols)
        .map(|c| Row::new(c.to_vec()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn rows_round_trip_value_exact(
        n_cols in 1usize..6,
        cells in prop::collection::vec(arb_value(), 0..100),
    ) {
        let rows = rows_from(n_cols, &cells);
        let batch = ColumnarBatch::from_rows(&rows);
        prop_assert_eq!(batch.len(), rows.len());
        let back = batch.to_rows();
        prop_assert_eq!(&back, &rows);
        // value_at agrees with the row view position by position.
        for (i, row) in rows.iter().enumerate() {
            for (c, v) in row.values().iter().enumerate() {
                prop_assert_eq!(&batch.value_at(c, i), v);
                prop_assert_eq!(batch.is_valid(c, i), !v.is_null());
            }
        }
    }

    #[test]
    fn digest_pass_parity_with_key_hash(
        n_cols in 1usize..6,
        cells in prop::collection::vec(arb_value(), 0..100),
    ) {
        let rows = rows_from(n_cols, &cells);
        let batch = ColumnarBatch::from_rows(&rows);
        let mut buf = DigestBuffer::default();
        // Every single column plus the full key.
        let mut column_sets: Vec<Vec<usize>> = (0..n_cols).map(|c| vec![c]).collect();
        column_sets.push((0..n_cols).collect());
        for positions in &column_sets {
            buf.compute_cols(&batch, positions);
            for (i, row) in rows.iter().enumerate() {
                prop_assert_eq!(
                    buf.digests()[i],
                    row.key_hash(positions),
                    "digest mismatch at row {} cols {:?}", i, positions
                );
                let has_null = positions.iter().any(|&p| row.get(p).is_null());
                prop_assert_eq!(buf.is_null_key(i), has_null);
            }
        }
    }

    #[test]
    fn slices_and_gathers_stay_value_exact(
        n_cols in 1usize..6,
        cells in prop::collection::vec(arb_value(), 0..100),
        cut in 0usize..20,
        stride in 1usize..4,
    ) {
        let rows = rows_from(n_cols, &cells);
        let batch = ColumnarBatch::from_rows(&rows);
        let off = cut.min(rows.len());
        let view = batch.slice(off, rows.len() - off);
        prop_assert_eq!(view.to_rows(), rows[off..].to_vec());
        // Strided gather out of the slice.
        let sel: Vec<u32> = (0..view.len() as u32).step_by(stride).collect();
        let picked = view.gather(&sel);
        let expect: Vec<Row> = sel.iter().map(|&i| rows[off + i as usize].clone()).collect();
        prop_assert_eq!(picked.to_rows(), expect);
    }
}

/// Shared `Arc<str>` payloads survive the round trip without duplicating
/// the allocation: equal strings resolve to one dictionary entry.
#[test]
fn shared_arc_str_payloads_coalesce() {
    let hot: Arc<str> = Arc::from("REPEATED-PAYLOAD");
    let rows: Vec<Row> = (0..100)
        .map(|i| {
            Row::new(vec![
                Value::Int(i),
                Value::Str(hot.clone()),
                if i % 3 == 0 {
                    Value::Null
                } else {
                    Value::str("x")
                },
            ])
        })
        .collect();
    let batch = ColumnarBatch::from_rows(&rows);
    let back = batch.to_rows();
    assert_eq!(back, rows);
    let ptrs: Vec<*const u8> = back
        .iter()
        .map(|r| match r.get(1) {
            Value::Str(s) => s.as_ptr(),
            _ => panic!("expected string"),
        })
        .collect();
    assert!(
        ptrs.windows(2).all(|w| w[0] == w[1]),
        "dictionary should share one Arc<str> across all rows"
    );
}

/// The boundary sizes around a validity-bitmap word: 1, 63, 64, 65.
#[test]
fn bitmap_word_boundaries_round_trip() {
    for n in [1usize, 63, 64, 65] {
        let rows: Vec<Row> = (0..n)
            .map(|i| {
                Row::new(vec![
                    // NULL on the word-edge positions specifically.
                    if i == 0 || i == 62 || i == 63 || i == 64 {
                        Value::Null
                    } else {
                        Value::Int(i as i64)
                    },
                    Value::str(format!("s{i}")),
                ])
            })
            .collect();
        let batch = ColumnarBatch::from_rows(&rows);
        assert_eq!(batch.to_rows(), rows, "n = {n}");
        let mut buf = DigestBuffer::default();
        buf.compute_cols(&batch, &[0, 1]);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(buf.digests()[i], row.key_hash(&[0, 1]), "n = {n} row {i}");
        }
    }
}

/// Empty batches are valid and digest to nothing.
#[test]
fn empty_batch_round_trip() {
    let batch = ColumnarBatch::from_rows(&[]);
    assert!(batch.is_empty());
    assert!(batch.to_rows().is_empty());
    let mut buf = DigestBuffer::default();
    buf.compute_cols(&batch, &[]);
    assert!(buf.is_empty());
}
