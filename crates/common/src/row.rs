//! Rows and batches — the units of dataflow between operators.

use crate::value::Value;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// One tuple. The payload is a shared boxed slice so that rows can be
/// buffered in join state, re-emitted, and copied between operators without
/// duplicating the values.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Row {
    values: Arc<[Value]>,
}

impl Row {
    /// Build a row from values.
    pub fn new(values: Vec<Value>) -> Self {
        Row {
            values: values.into(),
        }
    }

    /// The values.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value at position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> &Value {
        &self.values[i]
    }

    /// Number of columns.
    #[inline]
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Concatenate two rows (join output).
    pub fn concat(&self, other: &Row) -> Row {
        let mut v = Vec::with_capacity(self.arity() + other.arity());
        v.extend_from_slice(&self.values);
        v.extend_from_slice(&other.values);
        Row::new(v)
    }

    /// Project columns by position into a new row.
    pub fn project(&self, indices: &[usize]) -> Row {
        Row::new(indices.iter().map(|&i| self.values[i].clone()).collect())
    }

    /// Approximate memory footprint: slice header + per-value footprint.
    /// Shared string payloads are counted once per referencing row — a
    /// deliberate over-count that keeps accounting monotone and cheap, and
    /// mirrors what a non-interned engine (like the paper's C++ Tukwila)
    /// would hold.
    pub fn size_bytes(&self) -> usize {
        16 + self.values.iter().map(Value::size_bytes).sum::<usize>()
    }

    /// Combined 64-bit digest of the values at `positions` — the join /
    /// AIP probe key. Order-sensitive.
    pub fn key_hash(&self, positions: &[usize]) -> u64 {
        let mut h = crate::hash::FxHasher::default();
        for &p in positions {
            self.values[p].hash(&mut h);
        }
        h.finish()
    }

    /// Clone the values at `positions` into a key vector (for exact sets).
    pub fn key_values(&self, positions: &[usize]) -> Vec<Value> {
        positions.iter().map(|&p| self.values[p].clone()).collect()
    }
}

impl Hash for Row {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for v in self.values.iter() {
            v.hash(state);
        }
    }
}

impl fmt::Debug for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row::new(values)
    }
}

/// A batch of rows — the unit sent over inter-operator channels. Batching
/// amortizes channel synchronization without changing per-tuple semantics.
#[derive(Clone, Debug, Default)]
pub struct Batch {
    /// The rows.
    pub rows: Vec<Row>,
}

impl Batch {
    /// An empty batch with capacity.
    pub fn with_capacity(n: usize) -> Self {
        Batch {
            rows: Vec::with_capacity(n),
        }
    }

    /// Build from rows.
    pub fn new(rows: Vec<Row>) -> Self {
        Batch { rows }
    }

    /// Row count.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Total payload bytes.
    pub fn size_bytes(&self) -> usize {
        self.rows.iter().map(Row::size_bytes).sum()
    }
}

impl FromIterator<Row> for Batch {
    fn from_iter<T: IntoIterator<Item = Row>>(iter: T) -> Self {
        Batch {
            rows: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(vals: &[i64]) -> Row {
        Row::new(vals.iter().map(|&v| Value::Int(v)).collect())
    }

    #[test]
    fn concat_preserves_order() {
        let r = row(&[1, 2]).concat(&row(&[3]));
        assert_eq!(r.arity(), 3);
        assert_eq!(r.get(2), &Value::Int(3));
    }

    #[test]
    fn project_selects_positions() {
        let r = row(&[10, 20, 30]).project(&[2, 0]);
        assert_eq!(r.values(), &[Value::Int(30), Value::Int(10)]);
    }

    #[test]
    fn key_hash_depends_on_selected_columns_only() {
        let a = Row::new(vec![Value::Int(1), Value::str("x")]);
        let b = Row::new(vec![Value::Int(1), Value::str("y")]);
        assert_eq!(a.key_hash(&[0]), b.key_hash(&[0]));
        assert_ne!(a.key_hash(&[1]), b.key_hash(&[1]));
    }

    #[test]
    fn key_hash_is_order_sensitive() {
        let r = row(&[1, 2]);
        assert_ne!(r.key_hash(&[0, 1]), r.key_hash(&[1, 0]));
    }

    #[test]
    fn equal_rows_hash_equal() {
        use crate::hash::fx_hash64;
        let a = Row::new(vec![Value::Int(5), Value::str("q")]);
        let b = Row::new(vec![Value::Int(5), Value::str("q")]);
        assert_eq!(a, b);
        assert_eq!(fx_hash64(&a), fx_hash64(&b));
    }

    #[test]
    fn sharing_rows_is_cheap() {
        let r = Row::new(vec![Value::str("long-ish string payload here")]);
        let r2 = r.clone();
        // Same Arc — pointer equality on the payload.
        assert!(std::ptr::eq(r.values().as_ptr(), r2.values().as_ptr()));
    }

    #[test]
    fn batch_size_accounting() {
        let b = Batch::new(vec![row(&[1]), row(&[2])]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.size_bytes(), row(&[1]).size_bytes() * 2);
        assert!(!b.is_empty());
        assert!(Batch::default().is_empty());
    }

    #[test]
    fn key_values_clone_selected() {
        let r = Row::new(vec![Value::Int(7), Value::str("z")]);
        assert_eq!(r.key_values(&[1]), vec![Value::str("z")]);
    }
}
