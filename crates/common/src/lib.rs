#![warn(missing_docs)]
//! # sip-common
//!
//! Foundation types shared by every crate in the SIP (sideways information
//! passing) workspace: scalar [`Value`]s and [`Date`]s, [`Row`]s and
//! [`Batch`]es, [`Schema`]s, strongly-typed identifiers, a fast
//! non-cryptographic hasher, batch kernels ([`SelVec`] selection vectors
//! and [`DigestBuffer`]/[`DigestCache`] key-digest scratch), and the common
//! [`SipError`] type.
//!
//! Nothing in this crate knows about plans, operators, or AIP — it is the
//! vocabulary the rest of the system is written in.

pub mod bytes;
pub mod cancel;
pub mod columnar;
pub mod date;
pub mod error;
pub mod hash;
pub mod ids;
pub mod json;
pub mod kernel;
pub mod retry;
pub mod row;
pub mod schema;
pub mod sketch;
pub mod trace;
pub mod value;

pub use cancel::CancelToken;
pub use columnar::{ColKind, Column, ColumnBuilder, ColumnarBatch};
pub use date::Date;
pub use error::{ExecFailure, Result, SipError};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use ids::{AttrId, OpId, SiteId, TableId};
pub use kernel::{DigestBuffer, DigestCache, SelVec};
pub use retry::{RetryPolicy, RetryState};
pub use row::{Batch, Row};
pub use schema::{DataType, Field, Schema};
pub use sketch::{SketchEntry, SpaceSaving};
pub use trace::{
    FilterEvent, FilterEventKind, OpTracer, Phase, SpanEvent, ThreadTrace, TraceHub, TraceLevel,
    TraceSnapshot, N_PHASES,
};
pub use value::{hash_key, Value};
