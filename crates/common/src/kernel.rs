//! Batch kernels: selection vectors and shared key-digest scratch.
//!
//! Operators move [`Batch`](crate::Batch)es between threads, but CPU cost is
//! dominated by what happens *inside* an operator. The types here let those
//! interiors work batch-at-a-time:
//!
//! * [`DigestBuffer`] — one hash pass writes the key digest of every row in
//!   a batch; joins, filter taps, and shuffle routing all consume the same
//!   buffer instead of re-hashing per row per consumer.
//! * [`DigestCache`] — a set of [`DigestBuffer`]s keyed by key-column set,
//!   so a batch is hashed **at most once per distinct key-column set** no
//!   matter how many filters/routes probe it. Buffers are reused across
//!   batches without reallocating.
//! * [`SelVec`] — a selection vector: kernels drop rows by compacting an
//!   index list instead of cloning or shifting the rows themselves; the
//!   rows are gathered (or compacted in place) once at the end.

use crate::columnar::ColumnarBatch;
use crate::hash::FxHasher;
use crate::row::Row;
use std::hash::{Hash, Hasher};

/// A selection vector: ascending row indices of a batch's surviving rows.
///
/// Kernels narrow the selection (ownership checks, tap probes, predicate
/// evaluation) and the surviving rows are materialized once, either by
/// [`SelVec::compact`] (in place, order-preserving) or by gathering clones.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SelVec {
    idx: Vec<u32>,
}

impl SelVec {
    /// An empty selection with capacity for `n` indices.
    pub fn with_capacity(n: usize) -> Self {
        SelVec {
            idx: Vec::with_capacity(n),
        }
    }

    /// Reset to the identity selection `0..n` (every row selected).
    pub fn fill_identity(&mut self, n: usize) {
        self.idx.clear();
        self.idx.extend(0..n as u32);
    }

    /// Remove all indices.
    pub fn clear(&mut self) {
        self.idx.clear();
    }

    /// Append an index. Callers must keep the vector ascending for
    /// [`SelVec::compact`] to be valid.
    #[inline]
    pub fn push(&mut self, i: u32) {
        self.idx.push(i);
    }

    /// Number of selected rows.
    pub fn len(&self) -> usize {
        self.idx.len()
    }

    /// True when nothing is selected.
    pub fn is_empty(&self) -> bool {
        self.idx.is_empty()
    }

    /// The selected indices, ascending.
    pub fn as_slice(&self) -> &[u32] {
        &self.idx
    }

    /// Iterate the selected indices.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.idx.iter().copied()
    }

    /// Narrow the selection in place, keeping the indices `keep` approves.
    /// Order (and therefore ascending-ness) is preserved.
    #[inline]
    pub fn retain(&mut self, mut keep: impl FnMut(u32) -> bool) {
        self.idx.retain(|&i| keep(i));
    }

    /// Compact `rows` in place to exactly the selected indices, preserving
    /// order. The selection must be ascending (as produced by
    /// [`SelVec::fill_identity`] + [`SelVec::retain`]).
    ///
    /// A full selection is a no-op; otherwise each kept element is moved
    /// with one `swap` (`dst <= src` always holds for an ascending
    /// selection), so compaction never clones a row.
    pub fn compact<T>(&self, rows: &mut Vec<T>) {
        if self.idx.len() == rows.len() {
            return;
        }
        for (dst, &src) in self.idx.iter().enumerate() {
            debug_assert!(dst <= src as usize, "selection must be ascending");
            rows.swap(dst, src as usize);
        }
        rows.truncate(self.idx.len());
    }
}

/// Reusable per-batch key-digest scratch: one hash pass per batch.
///
/// [`DigestBuffer::compute`] writes, for every row, the same digest
/// [`Row::key_hash`] would produce for the given key columns — NULLs hash
/// like any value (filter taps probe them) — and additionally flags rows
/// whose key contains a NULL so join-style kernels can skip them (SQL: NULL
/// keys never join).
#[derive(Clone, Debug, Default)]
pub struct DigestBuffer {
    digests: Vec<u64>,
    null_mask: Vec<bool>,
    any_null: bool,
    /// Scratch per-row hasher states for the columnar fold pass.
    hashers: Vec<FxHasher>,
}

impl DigestBuffer {
    /// Hash every row's key columns in one pass, replacing prior contents.
    /// Allocations are reused across calls.
    pub fn compute(&mut self, rows: &[Row], positions: &[usize]) {
        self.digests.clear();
        self.digests.reserve(rows.len());
        self.null_mask.clear();
        self.null_mask.resize(rows.len(), false);
        self.any_null = false;
        for (i, row) in rows.iter().enumerate() {
            let mut h = FxHasher::default();
            let mut null = false;
            for &p in positions {
                let v = row.get(p);
                null |= v.is_null();
                v.hash(&mut h);
            }
            self.digests.push(h.finish());
            if null {
                self.null_mask[i] = true;
                self.any_null = true;
            }
        }
    }

    /// Hash every row's key columns of a columnar batch, column-major:
    /// per-row hasher states are folded one typed column at a time, so the
    /// inner loops run over primitive slices. Produces byte-identical
    /// digests to [`DigestBuffer::compute`] over the equivalent rows
    /// (single dictionary key columns hit a cached per-entry digest and
    /// skip hashing entirely).
    pub fn compute_cols(&mut self, batch: &ColumnarBatch, positions: &[usize]) {
        let n = batch.len();
        self.digests.clear();
        self.digests.reserve(n);
        self.null_mask.clear();
        self.null_mask.resize(n, false);
        self.any_null = false;
        if n == 0 {
            // Zero rows hash to nothing — mirrors the row path, which never
            // touches the columns of an empty batch.
            return;
        }
        if positions.len() == 1
            && batch.dict_digest_fill(
                positions[0],
                &mut self.digests,
                &mut self.null_mask,
                &mut self.any_null,
            )
        {
            return;
        }
        self.hashers.clear();
        self.hashers.resize(n, FxHasher::default());
        for &p in positions {
            batch.fold_digest(
                p,
                &mut self.hashers,
                &mut self.null_mask,
                &mut self.any_null,
            );
        }
        self.digests.extend(self.hashers.iter().map(Hasher::finish));
    }

    /// The per-row digests, aligned with the batch the buffer was computed
    /// over.
    #[inline]
    pub fn digests(&self) -> &[u64] {
        &self.digests
    }

    /// Did row `i`'s key contain a NULL?
    #[inline]
    pub fn is_null_key(&self, i: usize) -> bool {
        self.any_null && self.null_mask[i]
    }

    /// Did any row's key contain a NULL?
    #[inline]
    pub fn any_null(&self) -> bool {
        self.any_null
    }

    /// Rows covered by the last [`DigestBuffer::compute`].
    pub fn len(&self) -> usize {
        self.digests.len()
    }

    /// True when no rows are covered.
    pub fn is_empty(&self) -> bool {
        self.digests.is_empty()
    }
}

/// Shared digest buffers for one batch: at most one hash pass per distinct
/// key-column set, with buffer allocations reused across batches.
///
/// An operator owns one cache for the lifetime of its thread. Per batch it
/// calls [`DigestCache::begin_batch`] once, then [`DigestCache::get`] for
/// every key-column set it needs — routing columns, each injected filter's
/// probe columns, a join's key columns. Sets that repeat (the common case:
/// AIP filters probe the very column the stream is partitioned on) hit the
/// cache and cost nothing.
#[derive(Debug, Default)]
pub struct DigestCache {
    epoch: u64,
    entries: Vec<CacheEntry>,
}

#[derive(Debug)]
struct CacheEntry {
    positions: Vec<usize>,
    epoch: u64,
    buf: DigestBuffer,
}

impl DigestCache {
    /// Invalidate all buffers: the next [`DigestCache::get`] per column set
    /// recomputes (into the existing allocation).
    pub fn begin_batch(&mut self) {
        self.epoch += 1;
    }

    /// The digest buffer for `positions` over `rows`, computed at most once
    /// per batch epoch.
    pub fn get(&mut self, rows: &[Row], positions: &[usize]) -> &DigestBuffer {
        let slot = self.slot_for(positions);
        let entry = &mut self.entries[slot];
        if entry.epoch != self.epoch {
            entry.buf.compute(rows, positions);
            entry.epoch = self.epoch;
        }
        &self.entries[slot].buf
    }

    /// The digest buffer for `positions` over a columnar batch, computed at
    /// most once per batch epoch. Shares the entry table with
    /// [`DigestCache::get`] — the digests are identical either way.
    pub fn get_cols(&mut self, batch: &ColumnarBatch, positions: &[usize]) -> &DigestBuffer {
        let slot = self.slot_for(positions);
        let entry = &mut self.entries[slot];
        if entry.epoch != self.epoch {
            entry.buf.compute_cols(batch, positions);
            entry.epoch = self.epoch;
        }
        &self.entries[slot].buf
    }

    fn slot_for(&mut self, positions: &[usize]) -> usize {
        self.entries
            .iter()
            .position(|e| e.positions == positions)
            .unwrap_or_else(|| {
                self.entries.push(CacheEntry {
                    positions: positions.to_vec(),
                    epoch: self.epoch.wrapping_sub(1),
                    buf: DigestBuffer::default(),
                });
                self.entries.len() - 1
            })
    }

    /// Number of distinct key-column sets seen so far.
    pub fn n_sets(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn row(vals: &[i64]) -> Row {
        Row::new(vals.iter().map(|&v| Value::Int(v)).collect())
    }

    #[test]
    fn digest_pass_matches_row_key_hash() {
        let rows = vec![row(&[1, 10]), row(&[2, 20]), row(&[3, 30])];
        let mut buf = DigestBuffer::default();
        for positions in [&[0usize][..], &[1], &[0, 1], &[1, 0]] {
            buf.compute(&rows, positions);
            for (i, r) in rows.iter().enumerate() {
                assert_eq!(buf.digests()[i], r.key_hash(positions));
                assert!(!buf.is_null_key(i));
            }
        }
    }

    #[test]
    fn digest_pass_flags_null_keys() {
        let rows = vec![
            row(&[1]),
            Row::new(vec![Value::Null]),
            Row::new(vec![Value::Int(2)]),
        ];
        let mut buf = DigestBuffer::default();
        buf.compute(&rows, &[0]);
        assert!(!buf.is_null_key(0));
        assert!(buf.is_null_key(1));
        assert!(!buf.is_null_key(2));
        assert!(buf.any_null());
        // NULLs still hash like values — taps probe them.
        assert_eq!(buf.digests()[1], rows[1].key_hash(&[0]));
        // Reuse clears the flag.
        buf.compute(&rows[..1], &[0]);
        assert!(!buf.any_null());
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn columnar_digest_pass_matches_row_pass() {
        use crate::columnar::ColumnarBatch;
        use crate::date::Date;
        let rows = vec![
            Row::new(vec![
                Value::Int(1),
                Value::Float(-0.0),
                Value::str("alpha"),
                Value::Date(Date::from_days(-3)),
            ]),
            Row::new(vec![
                Value::Null,
                Value::Float(2.5),
                Value::str("a-string-longer-than-one-word"),
                Value::Date(Date::from_days(9000)),
            ]),
            Row::new(vec![
                Value::Int(-7),
                Value::Null,
                Value::Null,
                Value::Date(Date::from_days(0)),
            ]),
        ];
        let batch = ColumnarBatch::from_rows(&rows);
        let mut row_buf = DigestBuffer::default();
        let mut col_buf = DigestBuffer::default();
        for positions in [
            &[0usize][..],
            &[1],
            &[2],
            &[3],
            &[0, 2],
            &[3, 1, 0],
            &[2, 2],
        ] {
            row_buf.compute(&rows, positions);
            col_buf.compute_cols(&batch, positions);
            assert_eq!(row_buf.digests(), col_buf.digests(), "cols {positions:?}");
            for i in 0..rows.len() {
                assert_eq!(
                    row_buf.is_null_key(i),
                    col_buf.is_null_key(i),
                    "null flag row {i} cols {positions:?}"
                );
            }
            assert_eq!(row_buf.any_null(), col_buf.any_null());
        }
    }

    #[test]
    fn columnar_digest_pass_respects_views() {
        use crate::columnar::ColumnarBatch;
        let rows: Vec<Row> = (0..10).map(|i| row(&[i, i * 10])).collect();
        let batch = ColumnarBatch::from_rows(&rows).slice(3, 4);
        let mut buf = DigestBuffer::default();
        buf.compute_cols(&batch, &[1, 0]);
        for i in 0..4 {
            assert_eq!(buf.digests()[i], rows[3 + i].key_hash(&[1, 0]));
        }
    }

    #[test]
    fn cache_get_cols_shares_entries_with_get() {
        use crate::columnar::ColumnarBatch;
        let rows = vec![row(&[1, 2]), row(&[3, 4])];
        let batch = ColumnarBatch::from_rows(&rows);
        let mut cache = DigestCache::default();
        cache.begin_batch();
        let d_row = cache.get(&rows, &[0]).digests().to_vec();
        // Same epoch + positions: the columnar getter returns the cached
        // buffer without recomputing.
        let d_col = cache.get_cols(&batch, &[0]).digests().to_vec();
        assert_eq!(d_row, d_col);
        assert_eq!(cache.n_sets(), 1);
        cache.begin_batch();
        let d_col2 = cache.get_cols(&batch, &[0]).digests().to_vec();
        assert_eq!(d_col2, d_row);
        assert_eq!(cache.n_sets(), 1);
    }

    #[test]
    fn cache_hashes_once_per_column_set_per_batch() {
        let rows = vec![row(&[1, 2]), row(&[3, 4])];
        let mut cache = DigestCache::default();
        cache.begin_batch();
        let d0 = cache.get(&rows, &[0]).digests().to_vec();
        let d0_again = cache.get(&rows, &[0]).digests().to_vec();
        assert_eq!(d0, d0_again);
        let d1 = cache.get(&rows, &[1]).digests().to_vec();
        assert_ne!(d0, d1);
        assert_eq!(cache.n_sets(), 2);
        // New batch: same column sets, recomputed over new rows, no new
        // entries.
        let rows2 = vec![row(&[9, 9])];
        cache.begin_batch();
        let d = cache.get(&rows2, &[0]);
        assert_eq!(d.len(), 1);
        assert_eq!(d.digests()[0], rows2[0].key_hash(&[0]));
        assert_eq!(cache.n_sets(), 2);
    }

    #[test]
    fn selvec_identity_retain_compact() {
        let mut sel = SelVec::default();
        sel.fill_identity(5);
        assert_eq!(sel.len(), 5);
        sel.retain(|i| i % 2 == 0);
        assert_eq!(sel.as_slice(), &[0, 2, 4]);
        let mut rows = vec![10, 11, 12, 13, 14];
        sel.compact(&mut rows);
        assert_eq!(rows, vec![10, 12, 14]);
    }

    #[test]
    fn selvec_full_selection_is_noop() {
        let mut sel = SelVec::with_capacity(3);
        sel.fill_identity(3);
        let mut rows = vec![1, 2, 3];
        sel.compact(&mut rows);
        assert_eq!(rows, vec![1, 2, 3]);
        sel.clear();
        assert!(sel.is_empty());
        sel.compact(&mut rows);
        assert!(rows.is_empty());
    }

    #[test]
    fn selvec_compact_preserves_order_without_clones() {
        let mut sel = SelVec::default();
        for i in [1u32, 3, 4, 7] {
            sel.push(i);
        }
        let mut rows: Vec<String> = (0..8).map(|i| format!("r{i}")).collect();
        sel.compact(&mut rows);
        assert_eq!(rows, vec!["r1", "r3", "r4", "r7"]);
        assert_eq!(sel.iter().collect::<Vec<_>>(), vec![1, 3, 4, 7]);
    }
}
