//! A fast, deterministic, non-cryptographic hasher (FxHash-style).
//!
//! Join keys and AIP-set probes hash millions of small values; SipHash (the
//! std default) is needlessly slow for that, and HashDoS is not a concern for
//! an embedded query engine operating on its own data. The algorithm below is
//! the Firefox/rustc "Fx" multiply-rotate hash. It is implemented in-repo to
//! stay within the approved dependency list.

use std::hash::{BuildHasherDefault, Hash, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hasher: word-at-a-time multiply-rotate.
#[derive(Default, Clone, Debug)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
            // Length in the final word disambiguates e.g. [0] from [0, 0].
            self.add_to_hash(rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with the fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with the fast hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Hash any `Hash` value to a stable 64-bit digest with [`FxHasher`].
///
/// This digest is what Bloom filters and AIP hash sets operate on, so it must
/// be identical across threads, sites, and runs — it is, because `FxHasher`
/// has no random state.
#[inline]
pub fn fx_hash64<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

/// Splitmix64 finalizer: full-avalanche mixing of a 64-bit word.
///
/// Fx digests of sequential integers are a bare multiply (a Weyl sequence),
/// which is fine for hash-table slotting but makes Bloom-filter bit indices
/// pathologically regular. Structures that reduce a digest modulo a size
/// should mix it first.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Derive `k` independent-enough hashes from one 64-bit digest using the
/// standard double-hashing construction `g_i(x) = h1(x) + i*h2(x)`.
#[inline]
pub fn double_hash(digest: u64, i: u32) -> u64 {
    let h1 = digest;
    let h2 = mix64(digest);
    h1.wrapping_add((i as u64).wrapping_mul(h2 | 1))
}

/// Map a key digest to one of `dop` hash partitions.
///
/// This is THE partitioning function of the workspace: partitioned scans,
/// `Exchange` operators, and partition-scoped AIP filters must all agree on
/// it, because a row filtered into partition `p` at a scan is only ever
/// probed against partition `p`'s join state. The digest is mixed first for
/// the same reason as in [`mix64`]'s docs: raw Fx digests of sequential
/// keys are too regular to reduce modulo a small `dop`.
#[inline]
pub fn partition_of(digest: u64, dop: u32) -> u32 {
    debug_assert!(dop > 0);
    (mix64(digest) % dop.max(1) as u64) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashing_is_deterministic() {
        assert_eq!(fx_hash64(&42u64), fx_hash64(&42u64));
        assert_eq!(fx_hash64("partkey"), fx_hash64("partkey"));
    }

    #[test]
    fn different_inputs_differ() {
        assert_ne!(fx_hash64(&1u64), fx_hash64(&2u64));
        assert_ne!(fx_hash64("a"), fx_hash64("b"));
        // Length disambiguation in the remainder path.
        assert_ne!(fx_hash64(&[0u8][..]), fx_hash64(&[0u8, 0u8][..]));
    }

    #[test]
    fn partitions_cover_and_balance() {
        let dop = 4u32;
        let mut counts = [0usize; 4];
        for key in 0..10_000u64 {
            let p = partition_of(fx_hash64(&key), dop);
            assert!(p < dop);
            counts[p as usize] += 1;
        }
        for &c in &counts {
            // Sequential keys must not collapse into few partitions.
            assert!((1_500..4_000).contains(&c), "partition skew: {counts:?}");
        }
        // dop = 1 always maps to partition 0.
        assert_eq!(partition_of(fx_hash64(&7u64), 1), 0);
    }

    #[test]
    fn double_hash_varies_with_index() {
        let d = fx_hash64(&1234u64);
        let h0 = double_hash(d, 0);
        let h1 = double_hash(d, 1);
        let h2 = double_hash(d, 2);
        assert_eq!(h0, d);
        assert_ne!(h0, h1);
        assert_ne!(h1, h2);
    }

    #[test]
    fn fx_map_behaves_like_hashmap() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn distribution_smoke_test() {
        // Hash 10k consecutive ints into 64 buckets; no bucket should be
        // pathologically over-full (uniform expectation ~156 each).
        let mut buckets = [0u32; 64];
        for i in 0..10_000u64 {
            buckets[(fx_hash64(&i) % 64) as usize] += 1;
        }
        assert!(buckets.iter().all(|&c| c > 60 && c < 320), "{buckets:?}");
    }
}
