//! Calendar dates as days since 1970-01-01 (proleptic Gregorian).
//!
//! TPC-H predicates compare and extract years from dates
//! (`o_orderdate >= '1995-01-01'`, `year(o_orderdate)`); a compact `i32`
//! day-count with civil-calendar conversion covers everything the workload
//! needs without an external chrono dependency.

use crate::error::{Result, SipError};
use std::fmt;

/// A calendar date, stored as days since the Unix epoch.
///
/// Ordering and equality follow the natural timeline. The civil-calendar
/// conversions use Howard Hinnant's `days_from_civil` algorithm, exact over
/// the full `i32` range.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    days: i32,
}

impl Date {
    /// Construct from a raw day count since 1970-01-01.
    #[inline]
    pub const fn from_days(days: i32) -> Self {
        Date { days }
    }

    /// The raw day count since 1970-01-01.
    #[inline]
    pub const fn days(self) -> i32 {
        self.days
    }

    /// Build from a civil (year, month, day) triple. Months are 1-12 and
    /// days 1-31; out-of-range inputs are an error.
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Result<Self> {
        if !(1..=12).contains(&month) {
            return Err(SipError::Data(format!("month {month} out of range")));
        }
        if day == 0 || day > days_in_month(year, month) {
            return Err(SipError::Data(format!(
                "day {day} out of range for {year}-{month:02}"
            )));
        }
        Ok(Date {
            days: days_from_civil(year, month, day),
        })
    }

    /// Parse `YYYY-MM-DD`.
    pub fn parse(s: &str) -> Result<Self> {
        let bad = || SipError::Data(format!("invalid date literal {s:?}"));
        let mut parts = s.splitn(3, '-');
        let y: i32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let m: u32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let d: u32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        Date::from_ymd(y, m, d)
    }

    /// Decompose into (year, month, day).
    pub fn ymd(self) -> (i32, u32, u32) {
        civil_from_days(self.days)
    }

    /// The calendar year, as used by TPC-H Q9's `year(o_orderdate)`.
    #[inline]
    pub fn year(self) -> i32 {
        self.ymd().0
    }

    /// Date `n` days later (negative `n` allowed).
    #[inline]
    pub fn plus_days(self, n: i32) -> Self {
        Date {
            days: self.days + n,
        }
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

impl fmt::Debug for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Date({self})")
    }
}

fn is_leap(year: i32) -> bool {
    year % 4 == 0 && (year % 100 != 0 || year % 400 == 0)
}

fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 if is_leap(year) => 29,
        2 => 28,
        _ => 0,
    }
}

/// Days since 1970-01-01 from a civil date (Hinnant's algorithm).
fn days_from_civil(y: i32, m: u32, d: u32) -> i32 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as i64; // [0, 399]
    let mp = ((m + 9) % 12) as i64; // Mar=0 .. Feb=11
    let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    (era as i64 * 146_097 + doe - 719_468) as i32
}

/// Civil date from days since 1970-01-01 (Hinnant's algorithm).
fn civil_from_days(z: i32) -> (i32, u32, u32) {
    let z = z as i64 + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    ((if m <= 2 { y + 1 } else { y }) as i32, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        let d = Date::from_ymd(1970, 1, 1).unwrap();
        assert_eq!(d.days(), 0);
        assert_eq!(d.to_string(), "1970-01-01");
    }

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["1992-01-01", "1998-12-31", "2007-01-01", "1996-02-29"] {
            assert_eq!(Date::parse(s).unwrap().to_string(), s);
        }
    }

    #[test]
    fn known_day_counts() {
        assert_eq!(Date::parse("1970-01-02").unwrap().days(), 1);
        assert_eq!(Date::parse("1971-01-01").unwrap().days(), 365);
        // 2000-01-01 is 10957 days after the epoch.
        assert_eq!(Date::parse("2000-01-01").unwrap().days(), 10_957);
    }

    #[test]
    fn ordering_follows_timeline() {
        let a = Date::parse("1995-01-01").unwrap();
        let b = Date::parse("1996-01-01").unwrap();
        assert!(a < b);
        assert_eq!(a.plus_days(365), b);
    }

    #[test]
    fn leap_year_rules() {
        assert!(Date::from_ymd(1996, 2, 29).is_ok());
        assert!(Date::from_ymd(1900, 2, 29).is_err()); // century, not leap
        assert!(Date::from_ymd(2000, 2, 29).is_ok()); // 400-year rule
        assert!(Date::from_ymd(1997, 2, 29).is_err());
    }

    #[test]
    fn invalid_literals_rejected() {
        for s in [
            "",
            "1995",
            "1995-13-01",
            "1995-00-10",
            "1995-04-31",
            "x-y-z",
        ] {
            assert!(Date::parse(s).is_err(), "{s} should fail");
        }
    }

    #[test]
    fn year_extraction() {
        assert_eq!(Date::parse("1994-06-15").unwrap().year(), 1994);
        assert_eq!(Date::parse("1998-12-31").unwrap().year(), 1998);
    }

    #[test]
    fn round_trip_every_day_for_a_decade() {
        let start = Date::parse("1992-01-01").unwrap().days();
        for d in start..start + 3653 {
            let date = Date::from_days(d);
            let (y, m, dd) = date.ymd();
            assert_eq!(Date::from_ymd(y, m, dd).unwrap().days(), d);
        }
    }
}
