//! Schemas: ordered, named, typed field lists.

use crate::error::{Result, SipError};
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// The static type of a column.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Str,
    /// Calendar date.
    Date,
}

impl DataType {
    /// Can a value of type `self` be compared with one of `other`?
    pub fn comparable_with(self, other: DataType) -> bool {
        self == other
            || matches!(
                (self, other),
                (DataType::Int, DataType::Float) | (DataType::Float, DataType::Int)
            )
    }

    /// Is this a numeric type?
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Str => "STR",
            DataType::Date => "DATE",
        };
        f.write_str(s)
    }
}

/// One named, typed column.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Field {
    /// Column name (lower-case by convention, e.g. `p_partkey`).
    pub name: String,
    /// Column type.
    pub dtype: DataType,
}

impl Field {
    /// Construct a field.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Field {
            name: name.into(),
            dtype,
        }
    }
}

/// An ordered list of fields describing a row layout.
///
/// Schemas are immutable and shared (`Arc`) between operators.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Arc<[Field]>,
}

impl Schema {
    /// Build a schema from fields.
    pub fn new(fields: Vec<Field>) -> Self {
        Schema {
            fields: fields.into(),
        }
    }

    /// The fields, in row order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Position of the column named `name`.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| SipError::Plan(format!("column {name:?} not found in schema {self}")))
    }

    /// The field at `idx`.
    pub fn field(&self, idx: usize) -> &Field {
        &self.fields[idx]
    }

    /// Validate that `row` matches this schema (arity + value types, with
    /// NULL wild). Used by debug assertions and tests, not the hot path.
    pub fn check_row(&self, row: &[Value]) -> Result<()> {
        if row.len() != self.fields.len() {
            return Err(SipError::Data(format!(
                "row arity {} != schema arity {}",
                row.len(),
                self.fields.len()
            )));
        }
        for (v, f) in row.iter().zip(self.fields.iter()) {
            if let Some(dt) = v.data_type() {
                if dt != f.dtype && !(dt.is_numeric() && f.dtype.is_numeric()) {
                    return Err(SipError::Data(format!(
                        "value {v:?} does not match field {} ({})",
                        f.name, f.dtype
                    )));
                }
            }
        }
        Ok(())
    }

    /// Concatenate two schemas (join output layout).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut fields: Vec<Field> = self.fields.to_vec();
        fields.extend(other.fields.iter().cloned());
        Schema::new(fields)
    }

    /// Project a subset of columns by position.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema::new(indices.iter().map(|&i| self.fields[i].clone()).collect())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, fld) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}:{}", fld.name, fld.dtype)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Field::new("p_partkey", DataType::Int),
            Field::new("p_name", DataType::Str),
            Field::new("p_retailprice", DataType::Float),
        ])
    }

    #[test]
    fn index_lookup() {
        let s = sample();
        assert_eq!(s.index_of("p_name").unwrap(), 1);
        assert!(s.index_of("missing").is_err());
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn row_validation() {
        let s = sample();
        let ok = vec![Value::Int(1), Value::str("bolt"), Value::Float(9.5)];
        assert!(s.check_row(&ok).is_ok());
        let bad_arity = vec![Value::Int(1)];
        assert!(s.check_row(&bad_arity).is_err());
        let bad_type = vec![Value::str("x"), Value::str("bolt"), Value::Float(1.0)];
        assert!(s.check_row(&bad_type).is_err());
        // Int into Float column is fine (numeric widening).
        let widened = vec![Value::Int(1), Value::str("bolt"), Value::Int(9)];
        assert!(s.check_row(&widened).is_ok());
        // NULL is wild.
        let with_null = vec![Value::Null, Value::Null, Value::Null];
        assert!(s.check_row(&with_null).is_ok());
    }

    #[test]
    fn join_concatenates() {
        let s = sample();
        let t = Schema::new(vec![Field::new("ps_partkey", DataType::Int)]);
        let j = s.join(&t);
        assert_eq!(j.len(), 4);
        assert_eq!(j.index_of("ps_partkey").unwrap(), 3);
    }

    #[test]
    fn project_reorders() {
        let s = sample();
        let p = s.project(&[2, 0]);
        assert_eq!(p.field(0).name, "p_retailprice");
        assert_eq!(p.field(1).name, "p_partkey");
    }

    #[test]
    fn comparability_rules() {
        assert!(DataType::Int.comparable_with(DataType::Float));
        assert!(DataType::Float.comparable_with(DataType::Int));
        assert!(DataType::Str.comparable_with(DataType::Str));
        assert!(!DataType::Str.comparable_with(DataType::Int));
        assert!(!DataType::Date.comparable_with(DataType::Int));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(
            Schema::new(vec![Field::new("k", DataType::Int)]).to_string(),
            "(k:INT)"
        );
    }
}
