//! Minimal JSON string escaping shared by every hand-rolled JSON writer.
//!
//! The workspace emits two artifact families without a serde dependency —
//! `BENCH_*.json` (sip-bench figures) and `PROFILE_*.json` (sip-engine
//! query profiles) — and both need the same RFC 8259 string escaping.
//! Keeping one escaper here means the artifacts cannot disagree on how a
//! quote, backslash, or control character is encoded.

/// Append `s` to `out` as a JSON string literal, including the surrounding
/// quotes. Control characters (U+0000..U+001F) are `\uXXXX`-escaped (with
/// the `\n`/`\r`/`\t` short forms); quotes and backslashes are escaped;
/// everything else — including non-ASCII — passes through as UTF-8, which
/// RFC 8259 permits unescaped.
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `s` as a JSON string literal (quotes included).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    escape_into(&mut out, s);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_strings_pass_through() {
        assert_eq!(json_str("hello"), "\"hello\"");
        assert_eq!(json_str(""), "\"\"");
    }

    #[test]
    fn quotes_and_backslashes_escaped() {
        assert_eq!(json_str("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_str("a\\b"), "\"a\\\\b\"");
        assert_eq!(json_str("\\\""), "\"\\\\\\\"\"");
    }

    #[test]
    fn control_chars_escaped() {
        assert_eq!(json_str("a\nb"), "\"a\\nb\"");
        assert_eq!(json_str("a\rb"), "\"a\\rb\"");
        assert_eq!(json_str("a\tb"), "\"a\\tb\"");
        assert_eq!(json_str("\u{0}"), "\"\\u0000\"");
        assert_eq!(json_str("\u{1f}"), "\"\\u001f\"");
        // U+0020 (space) is the first unescaped code point.
        assert_eq!(json_str(" "), "\" \"");
    }

    #[test]
    fn non_ascii_passes_through_unescaped() {
        assert_eq!(json_str("héllo"), "\"héllo\"");
        assert_eq!(json_str("日本語"), "\"日本語\"");
        assert_eq!(json_str("🚀"), "\"🚀\"");
    }

    #[test]
    fn escaped_output_round_trips_as_valid_json() {
        // A torture string mixing every escape class; the escaped form must
        // contain no raw quote/control bytes except the delimiters.
        let s = "q\"b\\s\nnl\ttab\u{1}ctl héllo";
        let j = json_str(s);
        let inner = &j[1..j.len() - 1];
        assert!(!inner.contains('\n') && !inner.contains('\t'));
        assert!(!inner.bytes().any(|b| b < 0x20));
        // Unescaped quotes only at the ends.
        let mut prev_backslash = false;
        for c in inner.chars() {
            if c == '"' {
                assert!(prev_backslash, "raw quote inside: {j}");
            }
            prev_backslash = c == '\\' && !prev_backslash;
        }
    }
}
