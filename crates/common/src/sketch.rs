//! Streaming heavy-hitter detection: the space-saving sketch.
//!
//! Shuffle writers feed every routing digest they see through a
//! [`SpaceSaving`] sketch (one `offer` per row, sharing the digest pass the
//! router already computed), so a run can report *observed* hot keys and
//! per-destination imbalance with near-zero overhead. The planner's salted
//! routing decision itself is made from exact base-table frequencies —
//! routing must be fixed before rows flow, because a fully pipelined
//! symmetric join cannot retroactively replicate build rows of a key that
//! turns hot mid-stream — and the runtime sketch is the observability and
//! validation layer for that decision.
//!
//! The classic Metwally/Agrawal/El Abbadi guarantee: with capacity `k`,
//! every key whose true count exceeds `n / k` is present in the sketch, and
//! each entry's error is bounded by the count it inherited at eviction.

use crate::hash::FxHashMap;

/// One tracked candidate: estimated count and the overestimation bound it
/// inherited when it evicted a previous tenant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SketchEntry {
    /// The tracked key digest.
    pub digest: u64,
    /// Estimated occurrences (true count ≤ `count`).
    pub count: u64,
    /// Overestimation bound (true count ≥ `count - err`).
    pub err: u64,
}

/// A bounded-memory space-saving sketch over 64-bit key digests.
#[derive(Clone, Debug)]
pub struct SpaceSaving {
    capacity: usize,
    entries: FxHashMap<u64, (u64, u64)>, // digest → (count, err)
    total: u64,
}

impl SpaceSaving {
    /// A sketch tracking at most `capacity` candidates (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        SpaceSaving {
            capacity,
            entries: FxHashMap::default(),
            total: 0,
        }
    }

    /// Account one occurrence of `digest`.
    pub fn offer(&mut self, digest: u64) {
        self.total += 1;
        if let Some((count, _)) = self.entries.get_mut(&digest) {
            *count += 1;
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.insert(digest, (1, 0));
            return;
        }
        // Evict the minimum-count tenant; the newcomer inherits its count
        // as both estimate floor and error bound.
        let (&victim, &(min_count, _)) = self
            .entries
            .iter()
            .min_by_key(|&(d, &(c, _))| (c, *d))
            .expect("capacity >= 1");
        self.entries.remove(&victim);
        self.entries.insert(digest, (min_count + 1, min_count));
    }

    /// Total offers so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The candidate capacity this sketch was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Is every candidate slot occupied? An unfull sketch is exact: no
    /// eviction has happened, so an absent key truly has count 0.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// All tracked candidates, heaviest first (ties by digest, ascending,
    /// for determinism).
    pub fn entries(&self) -> Vec<SketchEntry> {
        let mut out: Vec<SketchEntry> = self
            .entries
            .iter()
            .map(|(&digest, &(count, err))| SketchEntry { digest, count, err })
            .collect();
        out.sort_by(|a, b| (b.count, a.digest).cmp(&(a.count, b.digest)));
        out
    }

    /// The smallest tracked count — what an untracked key *could* have
    /// accumulated before its last eviction. 0 while the sketch is unfull
    /// (absent keys are exactly 0 then).
    fn floor(&self) -> u64 {
        if !self.is_full() {
            return 0;
        }
        self.entries.values().map(|&(c, _)| c).min().unwrap_or(0)
    }

    /// Merge `other` into `self` (Agarwal et al.'s combinable summary
    /// merge). Symmetric in distribution: merging per-writer sketches in
    /// any order yields the same estimates for every surviving key.
    ///
    /// A key present in both sketches sums its counts and error bounds. A
    /// key present in only one side may still have occurred on the other —
    /// up to that side's minimum tracked count, if that side is full (an
    /// unfull sketch is exact, so the addend is 0) — so it inherits that
    /// floor as both count- and error-addend, preserving the invariant
    /// `count - err ≤ true count ≤ count`. The result is then pruned back
    /// to capacity, keeping the heaviest candidates.
    pub fn merge(&mut self, other: &SpaceSaving) {
        let self_floor = self.floor();
        let other_floor = other.floor();
        let mut merged: FxHashMap<u64, (u64, u64)> = FxHashMap::default();
        for (&d, &(c, e)) in &self.entries {
            let (oc, oe) = other
                .entries
                .get(&d)
                .copied()
                .unwrap_or((other_floor, other_floor));
            merged.insert(d, (c + oc, e + oe));
        }
        for (&d, &(c, e)) in &other.entries {
            merged.entry(d).or_insert((c + self_floor, e + self_floor));
        }
        self.total += other.total;
        self.capacity = self.capacity.max(other.capacity);
        if merged.len() > self.capacity {
            let mut all: Vec<(u64, (u64, u64))> = merged.iter().map(|(&d, &ce)| (d, ce)).collect();
            // Keep the heaviest `capacity` candidates (ties by digest so
            // the survivors do not depend on hash-map iteration order).
            all.sort_by(|a, b| (b.1 .0, a.0).cmp(&(a.1 .0, b.0)));
            all.truncate(self.capacity);
            merged = all.into_iter().collect();
        }
        self.entries = merged;
    }

    /// Estimated count for `digest` (0 when untracked).
    pub fn estimate(&self, digest: u64) -> u64 {
        self.entries.get(&digest).map(|&(c, _)| c).unwrap_or(0)
    }

    /// Tracked candidates whose *guaranteed* count (`count - err`) is at
    /// least `threshold`, heaviest first. Every key with a true count above
    /// `total / capacity` is guaranteed to be tracked, so no genuinely hot
    /// key can hide from this report.
    pub fn heavy_hitters(&self, threshold: u64) -> Vec<SketchEntry> {
        let mut out: Vec<SketchEntry> = self
            .entries
            .iter()
            .filter(|&(_, &(c, e))| c.saturating_sub(e) >= threshold)
            .map(|(&digest, &(count, err))| SketchEntry { digest, count, err })
            .collect();
        out.sort_by(|a, b| (b.count, a.digest).cmp(&(a.count, b.digest)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_capacity() {
        let mut s = SpaceSaving::new(8);
        for d in [1u64, 2, 2, 3, 3, 3] {
            s.offer(d);
        }
        assert_eq!(s.estimate(1), 1);
        assert_eq!(s.estimate(2), 2);
        assert_eq!(s.estimate(3), 3);
        assert_eq!(s.estimate(99), 0);
        assert_eq!(s.total(), 6);
    }

    #[test]
    fn hot_keys_survive_eviction_pressure() {
        // One key holds 40% of a stream that also carries 1000 distinct
        // cold keys through a capacity-16 sketch.
        let mut s = SpaceSaving::new(16);
        let hot = 0xB07u64;
        let mut n = 0u64;
        for i in 0..5000u64 {
            s.offer(hot);
            n += 1;
            for j in 0..2 {
                s.offer(1000 + (i * 2 + j) % 997);
                n += 1;
            }
        }
        assert_eq!(s.total(), n);
        // The hot key is tracked and its guaranteed count clears a 10%
        // threshold no cold key can reach.
        let hh = s.heavy_hitters(n / 10);
        assert_eq!(hh.len(), 1, "{hh:?}");
        assert_eq!(hh[0].digest, hot);
        assert!(hh[0].count >= 5000);
    }

    #[test]
    fn heavy_hitters_sorted_heaviest_first() {
        let mut s = SpaceSaving::new(8);
        for _ in 0..10 {
            s.offer(1);
        }
        for _ in 0..20 {
            s.offer(2);
        }
        let hh = s.heavy_hitters(5);
        assert_eq!(hh.len(), 2);
        assert_eq!(hh[0].digest, 2);
        assert_eq!(hh[1].digest, 1);
    }

    #[test]
    fn merge_of_unfull_sketches_is_exact() {
        let mut a = SpaceSaving::new(8);
        let mut b = SpaceSaving::new(8);
        for d in [1u64, 1, 2] {
            a.offer(d);
        }
        for d in [2u64, 3] {
            b.offer(d);
        }
        a.merge(&b);
        assert_eq!(a.total(), 5);
        assert_eq!(a.estimate(1), 2);
        assert_eq!(a.estimate(2), 2);
        assert_eq!(a.estimate(3), 1);
        // No eviction happened anywhere: every error bound stays 0.
        assert!(a.entries().iter().all(|e| e.err == 0));
    }

    #[test]
    fn merge_inherits_floor_for_one_sided_keys() {
        // b is full, so a key b never saw could still hold up to b's
        // minimum count — the merge must widen the error bound, not
        // silently claim exactness.
        let mut a = SpaceSaving::new(4);
        let mut b = SpaceSaving::new(2);
        for _ in 0..10 {
            a.offer(42);
        }
        for d in [7u64, 8, 9] {
            b.offer(d); // capacity 2: one eviction, floor >= 1
        }
        a.merge(&b);
        let e = a
            .entries()
            .into_iter()
            .find(|e| e.digest == 42)
            .expect("hot key survives");
        assert!(e.count >= 10, "count lower bound lost: {e:?}");
        assert!(e.err >= 1, "missing floor inheritance: {e:?}");
        assert!(e.count - e.err <= 10, "guarantee exceeds truth: {e:?}");
    }

    #[test]
    fn merge_prunes_to_capacity_keeping_heaviest() {
        let mut a = SpaceSaving::new(3);
        let mut b = SpaceSaving::new(3);
        for d in [1u64, 1, 1, 2, 2, 3] {
            a.offer(d);
        }
        for d in [4u64, 4, 4, 4, 5, 6] {
            b.offer(d);
        }
        a.merge(&b);
        assert_eq!(a.capacity(), 3);
        let entries = a.entries();
        assert_eq!(entries.len(), 3);
        // The two genuinely heavy keys must survive the prune.
        assert!(entries.iter().any(|e| e.digest == 4));
        assert!(entries.iter().any(|e| e.digest == 1));
    }

    #[test]
    fn capacity_one_degenerates_gracefully() {
        let mut s = SpaceSaving::new(0); // clamped to 1
        for d in [7u64, 7, 7, 9] {
            s.offer(d);
        }
        assert_eq!(s.total(), 4);
        // Exactly one tenant at any time.
        assert!(s.estimate(7) + s.estimate(9) >= 3);
    }
}
