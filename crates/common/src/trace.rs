//! `sip-trace`: span/clock primitives for the executor's observability
//! layer.
//!
//! Every operator thread owns an [`OpTracer`] — a purely thread-local
//! accumulator of phase timings, span events, routing counts, and
//! channel-occupancy samples. The hot path touches **no shared state**: a
//! span is two `Instant` reads and a couple of array adds. Tracers are
//! handed to the shared [`TraceHub`] exactly once, when the operator
//! finishes ([`OpTracer::flush`]), and the hub merges everything
//! deterministically at collect time ([`TraceHub::drain`]).
//!
//! Tracing is gated by [`TraceLevel`]:
//!
//! * [`TraceLevel::Off`] — `begin`/`end` are a single branch; no clock
//!   reads. Routing counts still flow (they replace the old
//!   `Mutex<Vec<u64>>` hot-path merge in `OpMetrics`), so skew metrics
//!   never regress when tracing is disabled.
//! * [`TraceLevel::Ops`] — per-phase nanosecond totals and span counts per
//!   operator; no event ring. This is cheap enough to leave on for
//!   benchmark runs (phase breakdowns in `BENCH_*` figures).
//! * [`TraceLevel::Spans`] — additionally records individual
//!   [`SpanEvent`]s into a bounded per-thread ring (profiling runs).

use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Number of instrumented execution phases.
pub const N_PHASES: usize = 5;

/// Per-thread span-event ring capacity ([`TraceLevel::Spans`] only).
/// Overflow increments [`ThreadTrace::events_dropped`] instead of growing.
pub const EVENT_RING_CAP: usize = 4096;

/// How much runtime detail the executor records.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TraceLevel {
    /// No timing at all (the default). Routing counts still flow.
    #[default]
    Off,
    /// Per-operator phase totals and span counts.
    Ops,
    /// Phase totals plus individual span events (bounded ring).
    Spans,
}

impl TraceLevel {
    /// True when any timing is recorded.
    #[inline]
    pub fn enabled(self) -> bool {
        !matches!(self, TraceLevel::Off)
    }

    /// True when individual span events are recorded.
    #[inline]
    pub fn spans(self) -> bool {
        matches!(self, TraceLevel::Spans)
    }

    /// Stable lowercase name (used in profile JSON).
    pub fn name(self) -> &'static str {
        match self {
            TraceLevel::Off => "off",
            TraceLevel::Ops => "ops",
            TraceLevel::Spans => "spans",
        }
    }
}

/// One attributed slice of an operator thread's wall-clock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Operator-interior work: predicate eval, digest passes, probe/insert
    /// loops, routing.
    Compute = 0,
    /// Probing injected AIP filters (the tap stack).
    TapProbe = 1,
    /// Feeding admitted rows to AIP working-set builders (`admit_batch`).
    AdmitBuild = 2,
    /// Blocked sending downstream (backpressure shows up here).
    ChannelSend = 3,
    /// Blocked receiving from upstream (starvation shows up here).
    ChannelRecv = 4,
}

impl Phase {
    /// All phases, index-ordered (`phase as usize` is the array slot).
    pub const ALL: [Phase; N_PHASES] = [
        Phase::Compute,
        Phase::TapProbe,
        Phase::AdmitBuild,
        Phase::ChannelSend,
        Phase::ChannelRecv,
    ];

    /// Stable snake_case name (used in profile JSON and reports).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Compute => "compute",
            Phase::TapProbe => "tap_probe",
            Phase::AdmitBuild => "admit_build",
            Phase::ChannelSend => "channel_send",
            Phase::ChannelRecv => "channel_recv",
        }
    }
}

/// One recorded span ([`TraceLevel::Spans`] only). Times are nanoseconds
/// since the owning [`TraceHub`]'s epoch.
#[derive(Clone, Debug)]
pub struct SpanEvent {
    /// Operator id (raw `OpId` index).
    pub op: u32,
    /// Worker partition, `None` for serial-section operators.
    pub partition: Option<u32>,
    /// What the thread was doing.
    pub phase: Phase,
    /// Span start, nanos since hub epoch.
    pub t_start: u64,
    /// Span end, nanos since hub epoch.
    pub t_end: u64,
}

/// AIP filter lifecycle event kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FilterEventKind {
    /// A working set was sealed into a filter (build cost attached).
    Built,
    /// A filter was published under a partition scope (salted routing).
    Scoped,
    /// Per-partition filters were OR-merged into a plan-wide union.
    OrMerged,
    /// A filter crossed a simulated network link to a remote site.
    Shipped,
}

impl FilterEventKind {
    /// Stable lowercase name (used in profile JSON).
    pub fn name(self) -> &'static str {
        match self {
            FilterEventKind::Built => "built",
            FilterEventKind::Scoped => "scoped",
            FilterEventKind::OrMerged => "or_merged",
            FilterEventKind::Shipped => "shipped",
        }
    }
}

/// One AIP filter lifecycle event. These are rare (a handful per query) and
/// recorded through the hub's cold path regardless of [`TraceLevel`].
#[derive(Clone, Debug)]
pub struct FilterEvent {
    /// What happened.
    pub kind: FilterEventKind,
    /// The operator the filter targets (raw `OpId` index).
    pub site: u32,
    /// Human-readable filter label (producer attribute).
    pub label: String,
    /// When, nanos since hub epoch.
    pub t_nanos: u64,
    /// Cost of building the working set (0 when not applicable).
    pub build_nanos: u64,
    /// Keys in the filter's working set.
    pub keys: u64,
    /// Filter footprint in bytes.
    pub bytes: u64,
}

/// Everything one operator thread accumulated: phase totals, span counts,
/// the optional event ring, routing counts, and occupancy samples. Merged
/// into per-operator metrics at collect time.
#[derive(Clone, Debug, Default)]
pub struct ThreadTrace {
    /// Operator id (raw `OpId` index).
    pub op: u32,
    /// Worker partition, `None` for serial-section operators.
    pub partition: Option<u32>,
    /// Nanoseconds per phase.
    pub phase_nanos: [u64; N_PHASES],
    /// Spans recorded per phase.
    pub phase_counts: [u64; N_PHASES],
    /// Emitter-flush nanoseconds that elapsed *inside* an enclosing
    /// `Compute` span (auto-flushes triggered mid-loop by `push`). The
    /// merge subtracts these from the operator's `Compute` total so phases
    /// partition the thread's busy time instead of double-counting.
    pub nested_nanos: u64,
    /// Individual spans ([`TraceLevel::Spans`] only), bounded by
    /// [`EVENT_RING_CAP`].
    pub events: Vec<SpanEvent>,
    /// Spans not recorded because the ring was full.
    pub events_dropped: u64,
    /// For routing operators: rows sent per destination partition.
    pub routed: Vec<u64>,
    /// Heavy-hitter keys the routing sketch observed.
    pub hot_keys: u64,
    /// The routing sketch itself (shuffle writers only): the per-writer
    /// frequency summary a stage-boundary controller merges across the
    /// mesh to compare *observed* key frequencies against the base-table
    /// statistics the plan was frozen from.
    pub sketch: Option<crate::sketch::SpaceSaving>,
    /// Sum of sampled downstream-channel queue lengths (one sample per
    /// batch send while tracing) — `sum / samples` is the mean occupancy
    /// gauge; high mean occupancy on a mesh writer means its reader is the
    /// bottleneck.
    pub occupancy_sum: u64,
    /// Number of occupancy samples.
    pub occupancy_samples: u64,
}

/// Deterministically ordered merge of every flushed [`ThreadTrace`]:
/// threads sorted by `(op, partition)`, events by `(t_start, op, phase)`,
/// filter events by time. Two runs that record the same spans produce the
/// same snapshot regardless of thread flush order.
#[derive(Clone, Debug, Default)]
pub struct TraceSnapshot {
    /// All flushed thread traces.
    pub threads: Vec<ThreadTrace>,
    /// All span events across threads ([`TraceLevel::Spans`] only).
    pub events: Vec<SpanEvent>,
    /// All filter lifecycle events.
    pub filters: Vec<FilterEvent>,
}

/// Shared collection point for one execution. Operator threads interact
/// with it only through [`TraceHub::tracer`] (at spawn) and
/// [`OpTracer::flush`] (at finish) — one mutex acquisition per thread per
/// query, never per batch.
#[derive(Debug)]
pub struct TraceHub {
    level: TraceLevel,
    epoch: Instant,
    sink: Mutex<Vec<ThreadTrace>>,
    filter_events: Mutex<Vec<FilterEvent>>,
}

impl TraceHub {
    /// A hub recording at `level`. The epoch (t=0 for all span times) is
    /// the moment of construction.
    pub fn new(level: TraceLevel) -> Arc<Self> {
        Arc::new(TraceHub {
            level,
            epoch: Instant::now(),
            sink: Mutex::new(Vec::new()),
            filter_events: Mutex::new(Vec::new()),
        })
    }

    /// The configured level.
    #[inline]
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// Nanoseconds since the hub epoch.
    #[inline]
    pub fn now(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// A thread-local tracer for operator `op` running in `partition`.
    pub fn tracer(self: &Arc<Self>, op: u32, partition: Option<u32>) -> OpTracer {
        OpTracer {
            hub: Arc::clone(self),
            enabled: self.level.enabled(),
            spans: self.level.spans(),
            trace: ThreadTrace {
                op,
                partition,
                ..ThreadTrace::default()
            },
        }
    }

    /// Record an AIP filter lifecycle event (cold path; always recorded —
    /// there are only a handful per query and filter ROI reporting should
    /// not require tracing to be on).
    pub fn filter_event(&self, ev: FilterEvent) {
        self.filter_events.lock().unwrap().push(ev);
    }

    /// Merge everything flushed so far into a deterministic
    /// [`TraceSnapshot`]. Non-destructive: callers may drain more than
    /// once (later drains see later flushes).
    pub fn drain(&self) -> TraceSnapshot {
        let mut threads: Vec<ThreadTrace> = self.sink.lock().unwrap().clone();
        threads.sort_by_key(|t| (t.op, t.partition));
        let mut events: Vec<SpanEvent> = threads.iter().flat_map(|t| t.events.clone()).collect();
        events.sort_by_key(|e| (e.t_start, e.op, e.phase as usize));
        let mut filters: Vec<FilterEvent> = self.filter_events.lock().unwrap().clone();
        filters.sort_by_key(|f| (f.t_nanos, f.site));
        TraceSnapshot {
            threads,
            events,
            filters,
        }
    }
}

/// Thread-local span recorder for one operator thread. All methods are
/// `&mut self` on plain fields — no atomics, no locks — until the single
/// [`OpTracer::flush`] at operator finish.
#[derive(Debug)]
pub struct OpTracer {
    hub: Arc<TraceHub>,
    enabled: bool,
    spans: bool,
    trace: ThreadTrace,
}

impl OpTracer {
    /// True when phase timing is being recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Start a span. Returns the start timestamp (0 when tracing is off —
    /// `end`/`add` ignore it in that case).
    #[inline]
    pub fn begin(&self) -> u64 {
        if self.enabled {
            self.hub.now()
        } else {
            0
        }
    }

    /// Close a span started at `t_start`: adds its duration to the phase
    /// total, counts it, and (at [`TraceLevel::Spans`]) records the event.
    #[inline]
    pub fn end(&mut self, phase: Phase, t_start: u64) {
        if !self.enabled {
            return;
        }
        let t_end = self.hub.now();
        let i = phase as usize;
        self.trace.phase_nanos[i] += t_end.saturating_sub(t_start);
        self.trace.phase_counts[i] += 1;
        if self.spans {
            if self.trace.events.len() < EVENT_RING_CAP {
                self.trace.events.push(SpanEvent {
                    op: self.trace.op,
                    partition: self.trace.partition,
                    phase,
                    t_start,
                    t_end,
                });
            } else {
                self.trace.events_dropped += 1;
            }
        }
    }

    /// Accumulate time into a phase **without** counting a new span — for
    /// an operator whose per-batch work is split across two code intervals
    /// but should read as one logical span (keeps `Compute` span counts
    /// equal to batch counts).
    #[inline]
    pub fn add(&mut self, phase: Phase, t_start: u64) {
        if !self.enabled {
            return;
        }
        let t_end = self.hub.now();
        self.trace.phase_nanos[phase as usize] += t_end.saturating_sub(t_start);
    }

    /// Record emitter-flush time that elapsed inside an enclosing
    /// `Compute` span (see [`ThreadTrace::nested_nanos`]).
    #[inline]
    pub fn add_nested(&mut self, t_start: u64) {
        if !self.enabled {
            return;
        }
        let t_end = self.hub.now();
        self.trace.nested_nanos += t_end.saturating_sub(t_start);
    }

    /// Merge per-destination routing counts and sketch-observed heavy
    /// hitters (recorded even with tracing off — this path replaces the
    /// old hot-path `Mutex` merge in `OpMetrics::record_routing`).
    pub fn set_routed(&mut self, routed: &[u64], hot_keys: u64) {
        if self.trace.routed.len() < routed.len() {
            self.trace.routed.resize(routed.len(), 0);
        }
        for (slot, n) in self.trace.routed.iter_mut().zip(routed.iter()) {
            *slot += n;
        }
        self.trace.hot_keys += hot_keys;
    }

    /// Attach the routing sketch (recorded even with tracing off, like
    /// routing counts — stage-boundary feedback must not require a trace
    /// level). Replaces any previously attached sketch.
    pub fn set_sketch(&mut self, sketch: crate::sketch::SpaceSaving) {
        self.trace.sketch = Some(sketch);
    }

    /// Sample a downstream channel's queue length (call once per send
    /// while tracing; no-op when off).
    #[inline]
    pub fn sample_occupancy(&mut self, queued: usize) {
        if !self.enabled {
            return;
        }
        self.trace.occupancy_sum += queued as u64;
        self.trace.occupancy_samples += 1;
    }

    /// Hand the accumulated trace to the hub — the one cold-path lock of
    /// this thread's lifetime. Pushes whenever there is anything to report
    /// (timing, events, or routing counts), so routing metrics flow even
    /// at [`TraceLevel::Off`].
    pub fn flush(self) {
        let has_data = self.enabled
            || !self.trace.routed.is_empty()
            || self.trace.hot_keys > 0
            || self.trace.sketch.is_some()
            || !self.trace.events.is_empty();
        if has_data {
            self.hub.sink.lock().unwrap().push(self.trace);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_level_records_nothing_but_routing() {
        let hub = TraceHub::new(TraceLevel::Off);
        let mut t = hub.tracer(3, None);
        let s = t.begin();
        assert_eq!(s, 0);
        t.end(Phase::Compute, s);
        t.set_routed(&[4, 0, 2], 1);
        t.flush();
        let snap = hub.drain();
        assert_eq!(snap.threads.len(), 1);
        let tt = &snap.threads[0];
        assert_eq!(tt.phase_nanos, [0; N_PHASES]);
        assert_eq!(tt.phase_counts, [0; N_PHASES]);
        assert_eq!(tt.routed, vec![4, 0, 2]);
        assert_eq!(tt.hot_keys, 1);
        assert!(snap.events.is_empty());
    }

    #[test]
    fn tracer_with_no_data_does_not_flush() {
        let hub = TraceHub::new(TraceLevel::Off);
        let t = hub.tracer(0, None);
        t.flush();
        assert!(hub.drain().threads.is_empty());
    }

    #[test]
    fn ops_level_accumulates_phase_totals_without_events() {
        let hub = TraceHub::new(TraceLevel::Ops);
        let mut t = hub.tracer(1, Some(0));
        for _ in 0..3 {
            let s = t.begin();
            t.end(Phase::Compute, s);
        }
        let s = t.begin();
        t.add(Phase::Compute, s); // accumulate-only: no extra span count
        let s = t.begin();
        t.end(Phase::ChannelSend, s);
        t.flush();
        let snap = hub.drain();
        let tt = &snap.threads[0];
        assert_eq!(tt.phase_counts[Phase::Compute as usize], 3);
        assert_eq!(tt.phase_counts[Phase::ChannelSend as usize], 1);
        assert!(snap.events.is_empty(), "Ops level records no event ring");
    }

    #[test]
    fn spans_level_records_bounded_events() {
        let hub = TraceHub::new(TraceLevel::Spans);
        let mut t = hub.tracer(2, Some(1));
        for _ in 0..EVENT_RING_CAP + 10 {
            let s = t.begin();
            t.end(Phase::TapProbe, s);
        }
        t.flush();
        let snap = hub.drain();
        assert_eq!(snap.events.len(), EVENT_RING_CAP);
        assert_eq!(snap.threads[0].events_dropped, 10);
        assert_eq!(
            snap.threads[0].phase_counts[Phase::TapProbe as usize],
            (EVENT_RING_CAP + 10) as u64
        );
        let e = &snap.events[0];
        assert_eq!(e.op, 2);
        assert_eq!(e.partition, Some(1));
        assert!(e.t_end >= e.t_start);
    }

    #[test]
    fn drain_orders_threads_deterministically() {
        // Flush the same traces into two hubs in opposite orders: the
        // drained snapshots must agree structurally.
        let build = |reverse: bool| {
            let hub = TraceHub::new(TraceLevel::Ops);
            let mut tracers = Vec::new();
            for (op, part) in [(2u32, Some(1u32)), (0, None), (2, Some(0)), (1, None)] {
                let mut t = hub.tracer(op, part);
                let s = t.begin();
                t.end(Phase::Compute, s);
                t.set_routed(&[op as u64], 0);
                tracers.push(t);
            }
            if reverse {
                tracers.reverse();
            }
            for t in tracers {
                t.flush();
            }
            hub.drain()
                .threads
                .iter()
                .map(|t| (t.op, t.partition, t.routed.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(build(false), build(true));
    }

    #[test]
    fn routed_merge_grows_and_sums() {
        let hub = TraceHub::new(TraceLevel::Off);
        let mut t = hub.tracer(0, None);
        t.set_routed(&[5, 0, 7], 1);
        t.set_routed(&[1, 2, 3, 4], 2);
        t.flush();
        let snap = hub.drain();
        assert_eq!(snap.threads[0].routed, vec![6, 2, 10, 4]);
        assert_eq!(snap.threads[0].hot_keys, 3);
    }

    #[test]
    fn filter_events_sorted_by_time() {
        let hub = TraceHub::new(TraceLevel::Off);
        for (t_nanos, site) in [(20u64, 1u32), (10, 2), (20, 0)] {
            hub.filter_event(FilterEvent {
                kind: FilterEventKind::Built,
                site,
                label: "k".into(),
                t_nanos,
                build_nanos: 0,
                keys: 1,
                bytes: 8,
            });
        }
        let snap = hub.drain();
        let order: Vec<(u64, u32)> = snap.filters.iter().map(|f| (f.t_nanos, f.site)).collect();
        assert_eq!(order, vec![(10, 2), (20, 0), (20, 1)]);
    }

    #[test]
    fn phase_names_are_stable() {
        let names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            vec![
                "compute",
                "tap_probe",
                "admit_build",
                "channel_send",
                "channel_recv"
            ]
        );
        assert_eq!(TraceLevel::Ops.name(), "ops");
        assert_eq!(FilterEventKind::OrMerged.name(), "or_merged");
    }
}
