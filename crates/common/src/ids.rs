//! Strongly-typed identifiers.
//!
//! Attribute identity is the backbone of sideways information passing: the
//! AIP registry, the source-predicate graph, and filter injection all key off
//! [`AttrId`]s that are global to a query, independent of where a column
//! physically sits in any operator's output row.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                $name(v)
            }
        }
    };
}

id_type!(
    /// A query-global attribute (column instance) identifier.
    ///
    /// Two scans of the same base table produce *different* `AttrId`s for the
    /// same column — exactly what the paper needs to distinguish `PS1` from
    /// `PS2` in the running example.
    AttrId,
    "a"
);

id_type!(
    /// A physical-plan operator identifier, unique within one executed query.
    OpId,
    "op"
);

id_type!(
    /// A base-table identifier within a catalog.
    TableId,
    "t"
);

id_type!(
    /// A site (node) identifier in the simulated distributed setting.
    SiteId,
    "site"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_with_prefix() {
        assert_eq!(AttrId(7).to_string(), "a7");
        assert_eq!(OpId(2).to_string(), "op2");
        assert_eq!(TableId(0).to_string(), "t0");
        assert_eq!(SiteId(1).to_string(), "site1");
        assert_eq!(format!("{:?}", AttrId(7)), "a7");
    }

    #[test]
    fn ids_are_ordered_and_indexable() {
        assert!(AttrId(1) < AttrId(2));
        assert_eq!(AttrId(9).index(), 9usize);
        assert_eq!(AttrId::from(3u32), AttrId(3));
    }
}
