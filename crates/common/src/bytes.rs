//! Global intermediate-state byte accounting.
//!
//! The paper's space figures (Figs. 7, 8, 11, 12, 14) plot the *peak of the
//! sum* of intermediate state across all stateful operators. Each operator
//! reports deltas to a shared [`StateTracker`]; the tracker maintains the
//! exact running sum and its high-water mark with lock-free atomics, so
//! accounting is accurate even with every operator on its own thread.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, thread-safe tracker of current and peak intermediate-state bytes.
#[derive(Debug, Default)]
pub struct StateTracker {
    current: AtomicI64,
    peak: AtomicU64,
}

impl StateTracker {
    /// New tracker at zero.
    pub fn new() -> Arc<Self> {
        Arc::new(StateTracker::default())
    }

    /// Record `delta` bytes of state growth (positive) or release (negative).
    ///
    /// The peak is updated with a CAS loop on the post-add value, so the
    /// recorded peak is an exact high-water mark of the sum (not a sample).
    pub fn add(&self, delta: i64) {
        let now = self.current.fetch_add(delta, Ordering::Relaxed) + delta;
        if delta > 0 {
            let now_u = now.max(0) as u64;
            let mut seen = self.peak.load(Ordering::Relaxed);
            while now_u > seen {
                match self.peak.compare_exchange_weak(
                    seen,
                    now_u,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(cur) => seen = cur,
                }
            }
        }
    }

    /// Current total bytes (may transiently go negative under racy release
    /// ordering; clamped at read).
    pub fn current(&self) -> u64 {
        self.current.load(Ordering::Relaxed).max(0) as u64
    }

    /// High-water mark of the total.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Reset both counters (between benchmark iterations).
    pub fn reset(&self) {
        self.current.store(0, Ordering::Relaxed);
        self.peak.store(0, Ordering::Relaxed);
    }
}

/// Pretty-print a byte count as `12.3 MB` style.
pub fn human_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut v = bytes as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{v:.2} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn tracks_current_and_peak() {
        let t = StateTracker::new();
        t.add(100);
        t.add(200);
        assert_eq!(t.current(), 300);
        assert_eq!(t.peak(), 300);
        t.add(-250);
        assert_eq!(t.current(), 50);
        assert_eq!(t.peak(), 300);
        t.add(400);
        assert_eq!(t.peak(), 450);
    }

    #[test]
    fn reset_zeroes_everything() {
        let t = StateTracker::new();
        t.add(1000);
        t.reset();
        assert_eq!(t.current(), 0);
        assert_eq!(t.peak(), 0);
    }

    #[test]
    fn concurrent_adds_balance_to_zero() {
        let t = StateTracker::new();
        let mut handles = vec![];
        for _ in 0..8 {
            let t = Arc::clone(&t);
            handles.push(thread::spawn(move || {
                for _ in 0..10_000 {
                    t.add(16);
                    t.add(-16);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.current(), 0);
        assert!(t.peak() >= 16);
        // Peak cannot exceed everything held simultaneously.
        assert!(t.peak() <= 8 * 16);
    }

    #[test]
    fn human_bytes_formatting() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.00 KB");
        assert_eq!(human_bytes(5 * 1024 * 1024), "5.00 MB");
        assert_eq!(human_bytes(0), "0 B");
    }
}
