//! The workspace-wide error type.

use std::fmt;

/// Result alias used across all SIP crates.
pub type Result<T, E = SipError> = std::result::Result<T, E>;

/// How an attributed execution failure came about. Ordered roughly by
/// how much the class says about root cause: a `Panic` or `Error` *is*
/// the root cause; `Disconnect` and `Cancelled` are symptoms of a
/// failure elsewhere and lose the end-of-query precedence race against
/// primary classes (see `sip-engine`'s error slots).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecFailure {
    /// The operator's thread panicked; the payload was contained by
    /// `catch_unwind` and converted into this error.
    Panic,
    /// The operator returned an error of its own.
    Error,
    /// An input channel disconnected without a clean `Eof` — the
    /// upstream operator died. Secondary: the upstream failure is the
    /// story.
    Disconnect,
    /// The shared `CancelToken` tripped (first failure elsewhere, a
    /// deadline, or an explicit cancel). Secondary.
    Cancelled,
}

impl ExecFailure {
    /// Short tag for messages and logs.
    pub fn tag(&self) -> &'static str {
        match self {
            ExecFailure::Panic => "panic",
            ExecFailure::Error => "error",
            ExecFailure::Disconnect => "disconnect",
            ExecFailure::Cancelled => "cancelled",
        }
    }

    /// Does this class identify the root cause (vs. a downstream
    /// symptom of a failure elsewhere)?
    pub fn is_primary(&self) -> bool {
        matches!(self, ExecFailure::Panic | ExecFailure::Error)
    }
}

/// Errors produced anywhere in the SIP stack.
///
/// The variants mirror the layer that raised them; the payload is a
/// human-readable description. Query processing errors are not recoverable
/// mid-pipeline, so a descriptive string is the appropriate granularity.
/// The one structured exception is [`SipError::ExecAt`]: execution
/// failures in a many-threaded pipeline are only diagnosable when they
/// carry *where* — operator id, operator kind, partition — and *how*
/// ([`ExecFailure`]), so the engine attributes them instead of flattening
/// to a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SipError {
    /// Malformed input data or data-generation failure.
    Data(String),
    /// Invalid expression (type mismatch, unbound column, ...).
    Expr(String),
    /// Invalid logical plan (unknown attribute, arity mismatch, ...).
    Plan(String),
    /// Optimizer failure (no join order, missing statistics, ...).
    Optimize(String),
    /// Runtime execution failure (channel teardown, operator panic, ...).
    Exec(String),
    /// Attributed runtime execution failure: what happened, at which
    /// operator, in which partition, and how it failed.
    ExecAt {
        /// Human-readable description (panic payload, error message, ...).
        message: String,
        /// The physical operator id the failure is attributed to.
        op: u32,
        /// The operator kind name (`"HashJoin"`, `"Scan"`, ...).
        kind: String,
        /// The partition the operator ran in, when partition-parallel.
        partition: Option<u32>,
        /// Failure class: panic, error, disconnect, or cancellation.
        class: ExecFailure,
    },
    /// Simulated-network failure (unknown site, link misconfiguration, ...).
    Net(String),
    /// Configuration error in a harness or example.
    Config(String),
}

impl SipError {
    /// Build an attributed execution error.
    pub fn exec_at(
        message: impl Into<String>,
        op: u32,
        kind: impl Into<String>,
        partition: Option<u32>,
        class: ExecFailure,
    ) -> Self {
        SipError::ExecAt {
            message: message.into(),
            op,
            kind: kind.into(),
            partition,
            class,
        }
    }

    /// The layer tag, useful for compact logging.
    pub fn layer(&self) -> &'static str {
        match self {
            SipError::Data(_) => "data",
            SipError::Expr(_) => "expr",
            SipError::Plan(_) => "plan",
            SipError::Optimize(_) => "optimize",
            SipError::Exec(_) | SipError::ExecAt { .. } => "exec",
            SipError::Net(_) => "net",
            SipError::Config(_) => "config",
        }
    }

    /// The human-readable message (without attribution — see `Display`
    /// for the full form).
    pub fn message(&self) -> &str {
        match self {
            SipError::Data(m)
            | SipError::Expr(m)
            | SipError::Plan(m)
            | SipError::Optimize(m)
            | SipError::Exec(m)
            | SipError::ExecAt { message: m, .. }
            | SipError::Net(m)
            | SipError::Config(m) => m,
        }
    }

    /// The failure class when this is an attributed execution error.
    pub fn exec_class(&self) -> Option<ExecFailure> {
        match self {
            SipError::ExecAt { class, .. } => Some(*class),
            _ => None,
        }
    }

    /// Does this error identify a root cause (an attributed panic or
    /// operator error, or any non-`ExecAt` error)? Disconnects and
    /// cancellations are symptoms and report `false`.
    pub fn is_primary(&self) -> bool {
        match self {
            SipError::ExecAt { class, .. } => class.is_primary(),
            _ => true,
        }
    }
}

impl fmt::Display for SipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SipError::ExecAt {
                message,
                op,
                kind,
                partition,
                class,
            } => {
                write!(
                    f,
                    "exec error: {message} [{} at {kind} op {op}",
                    class.tag()
                )?;
                if let Some(p) = partition {
                    write!(f, ", partition {p}")?;
                }
                write!(f, "]")
            }
            other => write!(f, "{} error: {}", other.layer(), other.message()),
        }
    }
}

impl std::error::Error for SipError {}

/// Shorthand constructors: `plan_err!("bad attr {a}")`.
#[macro_export]
macro_rules! plan_err {
    ($($arg:tt)*) => { $crate::error::SipError::Plan(format!($($arg)*)) };
}

/// Shorthand constructor for [`SipError::Exec`].
#[macro_export]
macro_rules! exec_err {
    ($($arg:tt)*) => { $crate::error::SipError::Exec(format!($($arg)*)) };
}

/// Shorthand constructor for [`SipError::Expr`].
#[macro_export]
macro_rules! expr_err {
    ($($arg:tt)*) => { $crate::error::SipError::Expr(format!($($arg)*)) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_layer_and_message() {
        let e = SipError::Plan("attribute #4 unknown".into());
        assert_eq!(e.to_string(), "plan error: attribute #4 unknown");
        assert_eq!(e.layer(), "plan");
        assert_eq!(e.message(), "attribute #4 unknown");
    }

    #[test]
    fn macros_build_correct_variants() {
        let e = plan_err!("x = {}", 3);
        assert_eq!(e, SipError::Plan("x = 3".into()));
        let e = exec_err!("boom");
        assert_eq!(e, SipError::Exec("boom".into()));
        let e = expr_err!("bad type");
        assert_eq!(e, SipError::Expr("bad type".into()));
    }

    #[test]
    fn all_layers_are_distinct() {
        let layers: Vec<&str> = [
            SipError::Data(String::new()),
            SipError::Expr(String::new()),
            SipError::Plan(String::new()),
            SipError::Optimize(String::new()),
            SipError::Exec(String::new()),
            SipError::Net(String::new()),
            SipError::Config(String::new()),
        ]
        .iter()
        .map(|e| e.layer())
        .collect();
        let set: std::collections::HashSet<_> = layers.iter().collect();
        assert_eq!(set.len(), layers.len());
    }

    #[test]
    fn attributed_exec_errors_carry_context() {
        let e = SipError::exec_at("division by zero", 7, "Filter", Some(2), ExecFailure::Error);
        assert_eq!(e.layer(), "exec");
        assert_eq!(e.message(), "division by zero");
        assert_eq!(e.exec_class(), Some(ExecFailure::Error));
        assert!(e.is_primary());
        assert_eq!(
            e.to_string(),
            "exec error: division by zero [error at Filter op 7, partition 2]"
        );

        let d = SipError::exec_at(
            "input closed before Eof",
            3,
            "Merge",
            None,
            ExecFailure::Disconnect,
        );
        assert!(!d.is_primary());
        assert_eq!(
            d.to_string(),
            "exec error: input closed before Eof [disconnect at Merge op 3]"
        );
        // Plain string variants stay primary and unattributed.
        assert!(exec_err!("boom").is_primary());
        assert_eq!(exec_err!("boom").exec_class(), None);
    }
}
