//! The workspace-wide error type.

use std::fmt;

/// Result alias used across all SIP crates.
pub type Result<T, E = SipError> = std::result::Result<T, E>;

/// Errors produced anywhere in the SIP stack.
///
/// The variants mirror the layer that raised them; the payload is a
/// human-readable description. Query processing errors are not recoverable
/// mid-pipeline, so a descriptive string is the appropriate granularity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SipError {
    /// Malformed input data or data-generation failure.
    Data(String),
    /// Invalid expression (type mismatch, unbound column, ...).
    Expr(String),
    /// Invalid logical plan (unknown attribute, arity mismatch, ...).
    Plan(String),
    /// Optimizer failure (no join order, missing statistics, ...).
    Optimize(String),
    /// Runtime execution failure (channel teardown, operator panic, ...).
    Exec(String),
    /// Simulated-network failure (unknown site, link misconfiguration, ...).
    Net(String),
    /// Configuration error in a harness or example.
    Config(String),
}

impl SipError {
    /// The layer tag, useful for compact logging.
    pub fn layer(&self) -> &'static str {
        match self {
            SipError::Data(_) => "data",
            SipError::Expr(_) => "expr",
            SipError::Plan(_) => "plan",
            SipError::Optimize(_) => "optimize",
            SipError::Exec(_) => "exec",
            SipError::Net(_) => "net",
            SipError::Config(_) => "config",
        }
    }

    /// The human-readable message.
    pub fn message(&self) -> &str {
        match self {
            SipError::Data(m)
            | SipError::Expr(m)
            | SipError::Plan(m)
            | SipError::Optimize(m)
            | SipError::Exec(m)
            | SipError::Net(m)
            | SipError::Config(m) => m,
        }
    }
}

impl fmt::Display for SipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error: {}", self.layer(), self.message())
    }
}

impl std::error::Error for SipError {}

/// Shorthand constructors: `plan_err!("bad attr {a}")`.
#[macro_export]
macro_rules! plan_err {
    ($($arg:tt)*) => { $crate::error::SipError::Plan(format!($($arg)*)) };
}

/// Shorthand constructor for [`SipError::Exec`].
#[macro_export]
macro_rules! exec_err {
    ($($arg:tt)*) => { $crate::error::SipError::Exec(format!($($arg)*)) };
}

/// Shorthand constructor for [`SipError::Expr`].
#[macro_export]
macro_rules! expr_err {
    ($($arg:tt)*) => { $crate::error::SipError::Expr(format!($($arg)*)) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_layer_and_message() {
        let e = SipError::Plan("attribute #4 unknown".into());
        assert_eq!(e.to_string(), "plan error: attribute #4 unknown");
        assert_eq!(e.layer(), "plan");
        assert_eq!(e.message(), "attribute #4 unknown");
    }

    #[test]
    fn macros_build_correct_variants() {
        let e = plan_err!("x = {}", 3);
        assert_eq!(e, SipError::Plan("x = 3".into()));
        let e = exec_err!("boom");
        assert_eq!(e, SipError::Exec("boom".into()));
        let e = expr_err!("bad type");
        assert_eq!(e, SipError::Expr("bad type".into()));
    }

    #[test]
    fn all_layers_are_distinct() {
        let layers: Vec<&str> = [
            SipError::Data(String::new()),
            SipError::Expr(String::new()),
            SipError::Plan(String::new()),
            SipError::Optimize(String::new()),
            SipError::Exec(String::new()),
            SipError::Net(String::new()),
            SipError::Config(String::new()),
        ]
        .iter()
        .map(|e| e.layer())
        .collect();
        let set: std::collections::HashSet<_> = layers.iter().collect();
        assert_eq!(set.len(), layers.len());
    }
}
