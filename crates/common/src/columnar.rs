//! Columnar batches: one typed vector per column plus a validity bitmap.
//!
//! [`Batch`](crate::Batch) carries `Vec<Row>` of `Arc<[Value]>` — every value
//! access chases two pointers and every projection clones. The types here
//! store the same data column-major so the hot kernels (digest passes, tap
//! probes, selection compaction, shuffle routing) run as tight loops over
//! primitive slices:
//!
//! * [`ColumnarBatch`] — a set of [`Arc`]-shared [`Column`]s with a view
//!   window (`offset`, `len`). Slicing and column selection are metadata-only
//!   (no data is copied); per-row survival after a probe is materialized once
//!   by a per-column [`gather`](ColumnarBatch::gather).
//! * [`Column`] — typed storage: `Vec<i64>` / `Vec<f64>` / `Vec<i32>` days /
//!   dictionary- or offset-encoded strings, plus an optional validity bitmap
//!   (a set bit means the value is present; an unset bit means SQL NULL).
//! * [`ColumnBuilder`] — row-at-a-time or typed appends, inferring the
//!   column representation and degrading gracefully (dictionary → offsets on
//!   high cardinality, anything → `Mixed` on type conflict).
//!
//! Digest parity is load-bearing: a columnar digest pass must produce *the
//! same u64* as [`Row::key_hash`] for every row, or AIP sets built on one
//! side of a row/columnar seam would fail to probe on the other. The
//! [`fold digest`](ColumnarBatch::fold_digest) kernel therefore replays
//! `Value::hash` exactly — type tag byte, payload word(s), `-0.0 → 0.0`
//! normalization, raw string bytes — against per-row [`FxHasher`] states.
//!
//! The seams that still materialize rows (join build state, exact AIP key
//! sets, the oracle) convert via [`ColumnarBatch::to_rows`] /
//! [`ColumnarBatch::from_rows`], which round-trip values exactly and share
//! `Arc<str>` payloads through the dictionary where possible.

use crate::date::Date;
use crate::hash::{FxHashMap, FxHasher};
use crate::row::{Batch, Row};
use crate::schema::DataType;
use crate::value::{norm_zero, Value};
use std::cmp::Ordering;
use std::hash::Hasher;
use std::sync::{Arc, OnceLock};

/// Dictionary cardinality cap: builders degrade to offset encoding when the
/// distinct count exceeds `max(DICT_MAX_FIXED, rows / 4)`.
const DICT_MAX_FIXED: usize = 4096;

/// A shared string dictionary: distinct values in first-seen order.
///
/// Per-entry single-value digests (the hash `Value::Str(entry)` produces) are
/// computed lazily once and cached, so single-column key probes over a
/// dictionary column skip hashing entirely.
#[derive(Debug)]
pub struct StrDict {
    values: Vec<Arc<str>>,
    /// Sum of entry byte lengths (for footprint accounting).
    bytes: usize,
    digests: OnceLock<Vec<u64>>,
}

impl StrDict {
    fn new(values: Vec<Arc<str>>) -> Self {
        let bytes = values.iter().map(|s| s.len()).sum();
        StrDict {
            values,
            bytes,
            digests: OnceLock::new(),
        }
    }

    /// Distinct entries, in first-seen (code) order.
    pub fn entries(&self) -> &[Arc<str>] {
        &self.values
    }

    /// Per-entry digests matching `Value::Str(entry).hash64()`.
    fn digests(&self) -> &[u64] {
        self.digests.get_or_init(|| {
            self.values
                .iter()
                .map(|s| {
                    let mut h = FxHasher::default();
                    h.write_u8(3);
                    h.write(s.as_bytes());
                    h.finish()
                })
                .collect()
        })
    }
}

/// Typed column storage. Fixed-width types are plain vectors; strings are
/// either dictionary-encoded (`u32` codes into a shared [`StrDict`]) or
/// offset-encoded (contiguous bytes + `u32` offsets); `Mixed` is the
/// row-value fallback for heterogeneous columns.
#[derive(Debug)]
enum ColumnData {
    Int(Vec<i64>),
    Float(Vec<f64>),
    /// Days since epoch, as stored by [`Date`].
    Date(Vec<i32>),
    Dict {
        dict: Arc<StrDict>,
        codes: Vec<u32>,
    },
    Str {
        bytes: String,
        /// `offsets.len() == rows + 1`; value `i` is `bytes[offsets[i]..offsets[i+1]]`.
        offsets: Vec<u32>,
    },
    Mixed(Vec<Value>),
}

/// The coarse column representation, for kernels that dispatch per type.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColKind {
    /// `Vec<i64>` storage.
    Int,
    /// `Vec<f64>` storage.
    Float,
    /// `Vec<i32>` day-count storage.
    Date,
    /// Dictionary- or offset-encoded strings.
    Str,
    /// Heterogeneous `Vec<Value>` fallback.
    Mixed,
}

/// One typed column: data plus an optional validity bitmap.
///
/// Bit `i` of the bitmap is **set when the value is present** and unset for
/// SQL NULL; `validity == None` means the column has no NULLs. Payload slots
/// under unset bits hold arbitrary defaults and are never interpreted.
#[derive(Debug)]
pub struct Column {
    data: ColumnData,
    validity: Option<Vec<u64>>,
    size: OnceLock<usize>,
}

#[inline]
fn bit_is_set(words: &[u64], i: usize) -> bool {
    words[i >> 6] >> (i & 63) & 1 == 1
}

#[inline]
fn set_bit(words: &mut [u64], i: usize) {
    words[i >> 6] |= 1u64 << (i & 63);
}

impl Column {
    fn len(&self) -> usize {
        match &self.data {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Date(v) => v.len(),
            ColumnData::Dict { codes, .. } => codes.len(),
            ColumnData::Str { offsets, .. } => offsets.len() - 1,
            ColumnData::Mixed(v) => v.len(),
        }
    }

    #[inline]
    fn is_valid(&self, i: usize) -> bool {
        match &self.validity {
            None => true,
            Some(words) => bit_is_set(words, i),
        }
    }

    /// Full-column footprint in bytes (heap + inline), cached after the
    /// first call so channel accounting is O(1) per column thereafter.
    fn full_size_bytes(&self) -> usize {
        *self.size.get_or_init(|| {
            let data = match &self.data {
                ColumnData::Int(v) => v.len() * 8,
                ColumnData::Float(v) => v.len() * 8,
                ColumnData::Date(v) => v.len() * 4,
                ColumnData::Dict { dict, codes } => {
                    codes.len() * 4 + dict.bytes + dict.values.len() * 16
                }
                ColumnData::Str { bytes, offsets } => bytes.len() + offsets.len() * 4,
                ColumnData::Mixed(v) => v.iter().map(Value::size_bytes).sum(),
            };
            let validity = self.validity.as_ref().map_or(0, |w| w.len() * 8);
            data + validity + 48
        })
    }

    /// The value at `i`, cloning payloads. Dictionary strings share their
    /// `Arc<str>`; offset-encoded strings allocate.
    fn value_at(&self, i: usize) -> Value {
        if !self.is_valid(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Date(v) => Value::Date(Date::from_days(v[i])),
            ColumnData::Dict { dict, codes } => Value::Str(dict.values[codes[i] as usize].clone()),
            ColumnData::Str { bytes, offsets } => Value::Str(Arc::from(
                &bytes[offsets[i] as usize..offsets[i + 1] as usize],
            )),
            ColumnData::Mixed(v) => v[i].clone(),
        }
    }
}

/// A batch in columnar layout: `Arc`-shared columns plus a view window.
///
/// Cloning, [`slice`](ColumnarBatch::slice), and
/// [`select_columns`](ColumnarBatch::select_columns) are metadata-only;
/// [`gather`](ColumnarBatch::gather) materializes a compact copy of the
/// selected rows per column. All row indices in this API are view-relative.
#[derive(Clone, Debug)]
pub struct ColumnarBatch {
    cols: Vec<Arc<Column>>,
    offset: usize,
    len: usize,
}

impl ColumnarBatch {
    /// An empty, zero-column batch.
    pub fn empty() -> Self {
        ColumnarBatch {
            cols: Vec::new(),
            offset: 0,
            len: 0,
        }
    }

    /// Build from finished columns. All columns must have equal length.
    pub fn from_columns(cols: Vec<Column>) -> Self {
        let len = cols.first().map_or(0, Column::len);
        assert!(
            cols.iter().all(|c| c.len() == len),
            "ragged columns in ColumnarBatch"
        );
        ColumnarBatch {
            cols: cols.into_iter().map(Arc::new).collect(),
            offset: 0,
            len,
        }
    }

    /// Convert a row batch, inferring each column's representation from its
    /// values (NULLs don't pin a type; conflicting types degrade to
    /// `Mixed`).
    pub fn from_rows(rows: &[Row]) -> Self {
        let n_cols = rows.first().map_or(0, |r| r.values().len());
        let mut builders: Vec<ColumnBuilder> = (0..n_cols).map(|_| ColumnBuilder::new()).collect();
        for row in rows {
            for (c, b) in builders.iter_mut().enumerate() {
                b.push(row.get(c));
            }
        }
        let mut out = Self::from_columns(builders.into_iter().map(ColumnBuilder::finish).collect());
        if n_cols == 0 {
            // Zero-width rows still have a count.
            out.len = rows.len();
        }
        out
    }

    /// Convert a row batch with each builder pre-typed from a schema, so
    /// leading NULLs (or an all-NULL column) keep the declared
    /// representation instead of degrading to `Mixed`. Values that
    /// contradict their declared type still degrade per column.
    pub fn from_rows_typed(rows: &[Row], types: &[DataType]) -> Self {
        let mut builders: Vec<ColumnBuilder> =
            types.iter().map(|&t| ColumnBuilder::with_type(t)).collect();
        for row in rows {
            for (c, b) in builders.iter_mut().enumerate() {
                b.push(row.get(c));
            }
        }
        let mut out = Self::from_columns(builders.into_iter().map(ColumnBuilder::finish).collect());
        if types.is_empty() {
            out.len = rows.len();
        }
        out
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.cols.len()
    }

    /// Number of rows in this view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the view holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A metadata-only sub-view of `len` rows starting at `offset`.
    pub fn slice(&self, offset: usize, len: usize) -> Self {
        assert!(offset + len <= self.len, "slice out of bounds");
        ColumnarBatch {
            cols: self.cols.clone(),
            offset: self.offset + offset,
            len,
        }
    }

    /// A metadata-only projection to the given columns (duplicates and
    /// reordering allowed) — the columnar replacement for `Row::project`'s
    /// per-value clone.
    pub fn select_columns(&self, keep: &[usize]) -> Self {
        ColumnarBatch {
            cols: keep.iter().map(|&c| self.cols[c].clone()).collect(),
            offset: self.offset,
            len: self.len,
        }
    }

    /// The coarse representation of column `c`.
    pub fn kind(&self, c: usize) -> ColKind {
        match &self.cols[c].data {
            ColumnData::Int(_) => ColKind::Int,
            ColumnData::Float(_) => ColKind::Float,
            ColumnData::Date(_) => ColKind::Date,
            ColumnData::Dict { .. } | ColumnData::Str { .. } => ColKind::Str,
            ColumnData::Mixed(_) => ColKind::Mixed,
        }
    }

    /// The declared type of column `c`, or `None` for `Mixed` columns.
    pub fn dtype(&self, c: usize) -> Option<DataType> {
        match self.kind(c) {
            ColKind::Int => Some(DataType::Int),
            ColKind::Float => Some(DataType::Float),
            ColKind::Date => Some(DataType::Date),
            ColKind::Str => Some(DataType::Str),
            ColKind::Mixed => None,
        }
    }

    /// Does column `c` carry a validity bitmap (i.e. may contain NULLs)?
    pub fn may_have_nulls(&self, c: usize) -> bool {
        self.cols[c].validity.is_some()
    }

    /// Is the value at (`c`, `i`) present (not SQL NULL)?
    #[inline]
    pub fn is_valid(&self, c: usize, i: usize) -> bool {
        self.cols[c].is_valid(self.offset + i)
    }

    /// The `i64` slice of column `c` for this view, if it is an Int column.
    /// NULL slots hold defaults — check [`is_valid`](Self::is_valid) when
    /// [`may_have_nulls`](Self::may_have_nulls).
    pub fn ints(&self, c: usize) -> Option<&[i64]> {
        match &self.cols[c].data {
            ColumnData::Int(v) => Some(&v[self.offset..self.offset + self.len]),
            _ => None,
        }
    }

    /// The `f64` slice of column `c` for this view, if it is a Float column.
    pub fn floats(&self, c: usize) -> Option<&[f64]> {
        match &self.cols[c].data {
            ColumnData::Float(v) => Some(&v[self.offset..self.offset + self.len]),
            _ => None,
        }
    }

    /// The day-count slice of column `c` for this view, if it is a Date
    /// column.
    pub fn dates(&self, c: usize) -> Option<&[i32]> {
        match &self.cols[c].data {
            ColumnData::Date(v) => Some(&v[self.offset..self.offset + self.len]),
            _ => None,
        }
    }

    /// The string at (`c`, `i`) without allocating, if column `c` is a
    /// string column and the slot is valid.
    pub fn str_at(&self, c: usize, i: usize) -> Option<&str> {
        let col = &self.cols[c];
        let j = self.offset + i;
        if !col.is_valid(j) {
            return None;
        }
        match &col.data {
            ColumnData::Dict { dict, codes } => Some(&dict.values[codes[j] as usize]),
            ColumnData::Str { bytes, offsets } => {
                Some(&bytes[offsets[j] as usize..offsets[j + 1] as usize])
            }
            _ => None,
        }
    }

    /// The value at (`c`, `i`), cloning payloads (dictionary strings share
    /// their `Arc<str>`).
    pub fn value_at(&self, c: usize, i: usize) -> Value {
        self.cols[c].value_at(self.offset + i)
    }

    /// Does the value at (`c`, `i`) equal `v` under `Value::sql_cmp`
    /// semantics (cross-type numeric equality, NULL == NULL), without
    /// cloning string payloads? Used by exact AIP key-set probes.
    pub fn value_eq(&self, c: usize, i: usize, v: &Value) -> bool {
        let col = &self.cols[c];
        let j = self.offset + i;
        if !col.is_valid(j) {
            return v.is_null();
        }
        match (&col.data, v) {
            (ColumnData::Int(d), Value::Int(b)) => d[j] == *b,
            (ColumnData::Int(d), Value::Float(b)) => {
                (d[j] as f64).total_cmp(&norm_zero(*b)) == Ordering::Equal
            }
            (ColumnData::Float(d), Value::Float(b)) => {
                norm_zero(d[j]).total_cmp(&norm_zero(*b)) == Ordering::Equal
            }
            (ColumnData::Float(d), Value::Int(b)) => {
                norm_zero(d[j]).total_cmp(&(*b as f64)) == Ordering::Equal
            }
            (ColumnData::Date(d), Value::Date(b)) => d[j] == b.days(),
            (ColumnData::Dict { dict, codes }, Value::Str(s)) => {
                *dict.values[codes[j] as usize] == **s
            }
            (ColumnData::Str { bytes, offsets }, Value::Str(s)) => {
                bytes[offsets[j] as usize..offsets[j + 1] as usize] == **s
            }
            (ColumnData::Mixed(d), v) => d[j] == *v,
            _ => false,
        }
    }

    /// Materialize row `i` of the view.
    pub fn row_at(&self, i: usize) -> Row {
        Row::new((0..self.n_cols()).map(|c| self.value_at(c, i)).collect())
    }

    /// Materialize the whole view as rows — the conversion used at the
    /// row seams (join state, oracle, root sink).
    pub fn to_rows(&self) -> Vec<Row> {
        (0..self.len).map(|i| self.row_at(i)).collect()
    }

    /// Materialize the whole view as a row [`Batch`].
    pub fn to_batch(&self) -> Batch {
        Batch::new(self.to_rows())
    }

    /// Materialize a compact copy holding exactly the rows in `sel`
    /// (view-relative, ascending) — per-column gather, the columnar
    /// replacement for `SelVec::compact` over rows.
    pub fn gather(&self, sel: &[u32]) -> Self {
        let cols = self
            .cols
            .iter()
            .map(|col| Arc::new(gather_column(col, self.offset, sel)))
            .collect();
        ColumnarBatch {
            cols,
            offset: 0,
            len: sel.len(),
        }
    }

    /// Fold column `c` into per-row hasher states exactly as `Value::hash`
    /// would, flagging NULL slots in `null_mask`. Crate-internal: the public
    /// entry is `DigestBuffer::compute_cols`.
    pub(crate) fn fold_digest(
        &self,
        c: usize,
        hashers: &mut [FxHasher],
        null_mask: &mut [bool],
        any_null: &mut bool,
    ) {
        let col = &self.cols[c];
        let off = self.offset;
        // NULL slots hash exactly like Value::Null (tag byte 0, no payload)
        // and set the null mask; the macro keeps each typed loop tight.
        macro_rules! fold {
            ($data:expr, |$h:ident, $v:ident| $body:expr) => {
                match &col.validity {
                    None => {
                        for (i, $h) in hashers.iter_mut().enumerate() {
                            let $v = &$data[off + i];
                            $body
                        }
                    }
                    Some(words) => {
                        for (i, $h) in hashers.iter_mut().enumerate() {
                            if bit_is_set(words, off + i) {
                                let $v = &$data[off + i];
                                $body
                            } else {
                                $h.write_u8(0);
                                null_mask[i] = true;
                                *any_null = true;
                            }
                        }
                    }
                }
            };
        }
        match &col.data {
            ColumnData::Int(d) => fold!(d, |h, v| {
                h.write_u8(1);
                h.write_u64(*v as u64);
            }),
            ColumnData::Float(d) => fold!(d, |h, v| {
                h.write_u8(2);
                h.write_u64(norm_zero(*v).to_bits());
            }),
            ColumnData::Date(d) => fold!(d, |h, v| {
                h.write_u8(4);
                h.write_u64(*v as u64);
            }),
            ColumnData::Dict { dict, codes } => fold!(codes, |h, v| {
                h.write_u8(3);
                h.write(dict.values[*v as usize].as_bytes());
            }),
            ColumnData::Str { bytes, offsets } => {
                // Offsets are indexed directly (not via the macro's value
                // borrow) because each value spans offsets[j]..offsets[j+1].
                match &col.validity {
                    None => {
                        for (i, h) in hashers.iter_mut().enumerate() {
                            let j = off + i;
                            h.write_u8(3);
                            h.write(
                                &bytes.as_bytes()[offsets[j] as usize..offsets[j + 1] as usize],
                            );
                        }
                    }
                    Some(words) => {
                        for (i, h) in hashers.iter_mut().enumerate() {
                            let j = off + i;
                            if bit_is_set(words, j) {
                                h.write_u8(3);
                                h.write(
                                    &bytes.as_bytes()[offsets[j] as usize..offsets[j + 1] as usize],
                                );
                            } else {
                                h.write_u8(0);
                                null_mask[i] = true;
                                *any_null = true;
                            }
                        }
                    }
                }
            }
            ColumnData::Mixed(d) => {
                use std::hash::Hash;
                for (i, h) in hashers.iter_mut().enumerate() {
                    let v = &d[off + i];
                    if v.is_null() {
                        null_mask[i] = true;
                        *any_null = true;
                    }
                    v.hash(h);
                }
            }
        }
    }

    /// Single-column digest fast path: when column `c` is dictionary-encoded
    /// the per-row digest is a cached per-entry lookup (NULL slots digest to
    /// `Value::Null.hash64() == 0`). Returns `false` (buffer untouched) for
    /// other representations.
    pub(crate) fn dict_digest_fill(
        &self,
        c: usize,
        digests: &mut Vec<u64>,
        null_mask: &mut [bool],
        any_null: &mut bool,
    ) -> bool {
        let col = &self.cols[c];
        let ColumnData::Dict { dict, codes } = &col.data else {
            return false;
        };
        let entry_digests = dict.digests();
        let off = self.offset;
        match &col.validity {
            None => {
                digests.extend(
                    codes[off..off + self.len]
                        .iter()
                        .map(|&code| entry_digests[code as usize]),
                );
            }
            Some(words) => {
                for i in 0..self.len {
                    if bit_is_set(words, off + i) {
                        digests.push(entry_digests[codes[off + i] as usize]);
                    } else {
                        digests.push(0);
                        null_mask[i] = true;
                        *any_null = true;
                    }
                }
            }
        }
        true
    }

    /// View footprint in bytes, O(columns): fixed-width columns and string
    /// offsets are sized arithmetically, full-column views use the cached
    /// per-column total, and partial `Mixed`/`Dict` views prorate it.
    pub fn size_bytes(&self) -> usize {
        self.cols
            .iter()
            .map(|col| {
                let full = col.len();
                if self.offset == 0 && self.len == full {
                    return col.full_size_bytes();
                }
                let validity = col.validity.as_ref().map_or(0, |_| self.len.div_ceil(8));
                let data = match &col.data {
                    ColumnData::Int(_) | ColumnData::Float(_) => self.len * 8,
                    ColumnData::Date(_) => self.len * 4,
                    ColumnData::Str { offsets, .. } => {
                        (offsets[self.offset + self.len] - offsets[self.offset]) as usize
                            + self.len * 4
                    }
                    // Prorate the cached full-column footprint by view share.
                    ColumnData::Dict { .. } | ColumnData::Mixed(_) => (col.full_size_bytes()
                        * self.len)
                        .checked_div(full)
                        .unwrap_or(0),
                };
                data + validity + 48
            })
            .sum()
    }
}

/// Gather `sel` (absolute-offset base `off`) out of one column into a
/// compact copy.
fn gather_column(col: &Column, off: usize, sel: &[u32]) -> Column {
    let validity = col.validity.as_ref().and_then(|words| {
        let mut out = vec![0u64; sel.len().div_ceil(64)];
        let mut any_null = false;
        for (dst, &src) in sel.iter().enumerate() {
            if bit_is_set(words, off + src as usize) {
                set_bit(&mut out, dst);
            } else {
                any_null = true;
            }
        }
        any_null.then_some(out)
    });
    let data = match &col.data {
        ColumnData::Int(d) => ColumnData::Int(sel.iter().map(|&i| d[off + i as usize]).collect()),
        ColumnData::Float(d) => {
            ColumnData::Float(sel.iter().map(|&i| d[off + i as usize]).collect())
        }
        ColumnData::Date(d) => ColumnData::Date(sel.iter().map(|&i| d[off + i as usize]).collect()),
        ColumnData::Dict { dict, codes } => ColumnData::Dict {
            dict: dict.clone(),
            codes: sel.iter().map(|&i| codes[off + i as usize]).collect(),
        },
        ColumnData::Str { bytes, offsets } => {
            let mut out_bytes = String::new();
            let mut out_offsets = Vec::with_capacity(sel.len() + 1);
            out_offsets.push(0u32);
            for &i in sel {
                let j = off + i as usize;
                out_bytes.push_str(&bytes[offsets[j] as usize..offsets[j + 1] as usize]);
                out_offsets.push(out_bytes.len() as u32);
            }
            ColumnData::Str {
                bytes: out_bytes,
                offsets: out_offsets,
            }
        }
        ColumnData::Mixed(d) => {
            ColumnData::Mixed(sel.iter().map(|&i| d[off + i as usize].clone()).collect())
        }
    };
    Column {
        data,
        validity,
        size: OnceLock::new(),
    }
}

/// Builder-side storage; mirrors [`ColumnData`] plus the dictionary's
/// interning map and an untyped initial state.
#[derive(Debug)]
enum BuilderData {
    Empty,
    Int(Vec<i64>),
    Float(Vec<f64>),
    Date(Vec<i32>),
    Dict {
        map: FxHashMap<Arc<str>, u32>,
        values: Vec<Arc<str>>,
        bytes: usize,
        codes: Vec<u32>,
    },
    Str {
        bytes: String,
        offsets: Vec<u32>,
    },
    Mixed(Vec<Value>),
}

/// Incremental builder for one [`Column`].
///
/// The representation is inferred from the first non-NULL value; string
/// columns start dictionary-encoded and degrade to offset encoding past
/// `max(4096, rows / 4)` distinct values; a later value of a conflicting
/// type degrades the whole column to `Mixed`. NULLs are representation-
/// neutral.
#[derive(Debug)]
pub struct ColumnBuilder {
    data: BuilderData,
    /// Row-major validity bits; only materialized into the column when a
    /// NULL was pushed.
    validity: Vec<u64>,
    any_null: bool,
    len: usize,
}

impl Default for ColumnBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ColumnBuilder {
    /// An empty, untyped builder.
    pub fn new() -> Self {
        ColumnBuilder {
            data: BuilderData::Empty,
            validity: Vec::new(),
            any_null: false,
            len: 0,
        }
    }

    /// A builder pre-typed to `dtype` (skips inference; useful for
    /// schema-driven generation).
    pub fn with_type(dtype: DataType) -> Self {
        let data = match dtype {
            DataType::Int => BuilderData::Int(Vec::new()),
            DataType::Float => BuilderData::Float(Vec::new()),
            DataType::Date => BuilderData::Date(Vec::new()),
            DataType::Str => BuilderData::Dict {
                map: FxHashMap::default(),
                values: Vec::new(),
                bytes: 0,
                codes: Vec::new(),
            },
        };
        ColumnBuilder {
            data,
            validity: Vec::new(),
            any_null: false,
            len: 0,
        }
    }

    /// Rows appended so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn note_valid(&mut self) {
        if self.validity.len() * 64 < self.len + 1 {
            self.validity.push(0);
        }
        set_bit(&mut self.validity, self.len);
        self.len += 1;
    }

    /// Append SQL NULL.
    pub fn push_null(&mut self) {
        if self.validity.len() * 64 < self.len + 1 {
            self.validity.push(0);
        }
        // Bit stays unset. Payload slot gets the representation's default.
        self.any_null = true;
        match &mut self.data {
            BuilderData::Empty => {
                self.len += 1;
                return;
            }
            BuilderData::Int(v) => v.push(0),
            BuilderData::Float(v) => v.push(0.0),
            BuilderData::Date(v) => v.push(0),
            BuilderData::Dict { codes, .. } => codes.push(0),
            BuilderData::Str { bytes, offsets } => offsets.push(bytes.len() as u32),
            BuilderData::Mixed(v) => v.push(Value::Null),
        }
        self.len += 1;
    }

    /// Append an `i64`.
    pub fn push_i64(&mut self, v: i64) {
        self.promote_to(ColKind::Int);
        match &mut self.data {
            BuilderData::Int(d) => d.push(v),
            BuilderData::Mixed(d) => d.push(Value::Int(v)),
            _ => unreachable!("promote_to(Int) left a non-Int builder"),
        }
        self.note_valid();
    }

    /// Append an `f64`.
    pub fn push_f64(&mut self, v: f64) {
        self.promote_to(ColKind::Float);
        match &mut self.data {
            BuilderData::Float(d) => d.push(v),
            BuilderData::Mixed(d) => d.push(Value::Float(v)),
            _ => unreachable!("promote_to(Float) left a non-Float builder"),
        }
        self.note_valid();
    }

    /// Append a [`Date`].
    pub fn push_date(&mut self, v: Date) {
        self.promote_to(ColKind::Date);
        match &mut self.data {
            BuilderData::Date(d) => d.push(v.days()),
            BuilderData::Mixed(d) => d.push(Value::Date(v)),
            _ => unreachable!("promote_to(Date) left a non-Date builder"),
        }
        self.note_valid();
    }

    /// Append a string slice (interned into the dictionary while it stays
    /// small).
    pub fn push_str(&mut self, v: &str) {
        self.promote_to(ColKind::Str);
        match &mut self.data {
            BuilderData::Dict {
                map,
                values,
                bytes,
                codes,
            } => {
                let code = match map.get(v) {
                    Some(&c) => c,
                    None => {
                        let c = values.len() as u32;
                        let entry: Arc<str> = Arc::from(v);
                        values.push(entry.clone());
                        map.insert(entry, c);
                        *bytes += v.len();
                        c
                    }
                };
                codes.push(code);
                self.maybe_degrade_dict();
            }
            BuilderData::Str { bytes, offsets } => {
                bytes.push_str(v);
                offsets.push(bytes.len() as u32);
            }
            BuilderData::Mixed(d) => d.push(Value::str(v)),
            _ => unreachable!("promote_to(Str) left a non-string builder"),
        }
        self.note_valid();
    }

    /// Append a shared string, preserving the `Arc` when it lands in the
    /// dictionary.
    pub fn push_shared_str(&mut self, v: &Arc<str>) {
        self.promote_to(ColKind::Str);
        match &mut self.data {
            BuilderData::Dict {
                map,
                values,
                bytes,
                codes,
            } => {
                let code = match map.get(&**v) {
                    Some(&c) => c,
                    None => {
                        let c = values.len() as u32;
                        values.push(v.clone());
                        map.insert(v.clone(), c);
                        *bytes += v.len();
                        c
                    }
                };
                codes.push(code);
                self.maybe_degrade_dict();
            }
            BuilderData::Str { bytes, offsets } => {
                bytes.push_str(v);
                offsets.push(bytes.len() as u32);
            }
            BuilderData::Mixed(d) => d.push(Value::Str(v.clone())),
            _ => unreachable!("promote_to(Str) left a non-string builder"),
        }
        self.note_valid();
    }

    /// Append any [`Value`].
    pub fn push(&mut self, v: &Value) {
        match v {
            Value::Null => self.push_null(),
            Value::Int(x) => self.push_i64(*x),
            Value::Float(x) => self.push_f64(*x),
            Value::Date(d) => self.push_date(*d),
            Value::Str(s) => self.push_shared_str(s),
        }
    }

    /// Ensure the builder can accept a value of `kind`: type the empty
    /// builder, keep a matching one, or degrade to `Mixed` on conflict.
    fn promote_to(&mut self, kind: ColKind) {
        let current = match &self.data {
            BuilderData::Empty => {
                self.data = match kind {
                    ColKind::Int => BuilderData::Int(Vec::with_capacity(self.len + 1)),
                    ColKind::Float => BuilderData::Float(Vec::with_capacity(self.len + 1)),
                    ColKind::Date => BuilderData::Date(Vec::with_capacity(self.len + 1)),
                    ColKind::Str | ColKind::Mixed => BuilderData::Dict {
                        map: FxHashMap::default(),
                        values: Vec::new(),
                        bytes: 0,
                        codes: Vec::new(),
                    },
                };
                // Backfill default payloads for any leading NULLs.
                match &mut self.data {
                    BuilderData::Int(d) => d.resize(self.len, 0),
                    BuilderData::Float(d) => d.resize(self.len, 0.0),
                    BuilderData::Date(d) => d.resize(self.len, 0),
                    BuilderData::Dict { codes, .. } => codes.resize(self.len, 0),
                    _ => {}
                }
                return;
            }
            BuilderData::Int(_) => ColKind::Int,
            BuilderData::Float(_) => ColKind::Float,
            BuilderData::Date(_) => ColKind::Date,
            BuilderData::Dict { .. } | BuilderData::Str { .. } => ColKind::Str,
            BuilderData::Mixed(_) => return,
        };
        if current != kind {
            self.degrade_to_mixed();
        }
    }

    /// Re-materialize everything appended so far as `Mixed` values.
    fn degrade_to_mixed(&mut self) {
        let values: Vec<Value> = (0..self.len)
            .map(|i| {
                if !bit_is_set(&self.validity, i) {
                    return Value::Null;
                }
                match &self.data {
                    BuilderData::Empty => Value::Null,
                    BuilderData::Int(d) => Value::Int(d[i]),
                    BuilderData::Float(d) => Value::Float(d[i]),
                    BuilderData::Date(d) => Value::Date(Date::from_days(d[i])),
                    BuilderData::Dict { values, codes, .. } => {
                        Value::Str(values[codes[i] as usize].clone())
                    }
                    BuilderData::Str { bytes, offsets } => Value::Str(Arc::from(
                        &bytes[offsets[i] as usize..offsets[i + 1] as usize],
                    )),
                    BuilderData::Mixed(d) => d[i].clone(),
                }
            })
            .collect();
        self.data = BuilderData::Mixed(values);
    }

    /// Dictionary cardinality check — convert to offset encoding when the
    /// distinct count stops paying for itself.
    fn maybe_degrade_dict(&mut self) {
        let BuilderData::Dict { values, codes, .. } = &self.data else {
            return;
        };
        if values.len() <= DICT_MAX_FIXED.max(codes.len() / 4) {
            return;
        }
        let BuilderData::Dict { values, codes, .. } = std::mem::replace(
            &mut self.data,
            BuilderData::Str {
                bytes: String::new(),
                offsets: vec![0],
            },
        ) else {
            unreachable!()
        };
        let BuilderData::Str { bytes, offsets } = &mut self.data else {
            unreachable!()
        };
        for &code in &codes {
            bytes.push_str(&values[code as usize]);
            offsets.push(bytes.len() as u32);
        }
    }

    /// Finish into a [`Column`]. The validity bitmap is dropped when no
    /// NULL was pushed.
    pub fn finish(self) -> Column {
        // An all-NULL (or empty) untyped column materializes as Mixed.
        let data = match self.data {
            BuilderData::Empty => ColumnData::Mixed(vec![Value::Null; self.len]),
            BuilderData::Int(d) => ColumnData::Int(d),
            BuilderData::Float(d) => ColumnData::Float(d),
            BuilderData::Date(d) => ColumnData::Date(d),
            BuilderData::Dict { values, codes, .. } => ColumnData::Dict {
                dict: Arc::new(StrDict::new(values)),
                codes,
            },
            BuilderData::Str { mut bytes, offsets } => {
                bytes.shrink_to_fit();
                ColumnData::Str { bytes, offsets }
            }
            BuilderData::Mixed(d) => ColumnData::Mixed(d),
        };
        Column {
            data,
            validity: self.any_null.then_some(self.validity),
            size: OnceLock::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::hash_key;

    fn sample_rows() -> Vec<Row> {
        vec![
            Row::new(vec![
                Value::Int(1),
                Value::Float(1.5),
                Value::str("FRANCE"),
                Value::Date(Date::from_days(9000)),
            ]),
            Row::new(vec![
                Value::Int(2),
                Value::Null,
                Value::str("GERMANY"),
                Value::Date(Date::from_days(9001)),
            ]),
            Row::new(vec![
                Value::Null,
                Value::Float(-0.0),
                Value::str("FRANCE"),
                Value::Null,
            ]),
        ]
    }

    #[test]
    fn row_round_trip_preserves_values() {
        let rows = sample_rows();
        let cb = ColumnarBatch::from_rows(&rows);
        assert_eq!(cb.len(), 3);
        assert_eq!(cb.n_cols(), 4);
        assert_eq!(cb.to_rows(), rows);
    }

    #[test]
    fn dict_round_trip_shares_string_payloads() {
        let s: Arc<str> = Arc::from("SHARED");
        let rows = vec![
            Row::new(vec![Value::Str(s.clone())]),
            Row::new(vec![Value::Str(s.clone())]),
        ];
        let cb = ColumnarBatch::from_rows(&rows);
        let back = cb.to_rows();
        let (Value::Str(a), Value::Str(b)) = (back[0].get(0), back[1].get(0)) else {
            panic!("expected strings");
        };
        // Both rows resolve to the single dictionary entry.
        assert!(Arc::ptr_eq(a, b));
    }

    #[test]
    fn slice_and_select_are_views() {
        let rows = sample_rows();
        let cb = ColumnarBatch::from_rows(&rows);
        let s = cb.slice(1, 2);
        assert_eq!(s.to_rows(), rows[1..].to_vec());
        let p = s.select_columns(&[2, 0]);
        assert_eq!(p.row_at(0), rows[1].project(&[2, 0]));
        assert_eq!(p.row_at(1), rows[2].project(&[2, 0]));
    }

    #[test]
    fn gather_picks_rows_and_preserves_nulls() {
        let rows = sample_rows();
        let cb = ColumnarBatch::from_rows(&rows);
        let g = cb.gather(&[0, 2]);
        assert_eq!(g.len(), 2);
        assert_eq!(g.to_rows(), vec![rows[0].clone(), rows[2].clone()]);
        // Gather out of a slice uses view-relative indices.
        let g2 = cb.slice(1, 2).gather(&[1]);
        assert_eq!(g2.to_rows(), vec![rows[2].clone()]);
    }

    #[test]
    fn value_eq_matches_sql_semantics() {
        let rows = vec![Row::new(vec![
            Value::Int(2),
            Value::Float(0.0),
            Value::str("x"),
            Value::Null,
        ])];
        let cb = ColumnarBatch::from_rows(&rows);
        assert!(cb.value_eq(0, 0, &Value::Int(2)));
        assert!(cb.value_eq(0, 0, &Value::Float(2.0))); // cross-type numeric
        assert!(!cb.value_eq(0, 0, &Value::Int(3)));
        assert!(cb.value_eq(1, 0, &Value::Float(-0.0))); // -0.0 == 0.0
        assert!(cb.value_eq(2, 0, &Value::str("x")));
        assert!(!cb.value_eq(2, 0, &Value::str("y")));
        assert!(cb.value_eq(3, 0, &Value::Null)); // NULL == NULL (grouping)
        assert!(!cb.value_eq(0, 0, &Value::Null));
    }

    #[test]
    fn mixed_column_on_type_conflict() {
        let rows = vec![
            Row::new(vec![Value::Int(1)]),
            Row::new(vec![Value::str("two")]),
        ];
        let cb = ColumnarBatch::from_rows(&rows);
        assert_eq!(cb.kind(0), ColKind::Mixed);
        assert_eq!(cb.to_rows(), rows);
    }

    #[test]
    fn leading_nulls_do_not_pin_a_type() {
        let rows = vec![Row::new(vec![Value::Null]), Row::new(vec![Value::Int(7)])];
        let cb = ColumnarBatch::from_rows(&rows);
        assert_eq!(cb.kind(0), ColKind::Int);
        assert_eq!(cb.to_rows(), rows);
    }

    #[test]
    fn dict_degrades_to_offsets_at_high_cardinality() {
        let mut b = ColumnBuilder::new();
        for i in 0..(DICT_MAX_FIXED + 2) {
            b.push_str(&format!("v{i}"));
        }
        let col = b.finish();
        assert!(matches!(col.data, ColumnData::Str { .. }));
        let cb = ColumnarBatch::from_columns(vec![col]);
        assert_eq!(cb.str_at(0, 0), Some("v0"));
        assert_eq!(
            cb.str_at(0, DICT_MAX_FIXED + 1),
            Some(&*format!("v{}", DICT_MAX_FIXED + 1))
        );
    }

    #[test]
    fn dict_digest_fast_path_matches_key_hash() {
        let rows = vec![
            Row::new(vec![Value::str("a")]),
            Row::new(vec![Value::Null]),
            Row::new(vec![Value::str("b")]),
        ];
        let cb = ColumnarBatch::from_rows(&rows);
        let mut digests = Vec::new();
        let mut null_mask = vec![false; 3];
        let mut any_null = false;
        assert!(cb.dict_digest_fill(0, &mut digests, &mut null_mask, &mut any_null));
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(digests[i], r.key_hash(&[0]));
        }
        assert!(any_null);
        assert_eq!(null_mask, vec![false, true, false]);
        assert_eq!(digests[1], hash_key(&[Value::Null]));
    }

    #[test]
    fn size_bytes_is_consistent_across_views() {
        let rows = sample_rows();
        let cb = ColumnarBatch::from_rows(&rows);
        let full = cb.size_bytes();
        assert!(full > 0);
        // Cached: second call returns the same number.
        assert_eq!(cb.size_bytes(), full);
        let half = cb.slice(0, 1).size_bytes();
        assert!(half < full);
    }

    #[test]
    fn empty_batch_shapes() {
        let cb = ColumnarBatch::from_rows(&[]);
        assert!(cb.is_empty());
        assert_eq!(cb.n_cols(), 0);
        assert!(cb.to_rows().is_empty());
        assert_eq!(ColumnarBatch::empty().size_bytes(), 0);
    }
}
