//! The dynamic scalar value type flowing through the engine.

use crate::date::Date;
use crate::error::{Result, SipError};
use crate::hash::FxHasher;
use crate::schema::DataType;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A scalar runtime value.
///
/// Strings are reference-counted so that projections and join outputs can
/// duplicate rows without copying string payloads. `Float` is totally ordered
/// via `total_cmp` so values can key hash tables and sort deterministically;
/// NaN never occurs in the TPC-H-shaped workloads but is handled anyway.
#[derive(Clone, Debug)]
pub enum Value {
    /// SQL NULL. Compares equal to itself for grouping purposes; predicate
    /// evaluation treats comparisons against NULL as false (two-valued
    /// approximation, sufficient for the paper's workloads, which are
    /// NULL-free).
    Null,
    /// 64-bit integer (keys, quantities, sizes).
    Int(i64),
    /// 64-bit float (prices, costs, aggregates).
    Float(f64),
    /// UTF-8 string (names, types, comments).
    Str(Arc<str>),
    /// Calendar date.
    Date(Date),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The runtime type, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Date(_) => Some(DataType::Date),
        }
    }

    /// Is this SQL NULL?
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Integer payload, or a type error.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(v) => Ok(*v),
            other => Err(SipError::Expr(format!("expected Int, got {other:?}"))),
        }
    }

    /// Float payload (Ints widen), or a type error.
    pub fn as_float(&self) -> Result<f64> {
        match self {
            Value::Float(v) => Ok(*v),
            Value::Int(v) => Ok(*v as f64),
            other => Err(SipError::Expr(format!("expected Float, got {other:?}"))),
        }
    }

    /// String payload, or a type error.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(SipError::Expr(format!("expected Str, got {other:?}"))),
        }
    }

    /// Date payload, or a type error.
    pub fn as_date(&self) -> Result<Date> {
        match self {
            Value::Date(d) => Ok(*d),
            other => Err(SipError::Expr(format!("expected Date, got {other:?}"))),
        }
    }

    /// Boolean interpretation: Int 0 is false, non-zero true. The engine
    /// encodes booleans as Ints (SQL-style predicates produce them).
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Int(v) => Ok(*v != 0),
            Value::Null => Ok(false),
            other => Err(SipError::Expr(format!("expected bool, got {other:?}"))),
        }
    }

    /// Heap + inline footprint in bytes, used for intermediate-state
    /// accounting (the paper's "Intermediate State (MB)" figures).
    pub fn size_bytes(&self) -> usize {
        let inline = std::mem::size_of::<Value>();
        match self {
            // Arc<str> payload: the string bytes plus the two ref-counts.
            Value::Str(s) => inline + s.len() + 16,
            _ => inline,
        }
    }

    /// SQL-style comparison. Numeric types compare cross-type (Int vs Float);
    /// NULL compares as less-than-everything for deterministic sorting, but
    /// predicate evaluation short-circuits NULLs before reaching here.
    pub fn sql_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => norm_zero(*a).total_cmp(&norm_zero(*b)),
            (Int(a), Float(b)) => (*a as f64).total_cmp(&norm_zero(*b)),
            (Float(a), Int(b)) => norm_zero(*a).total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            // Heterogeneous comparisons order by type tag; plans are typed so
            // this only happens on programmer error, but stay total.
            (a, b) => type_rank(a).cmp(&type_rank(b)),
        }
    }

    /// The stable 64-bit digest used for join keys, Bloom filters, and AIP
    /// hash sets. Int and the equal-valued Float hash differently — join keys
    /// are always same-typed, enforced by plan validation.
    pub fn hash64(&self) -> u64 {
        let mut h = FxHasher::default();
        self.hash(&mut h);
        h.finish()
    }
}

/// The canonical key digest over a value sequence — hashes the values in
/// order with **no length prefix**, matching [`crate::Row::key_hash`].
/// Every AIP set, join table, and filter probe must use this digest so that
/// sets built in one operator probe correctly in another.
pub fn hash_key(values: &[Value]) -> u64 {
    let mut h = FxHasher::default();
    for v in values {
        v.hash(&mut h);
    }
    h.finish()
}

/// Map -0.0 to 0.0 so SQL equality and hashing agree.
#[inline]
pub(crate) fn norm_zero(v: f64) -> f64 {
    if v == 0.0 {
        0.0
    } else {
        v
    }
}

fn type_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Int(_) => 1,
        Value::Float(_) => 2,
        Value::Str(_) => 3,
        Value::Date(_) => 4,
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.sql_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.sql_cmp(other)
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Int(v) => {
                state.write_u8(1);
                state.write_u64(*v as u64);
            }
            Value::Float(v) => {
                state.write_u8(2);
                // Normalize -0.0 to 0.0 so equal floats hash equal.
                let v = if *v == 0.0 { 0.0 } else { *v };
                state.write_u64(v.to_bits());
            }
            Value::Str(s) => {
                state.write_u8(3);
                state.write(s.as_bytes());
            }
            Value::Date(d) => {
                state.write_u8(4);
                state.write_u64(d.days() as u64);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v:.4}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Date(d) => write!(f, "{d}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<Date> for Value {
    fn from(v: Date) -> Self {
        Value::Date(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_enforce_types() {
        assert_eq!(Value::Int(3).as_int().unwrap(), 3);
        assert!(Value::str("x").as_int().is_err());
        assert_eq!(Value::Int(3).as_float().unwrap(), 3.0);
        assert_eq!(Value::str("abc").as_str().unwrap(), "abc");
        assert!(Value::Float(1.0).as_date().is_err());
    }

    #[test]
    fn cross_type_numeric_comparison() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert!(Value::Int(2) < Value::Float(2.5));
        assert!(Value::Float(3.5) > Value::Int(3));
    }

    #[test]
    fn nulls_sort_first_and_equal() {
        assert_eq!(Value::Null, Value::Null);
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(!Value::Null.as_bool().unwrap());
    }

    #[test]
    fn hash_is_consistent_with_eq_for_same_type() {
        let a = Value::str("FRANCE");
        let b = Value::str("FRANCE");
        assert_eq!(a, b);
        assert_eq!(a.hash64(), b.hash64());
        assert_ne!(
            Value::str("FRANCE").hash64(),
            Value::str("GERMANY").hash64()
        );
    }

    #[test]
    fn negative_zero_hashes_like_zero() {
        assert_eq!(Value::Float(-0.0).hash64(), Value::Float(0.0).hash64());
        assert_eq!(Value::Float(-0.0), Value::Float(0.0));
    }

    #[test]
    fn size_accounting_counts_string_payload() {
        let small = Value::Int(1).size_bytes();
        let s = Value::str("0123456789").size_bytes();
        assert!(s > small + 9);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::str("hi").to_string(), "hi");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(
            Value::Date(Date::parse("1995-03-09").unwrap()).to_string(),
            "1995-03-09"
        );
    }

    #[test]
    fn hash_key_matches_row_key_hash() {
        use crate::row::Row;
        let vals = vec![Value::Int(42), Value::str("FRANCE")];
        let row = Row::new(vec![
            Value::str("pad"),
            Value::Int(42),
            Value::str("FRANCE"),
        ]);
        assert_eq!(hash_key(&vals), row.key_hash(&[1, 2]));
        // And no length-prefix artifacts: single value matches too.
        assert_eq!(hash_key(&vals[..1]), row.key_hash(&[1]));
    }

    #[test]
    fn bool_encoding() {
        assert!(Value::Int(1).as_bool().unwrap());
        assert!(!Value::Int(0).as_bool().unwrap());
        assert!(Value::str("t").as_bool().is_err());
    }
}
