//! Cooperative query cancellation.
//!
//! A [`CancelToken`] is shared by every thread of one query execution —
//! operator threads, shuffle-mesh writers, `sip-net` feeder threads, and
//! the root drain. The first failure (operator error, contained panic,
//! injected fault, deadline, or an explicit [`CancelToken::cancel`] call)
//! trips the token; every other thread notices at its next per-batch
//! check and winds down promptly instead of running the doomed query to
//! completion against dead channels.
//!
//! The token is advisory, not preemptive: nothing is interrupted
//! mid-batch. Operators observe it once per batch in the `Emitter`, at
//! stateful build loops, and inside every delay-model sleep, which bounds
//! the teardown latency to roughly one batch of work per operator.
//!
//! Deadlines ride the same mechanism: [`CancelToken::set_deadline`] arms
//! an expiry instant, and the first [`CancelToken::is_cancelled`] call
//! past that instant trips the token with a "deadline exceeded" reason.
//! The fast path stays cheap — with no deadline armed a check is two
//! relaxed atomic loads; with one armed it adds a clock read.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How long a cancellable sleep naps between token checks.
const SLEEP_SLICE: Duration = Duration::from_millis(2);

#[derive(Debug, Default)]
struct Inner {
    /// Set once, by whichever thread cancels first.
    flag: AtomicBool,
    /// Human-readable reason recorded by the winning `cancel` call.
    reason: Mutex<Option<String>>,
    /// Fast-path gate: true once a deadline has been armed, so checks
    /// without one never touch the deadline mutex or the clock.
    has_deadline: AtomicBool,
    /// The armed expiry instant, if any.
    deadline: Mutex<Option<Instant>>,
}

/// Shared cancellation flag for one query execution. Cheap to clone
/// (one `Arc`), checked once per batch on the hot path.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trip the token. The first call wins and records `reason`; later
    /// calls are no-ops. Returns `true` iff this call was the winner.
    pub fn cancel(&self, reason: impl Into<String>) -> bool {
        let won = self
            .inner
            .flag
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok();
        if won {
            *self.inner.reason.lock().unwrap_or_else(|p| p.into_inner()) = Some(reason.into());
        }
        won
    }

    /// Has the token been tripped? Also arms itself when a deadline has
    /// expired, so any thread's routine check converts a passed deadline
    /// into a cancellation.
    pub fn is_cancelled(&self) -> bool {
        if self.inner.flag.load(Ordering::Acquire) {
            return true;
        }
        if self.inner.has_deadline.load(Ordering::Acquire) {
            let expired = {
                let dl = self
                    .inner
                    .deadline
                    .lock()
                    .unwrap_or_else(|p| p.into_inner());
                matches!(*dl, Some(d) if Instant::now() >= d)
            };
            if expired {
                self.cancel("deadline exceeded".to_string());
                return true;
            }
        }
        false
    }

    /// Has the token been *explicitly* tripped? Unlike
    /// [`is_cancelled`](Self::is_cancelled) this never self-arms from a
    /// deadline — used on the success path so a query whose last batch
    /// drains just past its deadline, with no thread having observed the
    /// expiry, still returns its complete, correct result.
    pub fn cancelled_flag(&self) -> bool {
        self.inner.flag.load(Ordering::Acquire)
    }

    /// The reason recorded by the winning `cancel` call, if any.
    pub fn reason(&self) -> Option<String> {
        self.inner
            .reason
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Arm a deadline. The token trips at the first check past `at`.
    pub fn set_deadline(&self, at: Instant) {
        *self
            .inner
            .deadline
            .lock()
            .unwrap_or_else(|p| p.into_inner()) = Some(at);
        self.inner.has_deadline.store(true, Ordering::Release);
    }

    /// The armed deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        if !self.inner.has_deadline.load(Ordering::Acquire) {
            return None;
        }
        *self
            .inner
            .deadline
            .lock()
            .unwrap_or_else(|p| p.into_inner())
    }

    /// Sleep for `dur`, waking early if the token trips. Returns `true`
    /// when the full duration elapsed, `false` when cancelled mid-sleep.
    /// Delay models and injected stalls sleep through this so a slow
    /// simulated source can't hold a cancelled query open.
    pub fn sleep_cancellable(&self, dur: Duration) -> bool {
        let end = Instant::now() + dur;
        loop {
            if self.is_cancelled() {
                return false;
            }
            let now = Instant::now();
            if now >= end {
                return true;
            }
            std::thread::sleep(SLEEP_SLICE.min(end - now));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_cancel_wins_and_double_cancel_is_idempotent() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(t.cancel("first"));
        assert!(!t.cancel("second"));
        assert!(t.is_cancelled());
        assert!(t.cancelled_flag());
        assert_eq!(t.reason().as_deref(), Some("first"));
    }

    #[test]
    fn clones_share_state() {
        let t = CancelToken::new();
        let u = t.clone();
        u.cancel("from clone");
        assert!(t.is_cancelled());
        assert_eq!(t.reason().as_deref(), Some("from clone"));
    }

    #[test]
    fn deadline_arms_on_check_but_not_on_flag_read() {
        let t = CancelToken::new();
        t.set_deadline(Instant::now() - Duration::from_millis(1));
        // The raw flag read does not self-arm ...
        assert!(!t.cancelled_flag());
        // ... the routine check does.
        assert!(t.is_cancelled());
        assert!(t.cancelled_flag());
        assert!(t.reason().unwrap().contains("deadline exceeded"));
    }

    #[test]
    fn future_deadline_does_not_trip() {
        let t = CancelToken::new();
        t.set_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        assert_eq!(t.reason(), None);
    }

    #[test]
    fn cancellable_sleep_wakes_early() {
        let t = CancelToken::new();
        let u = t.clone();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            u.cancel("wake up");
        });
        let start = Instant::now();
        let completed = t.sleep_cancellable(Duration::from_secs(30));
        assert!(!completed);
        assert!(start.elapsed() < Duration::from_secs(5));
        h.join().unwrap();
    }

    #[test]
    fn cancellable_sleep_completes_when_untripped() {
        let t = CancelToken::new();
        assert!(t.sleep_cancellable(Duration::from_millis(5)));
    }
}
