//! Shared retry policy: bounded attempts, exponential backoff with
//! deterministic jitter, and retryability classification over
//! [`ExecFailure`] classes.
//!
//! One policy type serves every recovery scope in the system — the
//! engine's partition-fragment replay, the run-level retry in
//! `sip-parallel`, `AdaptiveExec`'s stage-checkpoint recovery, and the
//! `sip-net` last-acked-batch link retry — so budgets, backoff curves,
//! and exhaustion reporting behave identically everywhere.
//!
//! Jitter is *deterministic*: a splitmix64 hash of `(jitter_seed,
//! attempt)` decides where in `[backoff/2, backoff)` a delay lands, so
//! chaos tests and benchmarks replay byte-identically while concurrent
//! retry scopes with distinct seeds still decorrelate.

use crate::error::{ExecFailure, SipError};
use std::time::Duration;

/// Marker appended to an error message when a retry budget runs out.
/// Kept greppable and stable: outer recovery scopes use it (via
/// [`is_exhausted`]) to avoid re-retrying an already-exhausted failure,
/// and tests assert the surfaced error names the exhausted policy.
const EXHAUSTED_MARKER: &str = "RetryPolicy exhausted";

/// A bounded-retry policy with exponential, deterministically jittered
/// backoff.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, *including* the first (1 = fail-fast, no retry).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each retry after that.
    pub base_backoff: Duration,
    /// Ceiling on a single backoff delay (pre-jitter).
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter hash. Two scopes with the same
    /// seed and attempt number sleep identically.
    pub jitter_seed: u64,
    /// Retry attributed panics (contained by `catch_unwind`).
    pub retry_panic: bool,
    /// Retry ordinary operator errors.
    pub retry_error: bool,
    /// When set, a fragment with no batch progress for this long gets a
    /// speculative duplicate attempt (first finisher wins). `None`
    /// disables straggler speculation.
    pub speculation_quantum: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(100),
            jitter_seed: 0x51_AE5,
            retry_panic: true,
            retry_error: true,
            speculation_quantum: None,
        }
    }
}

impl RetryPolicy {
    /// A policy with `max_attempts` total attempts and the default
    /// backoff curve.
    pub fn with_attempts(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts,
            ..RetryPolicy::default()
        }
    }

    /// Fail-fast: one attempt, no retries. Useful as an explicit "retry
    /// wiring on, budget off" control in benchmarks.
    pub fn fail_fast() -> Self {
        RetryPolicy::with_attempts(1)
    }

    /// Enable straggler speculation after `quantum` without progress.
    pub fn with_speculation(mut self, quantum: Duration) -> Self {
        self.speculation_quantum = Some(quantum);
        self
    }

    /// Derive a policy with a scope-specific seed (e.g. per partition),
    /// so concurrent scopes jitter independently but deterministically.
    pub fn reseeded(mut self, salt: u64) -> Self {
        self.jitter_seed = splitmix64(self.jitter_seed ^ salt);
        self
    }

    /// Is a failure of `class` eligible for retry under this policy?
    /// Cancellation and deadline expiry ([`ExecFailure::Cancelled`]) are
    /// never retried — the user asked the query to stop. Disconnects are
    /// secondary symptoms; the primary failure decides.
    pub fn retries(&self, class: ExecFailure) -> bool {
        match class {
            ExecFailure::Panic => self.retry_panic,
            ExecFailure::Error => self.retry_error,
            ExecFailure::Disconnect | ExecFailure::Cancelled => false,
        }
    }

    /// The delay before retry number `retry` (1-based: the delay taken
    /// after the first failed attempt is `backoff(1)`). Exponential in
    /// `retry`, capped at `max_backoff`, then jittered deterministically
    /// into `[d/2, d)`.
    pub fn backoff(&self, retry: u32) -> Duration {
        let exp = retry.saturating_sub(1).min(31);
        let uncapped = self
            .base_backoff
            .saturating_mul(1u32.checked_shl(exp).unwrap_or(u32::MAX));
        let capped = uncapped.min(self.max_backoff);
        if capped.is_zero() {
            return capped;
        }
        let half = capped / 2;
        // 53 bits of hash → a fraction in [0, 1).
        let frac =
            (splitmix64(self.jitter_seed ^ u64::from(retry)) >> 11) as f64 / (1u64 << 53) as f64;
        half + capped.mul_f64(frac / 2.0)
    }

    /// Sanity-check the policy at configuration time, mirroring
    /// `FaultPlan::validate`: a zero-attempt budget can never run the
    /// query at all, and a multi-attempt policy whose backoff ceiling is
    /// below its base is almost certainly a mistyped duration.
    pub fn validate(&self) -> Result<(), SipError> {
        if self.max_attempts == 0 {
            return Err(SipError::Config(
                "RetryPolicy: max_attempts == 0 would never even run the first attempt; \
                 use 1 for fail-fast"
                    .into(),
            ));
        }
        if self.max_backoff < self.base_backoff {
            return Err(SipError::Config(format!(
                "RetryPolicy: max_backoff {:?} below base_backoff {:?}",
                self.max_backoff, self.base_backoff
            )));
        }
        if let Some(q) = self.speculation_quantum {
            if q.is_zero() {
                return Err(SipError::Config(
                    "RetryPolicy: speculation_quantum of 0ns would duplicate every fragment \
                     immediately; give it a duration or use None"
                        .into(),
                ));
            }
        }
        Ok(())
    }
}

/// Per-scope retry progress: tracks the attempt counter against a
/// [`RetryPolicy`] and hands out backoff delays until the budget is
/// exhausted.
#[derive(Clone, Debug)]
pub struct RetryState {
    policy: RetryPolicy,
    attempt: u32,
}

impl RetryState {
    /// Start a scope: attempt 1 is about to run.
    pub fn new(policy: RetryPolicy) -> Self {
        RetryState { policy, attempt: 1 }
    }

    /// The attempt number currently running (1-based).
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// The policy this state enforces.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// The current attempt failed with `class`: if the policy retries
    /// that class and budget remains, advance the attempt counter and
    /// return the backoff to sleep before the next attempt. `None`
    /// means give up (non-retryable class, or budget exhausted — use
    /// [`RetryState::exhausted`] to tell which when reporting).
    pub fn again(&mut self, class: ExecFailure) -> Option<Duration> {
        if !self.policy.retries(class) || is_exhausted_class(class) {
            return None;
        }
        if self.attempt >= self.policy.max_attempts {
            return None;
        }
        let delay = self.policy.backoff(self.attempt);
        self.attempt += 1;
        Some(delay)
    }

    /// Did the scope run out of budget (as opposed to hitting a
    /// non-retryable class)?
    pub fn exhausted(&self, class: ExecFailure) -> bool {
        self.policy.retries(class) && self.attempt >= self.policy.max_attempts
    }

    /// Decorate `err` as the final, budget-exhausted failure of this
    /// scope. The attributed structure (op, kind, partition, class) is
    /// preserved; the message gains the exhaustion marker naming the
    /// budget, which [`is_exhausted`] recognizes so outer scopes do not
    /// retry it again.
    pub fn give_up(&self, err: SipError) -> SipError {
        mark_exhausted(err, self.attempt, self.policy.max_attempts)
    }
}

/// `Cancelled` can also mean the *global* run is shutting down; never
/// loop on it even if a policy were misconfigured to allow it.
fn is_exhausted_class(class: ExecFailure) -> bool {
    matches!(class, ExecFailure::Cancelled)
}

/// Append the exhaustion marker to an error's message, preserving the
/// variant and attribution.
pub fn mark_exhausted(err: SipError, attempts: u32, budget: u32) -> SipError {
    let suffix = format!("; {EXHAUSTED_MARKER} after {attempts}/{budget} attempts");
    match err {
        SipError::ExecAt {
            message,
            op,
            kind,
            partition,
            class,
        } => SipError::ExecAt {
            message: format!("{message}{suffix}"),
            op,
            kind,
            partition,
            class,
        },
        SipError::Exec(m) => SipError::Exec(format!("{m}{suffix}")),
        SipError::Net(m) => SipError::Net(format!("{m}{suffix}")),
        SipError::Data(m) => SipError::Data(format!("{m}{suffix}")),
        SipError::Expr(m) => SipError::Expr(format!("{m}{suffix}")),
        SipError::Plan(m) => SipError::Plan(format!("{m}{suffix}")),
        SipError::Optimize(m) => SipError::Optimize(format!("{m}{suffix}")),
        SipError::Config(m) => SipError::Config(format!("{m}{suffix}")),
    }
}

/// Does `err` carry the exhaustion marker of some retry scope? Outer
/// recovery layers use this to surface the error as-is instead of
/// re-spending their own budget on a failure that already outlived one.
pub fn is_exhausted(err: &SipError) -> bool {
    err.message().contains(EXHAUSTED_MARKER)
}

/// splitmix64: a tiny, high-quality 64-bit mixer. Deterministic jitter
/// needs no cryptographic strength, only decorrelation.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(4),
            max_backoff: Duration::from_millis(20),
            jitter_seed: 7,
            ..RetryPolicy::default()
        }
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = policy();
        // Jitter keeps each delay in [d/2, d) of the exponential curve.
        let within = |retry: u32, d_ms: u64| {
            let got = p.backoff(retry);
            let d = Duration::from_millis(d_ms);
            assert!(
                got >= d / 2 && got < d,
                "retry {retry}: {got:?} outside [{:?}, {d:?})",
                d / 2
            );
        };
        within(1, 4);
        within(2, 8);
        within(3, 16);
        within(4, 20); // capped at max_backoff
        within(9, 20); // stays capped
        assert!(p.backoff(2) > p.backoff(1), "backoff must grow");
    }

    #[test]
    fn jitter_is_deterministic_under_a_seed() {
        let a = policy();
        let b = policy();
        for retry in 1..6 {
            assert_eq!(a.backoff(retry), b.backoff(retry), "retry {retry}");
        }
        // A different seed decorrelates at least one delay.
        let c = RetryPolicy {
            jitter_seed: 8,
            ..policy()
        };
        assert!(
            (1..6).any(|r| c.backoff(r) != a.backoff(r)),
            "reseeding never moved a delay"
        );
        // And reseeding is itself deterministic.
        assert_eq!(policy().reseeded(3), policy().reseeded(3));
        assert_ne!(policy().reseeded(3).jitter_seed, policy().jitter_seed);
    }

    #[test]
    fn budget_exhaustion_is_reported_and_sticky() {
        let mut s = RetryState::new(RetryPolicy::with_attempts(3));
        assert_eq!(s.attempt(), 1);
        assert!(s.again(ExecFailure::Panic).is_some());
        assert!(s.again(ExecFailure::Error).is_some());
        assert_eq!(s.attempt(), 3);
        assert_eq!(s.again(ExecFailure::Panic), None, "budget spent");
        assert!(s.exhausted(ExecFailure::Panic));

        let err = s.give_up(SipError::exec_at(
            "boom",
            7,
            "Scan",
            Some(2),
            ExecFailure::Panic,
        ));
        assert!(is_exhausted(&err), "marker must survive: {err}");
        assert_eq!(err.exec_class(), Some(ExecFailure::Panic));
        let msg = err.to_string();
        assert!(
            msg.contains("RetryPolicy exhausted after 3/3 attempts"),
            "error must name the exhausted budget: {msg}"
        );
        // The attribution is intact.
        assert!(msg.contains("at Scan op 7"), "{msg}");
    }

    #[test]
    fn non_retryable_classes_never_loop() {
        let mut s = RetryState::new(RetryPolicy::with_attempts(10));
        assert_eq!(s.again(ExecFailure::Cancelled), None);
        assert_eq!(s.again(ExecFailure::Disconnect), None);
        assert!(!s.exhausted(ExecFailure::Cancelled));
        let mut no_panic = RetryState::new(RetryPolicy {
            retry_panic: false,
            ..RetryPolicy::with_attempts(10)
        });
        assert_eq!(no_panic.again(ExecFailure::Panic), None);
        assert!(no_panic.again(ExecFailure::Error).is_some());
    }

    #[test]
    fn fail_fast_policy_never_retries() {
        let mut s = RetryState::new(RetryPolicy::fail_fast());
        assert_eq!(s.again(ExecFailure::Error), None);
        assert!(s.exhausted(ExecFailure::Error));
    }

    #[test]
    fn degenerate_policies_are_rejected_at_config_time() {
        let zero = RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        };
        assert_eq!(zero.validate().unwrap_err().layer(), "config");
        let inverted = RetryPolicy {
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_millis(5),
            ..RetryPolicy::default()
        };
        assert_eq!(inverted.validate().unwrap_err().layer(), "config");
        let zero_quantum = RetryPolicy::default().with_speculation(Duration::ZERO);
        assert_eq!(zero_quantum.validate().unwrap_err().layer(), "config");
        assert!(RetryPolicy::default().validate().is_ok());
        assert!(RetryPolicy::fail_fast().validate().is_ok());
    }

    #[test]
    fn exhaustion_marker_rides_every_variant() {
        for e in [
            SipError::Net("link down".into()),
            SipError::Exec("boom".into()),
        ] {
            let marked = mark_exhausted(e, 2, 2);
            assert!(is_exhausted(&marked), "{marked}");
            assert!(!is_exhausted(&SipError::Exec("clean".into())));
        }
    }
}
