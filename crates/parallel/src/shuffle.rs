//! Shuffle planning: when (and how) a join whose inputs are partitioned on
//! different attribute classes should repartition instead of collapsing the
//! parallel region.
//!
//! The expander in [`crate::partition`] tracks, per partitioned stream, the
//! set of attributes whose values provably obey the partition-hash
//! invariant (`hash(value) % dop == partition` for every row). A join can
//! run per-partition exactly when one of its key pairs is *co-aligned* —
//! the left attribute holds the invariant on the left stream and the right
//! attribute on the right stream; matching rows then share a hash and
//! therefore a partition. Anything else needs rows to move: a shuffle mesh
//! on one side, both sides, or — when the cost model says moving the rows
//! costs more than the serial join saves — the old merge-then-serial
//! fallback.

use sip_common::{AttrId, FxHashSet};
use sip_optimizer::CostModel;

/// Skew-adaptive (salted) routing knobs.
///
/// A key is *hot* when its share of the base table times `dop` reaches
/// `hot_factor` — i.e. the key alone would fill `hot_factor` of one
/// reader's fair share. Hot keys of a shuffled join are dealt round-robin
/// on the scatter side while their build rows are replicated to every
/// partition; when the hot keys cover nearly the whole stream
/// (`replicate_coverage`) the planner falls back to replicating the entire
/// build side ([`sip_engine::SaltedKeys::All`]).
#[derive(Clone, Debug)]
pub struct SaltConfig {
    /// Enable skew-adaptive routing (salting) for shuffled joins.
    pub enabled: bool,
    /// Hot-key threshold: salted when `base_frequency * dop >= hot_factor
    /// * base_rows`. Lower = more keys salted.
    pub hot_factor: f64,
    /// Cap on salted keys per join (the heaviest keys win).
    pub max_hot_keys: usize,
    /// Hot-row coverage at which per-key salting gives way to the
    /// replicated-build fallback (the pathological all-hot case).
    pub replicate_coverage: f64,
    /// Bypass the cost gate: salt every shuffled join whose key crosses
    /// `hot_factor` (differential tests force salting this way).
    pub force: bool,
}

impl Default for SaltConfig {
    fn default() -> Self {
        SaltConfig {
            enabled: true,
            hot_factor: 0.5,
            max_hot_keys: 64,
            replicate_coverage: 0.9,
            force: false,
        }
    }
}

/// Expansion knobs for [`crate::partition_plan_cfg`].
#[derive(Clone, Debug)]
pub struct PartitionConfig {
    /// Allow mid-plan repartitioning through shuffle meshes. With this off
    /// the expander reproduces the PR-1 behaviour: non-co-keyed joins end
    /// the parallel region (merge + serial operator).
    pub shuffle: bool,
    /// Replicable subtrees estimated at or below this many rows are
    /// broadcast (one instance per partition); larger ones are instantiated
    /// once and *distributed* over a `1 × dop` mesh so the underlying
    /// (possibly slow) source is scanned a single time.
    pub broadcast_max_rows: f64,
    /// Scans of tables smaller than this stay replicable even when they
    /// expose a join-key attribute — partitioning a handful of rows buys
    /// nothing and costs threads.
    pub min_scan_rows: u64,
    /// Fan-in of the tree-structured merge tail: every point where `dop`
    /// partition streams rejoin a serial section (the root, partial
    /// aggregates, partial dedups) becomes a tree of `Merge` operators
    /// with at most this many inputs each, spreading the per-batch merge
    /// work (select, counters, emit) over `~dop / fanin` threads instead
    /// of funnelling all partitions through one serial `Merge`.
    ///
    /// `0` = auto: flat (single merge) up to dop 4, binary tree above.
    /// Values `>= 2` force that fan-in at every dop.
    pub merge_fanin: u32,
    /// Skew-adaptive routing (heavy-hitter salting + replicated-build
    /// fallback) for shuffled joins.
    pub salt: SaltConfig,
    /// Cost model pricing repartition against the serial fallback.
    pub cost: CostModel,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            shuffle: true,
            broadcast_max_rows: 1024.0,
            min_scan_rows: 0,
            merge_fanin: 0,
            salt: SaltConfig::default(),
            cost: CostModel::default(),
        }
    }
}

/// One equated key pair of a join, resolved to both sides' layouts.
#[derive(Clone, Copy, Debug)]
pub(crate) struct KeyPair {
    /// Key position in the left input's layout.
    pub l_pos: usize,
    /// Key position in the right input's layout.
    pub r_pos: usize,
    /// Attribute at `l_pos`.
    pub l_attr: AttrId,
    /// Attribute at `r_pos`.
    pub r_attr: AttrId,
}

/// How to make a join's two partitioned inputs co-partitioned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Alignment {
    /// Key pair `pair` is already co-aligned: run the join per partition.
    Colocated { pair: usize },
    /// The left stream holds the invariant on `pair`; hash-repartition the
    /// right stream on the pair's right key.
    ShuffleRight { pair: usize },
    /// Mirror image of `ShuffleRight`.
    ShuffleLeft { pair: usize },
    /// Neither side is aligned on any pair: repartition both on `pair`.
    ShuffleBoth { pair: usize },
    /// Repartitioning does not pay (or is disabled): merge the partitions
    /// and run this operator serially.
    Serial,
}

/// Source-plan cardinality estimates for one join, used to price moved
/// rows against the serial fallback.
#[derive(Clone, Copy, Debug)]
pub(crate) struct JoinEst {
    /// Estimated left-input rows.
    pub left: f64,
    /// Estimated right-input rows.
    pub right: f64,
    /// Estimated output rows.
    pub out: f64,
    /// Base-table share of the join key's most frequent value (0 when
    /// unknown): the hot fraction a hash repartition cannot split, feeding
    /// [`CostModel::skew_factor`] so serial-vs-shuffle decisions stop
    /// assuming uniform keys.
    pub hot_frac: f64,
}

impl JoinEst {
    /// Uniform-keys estimate (no skew information).
    #[cfg(test)]
    pub(crate) fn uniform(left: f64, right: f64, out: f64) -> JoinEst {
        JoinEst {
            left,
            right,
            out,
            hot_frac: 0.0,
        }
    }
}

/// Decide how a `(partitioned, partitioned)` join becomes co-partitioned.
///
/// Moved rows are priced with [`CostModel::repartition_wins`] against the
/// serial fallback.
pub(crate) fn plan_join_alignment(
    pairs: &[KeyPair],
    l_class: &FxHashSet<AttrId>,
    r_class: &FxHashSet<AttrId>,
    est: JoinEst,
    dop: u32,
    cfg: &PartitionConfig,
) -> Alignment {
    let (l_rows, r_rows, out_rows) = (est.left, est.right, est.out);
    if let Some(pair) = pairs
        .iter()
        .position(|p| l_class.contains(&p.l_attr) && r_class.contains(&p.r_attr))
    {
        return Alignment::Colocated { pair };
    }
    if !cfg.shuffle || pairs.is_empty() {
        return Alignment::Serial;
    }
    // Moved rows are priced with the key's hot fraction folded in: a
    // shuffle cannot split a hot key below one worker, so the parallel
    // join's critical path inflates by the skew factor. (Joins the salt
    // planner already took over never reach this point.)
    let skew = cfg.cost.skew_factor(est.hot_frac, dop);
    let wins = |moved: f64| {
        cfg.cost
            .repartition_wins_skewed(l_rows, r_rows, out_rows, moved, dop, skew)
    };
    if let Some(pair) = pairs.iter().position(|p| l_class.contains(&p.l_attr)) {
        if wins(r_rows) {
            return Alignment::ShuffleRight { pair };
        }
        return Alignment::Serial;
    }
    if let Some(pair) = pairs.iter().position(|p| r_class.contains(&p.r_attr)) {
        if wins(l_rows) {
            return Alignment::ShuffleLeft { pair };
        }
        return Alignment::Serial;
    }
    if wins(l_rows + r_rows) {
        return Alignment::ShuffleBoth { pair: 0 };
    }
    Alignment::Serial
}

#[cfg(test)]
mod tests {
    use super::*;
    use sip_common::AttrId;

    fn pair(l: u32, r: u32) -> KeyPair {
        KeyPair {
            l_pos: 0,
            r_pos: 0,
            l_attr: AttrId(l),
            r_attr: AttrId(r),
        }
    }

    fn set(ids: &[u32]) -> FxHashSet<AttrId> {
        ids.iter().map(|&i| AttrId(i)).collect()
    }

    #[test]
    fn colocated_beats_everything() {
        let a = plan_join_alignment(
            &[pair(1, 2), pair(3, 4)],
            &set(&[3]),
            &set(&[4]),
            JoinEst::uniform(1e6, 1e6, 1e6),
            4,
            &PartitionConfig::default(),
        );
        assert_eq!(a, Alignment::Colocated { pair: 1 });
    }

    #[test]
    fn one_sided_alignment_shuffles_the_other_side() {
        let cfg = PartitionConfig::default();
        let a = plan_join_alignment(
            &[pair(1, 2)],
            &set(&[1]),
            &set(&[9]),
            JoinEst::uniform(1e5, 1e5, 1e5),
            4,
            &cfg,
        );
        assert_eq!(a, Alignment::ShuffleRight { pair: 0 });
        let a = plan_join_alignment(
            &[pair(1, 2)],
            &set(&[9]),
            &set(&[2]),
            JoinEst::uniform(1e5, 1e5, 1e5),
            4,
            &cfg,
        );
        assert_eq!(a, Alignment::ShuffleLeft { pair: 0 });
    }

    #[test]
    fn no_alignment_shuffles_both() {
        let a = plan_join_alignment(
            &[pair(1, 2)],
            &set(&[7]),
            &set(&[9]),
            JoinEst::uniform(1e5, 1e5, 1e5),
            4,
            &PartitionConfig::default(),
        );
        assert_eq!(a, Alignment::ShuffleBoth { pair: 0 });
    }

    #[test]
    fn disabled_or_unprofitable_shuffle_goes_serial() {
        let mut cfg = PartitionConfig {
            shuffle: false,
            ..Default::default()
        };
        let a = plan_join_alignment(
            &[pair(1, 2)],
            &set(&[1]),
            &set(&[9]),
            JoinEst::uniform(1e5, 1e5, 1e5),
            4,
            &cfg,
        );
        assert_eq!(a, Alignment::Serial);
        // Shuffling priced off the table: a mesh hop so expensive the
        // serial join always wins.
        cfg.shuffle = true;
        cfg.cost.cpu_shuffle_row = 1e9;
        let a = plan_join_alignment(
            &[pair(1, 2)],
            &set(&[1]),
            &set(&[9]),
            JoinEst::uniform(1e5, 1e5, 1e5),
            4,
            &cfg,
        );
        assert_eq!(a, Alignment::Serial);
    }
}
