//! Plan analysis and expansion: serial [`PhysPlan`] → `dop`-way
//! hash-partitioned [`PhysPlan`] + [`PartitionMap`].

use sip_common::{AttrId, FxHashMap, FxHashSet, OpId};
use sip_engine::{PartitionMap, PhysKind, PhysNode, PhysPlan, ScanPartition};
use sip_expr::{AggFunc, Expr};
use sip_plan::UnionFind;
use std::fmt;
use std::sync::Arc;

/// Why a plan could not be partitioned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PartitionError {
    /// `dop` must be at least 2 for partitioning to mean anything.
    DopTooSmall,
    /// No attribute-equivalence class yields any partitioned scan, or the
    /// plan is parallelism-free (e.g. a single scan with no stateful work).
    NotPartitionable,
    /// The plan contains operators that cannot be cloned across partitions
    /// (external sources are fed by op-id-keyed channels; already-expanded
    /// plans must not be expanded again).
    Unsupported(&'static str),
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::DopTooSmall => f.write_str("degree of parallelism must be >= 2"),
            PartitionError::NotPartitionable => {
                f.write_str("plan offers no hash-partitionable region")
            }
            PartitionError::Unsupported(what) => {
                write!(f, "plan contains unpartitionable operator: {what}")
            }
        }
    }
}

impl std::error::Error for PartitionError {}

/// Expand `plan` into `dop` hash partitions.
///
/// On success, returns the expanded plan (Exchange/Merge boundaries
/// inserted, every partition-compatible operator cloned per partition) and
/// the [`PartitionMap`] describing clone → partition / source-operator
/// relationships for AIP controllers and metrics rollups.
pub fn partition_plan(
    plan: &PhysPlan,
    dop: u32,
) -> Result<(Arc<PhysPlan>, Arc<PartitionMap>), PartitionError> {
    if dop < 2 {
        return Err(PartitionError::DopTooSmall);
    }
    for node in &plan.nodes {
        match node.kind {
            PhysKind::ExternalSource { .. } => {
                return Err(PartitionError::Unsupported("ExternalSource"))
            }
            PhysKind::Exchange { .. } | PhysKind::Merge => {
                return Err(PartitionError::Unsupported("already partitioned"))
            }
            _ => {}
        }
    }
    let class = choose_class(plan).ok_or(PartitionError::NotPartitionable)?;
    let mut ex = Expander {
        old: plan,
        dop,
        class,
        nodes: Vec::new(),
        partition_of: Vec::new(),
        logical_of: Vec::new(),
        made_parallel: false,
    };
    let built = ex.build(plan.root);
    let root = ex.single_stream(built, plan.root);
    if !ex.made_parallel {
        return Err(PartitionError::NotPartitionable);
    }
    let map = PartitionMap {
        dop,
        partition_of: ex.partition_of,
        logical_of: ex.logical_of,
        class_attrs: ex.class,
    };
    let expanded = PhysPlan::from_nodes(ex.nodes, root, plan.attrs.clone())
        .expect("expansion produced an invalid plan");
    Ok((Arc::new(expanded), Arc::new(map)))
}

/// Union-find over the plan's join-key attribute equalities, then pick the
/// class that covers the most stateful work.
fn choose_class(plan: &PhysPlan) -> Option<FxHashSet<AttrId>> {
    let mut uf = UnionFind::default();
    let mut key_attrs: Vec<AttrId> = Vec::new();
    for node in &plan.nodes {
        let (ik, jk) = match &node.kind {
            PhysKind::HashJoin {
                left_keys,
                right_keys,
                ..
            } => (left_keys, right_keys),
            PhysKind::SemiJoin {
                probe_keys,
                build_keys,
            } => (probe_keys, build_keys),
            _ => continue,
        };
        let il = &plan.node(node.inputs[0]).layout;
        let jl = &plan.node(node.inputs[1]).layout;
        for (&a, &b) in ik.iter().zip(jk.iter()) {
            uf.union(il[a].0, jl[b].0);
            key_attrs.push(il[a]);
            key_attrs.push(jl[b]);
        }
    }
    // Score each class: joins co-keyed on it count double (both sides
    // partition), aggregates grouped by it count once. Two passes — all
    // joins, then all aggregates — because an aggregate sits *below* its
    // consuming join in arena order, so a single interleaved pass would
    // miss every aggregate bonus (the class entry would not exist yet).
    let mut scores: FxHashMap<u32, u32> = FxHashMap::default();
    for node in &plan.nodes {
        match &node.kind {
            PhysKind::HashJoin {
                left_keys,
                right_keys,
                ..
            } => {
                let ll = &plan.node(node.inputs[0]).layout;
                for (&lk, _) in left_keys.iter().zip(right_keys.iter()) {
                    *scores.entry(uf.find(ll[lk].0)).or_default() += 2;
                }
            }
            PhysKind::SemiJoin {
                probe_keys,
                build_keys,
            } => {
                let pl = &plan.node(node.inputs[0]).layout;
                for (&pk, _) in probe_keys.iter().zip(build_keys.iter()) {
                    *scores.entry(uf.find(pl[pk].0)).or_default() += 2;
                }
            }
            _ => {}
        }
    }
    for node in &plan.nodes {
        if let PhysKind::Aggregate { group_cols, .. } = &node.kind {
            let cl = &plan.node(node.inputs[0]).layout;
            for &g in group_cols {
                let root = uf.find(cl[g].0);
                if scores.contains_key(&root) {
                    *scores.entry(root).or_default() += 1;
                }
            }
        }
    }
    let (&best, _) = scores
        .iter()
        .max_by_key(|&(&root, &score)| (score, std::cmp::Reverse(root)))?;
    // The class holds exactly the attrs appearing as join keys of the
    // winning equivalence class. An equated attribute re-exposed under a
    // different AttrId (e.g. through a projection alias) that never appears
    // as a join key is not included — its scan is conservatively treated as
    // replicable rather than partitioned.
    let class: FxHashSet<AttrId> = key_attrs
        .iter()
        .copied()
        .filter(|a| uf.find(a.0) == best)
        .collect();
    Some(class)
}

/// The result of expanding one source subtree.
enum Built {
    /// One clone output per partition, in partition order.
    PerPartition(Vec<OpId>),
    /// The subtree holds no partitioned source; it can be instantiated
    /// per partition on demand (the id is the *source-plan* subtree root).
    Replicable(OpId),
    /// A single already-materialized stream in the new plan.
    Single(OpId),
}

struct Expander<'a> {
    old: &'a PhysPlan,
    dop: u32,
    class: FxHashSet<AttrId>,
    nodes: Vec<PhysNode>,
    partition_of: Vec<Option<u32>>,
    logical_of: Vec<OpId>,
    made_parallel: bool,
}

impl Expander<'_> {
    fn push(
        &mut self,
        kind: PhysKind,
        inputs: Vec<OpId>,
        layout: Vec<AttrId>,
        partition: Option<u32>,
        logical: OpId,
    ) -> OpId {
        let id = OpId(self.nodes.len() as u32);
        self.nodes.push(PhysNode {
            id,
            kind,
            inputs,
            layout,
        });
        self.partition_of.push(partition);
        self.logical_of.push(logical);
        id
    }

    /// First layout position carrying a partitioning-class attribute.
    fn class_pos(&self, layout: &[AttrId]) -> Option<usize> {
        layout.iter().position(|a| self.class.contains(a))
    }

    /// Do the join keys equate attributes of the partitioning class?
    fn co_keyed(&self, left_layout: &[AttrId], left_keys: &[usize]) -> bool {
        left_keys
            .iter()
            .any(|&k| self.class.contains(&left_layout[k]))
    }

    /// Deep-copy a source subtree into the new arena, unchanged, attributed
    /// to `partition`.
    fn instantiate(&mut self, op: OpId, partition: Option<u32>) -> OpId {
        let node = self.old.node(op);
        let inputs: Vec<OpId> = node
            .inputs
            .iter()
            .map(|&c| self.instantiate(c, partition))
            .collect();
        self.push(
            node.kind.clone(),
            inputs,
            node.layout.clone(),
            partition,
            op,
        )
    }

    /// Materialize any [`Built`] as one stream (inserting a Merge above
    /// partition clones).
    fn single_stream(&mut self, built: Built, logical: OpId) -> OpId {
        match built {
            Built::Single(id) => id,
            Built::Replicable(op) => self.instantiate(op, None),
            Built::PerPartition(clones) => {
                let layout = self.nodes[clones[0].index()].layout.clone();
                self.push(PhysKind::Merge, clones, layout, None, logical)
            }
        }
    }

    /// Clone a unary source operator over each partition stream.
    fn map_clones(&mut self, op: OpId, children: Vec<OpId>) -> Vec<OpId> {
        let node = self.old.node(op);
        children
            .into_iter()
            .enumerate()
            .map(|(p, c)| {
                self.push(
                    node.kind.clone(),
                    vec![c],
                    node.layout.clone(),
                    Some(p as u32),
                    op,
                )
            })
            .collect()
    }

    /// Expand one source subtree.
    fn build(&mut self, op: OpId) -> Built {
        let node = self.old.node(op);
        match &node.kind {
            PhysKind::Scan { .. } => match self.class_pos(&node.layout) {
                Some(col) => {
                    self.made_parallel = true;
                    let clones = (0..self.dop)
                        .map(|p| {
                            let mut kind = node.kind.clone();
                            if let PhysKind::Scan { part, .. } = &mut kind {
                                *part = Some(ScanPartition {
                                    col,
                                    partition: p,
                                    dop: self.dop,
                                });
                            }
                            self.push(kind, vec![], node.layout.clone(), Some(p), op)
                        })
                        .collect();
                    Built::PerPartition(clones)
                }
                None => Built::Replicable(op),
            },
            PhysKind::Filter { .. } | PhysKind::Project { .. } => {
                match self.build(node.inputs[0]) {
                    Built::PerPartition(cs) => Built::PerPartition(self.map_clones(op, cs)),
                    Built::Replicable(_) => Built::Replicable(op),
                    Built::Single(c) => Built::Single(self.push(
                        node.kind.clone(),
                        vec![c],
                        node.layout.clone(),
                        None,
                        op,
                    )),
                }
            }
            PhysKind::HashJoin {
                left_keys,
                right_keys,
                ..
            } => {
                let co = self.co_keyed(&self.old.node(node.inputs[0]).layout, left_keys)
                    && self.co_keyed(&self.old.node(node.inputs[1]).layout, right_keys);
                self.build_binary(op, co)
            }
            PhysKind::SemiJoin {
                probe_keys,
                build_keys,
            } => {
                let co = self.co_keyed(&self.old.node(node.inputs[0]).layout, probe_keys)
                    && self.co_keyed(&self.old.node(node.inputs[1]).layout, build_keys);
                self.build_binary(op, co)
            }
            PhysKind::Aggregate { group_cols, aggs } => {
                let child_layout = &self.old.node(node.inputs[0]).layout;
                let grouped_by_class = group_cols
                    .iter()
                    .any(|&g| self.class.contains(&child_layout[g]));
                let merge_funcs: Option<Vec<AggFunc>> =
                    aggs.iter().map(|a| merge_func(a.func)).collect();
                let n_groups = group_cols.len();
                match self.build(node.inputs[0]) {
                    Built::PerPartition(cs) => {
                        if grouped_by_class {
                            // Equal group keys share a partition: each
                            // partition's groups are complete and final.
                            Built::PerPartition(self.map_clones(op, cs))
                        } else if let Some(funcs) = merge_funcs {
                            // Partial aggregate per partition, merged, then
                            // a final aggregate combining partial states.
                            let partials = self.map_clones(op, cs);
                            let merged =
                                self.push(PhysKind::Merge, partials, node.layout.clone(), None, op);
                            let final_aggs = self
                                .old
                                .node(op)
                                .layout
                                .iter()
                                .skip(n_groups)
                                .zip(funcs)
                                .enumerate()
                                .map(|(i, (_, func))| sip_engine::BoundAgg {
                                    func,
                                    input: Expr::Col(n_groups + i),
                                })
                                .collect();
                            Built::Single(self.push(
                                PhysKind::Aggregate {
                                    group_cols: (0..n_groups).collect(),
                                    aggs: final_aggs,
                                },
                                vec![merged],
                                node.layout.clone(),
                                None,
                                op,
                            ))
                        } else {
                            // Unmergeable aggregate (e.g. AVG): aggregate
                            // serially above the merge.
                            let merged_in = self.single_stream(Built::PerPartition(cs), op);
                            Built::Single(self.push(
                                node.kind.clone(),
                                vec![merged_in],
                                node.layout.clone(),
                                None,
                                op,
                            ))
                        }
                    }
                    Built::Replicable(_) => Built::Replicable(op),
                    Built::Single(c) => Built::Single(self.push(
                        node.kind.clone(),
                        vec![c],
                        node.layout.clone(),
                        None,
                        op,
                    )),
                }
            }
            PhysKind::Distinct => match self.build(node.inputs[0]) {
                Built::PerPartition(cs) => {
                    if self.class_pos(&node.layout).is_some() {
                        // Rows equal on every column share a partition.
                        Built::PerPartition(self.map_clones(op, cs))
                    } else {
                        // Partial dedup per partition shrinks the merge;
                        // the serial distinct finishes the job.
                        let partials = self.map_clones(op, cs);
                        let merged =
                            self.push(PhysKind::Merge, partials, node.layout.clone(), None, op);
                        Built::Single(self.push(
                            PhysKind::Distinct,
                            vec![merged],
                            node.layout.clone(),
                            None,
                            op,
                        ))
                    }
                }
                Built::Replicable(_) => Built::Replicable(op),
                Built::Single(c) => Built::Single(self.push(
                    PhysKind::Distinct,
                    vec![c],
                    node.layout.clone(),
                    None,
                    op,
                )),
            },
            PhysKind::ExternalSource { .. } | PhysKind::Exchange { .. } | PhysKind::Merge => {
                unreachable!("rejected before expansion")
            }
        }
    }

    /// Expand a join/semijoin. `co` = the operator equates partitioning-class
    /// attributes on both inputs, so co-partitioned inputs line up.
    fn build_binary(&mut self, op: OpId, co: bool) -> Built {
        let node = self.old.node(op);
        let (l_old, r_old) = (node.inputs[0], node.inputs[1]);
        let l = self.build(l_old);
        let r = self.build(r_old);
        match (l, r) {
            (Built::PerPartition(ls), Built::PerPartition(rs)) => {
                if co {
                    let clones = ls
                        .into_iter()
                        .zip(rs)
                        .enumerate()
                        .map(|(p, (lc, rc))| {
                            self.push(
                                node.kind.clone(),
                                vec![lc, rc],
                                node.layout.clone(),
                                Some(p as u32),
                                op,
                            )
                        })
                        .collect();
                    Built::PerPartition(clones)
                } else {
                    // Partitioned on a class this operator does not equate:
                    // matching rows could sit in different partitions. End
                    // the parallel region below this operator.
                    let lm = self.single_stream(Built::PerPartition(ls), l_old);
                    let rm = self.single_stream(Built::PerPartition(rs), r_old);
                    Built::Single(self.push(
                        node.kind.clone(),
                        vec![lm, rm],
                        node.layout.clone(),
                        None,
                        op,
                    ))
                }
            }
            (Built::PerPartition(ls), Built::Replicable(r_op)) => {
                Built::PerPartition(self.join_with_replica(op, ls, r_op, co, false))
            }
            (Built::Replicable(l_op), Built::PerPartition(rs)) => {
                // A semijoin's output is its *probe* (left) side: with a
                // replicated probe over a non-co-keyed partitioned build,
                // a probe row matching build rows in several partitions
                // would be emitted once per partition — a semijoin is not
                // distributive over a union of its build side. Only the
                // co-keyed case is safe (the Exchange routes each probe
                // row to exactly one partition); otherwise end the region.
                if matches!(node.kind, PhysKind::SemiJoin { .. }) && !co {
                    let lm = self.single_stream(Built::Replicable(l_op), l_old);
                    let rm = self.single_stream(Built::PerPartition(rs), r_old);
                    Built::Single(self.push(
                        node.kind.clone(),
                        vec![lm, rm],
                        node.layout.clone(),
                        None,
                        op,
                    ))
                } else {
                    Built::PerPartition(self.join_with_replica(op, rs, l_op, co, true))
                }
            }
            (Built::Replicable(_), Built::Replicable(_)) => Built::Replicable(op),
            (l, r) => {
                // At least one side is already Single: the region ended
                // below; run this operator serially.
                let lm = self.single_stream(l, l_old);
                let rm = self.single_stream(r, r_old);
                Built::Single(self.push(
                    node.kind.clone(),
                    vec![lm, rm],
                    node.layout.clone(),
                    None,
                    op,
                ))
            }
        }
    }

    /// Join partition streams against per-partition instantiations of a
    /// replicable subtree. When the join equates class attributes and the
    /// replica exposes one, an [`PhysKind::Exchange`] prunes each replica
    /// to its partition's hash class, shrinking build state by ~`dop`×;
    /// otherwise each partition keeps a full replica (correct because each
    /// partitioned-side row lives in exactly one partition).
    fn join_with_replica(
        &mut self,
        op: OpId,
        streams: Vec<OpId>,
        replica_op: OpId,
        co: bool,
        replica_is_left: bool,
    ) -> Vec<OpId> {
        let node = self.old.node(op);
        let replica_layout = self.old.node(replica_op).layout.clone();
        let exchange_col = if co {
            self.class_pos(&replica_layout)
        } else {
            None
        };
        streams
            .into_iter()
            .enumerate()
            .map(|(p, stream)| {
                let p32 = p as u32;
                let mut replica = self.instantiate(replica_op, Some(p32));
                if let Some(col) = exchange_col {
                    replica = self.push(
                        PhysKind::Exchange {
                            col,
                            partition: p32,
                            dop: self.dop,
                        },
                        vec![replica],
                        replica_layout.clone(),
                        Some(p32),
                        replica_op,
                    );
                }
                let inputs = if replica_is_left {
                    vec![replica, stream]
                } else {
                    vec![stream, replica]
                };
                self.push(
                    node.kind.clone(),
                    inputs,
                    node.layout.clone(),
                    Some(p32),
                    op,
                )
            })
            .collect()
    }
}

/// How a partial aggregate's outputs combine in the final merge aggregate;
/// `None` = the function cannot be split (serial fallback).
fn merge_func(f: AggFunc) -> Option<AggFunc> {
    match f {
        AggFunc::Sum => Some(AggFunc::Sum),
        AggFunc::Count => Some(AggFunc::Sum),
        AggFunc::Min => Some(AggFunc::Min),
        AggFunc::Max => Some(AggFunc::Max),
        AggFunc::Avg => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sip_data::{generate, Catalog, TpchConfig};
    use sip_engine::{canonical, execute_oracle, lower};
    use sip_plan::QueryBuilder;

    fn catalog() -> Catalog {
        generate(&TpchConfig {
            scale_factor: 0.004,
            seed: 11,
            zipf_z: 0.5,
        })
        .unwrap()
    }

    /// part ⋈ (sum availqty per partkey): joins and groups on one class.
    fn partkey_plan(c: &Catalog) -> PhysPlan {
        let mut q = QueryBuilder::new(c);
        let p = q.scan("part", "p", &["p_partkey", "p_size"]).unwrap();
        let ps = q
            .scan("partsupp", "ps", &["ps_partkey", "ps_availqty"])
            .unwrap();
        let qty = ps.col("ps_availqty").unwrap();
        let agg = q
            .aggregate(ps, &["ps_partkey"], &[(AggFunc::Sum, qty, "avail")])
            .unwrap();
        let j = q.join(p, agg, &[("p.p_partkey", "ps.ps_partkey")]).unwrap();
        let plan = j.into_plan();
        lower(&plan, q.into_attrs(), c).unwrap()
    }

    #[test]
    fn expansion_matches_oracle_and_maps_partitions() {
        let c = catalog();
        let plan = partkey_plan(&c);
        let expected = canonical(&execute_oracle(&plan).unwrap());
        for dop in [2u32, 3, 4] {
            let (expanded, map) = partition_plan(&plan, dop).unwrap();
            expanded.validate().unwrap();
            assert_eq!(map.dop, dop);
            assert_eq!(map.partition_of.len(), expanded.nodes.len());
            // The expanded plan computes the same multiset.
            let got = canonical(&execute_oracle(&expanded).unwrap());
            assert_eq!(got, expected, "dop {dop} diverged");
            // Every partition owns at least one operator; a merge exists.
            for p in 0..dop {
                assert!(map.partition_of.contains(&Some(p)), "partition {p} empty");
            }
            assert!(expanded
                .nodes
                .iter()
                .any(|n| matches!(n.kind, PhysKind::Merge)));
            // Scans are partition-pruned.
            let parts: Vec<_> = expanded
                .nodes
                .iter()
                .filter_map(|n| match &n.kind {
                    PhysKind::Scan { part: Some(p), .. } => Some(p.partition),
                    _ => None,
                })
                .collect();
            assert_eq!(parts.len(), 2 * dop as usize, "both scans split");
        }
    }

    #[test]
    fn global_aggregate_splits_into_partial_and_final() {
        let c = catalog();
        let mut q = QueryBuilder::new(&c);
        let ps = q
            .scan("partsupp", "ps", &["ps_partkey", "ps_availqty"])
            .unwrap();
        let qty = ps.col("ps_availqty").unwrap();
        let per_key = q
            .aggregate(ps, &["ps_partkey"], &[(AggFunc::Sum, qty, "avail")])
            .unwrap();
        let p = q.scan("part", "p", &["p_partkey"]).unwrap();
        let j = q
            .join(p, per_key, &[("p.p_partkey", "ps.ps_partkey")])
            .unwrap();
        let avail = j.col("avail").unwrap();
        let total = q
            .aggregate(j, &[], &[(AggFunc::Sum, avail, "total")])
            .unwrap();
        let plan = total.into_plan();
        let phys = lower(&plan, q.into_attrs(), &c).unwrap();

        let expected = canonical(&execute_oracle(&phys).unwrap());
        let (expanded, _map) = partition_plan(&phys, 4).unwrap();
        // The global SUM has no class column: partial aggregates per
        // partition + a final merge aggregate above the Merge.
        let aggs = expanded
            .nodes
            .iter()
            .filter(|n| matches!(n.kind, PhysKind::Aggregate { .. }))
            .count();
        // 4 per-key (partitioned) + 4 partial SUM + 1 final SUM.
        assert_eq!(aggs, 9, "{}", expanded.display());
        assert_eq!(canonical(&execute_oracle(&expanded).unwrap()), expected);
    }

    #[test]
    fn single_scan_plan_is_not_partitionable() {
        let c = catalog();
        let mut q = QueryBuilder::new(&c);
        let p = q.scan("part", "p", &["p_partkey"]).unwrap();
        let plan = p.into_plan();
        let phys = lower(&plan, q.into_attrs(), &c).unwrap();
        assert_eq!(
            partition_plan(&phys, 4).unwrap_err(),
            PartitionError::NotPartitionable
        );
        assert_eq!(
            partition_plan(&phys, 1).unwrap_err(),
            PartitionError::DopTooSmall
        );
    }

    #[test]
    fn replicated_side_gets_exchange_when_co_keyed() {
        let c = catalog();
        let mut q = QueryBuilder::new(&c);
        // Aggregate the supplier side by suppkey — no partkey → replicable.
        // Join partsupp against it on suppkey... then partkey cannot win;
        // instead: partition class = partkey via ps1 ⋈ ps2, with a
        // part-side filter subtree that stays replicable-free.
        let ps1 = q
            .scan("partsupp", "ps1", &["ps_partkey", "ps_availqty"])
            .unwrap();
        let ps2 = q.scan("partsupp", "ps2", &["ps_partkey"]).unwrap();
        let j = q
            .join(ps1, ps2, &[("ps1.ps_partkey", "ps2.ps_partkey")])
            .unwrap();
        let plan = j.into_plan();
        let phys = lower(&plan, q.into_attrs(), &c).unwrap();
        let (expanded, map) = partition_plan(&phys, 2).unwrap();
        // Both sides carry partkey → both scans partitioned, no Exchange.
        assert!(expanded
            .nodes
            .iter()
            .all(|n| !matches!(n.kind, PhysKind::Exchange { .. })));
        let expected = canonical(&execute_oracle(&phys).unwrap());
        assert_eq!(canonical(&execute_oracle(&expanded).unwrap()), expected);
        assert!(map.class_attrs.len() >= 2);
    }

    #[test]
    fn semijoin_with_replicated_probe_on_off_class_key_stays_serial() {
        // Partition class = partkey: it scores 3 (the ps1 ⋈ agg join plus
        // the aggregate's group-key bonus) against the semijoin's suppkey
        // at 2. The semijoin probes supplier (no partkey → replicable)
        // against the partitioned stream on *suppkey*, which is off-class:
        // build rows with one suppkey spread across partkey partitions, so
        // a partitioned semijoin would emit the probe row once per
        // matching partition. The expander must run this semijoin
        // serially.
        let c = catalog();
        let mut q = QueryBuilder::new(&c);
        let s = q.scan("supplier", "s", &["s_suppkey"]).unwrap();
        let ps1 = q
            .scan("partsupp", "ps1", &["ps_partkey", "ps_suppkey"])
            .unwrap();
        let ps2 = q
            .scan("partsupp", "ps2", &["ps_partkey", "ps_availqty"])
            .unwrap();
        let qty = ps2.col("ps_availqty").unwrap();
        let agg = q
            .aggregate(ps2, &["ps_partkey"], &[(AggFunc::Sum, qty, "avail")])
            .unwrap();
        let j = q
            .join(ps1, agg, &[("ps1.ps_partkey", "ps2.ps_partkey")])
            .unwrap();
        let keys = vec![(
            s.attr("s_suppkey").unwrap(),
            j.attr("ps1.ps_suppkey").unwrap(),
        )];
        let plan = sip_plan::LogicalPlan::SemiJoin {
            probe: Box::new(s.into_plan()),
            build: Box::new(j.into_plan()),
            keys,
        };
        let phys = lower(&plan, q.into_attrs(), &c).unwrap();

        let expected = canonical(&execute_oracle(&phys).unwrap());
        for dop in [2u32, 4] {
            let (expanded, _) = partition_plan(&phys, dop).unwrap();
            assert_eq!(
                canonical(&execute_oracle(&expanded).unwrap()),
                expected,
                "dop {dop}: replicated-probe semijoin duplicated rows\n{}",
                expanded.display()
            );
            // The semijoin itself runs once, above the merge.
            let semis = expanded
                .nodes
                .iter()
                .filter(|n| matches!(n.kind, PhysKind::SemiJoin { .. }))
                .count();
            assert_eq!(semis, 1, "{}", expanded.display());
        }
    }

    #[test]
    fn avg_aggregate_falls_back_to_serial_merge() {
        let c = catalog();
        let mut q = QueryBuilder::new(&c);
        let ps = q
            .scan("partsupp", "ps", &["ps_partkey", "ps_availqty"])
            .unwrap();
        let p = q.scan("part", "p", &["p_partkey"]).unwrap();
        let j = q.join(p, ps, &[("p.p_partkey", "ps.ps_partkey")]).unwrap();
        let qty = j.col("ps_availqty").unwrap();
        // Global AVG: not splittable into partials.
        let avg = q.aggregate(j, &[], &[(AggFunc::Avg, qty, "mean")]).unwrap();
        let plan = avg.into_plan();
        let phys = lower(&plan, q.into_attrs(), &c).unwrap();
        let (expanded, _) = partition_plan(&phys, 3).unwrap();
        let expected = canonical(&execute_oracle(&phys).unwrap());
        assert_eq!(canonical(&execute_oracle(&expanded).unwrap()), expected);
        // Exactly one Aggregate survives (serial, above the merge).
        let aggs = expanded
            .nodes
            .iter()
            .filter(|n| matches!(n.kind, PhysKind::Aggregate { .. }))
            .count();
        assert_eq!(aggs, 1, "{}", expanded.display());
    }
}
