//! Plan analysis and expansion: serial [`PhysPlan`] → `dop`-way
//! hash-partitioned [`PhysPlan`] + [`PartitionMap`].
//!
//! Unlike the single-class expander of PR 1, every stream tracks the set of
//! attributes whose values provably obey the partition-hash invariant
//! (`hash(value) % dop == partition` for every row of partition
//! `partition`). Scans partition on their own best join key; a join whose
//! inputs are partitioned on *different* classes repartitions through a
//! [`PhysKind::ShuffleWrite`]/[`PhysKind::ShuffleRead`] mesh instead of
//! collapsing the parallel region, so multi-class join chains (TPC-H 5/9
//! shapes) stay parallel end to end.

use crate::shuffle::{plan_join_alignment, Alignment, JoinEst, KeyPair, PartitionConfig};
use sip_common::{AttrId, FxHashMap, FxHashSet, OpId};
use sip_engine::{
    PartitionMap, PhysKind, PhysNode, PhysPlan, SaltRole, SaltSpec, SaltedKeys, ScanPartition,
};
use sip_expr::{AggFunc, Expr};
use sip_optimizer::Estimator;
use sip_plan::UnionFind;
use std::fmt;
use std::sync::Arc;

/// Why a plan could not be partitioned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PartitionError {
    /// `dop` must be at least 2 for partitioning to mean anything.
    DopTooSmall,
    /// No attribute-equivalence class yields any partitioned scan, or the
    /// plan is parallelism-free (e.g. a single scan with no stateful work).
    NotPartitionable,
    /// The plan contains operators that cannot be cloned across partitions
    /// (external sources are fed by op-id-keyed channels; already-expanded
    /// plans must not be expanded again).
    Unsupported(&'static str),
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::DopTooSmall => f.write_str("degree of parallelism must be >= 2"),
            PartitionError::NotPartitionable => {
                f.write_str("plan offers no hash-partitionable region")
            }
            PartitionError::Unsupported(what) => {
                write!(f, "plan contains unpartitionable operator: {what}")
            }
        }
    }
}

impl std::error::Error for PartitionError {}

/// Expand `plan` into `dop` hash partitions with the default
/// [`PartitionConfig`] (shuffling enabled).
pub fn partition_plan(
    plan: &PhysPlan,
    dop: u32,
) -> Result<(Arc<PhysPlan>, Arc<PartitionMap>), PartitionError> {
    partition_plan_cfg(plan, dop, &PartitionConfig::default())
}

/// Expand `plan` into `dop` hash partitions.
///
/// On success, returns the expanded plan (partitioned scans,
/// Exchange/Merge boundaries, shuffle meshes at partitioning-class
/// changes, every partition-compatible operator cloned per partition) and
/// the [`PartitionMap`] describing clone → partition / source-operator /
/// partitioning-class relationships for AIP controllers and metrics
/// rollups.
pub fn partition_plan_cfg(
    plan: &PhysPlan,
    dop: u32,
    cfg: &PartitionConfig,
) -> Result<(Arc<PhysPlan>, Arc<PartitionMap>), PartitionError> {
    if dop < 2 {
        return Err(PartitionError::DopTooSmall);
    }
    for node in &plan.nodes {
        match node.kind {
            PhysKind::ExternalSource { .. } => {
                return Err(PartitionError::Unsupported("ExternalSource"))
            }
            PhysKind::Exchange { .. }
            | PhysKind::Merge
            | PhysKind::ShuffleWrite { .. }
            | PhysKind::ShuffleRead { .. } => {
                return Err(PartitionError::Unsupported("already partitioned"))
            }
            _ => {}
        }
    }
    let analysis = JoinAnalysis::compute(plan).ok_or(PartitionError::NotPartitionable)?;
    let mut ex = Expander {
        old: plan,
        dop,
        cfg,
        est: Estimator::estimate(plan),
        analysis,
        nodes: Vec::new(),
        partition_of: Vec::new(),
        logical_of: Vec::new(),
        op_class: Vec::new(),
        classes: Vec::new(),
        salted_classes: FxHashMap::default(),
        partial_aggs: FxHashMap::default(),
        next_mesh: 0,
        rowid_hint: false,
        made_parallel: false,
    };
    let built = ex.build(plan.root);
    let root = ex.single_stream(built, plan.root);
    if !ex.made_parallel {
        return Err(PartitionError::NotPartitionable);
    }
    let map = PartitionMap {
        dop,
        partition_of: ex.partition_of,
        logical_of: ex.logical_of,
        class_attrs: ex.analysis.primary,
        op_class: ex.op_class,
        classes: ex.classes,
        salted: ex.salted_classes,
        partial_agg_group_cols: ex.partial_aggs,
    };
    let expanded = PhysPlan::from_nodes(ex.nodes, root, plan.attrs.clone())
        .expect("expansion produced an invalid plan");
    Ok((Arc::new(expanded), Arc::new(map)))
}

/// Union-find over the plan's join-key attribute equalities, plus the
/// per-class scores used to pick each scan's partitioning key.
struct JoinAnalysis {
    uf: UnionFind,
    /// Every attribute appearing as a join (or semijoin) key.
    key_attrs: FxHashSet<AttrId>,
    /// Per union-find root: joins co-keyed on the class count double,
    /// aggregates grouped by it count once.
    scores: FxHashMap<u32, u32>,
    /// The full top-scoring equivalence class (kept in
    /// [`PartitionMap::class_attrs`] for display and back-compat).
    primary: FxHashSet<AttrId>,
}

impl JoinAnalysis {
    fn compute(plan: &PhysPlan) -> Option<JoinAnalysis> {
        let mut uf = UnionFind::new();
        let mut key_list: Vec<AttrId> = Vec::new();
        for node in &plan.nodes {
            let (ik, jk) = match &node.kind {
                PhysKind::HashJoin {
                    left_keys,
                    right_keys,
                    ..
                } => (left_keys, right_keys),
                PhysKind::SemiJoin {
                    probe_keys,
                    build_keys,
                } => (probe_keys, build_keys),
                _ => continue,
            };
            let il = &plan.node(node.inputs[0]).layout;
            let jl = &plan.node(node.inputs[1]).layout;
            for (&a, &b) in ik.iter().zip(jk.iter()) {
                uf.union(il[a].0, jl[b].0);
                key_list.push(il[a]);
                key_list.push(jl[b]);
            }
        }
        // Score each class: joins co-keyed on it count double (both sides
        // partition), aggregates grouped by it count once. Two passes — all
        // joins, then all aggregates — because an aggregate sits *below* its
        // consuming join in arena order, so a single interleaved pass would
        // miss every aggregate bonus (the class entry would not exist yet).
        let mut scores: FxHashMap<u32, u32> = FxHashMap::default();
        for node in &plan.nodes {
            let keys = match &node.kind {
                PhysKind::HashJoin { left_keys, .. } => left_keys,
                PhysKind::SemiJoin { probe_keys, .. } => probe_keys,
                _ => continue,
            };
            let ll = &plan.node(node.inputs[0]).layout;
            for &k in keys {
                *scores.entry(uf.find(ll[k].0)).or_default() += 2;
            }
        }
        for node in &plan.nodes {
            if let PhysKind::Aggregate { group_cols, .. } = &node.kind {
                let cl = &plan.node(node.inputs[0]).layout;
                for &g in group_cols {
                    let root = uf.find(cl[g].0);
                    if scores.contains_key(&root) {
                        *scores.entry(root).or_default() += 1;
                    }
                }
            }
        }
        let (&best, _) = scores
            .iter()
            .max_by_key(|&(&root, &score)| (score, std::cmp::Reverse(root)))?;
        let primary: FxHashSet<AttrId> = key_list
            .iter()
            .copied()
            .filter(|a| uf.find(a.0) == best)
            .collect();
        Some(JoinAnalysis {
            key_attrs: key_list.into_iter().collect(),
            scores,
            primary,
            uf,
        })
    }

    /// Score of the class containing `attr` (0 for non-key attributes).
    fn score(&self, attr: AttrId) -> u32 {
        self.scores
            .get(&self.uf.find_const(attr.0))
            .copied()
            .unwrap_or(0)
    }
}

/// A partitioned stream: one clone output per partition, in partition
/// order, plus the set of attributes obeying the partition-hash invariant.
struct Stream {
    clones: Vec<OpId>,
    class: FxHashSet<AttrId>,
    /// Key digests a salted shuffle routed outside the hash invariant
    /// (scattered probe rows / replicated build rows). `None` = strict.
    /// A salted stream's `class` is still claimed for AIP scoping — scoped
    /// filters carry the exemption — but planning decisions that need the
    /// strict invariant (join co-location, aggregate/distinct finality,
    /// replica Exchange pruning) must treat the stream as class-less via
    /// [`Stream::strict_class`].
    salted: Option<Arc<SaltedKeys>>,
}

impl Stream {
    fn strict(clones: Vec<OpId>, class: FxHashSet<AttrId>) -> Stream {
        Stream {
            clones,
            class,
            salted: None,
        }
    }

    /// The attributes whose values provably obey the partition-hash
    /// invariant for *every* row of the stream — empty when salted keys
    /// break the invariant for part of the key domain.
    fn strict_class(&self) -> &FxHashSet<AttrId> {
        static EMPTY: std::sync::OnceLock<FxHashSet<AttrId>> = std::sync::OnceLock::new();
        if self.salted.is_none() {
            &self.class
        } else {
            EMPTY.get_or_init(FxHashSet::default)
        }
    }
}

/// The salted-routing decision for one shuffled join, made before its
/// inputs are built so the scatter side's scans can split by rowid.
struct SaltPlan {
    /// Hot-key digests shared by the scatter and broadcast meshes
    /// (`SaltedKeys::All` = replicated-build fallback).
    keys: Arc<SaltedKeys>,
    /// The key pair both meshes route on.
    pair: usize,
    /// Scatter the left input (true) or the right (false).
    scatter_left: bool,
    /// Estimated fraction of rows the salted keys cover (1.0 for the
    /// all-hot fallback); carried into [`SaltSpec`] for the estimator.
    coverage: f64,
}

/// The result of expanding one source subtree.
enum Built {
    /// One clone output per partition.
    Parts(Stream),
    /// The subtree holds no partitioned source; it can be instantiated
    /// per partition on demand (the id is the *source-plan* subtree root).
    Replicable(OpId),
    /// A single already-materialized stream in the new plan.
    Single(OpId),
}

struct Expander<'a> {
    old: &'a PhysPlan,
    dop: u32,
    cfg: &'a PartitionConfig,
    est: Estimator,
    analysis: JoinAnalysis,
    nodes: Vec<PhysNode>,
    partition_of: Vec<Option<u32>>,
    logical_of: Vec<OpId>,
    op_class: Vec<Option<u32>>,
    classes: Vec<FxHashSet<AttrId>>,
    /// Interned-class id → salted digests routed outside its invariant.
    salted_classes: FxHashMap<u32, Arc<SaltedKeys>>,
    /// Partial-aggregate clones and their feeding Merge → group-col count.
    partial_aggs: FxHashMap<u32, usize>,
    next_mesh: u32,
    /// Split scans by row index instead of key hash while building the
    /// scatter side of a salted join: the mesh above re-deals every row
    /// anyway, and a rowid split keeps a skewed (possibly delay-modeled)
    /// source balanced across partitions instead of concentrating the hot
    /// key's shipping cost on one scan.
    rowid_hint: bool,
    made_parallel: bool,
}

impl Expander<'_> {
    fn push(
        &mut self,
        kind: PhysKind,
        inputs: Vec<OpId>,
        layout: Vec<AttrId>,
        partition: Option<u32>,
        logical: OpId,
        class: Option<u32>,
    ) -> OpId {
        let id = OpId(self.nodes.len() as u32);
        self.nodes.push(PhysNode {
            id,
            kind,
            inputs,
            layout,
        });
        self.partition_of.push(partition);
        self.logical_of.push(logical);
        self.op_class.push(class);
        id
    }

    /// Intern a partitioning class, returning its id. Empty classes map to
    /// `None` in `op_class` space and are not interned.
    fn intern(&mut self, class: &FxHashSet<AttrId>) -> Option<u32> {
        if class.is_empty() {
            return None;
        }
        if let Some(i) = self
            .classes
            .iter()
            .position(|c| c == class)
            .filter(|i| !self.salted_classes.contains_key(&(*i as u32)))
        {
            return Some(i as u32);
        }
        self.classes.push(class.clone());
        Some((self.classes.len() - 1) as u32)
    }

    /// Intern a *salted* partitioning class: always a fresh entry, never
    /// deduped against a strict class over the same attributes, so the
    /// exemption set attaches exactly to the streams the salted mesh
    /// produced (`PartitionMap::salted_at`).
    fn intern_salted(&mut self, class: &FxHashSet<AttrId>, keys: &Arc<SaltedKeys>) -> Option<u32> {
        if class.is_empty() {
            return None;
        }
        self.classes.push(class.clone());
        let id = (self.classes.len() - 1) as u32;
        self.salted_classes.insert(id, Arc::clone(keys));
        Some(id)
    }

    fn new_mesh(&mut self) -> u32 {
        let m = self.next_mesh;
        self.next_mesh += 1;
        m
    }

    /// The partitioning key for a scan: the layout position of the
    /// join-key attribute with the highest class score (ties go to the
    /// leftmost column). `None` when no key attribute is exposed or the
    /// table is too small to be worth splitting.
    fn scan_key(&self, node: &PhysNode) -> Option<usize> {
        if let PhysKind::Scan { table, .. } = &node.kind {
            if (table.len() as u64) < self.cfg.min_scan_rows {
                return None;
            }
        }
        node.layout
            .iter()
            .enumerate()
            .filter(|(_, a)| self.analysis.key_attrs.contains(a))
            .max_by_key(|&(pos, &a)| (self.analysis.score(a), std::cmp::Reverse(pos)))
            .map(|(pos, _)| pos)
    }

    /// Deep-copy a source subtree into the new arena, unchanged, attributed
    /// to `partition`.
    fn instantiate(&mut self, op: OpId, partition: Option<u32>) -> OpId {
        let node = self.old.node(op);
        let inputs: Vec<OpId> = node
            .inputs
            .iter()
            .map(|&c| self.instantiate(c, partition))
            .collect();
        self.push(
            node.kind.clone(),
            inputs,
            node.layout.clone(),
            partition,
            op,
            None,
        )
    }

    /// Materialize any [`Built`] as one stream (inserting a Merge tree
    /// above partition clones).
    fn single_stream(&mut self, built: Built, logical: OpId) -> OpId {
        match built {
            Built::Single(id) => id,
            Built::Replicable(op) => self.instantiate(op, None),
            Built::Parts(stream) => {
                let layout = self.nodes[stream.clones[0].index()].layout.clone();
                self.merge_tree(stream.clones, layout, logical, None)
            }
        }
    }

    /// The effective merge fan-in: an explicit `PartitionConfig::merge_fanin`
    /// of at least 2 wins; auto (`0`) keeps the flat single merge up to
    /// dop 4 and switches to a binary tree above, where one merge thread's
    /// per-batch work (select across `dop` channels, counters, emit)
    /// becomes the serial bottleneck of large outputs.
    fn resolve_fanin(&self) -> usize {
        match self.cfg.merge_fanin {
            0 => {
                if self.dop > 4 {
                    2
                } else {
                    usize::MAX
                }
            }
            1 => usize::MAX, // degenerate: treat as flat
            f => f as usize,
        }
    }

    /// Union `clones` into one stream through a tree of [`PhysKind::Merge`]
    /// operators with at most [`Expander::resolve_fanin`] inputs each,
    /// built bottom-up. An odd tail clone is passed through to the next
    /// level rather than wrapped in a useless 1-ary merge. All tree nodes
    /// belong to the serial section (`partition = None`); when the merged
    /// rows carry *partial* aggregate values, every tree node is flagged in
    /// `partial_aggs` so AIP filters never prune a value column mid-tree.
    fn merge_tree(
        &mut self,
        clones: Vec<OpId>,
        layout: Vec<AttrId>,
        logical: OpId,
        partial_agg_groups: Option<usize>,
    ) -> OpId {
        let fanin = self.resolve_fanin().max(2);
        let mut level = clones;
        while level.len() > fanin {
            let mut next = Vec::with_capacity(level.len().div_ceil(fanin));
            for group in level.chunks(fanin) {
                if group.len() == 1 {
                    next.push(group[0]);
                } else {
                    let id = self.push(
                        PhysKind::Merge,
                        group.to_vec(),
                        layout.clone(),
                        None,
                        logical,
                        None,
                    );
                    if let Some(n) = partial_agg_groups {
                        self.partial_aggs.insert(id.0, n);
                    }
                    next.push(id);
                }
            }
            level = next;
        }
        let root = self.push(PhysKind::Merge, level, layout, None, logical, None);
        if let Some(n) = partial_agg_groups {
            self.partial_aggs.insert(root.0, n);
        }
        root
    }

    /// Clone a unary source operator over each partition stream.
    fn map_clones(&mut self, op: OpId, children: Vec<OpId>, class: Option<u32>) -> Vec<OpId> {
        let node = self.old.node(op);
        let (kind, layout) = (node.kind.clone(), node.layout.clone());
        children
            .into_iter()
            .enumerate()
            .map(|(p, c)| {
                self.push(
                    kind.clone(),
                    vec![c],
                    layout.clone(),
                    Some(p as u32),
                    op,
                    class,
                )
            })
            .collect()
    }

    /// Hash-repartition a stream on layout position `col` through a
    /// `dop × dop` shuffle mesh. Writers are pushed before readers so the
    /// oracle can materialize the mesh bottom-up; reader `p` takes writer
    /// `p` as its tree input so the plan stays a tree.
    fn shuffle_stream(&mut self, stream: Stream, col: usize, logical: OpId) -> Stream {
        self.shuffle_stream_salted(stream, col, logical, None)
    }

    /// [`Expander::shuffle_stream`] with optional skew-adaptive routing.
    /// A salted mesh's output claims its routing class *with* the salted
    /// digests registered ([`PartitionMap::salted_at`]): AIP scoping works
    /// through the exemption, while planning treats the stream as
    /// class-less ([`Stream::strict_class`]). The all-hot fallback
    /// (`SaltedKeys::All`) claims no class at all — nothing about its
    /// placement is hash-derived.
    fn shuffle_stream_salted(
        &mut self,
        stream: Stream,
        col: usize,
        logical: OpId,
        salt: Option<SaltSpec>,
    ) -> Stream {
        let mesh = self.new_mesh();
        let dop = self.dop;
        let layout = self.nodes[stream.clones[0].index()].layout.clone();
        let old_cid = match &stream.salted {
            // Preserve the input stream's own salted claim for AIP.
            Some(keys) => {
                let keys = Arc::clone(keys);
                self.intern_salted(&stream.class, &keys)
            }
            None => self.intern(&stream.class),
        };
        let (new_class, new_cid, out_salted) = match &salt {
            None => {
                let class: FxHashSet<AttrId> = std::iter::once(layout[col]).collect();
                let cid = self.intern(&class);
                (class, cid, None)
            }
            Some(spec) if spec.keys.len().is_none() => {
                // Replicated-build fallback: every key routes outside the
                // hash invariant; no class claim survives.
                (FxHashSet::default(), None, Some(Arc::clone(&spec.keys)))
            }
            Some(spec) => {
                let class: FxHashSet<AttrId> = std::iter::once(layout[col]).collect();
                let cid = self.intern_salted(&class, &spec.keys);
                (class, cid, Some(Arc::clone(&spec.keys)))
            }
        };
        let writers: Vec<OpId> = stream
            .clones
            .into_iter()
            .enumerate()
            .map(|(p, c)| {
                self.push(
                    PhysKind::ShuffleWrite {
                        mesh,
                        col,
                        writer: p as u32,
                        dop,
                        salt: salt.clone(),
                    },
                    vec![c],
                    layout.clone(),
                    Some(p as u32),
                    logical,
                    old_cid,
                )
            })
            .collect();
        let clones = (0..dop)
            .map(|p| {
                self.push(
                    PhysKind::ShuffleRead {
                        mesh,
                        partition: p,
                        writers: dop,
                        dop,
                    },
                    vec![writers[p as usize]],
                    layout.clone(),
                    Some(p),
                    logical,
                    new_cid,
                )
            })
            .collect();
        Stream {
            clones,
            class: new_class,
            salted: out_salted,
        }
    }

    /// Instantiate a replicable subtree once (serially) and deal its rows
    /// into `dop` partitions on layout position `col` over a `1 × dop`
    /// mesh — the underlying (possibly slow) source is scanned a single
    /// time, unlike a broadcast which clones the whole subtree per
    /// partition.
    fn distribute(&mut self, replica_op: OpId, col: usize) -> Stream {
        let mesh = self.new_mesh();
        let dop = self.dop;
        let layout = self.old.node(replica_op).layout.clone();
        let instance = self.instantiate(replica_op, None);
        let writer = self.push(
            PhysKind::ShuffleWrite {
                mesh,
                col,
                writer: 0,
                dop,
                salt: None,
            },
            vec![instance],
            layout.clone(),
            None,
            replica_op,
            None,
        );
        let new_class: FxHashSet<AttrId> = std::iter::once(layout[col]).collect();
        let new_cid = self.intern(&new_class);
        let clones = (0..dop)
            .map(|p| {
                let inputs = if p == 0 { vec![writer] } else { vec![] };
                self.push(
                    PhysKind::ShuffleRead {
                        mesh,
                        partition: p,
                        writers: 1,
                        dop,
                    },
                    inputs,
                    layout.clone(),
                    Some(p),
                    replica_op,
                    new_cid,
                )
            })
            .collect();
        Stream::strict(clones, new_class)
    }

    /// The partitioning class of a co-located join's output: surviving
    /// class attributes of both inputs, plus both attributes of every key
    /// pair anchored in an input class (equal values share a hash). For a
    /// semijoin only probe-layout attributes survive.
    fn join_out_class(
        &self,
        op: OpId,
        l_class: &FxHashSet<AttrId>,
        r_class: &FxHashSet<AttrId>,
        pairs: &[KeyPair],
        is_semi: bool,
    ) -> FxHashSet<AttrId> {
        let mut out: FxHashSet<AttrId> = if is_semi {
            l_class.clone()
        } else {
            l_class.union(r_class).copied().collect()
        };
        for p in pairs {
            if l_class.contains(&p.l_attr) || r_class.contains(&p.r_attr) {
                out.insert(p.l_attr);
                if !is_semi {
                    out.insert(p.r_attr);
                }
            }
        }
        let layout = &self.old.node(op).layout;
        out.retain(|a| layout.contains(a));
        out
    }

    /// Emit per-partition clones of a binary operator over two co-located
    /// streams (in original input order). Salted inputs (the scatter /
    /// broadcast meshes of a salted join) taint the output: its class is
    /// still claimed for AIP scoping — with the merged exemption set —
    /// but upstream placement of salted keys is arbitrary, so the stream
    /// reports no strict class to later planning.
    fn emit_colocated(
        &mut self,
        op: OpId,
        ls: Stream,
        rs: Stream,
        pairs: &[KeyPair],
        is_semi: bool,
    ) -> Built {
        let node = self.old.node(op);
        let (kind, layout) = (node.kind.clone(), node.layout.clone());
        let class = self.join_out_class(op, &ls.class, &rs.class, pairs, is_semi);
        let salted = match (&ls.salted, &rs.salted) {
            (None, None) => None,
            (Some(a), None) => Some(Arc::clone(a)),
            (None, Some(b)) => Some(Arc::clone(b)),
            (Some(a), Some(b)) if Arc::ptr_eq(a, b) => Some(Arc::clone(a)),
            (Some(a), Some(b)) => {
                let mut merged = (**a).clone();
                merged.merge(b);
                Some(Arc::new(merged))
            }
        };
        let cid = match &salted {
            Some(keys) => {
                let keys = Arc::clone(keys);
                self.intern_salted(&class, &keys)
            }
            None => self.intern(&class),
        };
        let clones = ls
            .clones
            .into_iter()
            .zip(rs.clones)
            .enumerate()
            .map(|(p, (lc, rc))| {
                self.push(
                    kind.clone(),
                    vec![lc, rc],
                    layout.clone(),
                    Some(p as u32),
                    op,
                    cid,
                )
            })
            .collect();
        Built::Parts(Stream {
            clones,
            class,
            salted,
        })
    }

    /// Merge both sides and run the operator serially (the pre-shuffle
    /// fallback, still taken when the cost model rejects repartitioning).
    fn serial_binary(&mut self, op: OpId, l_old: OpId, r_old: OpId, l: Built, r: Built) -> Built {
        let lm = self.single_stream(l, l_old);
        let rm = self.single_stream(r, r_old);
        let node = self.old.node(op);
        let (kind, layout) = (node.kind.clone(), node.layout.clone());
        Built::Single(self.push(kind, vec![lm, rm], layout, None, op, None))
    }

    /// Expand one source subtree.
    fn build(&mut self, op: OpId) -> Built {
        let node = self.old.node(op);
        match &node.kind {
            PhysKind::Scan { .. } => match self.scan_key(node) {
                Some(col) => {
                    self.made_parallel = true;
                    // Under the salted-scatter rowid hint the split is by
                    // row index — perfectly balanced however the keys are
                    // distributed, but upholding no hash invariant (empty
                    // class). Sound only because the salted mesh above
                    // re-deals every row anyway.
                    let rowid = self.rowid_hint;
                    let class: FxHashSet<AttrId> = if rowid {
                        FxHashSet::default()
                    } else {
                        std::iter::once(node.layout[col]).collect()
                    };
                    let cid = self.intern(&class);
                    let (kind0, layout) = (node.kind.clone(), node.layout.clone());
                    let clones = (0..self.dop)
                        .map(|p| {
                            let mut kind = kind0.clone();
                            if let PhysKind::Scan { part, .. } = &mut kind {
                                *part = Some(ScanPartition {
                                    col,
                                    partition: p,
                                    dop: self.dop,
                                    rowid,
                                });
                            }
                            self.push(kind, vec![], layout.clone(), Some(p), op, cid)
                        })
                        .collect();
                    Built::Parts(Stream::strict(clones, class))
                }
                None => Built::Replicable(op),
            },
            PhysKind::Filter { .. } | PhysKind::Project { .. } => {
                let out_layout = node.layout.clone();
                match self.build(node.inputs[0]) {
                    Built::Parts(s) => {
                        // A projection keeps only the class attributes it
                        // re-exposes; a filter keeps them all. The salted
                        // exemption rides along unchanged.
                        let mut class = s.class;
                        class.retain(|a| out_layout.contains(a));
                        let cid = match &s.salted {
                            Some(keys) => {
                                let keys = Arc::clone(keys);
                                self.intern_salted(&class, &keys)
                            }
                            None => self.intern(&class),
                        };
                        let clones = self.map_clones(op, s.clones, cid);
                        Built::Parts(Stream {
                            clones,
                            class,
                            salted: s.salted,
                        })
                    }
                    Built::Replicable(_) => Built::Replicable(op),
                    Built::Single(c) => {
                        let kind = self.old.node(op).kind.clone();
                        Built::Single(self.push(kind, vec![c], out_layout, None, op, None))
                    }
                }
            }
            PhysKind::HashJoin { .. } | PhysKind::SemiJoin { .. } => self.build_binary(op),
            PhysKind::Aggregate { group_cols, aggs } => {
                let child_layout = self.old.node(node.inputs[0]).layout.clone();
                let group_cols = group_cols.clone();
                let merge_funcs: Option<Vec<AggFunc>> =
                    aggs.iter().map(|a| merge_func(a.func)).collect();
                let n_groups = group_cols.len();
                let (kind, out_layout) = (node.kind.clone(), node.layout.clone());
                match self.build(node.inputs[0]) {
                    Built::Parts(mut s) => {
                        // Strict class only: a salted stream scatters rows
                        // of hot keys arbitrarily, so per-partition groups
                        // over them would not be final.
                        let mut grouped_by_class = group_cols
                            .iter()
                            .any(|&g| s.strict_class().contains(&child_layout[g]));
                        if !grouped_by_class && self.cfg.shuffle {
                            // The group key is off the stream's class, but
                            // when it is a join-key attribute the aggregate
                            // output feeds further keyed work: repartition
                            // the input onto the group key so per-partition
                            // groups stay complete and final — the region
                            // (and everything joining on this key above)
                            // stays parallel instead of funnelling through
                            // a serial merge aggregate.
                            let in_rows = self.est.node(node.inputs[0]).rows;
                            let out_rows = self.est.node(op).rows;
                            let best = group_cols
                                .iter()
                                .map(|&g| (g, child_layout[g]))
                                .filter(|&(_, a)| self.analysis.key_attrs.contains(&a))
                                .max_by_key(|&(g, a)| {
                                    (self.analysis.score(a), std::cmp::Reverse(g))
                                });
                            if let Some((g, _)) = best {
                                if self
                                    .cfg
                                    .cost
                                    .repartition_wins(in_rows, 0.0, out_rows, in_rows, self.dop)
                                {
                                    s = self.shuffle_stream(s, g, node.inputs[0]);
                                    grouped_by_class = true;
                                }
                            }
                        }
                        if grouped_by_class {
                            // Equal group keys share a partition: each
                            // partition's groups are complete and final.
                            let mut class = s.class;
                            class.retain(|a| out_layout.contains(a));
                            let cid = self.intern(&class);
                            let clones = self.map_clones(op, s.clones, cid);
                            Built::Parts(Stream::strict(clones, class))
                        } else if let Some(funcs) = merge_funcs {
                            // Partial aggregate per partition, merged, then
                            // a final aggregate combining partial states.
                            // The partials (and the merge) expose the
                            // aggregate attrs with *partial* values; flag
                            // them so AIP controllers never prune on a
                            // value column here.
                            let partials = self.map_clones(op, s.clones, None);
                            for &pc in &partials {
                                self.partial_aggs.insert(pc.0, n_groups);
                            }
                            let merged =
                                self.merge_tree(partials, out_layout.clone(), op, Some(n_groups));
                            let final_aggs = out_layout
                                .iter()
                                .skip(n_groups)
                                .zip(funcs)
                                .enumerate()
                                .map(|(i, (_, func))| sip_engine::BoundAgg {
                                    func,
                                    input: Expr::Col(n_groups + i),
                                })
                                .collect();
                            Built::Single(self.push(
                                PhysKind::Aggregate {
                                    group_cols: (0..n_groups).collect(),
                                    aggs: final_aggs,
                                },
                                vec![merged],
                                out_layout,
                                None,
                                op,
                                None,
                            ))
                        } else {
                            // Unmergeable aggregate (e.g. AVG): aggregate
                            // serially above the merge.
                            let merged_in = self.single_stream(Built::Parts(s), op);
                            Built::Single(self.push(
                                kind,
                                vec![merged_in],
                                out_layout,
                                None,
                                op,
                                None,
                            ))
                        }
                    }
                    Built::Replicable(_) => Built::Replicable(op),
                    Built::Single(c) => {
                        Built::Single(self.push(kind, vec![c], out_layout, None, op, None))
                    }
                }
            }
            PhysKind::Distinct => {
                let out_layout = node.layout.clone();
                match self.build(node.inputs[0]) {
                    Built::Parts(mut s) => {
                        if s.strict_class().is_empty() && self.cfg.shuffle && !out_layout.is_empty()
                        {
                            // Duplicates agree on every column, so hashing
                            // *any* column co-locates them; prefer a
                            // join-key attribute (highest class score) so
                            // downstream joins stay aligned too.
                            let in_rows = self.est.node(node.inputs[0]).rows;
                            let out_rows = self.est.node(op).rows;
                            if self
                                .cfg
                                .cost
                                .repartition_wins(in_rows, 0.0, out_rows, in_rows, self.dop)
                            {
                                let col = (0..out_layout.len())
                                    .max_by_key(|&i| {
                                        (self.analysis.score(out_layout[i]), std::cmp::Reverse(i))
                                    })
                                    .unwrap();
                                s = self.shuffle_stream(s, col, node.inputs[0]);
                            }
                        }
                        if !s.strict_class().is_empty() {
                            // Rows equal on every column agree on the class
                            // attribute, so duplicates share a partition.
                            // (Strict only: a salted stream may scatter
                            // identical hot-key rows to different
                            // partitions.)
                            let cid = self.intern(&s.class);
                            let clones = self.map_clones(op, s.clones, cid);
                            Built::Parts(Stream::strict(clones, s.class))
                        } else {
                            // Partial dedup per partition shrinks the merge;
                            // the serial distinct finishes the job.
                            let partials = self.map_clones(op, s.clones, None);
                            let merged = self.merge_tree(partials, out_layout.clone(), op, None);
                            Built::Single(self.push(
                                PhysKind::Distinct,
                                vec![merged],
                                out_layout,
                                None,
                                op,
                                None,
                            ))
                        }
                    }
                    Built::Replicable(_) => Built::Replicable(op),
                    Built::Single(c) => Built::Single(self.push(
                        PhysKind::Distinct,
                        vec![c],
                        out_layout,
                        None,
                        op,
                        None,
                    )),
                }
            }
            PhysKind::ExternalSource { .. }
            | PhysKind::Exchange { .. }
            | PhysKind::Merge
            | PhysKind::ShuffleWrite { .. }
            | PhysKind::ShuffleRead { .. } => {
                unreachable!("rejected before expansion")
            }
        }
    }

    /// Expand a join/semijoin over its two built inputs.
    fn build_binary(&mut self, op: OpId) -> Built {
        let node = self.old.node(op);
        let is_semi = matches!(node.kind, PhysKind::SemiJoin { .. });
        let (lk, rk) = match &node.kind {
            PhysKind::HashJoin {
                left_keys,
                right_keys,
                ..
            } => (left_keys, right_keys),
            PhysKind::SemiJoin {
                probe_keys,
                build_keys,
            } => (probe_keys, build_keys),
            _ => unreachable!(),
        };
        let (l_old, r_old) = (node.inputs[0], node.inputs[1]);
        let ll = &self.old.node(l_old).layout;
        let rl = &self.old.node(r_old).layout;
        let pairs: Vec<KeyPair> = lk
            .iter()
            .zip(rk.iter())
            .map(|(&lp, &rp)| KeyPair {
                l_pos: lp,
                r_pos: rp,
                l_attr: ll[lp],
                r_attr: rl[rp],
            })
            .collect();
        // Salting is decided *before* the inputs are built: the scatter
        // side's scans can then split by rowid (balanced source shipping)
        // because the salted mesh re-deals every row above them.
        let salt = self.plan_salt(op, l_old, r_old, &pairs, is_semi);
        let (l, r) = match &salt {
            Some(sp) => {
                let hint_left = sp.scatter_left && self.scan_chain_only(l_old);
                let hint_right = !sp.scatter_left && self.scan_chain_only(r_old);
                let l = self.build_with_hint(l_old, hint_left);
                let r = self.build_with_hint(r_old, hint_right);
                (l, r)
            }
            None => (self.build(l_old), self.build(r_old)),
        };
        match (l, r) {
            (Built::Parts(ls), Built::Parts(rs)) => {
                if let Some(sp) = salt {
                    return self.emit_salted(op, l_old, r_old, ls, rs, &pairs, is_semi, sp);
                }
                self.join_parts(op, l_old, r_old, ls, rs, &pairs, is_semi)
            }
            (Built::Parts(s), Built::Replicable(rep)) => {
                self.join_stream_replica(op, l_old, r_old, s, rep, &pairs, is_semi, false)
            }
            (Built::Replicable(rep), Built::Parts(s)) => {
                self.join_stream_replica(op, l_old, r_old, s, rep, &pairs, is_semi, true)
            }
            (Built::Replicable(_), Built::Replicable(_)) => Built::Replicable(op),
            (l, r) => self.serial_binary(op, l_old, r_old, l, r),
        }
    }

    /// Build a subtree with the rowid-split scan hint toggled.
    fn build_with_hint(&mut self, op: OpId, rowid: bool) -> Built {
        let prev = self.rowid_hint;
        self.rowid_hint = rowid;
        let built = self.build(op);
        self.rowid_hint = prev;
        built
    }

    /// Is `op` a pure scan chain (scan + stateless operators only)? Only
    /// such subtrees take the rowid hint — anything stateful below would
    /// itself depend on the partitioning class the hint erases.
    fn scan_chain_only(&self, op: OpId) -> bool {
        let node = self.old.node(op);
        match &node.kind {
            PhysKind::Scan { .. } => true,
            PhysKind::Filter { .. } | PhysKind::Project { .. } => {
                self.scan_chain_only(node.inputs[0])
            }
            _ => false,
        }
    }

    /// The base-table hot fraction of `attr` (share of the most frequent
    /// value in the scan column that introduces it; 0 when `attr` is not a
    /// base column).
    fn base_hot_fraction(&self, attr: AttrId) -> f64 {
        for node in &self.old.nodes {
            if let PhysKind::Scan { table, cols, .. } = &node.kind {
                if let Some(pos) = node.layout.iter().position(|a| *a == attr) {
                    return table.hot_fraction(cols[pos]);
                }
            }
        }
        0.0
    }

    /// Max base-table hot fraction over a join's key attributes — the skew
    /// a hash repartition of either side cannot split.
    fn pairs_hot_frac(&self, pairs: &[KeyPair]) -> f64 {
        pairs
            .iter()
            .flat_map(|p| [p.l_attr, p.r_attr])
            .map(|a| self.base_hot_fraction(a))
            .fold(0.0, f64::max)
    }

    /// Hot digests of `attr`'s base column: every stored heavy hitter
    /// (`ColumnStats::hot` — exact counts computed once at table load,
    /// heaviest first, deterministic) whose frequency reaches the hot
    /// threshold (`hot_factor / dop` of the table), capped at
    /// `max_hot_keys`. Returns the digests and the fraction of rows they
    /// cover. O(stored hitters) — never a table scan at plan time.
    fn hot_digests(&self, attr: AttrId) -> Option<(FxHashSet<u64>, f64)> {
        let sc = &self.cfg.salt;
        for node in &self.old.nodes {
            let PhysKind::Scan { table, cols, .. } = &node.kind else {
                continue;
            };
            let Some(pos) = node.layout.iter().position(|a| *a == attr) else {
                continue;
            };
            let n = table.len();
            if n == 0 {
                return None;
            }
            let threshold = ((sc.hot_factor * n as f64 / self.dop as f64).ceil() as u64).max(2);
            let stats = &table.meta().column_stats[cols[pos]];
            if stats.max_freq < threshold {
                return None; // nothing can be hot
            }
            let hot: Vec<(u64, u64)> = stats
                .hot
                .iter()
                .copied()
                .filter(|&(_, c)| c >= threshold)
                .take(sc.max_hot_keys)
                .collect();
            if hot.is_empty() {
                return None;
            }
            let covered: u64 = hot.iter().map(|&(_, c)| c).sum();
            let coverage = covered as f64 / n as f64;
            return Some((hot.into_iter().map(|(d, _)| d).collect(), coverage));
        }
        None
    }

    /// Decide whether (and how) to salt a shuffled join. Fires when the
    /// scatter side's join key has a base-table heavy hitter crossing
    /// [`crate::SaltConfig::hot_factor`] and the cost model prices the
    /// salted plan below the skew-stalled hash plan (`force` bypasses the
    /// cost gate, not the hot threshold). High hot coverage escalates to
    /// the replicated-build fallback.
    fn plan_salt(
        &self,
        op: OpId,
        l_old: OpId,
        r_old: OpId,
        pairs: &[KeyPair],
        is_semi: bool,
    ) -> Option<SaltPlan> {
        let sc = &self.cfg.salt;
        if !sc.enabled || !self.cfg.shuffle || pairs.is_empty() {
            return None;
        }
        let l_rows = self.est.node(l_old).rows;
        let r_rows = self.est.node(r_old).rows;
        let out_rows = self.est.node(op).rows;
        // The scatter side must be emitted exactly once, so a semijoin
        // scatters its probe; a hash join scatters the larger side and
        // replicates the smaller one's hot rows.
        let scatter_left = if is_semi { true } else { l_rows >= r_rows };
        let dop_f = self.dop as f64;
        for (i, p) in pairs.iter().enumerate() {
            let attr = if scatter_left { p.l_attr } else { p.r_attr };
            let hot_frac = self.base_hot_fraction(attr);
            if hot_frac * dop_f < sc.hot_factor {
                continue;
            }
            let Some((digests, coverage)) = self.hot_digests(attr) else {
                continue;
            };
            let (scatter_rows, build_rows) = if scatter_left {
                (l_rows, r_rows)
            } else {
                (r_rows, l_rows)
            };
            let all_hot = coverage >= sc.replicate_coverage;
            let pays = if all_hot {
                self.cfg.cost.replicated_build_wins(
                    scatter_rows,
                    build_rows,
                    out_rows,
                    self.dop,
                    hot_frac,
                )
            } else {
                // `extra_moved`: salting is decided before the inputs are
                // built, so the unsalted alignment (and how many rows it
                // would move anyway) is unknown here. Charging only the
                // scatter side nets the two plans' mesh hops against each
                // other in the common misaligned case (the unsalted plan
                // would shuffle one side too); in the co-located case it
                // undercharges by one hop, which is exactly where the
                // skew penalty dominates anyway.
                self.cfg.cost.salting_wins(
                    scatter_rows,
                    build_rows,
                    out_rows,
                    scatter_rows,
                    self.dop,
                    hot_frac,
                )
            };
            if !sc.force && !pays {
                continue;
            }
            let (keys, coverage) = if all_hot {
                (Arc::new(SaltedKeys::All), 1.0)
            } else {
                (SaltedKeys::from_digests(digests), coverage)
            };
            return Some(SaltPlan {
                keys,
                pair: i,
                scatter_left,
                coverage,
            });
        }
        None
    }

    /// Emit a skew-adaptive join: both inputs cross salted meshes sharing
    /// one hot-key set — `Scatter` (hot rows dealt round-robin) on the
    /// probe/large side, `Broadcast` (hot rows replicated) on the build
    /// side — then the join runs per partition as if co-located. Correct
    /// because every scattered probe row meets every matching build row
    /// exactly once: cold keys co-locate by hash, and a salted key's build
    /// rows exist in whichever partition its probe rows landed in.
    #[allow(clippy::too_many_arguments)]
    fn emit_salted(
        &mut self,
        op: OpId,
        l_old: OpId,
        r_old: OpId,
        ls: Stream,
        rs: Stream,
        pairs: &[KeyPair],
        is_semi: bool,
        sp: SaltPlan,
    ) -> Built {
        let pair = &pairs[sp.pair];
        let scatter = SaltSpec {
            keys: Arc::clone(&sp.keys),
            role: SaltRole::Scatter,
            hot_coverage: sp.coverage,
        };
        let bcast = SaltSpec {
            keys: Arc::clone(&sp.keys),
            role: SaltRole::Broadcast,
            hot_coverage: sp.coverage,
        };
        let (ls, rs) = if sp.scatter_left {
            let l = self.shuffle_stream_salted(ls, pair.l_pos, l_old, Some(scatter));
            let r = self.shuffle_stream_salted(rs, pair.r_pos, r_old, Some(bcast));
            (l, r)
        } else {
            let l = self.shuffle_stream_salted(ls, pair.l_pos, l_old, Some(bcast));
            let r = self.shuffle_stream_salted(rs, pair.r_pos, r_old, Some(scatter));
            (l, r)
        };
        self.emit_colocated(op, ls, rs, pairs, is_semi)
    }

    /// Both inputs partitioned: co-locate them, shuffling one or both
    /// sides when their classes do not align on any key pair.
    #[allow(clippy::too_many_arguments)]
    fn join_parts(
        &mut self,
        op: OpId,
        l_old: OpId,
        r_old: OpId,
        mut ls: Stream,
        mut rs: Stream,
        pairs: &[KeyPair],
        is_semi: bool,
    ) -> Built {
        let est = JoinEst {
            left: self.est.node(l_old).rows,
            right: self.est.node(r_old).rows,
            out: self.est.node(op).rows,
            hot_frac: self.pairs_hot_frac(pairs),
        };
        // Strict classes only: a salted input stream holds no invariant
        // for its hot keys, so it can never count as already-aligned; the
        // shuffle it then takes re-deals every row by hash, washing the
        // salt out.
        let alignment = plan_join_alignment(
            pairs,
            ls.strict_class(),
            rs.strict_class(),
            est,
            self.dop,
            self.cfg,
        );
        match alignment {
            Alignment::Serial => {
                self.serial_binary(op, l_old, r_old, Built::Parts(ls), Built::Parts(rs))
            }
            Alignment::Colocated { .. } => self.emit_colocated(op, ls, rs, pairs, is_semi),
            Alignment::ShuffleRight { pair } => {
                rs = self.shuffle_stream(rs, pairs[pair].r_pos, r_old);
                self.emit_colocated(op, ls, rs, pairs, is_semi)
            }
            Alignment::ShuffleLeft { pair } => {
                ls = self.shuffle_stream(ls, pairs[pair].l_pos, l_old);
                self.emit_colocated(op, ls, rs, pairs, is_semi)
            }
            Alignment::ShuffleBoth { pair } => {
                ls = self.shuffle_stream(ls, pairs[pair].l_pos, l_old);
                rs = self.shuffle_stream(rs, pairs[pair].r_pos, r_old);
                self.emit_colocated(op, ls, rs, pairs, is_semi)
            }
        }
    }

    /// One input partitioned, the other replicable. Small replicas are
    /// broadcast (instantiated per partition, hash-pruned by an
    /// [`PhysKind::Exchange`] when a key pair aligns with the stream's
    /// class — the Exchange *must* hash the aligned pair's key column, not
    /// merely any class attribute, or rows whose key and class columns
    /// hash apart are silently dropped); large replicas are instantiated
    /// once and distributed over a `1 × dop` mesh. A semijoin with a
    /// replicated probe additionally *requires* alignment (an unpruned
    /// probe replica would emit one copy of each matching probe row per
    /// partition), so when the build stream is off-class it is shuffled
    /// onto the probe key instead of ending the parallel region.
    #[allow(clippy::too_many_arguments)]
    fn join_stream_replica(
        &mut self,
        op: OpId,
        l_old: OpId,
        r_old: OpId,
        s: Stream,
        rep: OpId,
        pairs: &[KeyPair],
        is_semi: bool,
        replica_is_left: bool,
    ) -> Built {
        let stream_attr = |p: &KeyPair| if replica_is_left { p.r_attr } else { p.l_attr };
        let stream_pos = |p: &KeyPair| if replica_is_left { p.r_pos } else { p.l_pos };
        let rep_pos = |p: &KeyPair| if replica_is_left { p.l_pos } else { p.r_pos };
        let (s_old, rep_old) = if replica_is_left {
            (r_old, l_old)
        } else {
            (l_old, r_old)
        };
        // Strict class only: a salted stream counts as unaligned.
        let aligned = pairs
            .iter()
            .position(|p| s.strict_class().contains(&stream_attr(p)));
        let rep_rows = self.est.node(rep).rows;
        let s_rows = self.est.node(s_old).rows;
        let out_rows = self.est.node(op).rows;
        let big = rep_rows > self.cfg.broadcast_max_rows;
        let semi_probe_replica = is_semi && replica_is_left;
        let (l_rows, r_rows) = if replica_is_left {
            (rep_rows, s_rows)
        } else {
            (s_rows, rep_rows)
        };
        let skew = self
            .cfg
            .cost
            .skew_factor(self.pairs_hot_frac(pairs), self.dop);
        let wins = |e: &Self, moved: f64| {
            e.cfg
                .cost
                .repartition_wins_skewed(l_rows, r_rows, out_rows, moved, e.dop, skew)
        };

        let emit = |e: &mut Self, s: Stream, reps: Stream| {
            if replica_is_left {
                e.emit_colocated(op, reps, s, pairs, is_semi)
            } else {
                e.emit_colocated(op, s, reps, pairs, is_semi)
            }
        };

        if let Some(i) = aligned {
            if big && self.cfg.shuffle {
                let reps = self.distribute(rep, rep_pos(&pairs[i]));
                return emit(self, s, reps);
            }
            return self.broadcast_replica(
                op,
                s,
                rep,
                Some(rep_pos(&pairs[i])),
                pairs,
                is_semi,
                replica_is_left,
            );
        }
        // Stream not aligned on any pair.
        if semi_probe_replica {
            if self.cfg.shuffle && !pairs.is_empty() && wins(self, s_rows) {
                let s = self.shuffle_stream(s, stream_pos(&pairs[0]), s_old);
                if big {
                    let reps = self.distribute(rep, rep_pos(&pairs[0]));
                    return emit(self, s, reps);
                }
                return self.broadcast_replica(
                    op,
                    s,
                    rep,
                    Some(rep_pos(&pairs[0])),
                    pairs,
                    is_semi,
                    replica_is_left,
                );
            }
            // A probe row matching build rows in several partitions would
            // be emitted once per partition; without a shuffle the only
            // safe plan is serial.
            let rep_built = Built::Replicable(rep);
            let (l, r) = (rep_built, Built::Parts(s));
            return self.serial_binary(op, rep_old, s_old, l, r);
        }
        if big && self.cfg.shuffle && !pairs.is_empty() && wins(self, s_rows + rep_rows) {
            let s = self.shuffle_stream(s, stream_pos(&pairs[0]), s_old);
            let reps = self.distribute(rep, rep_pos(&pairs[0]));
            return emit(self, s, reps);
        }
        // Full broadcast: each partition keeps a complete replica (correct
        // because each partitioned-side row lives in exactly one partition).
        self.broadcast_replica(op, s, rep, None, pairs, is_semi, replica_is_left)
    }

    /// Join partition streams against per-partition instantiations of a
    /// replicable subtree, optionally pruning each instance to its
    /// partition's hash class with an Exchange on `exchange_pos` (a
    /// replica-layout key position aligned with the stream's class).
    #[allow(clippy::too_many_arguments)]
    fn broadcast_replica(
        &mut self,
        op: OpId,
        stream: Stream,
        replica_op: OpId,
        exchange_pos: Option<usize>,
        pairs: &[KeyPair],
        is_semi: bool,
        replica_is_left: bool,
    ) -> Built {
        let node = self.old.node(op);
        let (kind, layout) = (node.kind.clone(), node.layout.clone());
        let replica_layout = self.old.node(replica_op).layout.clone();
        let rep_class: FxHashSet<AttrId> = exchange_pos
            .map(|pos| std::iter::once(replica_layout[pos]).collect())
            .unwrap_or_default();
        let class = if replica_is_left {
            self.join_out_class(op, &rep_class, &stream.class, pairs, is_semi)
        } else {
            self.join_out_class(op, &stream.class, &rep_class, pairs, is_semi)
        };
        let salted = stream.salted.clone();
        let cid = match &salted {
            Some(keys) => {
                let keys = Arc::clone(keys);
                self.intern_salted(&class, &keys)
            }
            None => self.intern(&class),
        };
        let ex_cid = self.intern(&rep_class);
        let clones = stream
            .clones
            .into_iter()
            .enumerate()
            .map(|(p, sc)| {
                let p32 = p as u32;
                let mut replica = self.instantiate(replica_op, Some(p32));
                if let Some(col) = exchange_pos {
                    replica = self.push(
                        PhysKind::Exchange {
                            col,
                            partition: p32,
                            dop: self.dop,
                        },
                        vec![replica],
                        replica_layout.clone(),
                        Some(p32),
                        replica_op,
                        ex_cid,
                    );
                }
                let inputs = if replica_is_left {
                    vec![replica, sc]
                } else {
                    vec![sc, replica]
                };
                self.push(kind.clone(), inputs, layout.clone(), Some(p32), op, cid)
            })
            .collect();
        Built::Parts(Stream {
            clones,
            class,
            salted,
        })
    }
}

/// How a partial aggregate's outputs combine in the final merge aggregate;
/// `None` = the function cannot be split (serial fallback).
fn merge_func(f: AggFunc) -> Option<AggFunc> {
    match f {
        AggFunc::Sum => Some(AggFunc::Sum),
        AggFunc::Count => Some(AggFunc::Sum),
        AggFunc::Min => Some(AggFunc::Min),
        AggFunc::Max => Some(AggFunc::Max),
        AggFunc::Avg => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sip_common::{DataType, Field, Row, Schema, Value};
    use sip_data::{generate, Catalog, Table, TpchConfig};
    use sip_engine::{canonical, execute_oracle, lower};
    use sip_plan::QueryBuilder;

    fn catalog() -> Catalog {
        generate(&TpchConfig {
            scale_factor: 0.004,
            seed: 11,
            zipf_z: 0.5,
        })
        .unwrap()
    }

    /// part ⋈ (sum availqty per partkey): joins and groups on one class.
    fn partkey_plan(c: &Catalog) -> PhysPlan {
        let mut q = QueryBuilder::new(c);
        let p = q.scan("part", "p", &["p_partkey", "p_size"]).unwrap();
        let ps = q
            .scan("partsupp", "ps", &["ps_partkey", "ps_availqty"])
            .unwrap();
        let qty = ps.col("ps_availqty").unwrap();
        let agg = q
            .aggregate(ps, &["ps_partkey"], &[(AggFunc::Sum, qty, "avail")])
            .unwrap();
        let j = q.join(p, agg, &[("p.p_partkey", "ps.ps_partkey")]).unwrap();
        let plan = j.into_plan();
        lower(&plan, q.into_attrs(), c).unwrap()
    }

    #[test]
    fn expansion_matches_oracle_and_maps_partitions() {
        let c = catalog();
        let plan = partkey_plan(&c);
        let expected = canonical(&execute_oracle(&plan).unwrap());
        for dop in [2u32, 3, 4] {
            let (expanded, map) = partition_plan(&plan, dop).unwrap();
            expanded.validate().unwrap();
            assert_eq!(map.dop, dop);
            assert_eq!(map.partition_of.len(), expanded.nodes.len());
            assert_eq!(map.op_class.len(), expanded.nodes.len());
            // The expanded plan computes the same multiset.
            let got = canonical(&execute_oracle(&expanded).unwrap());
            assert_eq!(got, expected, "dop {dop} diverged");
            // Every partition owns at least one operator; a merge exists.
            for p in 0..dop {
                assert!(map.partition_of.contains(&Some(p)), "partition {p} empty");
            }
            assert!(expanded
                .nodes
                .iter()
                .any(|n| matches!(n.kind, PhysKind::Merge)));
            // Scans are partition-pruned.
            let parts: Vec<_> = expanded
                .nodes
                .iter()
                .filter_map(|n| match &n.kind {
                    PhysKind::Scan { part: Some(p), .. } => Some(p.partition),
                    _ => None,
                })
                .collect();
            assert_eq!(parts.len(), 2 * dop as usize, "both scans split");
            // Partitioned operators report a partitioning class holding
            // the attribute their rows are hashed on.
            for n in &expanded.nodes {
                if let PhysKind::Scan { part: Some(p), .. } = &n.kind {
                    let cid = map.op_class[n.id.index()].expect("partitioned scan has class");
                    assert!(map.classes[cid as usize].contains(&n.layout[p.col]));
                }
            }
        }
    }

    #[test]
    fn global_aggregate_splits_into_partial_and_final() {
        let c = catalog();
        let mut q = QueryBuilder::new(&c);
        let ps = q
            .scan("partsupp", "ps", &["ps_partkey", "ps_availqty"])
            .unwrap();
        let qty = ps.col("ps_availqty").unwrap();
        let per_key = q
            .aggregate(ps, &["ps_partkey"], &[(AggFunc::Sum, qty, "avail")])
            .unwrap();
        let p = q.scan("part", "p", &["p_partkey"]).unwrap();
        let j = q
            .join(p, per_key, &[("p.p_partkey", "ps.ps_partkey")])
            .unwrap();
        let avail = j.col("avail").unwrap();
        let total = q
            .aggregate(j, &[], &[(AggFunc::Sum, avail, "total")])
            .unwrap();
        let plan = total.into_plan();
        let phys = lower(&plan, q.into_attrs(), &c).unwrap();

        let expected = canonical(&execute_oracle(&phys).unwrap());
        let (expanded, _map) = partition_plan(&phys, 4).unwrap();
        // The global SUM has no class column: partial aggregates per
        // partition + a final merge aggregate above the Merge.
        let aggs = expanded
            .nodes
            .iter()
            .filter(|n| matches!(n.kind, PhysKind::Aggregate { .. }))
            .count();
        // 4 per-key (partitioned) + 4 partial SUM + 1 final SUM.
        assert_eq!(aggs, 9, "{}", expanded.display());
        assert_eq!(canonical(&execute_oracle(&expanded).unwrap()), expected);
    }

    #[test]
    fn merge_tail_becomes_a_tree_above_dop_4_and_on_request() {
        let c = catalog();
        let plan = partkey_plan(&c);
        let expected = canonical(&execute_oracle(&plan).unwrap());
        let merges = |p: &PhysPlan| {
            p.nodes
                .iter()
                .filter(|n| matches!(n.kind, PhysKind::Merge))
                .count()
        };
        // Auto: flat single merge at dop 4.
        let (flat, _) = partition_plan(&plan, 4).unwrap();
        assert_eq!(merges(&flat), 1, "{}", flat.display());
        // Auto: binary tree at dop 8 (8 → 4 → 2 → 1 = 7 merges).
        let (tree8, map8) = partition_plan(&plan, 8).unwrap();
        tree8.validate().unwrap();
        assert_eq!(merges(&tree8), 7, "{}", tree8.display());
        // Every tree merge is serial-section and binary.
        for n in &tree8.nodes {
            if matches!(n.kind, PhysKind::Merge) {
                assert!(map8.partition(n.id).is_none());
                assert!(n.inputs.len() <= 2, "{}", tree8.display());
            }
        }
        assert_eq!(canonical(&execute_oracle(&tree8).unwrap()), expected);
        // Forced fan-in reshapes the tail at any dop.
        for (dop, fanin, want) in [(4u32, 2u32, 3usize), (8, 4, 3), (8, 3, 4)] {
            let cfg = PartitionConfig {
                merge_fanin: fanin,
                ..Default::default()
            };
            let (expanded, _) = partition_plan_cfg(&plan, dop, &cfg).unwrap();
            expanded.validate().unwrap();
            assert_eq!(
                merges(&expanded),
                want,
                "dop {dop} fanin {fanin}\n{}",
                expanded.display()
            );
            assert_eq!(
                canonical(&execute_oracle(&expanded).unwrap()),
                expected,
                "dop {dop} fanin {fanin} diverged"
            );
        }
    }

    #[test]
    fn partial_aggregate_merge_tree_is_flagged_unfilterable() {
        // Global SUM at dop 8: partial aggregates per partition, a binary
        // merge tree, then the final merge aggregate. Every tree node
        // carries partial accumulator values, so AIP must not filter any
        // of its columns (n_groups = 0 here).
        let c = catalog();
        let mut q = QueryBuilder::new(&c);
        let ps = q
            .scan("partsupp", "ps", &["ps_partkey", "ps_availqty"])
            .unwrap();
        let p = q.scan("part", "p", &["p_partkey"]).unwrap();
        let j = q.join(p, ps, &[("p.p_partkey", "ps.ps_partkey")]).unwrap();
        let qty = j.col("ps_availqty").unwrap();
        let total = q
            .aggregate(j, &[], &[(AggFunc::Sum, qty, "total")])
            .unwrap();
        let plan = total.into_plan();
        let phys = lower(&plan, q.into_attrs(), &c).unwrap();
        let expected = canonical(&execute_oracle(&phys).unwrap());
        let (expanded, map) = partition_plan(&phys, 8).unwrap();
        let mut tree_merges = 0;
        for n in &expanded.nodes {
            if matches!(n.kind, PhysKind::Merge) {
                tree_merges += 1;
                assert!(
                    !map.filterable_at(n.id, 0),
                    "partial-value column filterable at tree merge {}\n{}",
                    n.id,
                    expanded.display()
                );
            }
        }
        assert_eq!(tree_merges, 7, "{}", expanded.display());
        assert_eq!(canonical(&execute_oracle(&expanded).unwrap()), expected);
    }

    /// The salt planner end to end on a plan that would otherwise
    /// co-locate: a 60%-hot join key crosses the default threshold, so
    /// both sides cross salted meshes (scatter on the fact, broadcast on
    /// the dimension) sharing one hot-key set, the fact's scans split by
    /// rowid, the `PartitionMap` records the exemption digests, and the
    /// result multiset matches the serial oracle. With salting disabled
    /// the same plan co-locates with no mesh at all.
    #[test]
    fn skewed_join_salts_both_meshes_and_matches_oracle() {
        let int = |n: &str| Field::new(n, DataType::Int);
        let mut c = Catalog::new();
        let fact_rows: Vec<Row> = (0..400)
            .map(|i| {
                let b = if i < 240 { 7 } else { i % 40 };
                Row::new(vec![Value::Int(i), Value::Int(b)])
            })
            .collect();
        c.add(
            Table::new(
                "fact",
                Schema::new(vec![int("a"), int("b")]),
                vec![],
                vec![],
                fact_rows,
            )
            .unwrap(),
        );
        c.add(
            Table::new(
                "dim",
                Schema::new(vec![int("k")]),
                vec![],
                vec![],
                (0..40).map(|k| Row::new(vec![Value::Int(k)])).collect(),
            )
            .unwrap(),
        );
        let mut q = QueryBuilder::new(&c);
        let f = q.scan("fact", "f", &["a", "b"]).unwrap();
        let d = q.scan("dim", "d", &["k"]).unwrap();
        let j = q.join(f, d, &[("f.b", "d.k")]).unwrap();
        let phys = lower(&j.into_plan(), q.into_attrs(), &c).unwrap();
        let expected = canonical(&execute_oracle(&phys).unwrap());

        let (expanded, map) = partition_plan(&phys, 4).unwrap();
        expanded.validate().unwrap();
        assert_eq!(canonical(&execute_oracle(&expanded).unwrap()), expected);
        let hot_digest = sip_common::hash_key(&[Value::Int(7)]);
        let (mut scatter, mut broadcast) = (0usize, 0usize);
        for n in &expanded.nodes {
            if let PhysKind::ShuffleWrite { salt: Some(s), .. } = &n.kind {
                assert!(s.keys.covers(hot_digest), "hot key missing from salt");
                assert_eq!(s.keys.len(), Some(1), "only the hot key salts");
                match s.role {
                    sip_engine::SaltRole::Scatter => scatter += 1,
                    sip_engine::SaltRole::Broadcast => broadcast += 1,
                }
            }
        }
        assert_eq!(
            (scatter, broadcast),
            (4, 4),
            "one scatter + one broadcast mesh of 4 writers each\n{}",
            expanded.display()
        );
        // The scatter side's scans split by rowid (balanced source);
        // the broadcast side's stay hash-split.
        for n in &expanded.nodes {
            if let PhysKind::Scan {
                part: Some(p),
                table,
                ..
            } = &n.kind
            {
                assert_eq!(
                    p.rowid,
                    table.name() == "fact",
                    "wrong split mode for {}",
                    table.name()
                );
            }
        }
        // The exemption digests are reachable from the salted meshes'
        // output streams.
        assert!(!map.salted.is_empty(), "PartitionMap lost the salt set");
        let salted_read = expanded
            .nodes
            .iter()
            .find(|n| {
                matches!(n.kind, PhysKind::ShuffleRead { .. }) && map.salted_at(n.id).is_some()
            })
            .expect("a salted reader claims its class with the exemption");
        assert!(map.salted_at(salted_read.id).unwrap().covers(hot_digest));

        // Salting off: the same join simply co-locates (no mesh).
        let off = PartitionConfig {
            salt: crate::SaltConfig {
                enabled: false,
                ..Default::default()
            },
            ..Default::default()
        };
        let (plain, _) = partition_plan_cfg(&phys, 4, &off).unwrap();
        assert!(plain
            .nodes
            .iter()
            .all(|n| !matches!(n.kind, PhysKind::ShuffleWrite { .. })));
        assert_eq!(canonical(&execute_oracle(&plain).unwrap()), expected);
    }

    /// The pathological all-hot case: with coverage above the fallback
    /// threshold the planner replicates the whole build side
    /// (`SaltedKeys::All`) and scatters the probe round-robin; placement
    /// is entirely arbitrary, so no class is claimed, and the multiset
    /// still matches the oracle.
    #[test]
    fn all_hot_join_takes_replicated_build_fallback() {
        let int = |n: &str| Field::new(n, DataType::Int);
        let mut c = Catalog::new();
        c.add(
            Table::new(
                "fact",
                Schema::new(vec![int("a"), int("b")]),
                vec![],
                vec![],
                (0..400)
                    .map(|i| Row::new(vec![Value::Int(i), Value::Int(i % 2)]))
                    .collect(),
            )
            .unwrap(),
        );
        c.add(
            Table::new(
                "dim",
                Schema::new(vec![int("k")]),
                vec![],
                vec![],
                (0..2).map(|k| Row::new(vec![Value::Int(k)])).collect(),
            )
            .unwrap(),
        );
        let mut q = QueryBuilder::new(&c);
        let f = q.scan("fact", "f", &["a", "b"]).unwrap();
        let d = q.scan("dim", "d", &["k"]).unwrap();
        let j = q.join(f, d, &[("f.b", "d.k")]).unwrap();
        let phys = lower(&j.into_plan(), q.into_attrs(), &c).unwrap();
        let expected = canonical(&execute_oracle(&phys).unwrap());
        let cfg = PartitionConfig {
            salt: crate::SaltConfig {
                force: true,
                ..Default::default()
            },
            ..Default::default()
        };
        let (expanded, map) = partition_plan_cfg(&phys, 4, &cfg).unwrap();
        expanded.validate().unwrap();
        let all_salted = expanded
            .nodes
            .iter()
            .filter_map(|n| match &n.kind {
                PhysKind::ShuffleWrite { salt: Some(s), .. } => Some(s.keys.len().is_none()),
                _ => None,
            })
            .collect::<Vec<_>>();
        assert!(
            !all_salted.is_empty() && all_salted.iter().all(|&a| a),
            "expected the SaltedKeys::All fallback\n{}",
            expanded.display()
        );
        // Arbitrary placement: the salted meshes claim no class.
        assert!(map.salted.is_empty());
        assert_eq!(canonical(&execute_oracle(&expanded).unwrap()), expected);
    }

    #[test]
    fn single_scan_plan_is_not_partitionable() {
        let c = catalog();
        let mut q = QueryBuilder::new(&c);
        let p = q.scan("part", "p", &["p_partkey"]).unwrap();
        let plan = p.into_plan();
        let phys = lower(&plan, q.into_attrs(), &c).unwrap();
        assert_eq!(
            partition_plan(&phys, 4).unwrap_err(),
            PartitionError::NotPartitionable
        );
        assert_eq!(
            partition_plan(&phys, 1).unwrap_err(),
            PartitionError::DopTooSmall
        );
    }

    #[test]
    fn co_keyed_sides_partition_without_exchange_or_shuffle() {
        let c = catalog();
        let mut q = QueryBuilder::new(&c);
        let ps1 = q
            .scan("partsupp", "ps1", &["ps_partkey", "ps_availqty"])
            .unwrap();
        let ps2 = q.scan("partsupp", "ps2", &["ps_partkey"]).unwrap();
        let j = q
            .join(ps1, ps2, &[("ps1.ps_partkey", "ps2.ps_partkey")])
            .unwrap();
        let plan = j.into_plan();
        let phys = lower(&plan, q.into_attrs(), &c).unwrap();
        let (expanded, map) = partition_plan(&phys, 2).unwrap();
        // Both sides carry partkey → both scans partitioned; no Exchange,
        // no shuffle mesh.
        assert!(expanded.nodes.iter().all(|n| !matches!(
            n.kind,
            PhysKind::Exchange { .. }
                | PhysKind::ShuffleWrite { .. }
                | PhysKind::ShuffleRead { .. }
        )));
        let expected = canonical(&execute_oracle(&phys).unwrap());
        assert_eq!(canonical(&execute_oracle(&expanded).unwrap()), expected);
        assert!(map.class_attrs.len() >= 2);
    }

    #[test]
    fn off_class_semijoin_build_is_shuffled_not_serialized() {
        // Partition classes: the probe (supplier) partitions on suppkey,
        // the build chain on partkey. The semijoin probes on *suppkey*,
        // off the build's class: PR 1 ended the parallel region here; the
        // shuffle now repartitions the build side onto suppkey and runs
        // one semijoin clone per partition.
        let c = catalog();
        let mut q = QueryBuilder::new(&c);
        let s = q.scan("supplier", "s", &["s_suppkey"]).unwrap();
        let ps1 = q
            .scan("partsupp", "ps1", &["ps_partkey", "ps_suppkey"])
            .unwrap();
        let ps2 = q
            .scan("partsupp", "ps2", &["ps_partkey", "ps_availqty"])
            .unwrap();
        let qty = ps2.col("ps_availqty").unwrap();
        let agg = q
            .aggregate(ps2, &["ps_partkey"], &[(AggFunc::Sum, qty, "avail")])
            .unwrap();
        let j = q
            .join(ps1, agg, &[("ps1.ps_partkey", "ps2.ps_partkey")])
            .unwrap();
        let keys = vec![(
            s.attr("s_suppkey").unwrap(),
            j.attr("ps1.ps_suppkey").unwrap(),
        )];
        let plan = sip_plan::LogicalPlan::SemiJoin {
            probe: Box::new(s.into_plan()),
            build: Box::new(j.into_plan()),
            keys,
        };
        let phys = lower(&plan, q.into_attrs(), &c).unwrap();

        let expected = canonical(&execute_oracle(&phys).unwrap());
        for dop in [2u32, 4] {
            let (expanded, _) = partition_plan(&phys, dop).unwrap();
            assert_eq!(
                canonical(&execute_oracle(&expanded).unwrap()),
                expected,
                "dop {dop}: shuffled semijoin diverged\n{}",
                expanded.display()
            );
            // One semijoin clone per partition, fed through a shuffle.
            let semis = expanded
                .nodes
                .iter()
                .filter(|n| matches!(n.kind, PhysKind::SemiJoin { .. }))
                .count();
            assert_eq!(semis, dop as usize, "{}", expanded.display());
            let writers = expanded
                .nodes
                .iter()
                .filter(|n| matches!(n.kind, PhysKind::ShuffleWrite { .. }))
                .count();
            assert!(writers >= dop as usize, "{}", expanded.display());
        }
        // With shuffling disabled the PR-1 serial fallback returns.
        let cfg = PartitionConfig {
            shuffle: false,
            ..Default::default()
        };
        let (expanded, _) = partition_plan_cfg(&phys, 2, &cfg).unwrap();
        let semis = expanded
            .nodes
            .iter()
            .filter(|n| matches!(n.kind, PhysKind::SemiJoin { .. }))
            .count();
        assert_eq!(semis, 1, "{}", expanded.display());
        assert_eq!(canonical(&execute_oracle(&expanded).unwrap()), expected);
    }

    #[test]
    fn avg_aggregate_falls_back_to_serial_merge() {
        let c = catalog();
        let mut q = QueryBuilder::new(&c);
        let ps = q
            .scan("partsupp", "ps", &["ps_partkey", "ps_availqty"])
            .unwrap();
        let p = q.scan("part", "p", &["p_partkey"]).unwrap();
        let j = q.join(p, ps, &[("p.p_partkey", "ps.ps_partkey")]).unwrap();
        let qty = j.col("ps_availqty").unwrap();
        // Global AVG: not splittable into partials.
        let avg = q.aggregate(j, &[], &[(AggFunc::Avg, qty, "mean")]).unwrap();
        let plan = avg.into_plan();
        let phys = lower(&plan, q.into_attrs(), &c).unwrap();
        let (expanded, _) = partition_plan(&phys, 3).unwrap();
        let expected = canonical(&execute_oracle(&phys).unwrap());
        assert_eq!(canonical(&execute_oracle(&expanded).unwrap()), expected);
        // Exactly one Aggregate survives (serial, above the merge).
        let aggs = expanded
            .nodes
            .iter()
            .filter(|n| matches!(n.kind, PhysKind::Aggregate { .. }))
            .count();
        assert_eq!(aggs, 1, "{}", expanded.display());
    }

    /// Regression (replica Exchange key alignment): the Exchange pruning a
    /// broadcast replica must hash the *join-key* column of the aligned
    /// pair — not merely the first column whose attribute belongs to the
    /// partitioning equivalence class. Here the replica is a projection
    /// exposing two same-class attributes `m` (position 0) and `n`
    /// (position 1) with different values per row; the join is keyed on
    /// `n`. Hashing `m` would route replica rows away from the partition
    /// holding their join partners.
    #[test]
    fn replica_exchange_hashes_the_join_key_column() {
        let mut c = Catalog::new();
        let int = |name: &str| Field::new(name, DataType::Int);
        let rows2 = |vals: &[(i64, i64)]| -> Vec<Row> {
            vals.iter()
                .map(|&(a, b)| Row::new(vec![Value::Int(a), Value::Int(b)]))
                .collect()
        };
        let big1: Vec<(i64, i64)> = (0..200).map(|i| (i % 40, i)).collect();
        let big2: Vec<(i64, i64)> = (0..120).map(|i| (i % 40, i)).collect();
        let dim: Vec<(i64, i64)> = (0..30).map(|i| (i, (i * 7 + 3) % 40)).collect();
        let tail: Vec<(i64, i64)> = (0..60).map(|i| (i % 30, i)).collect();
        c.add(
            Table::new(
                "big1",
                Schema::new(vec![int("a"), int("pay")]),
                vec![],
                vec![],
                rows2(&big1),
            )
            .unwrap(),
        );
        c.add(
            Table::new(
                "big2",
                Schema::new(vec![int("b"), int("pay2")]),
                vec![],
                vec![],
                rows2(&big2),
            )
            .unwrap(),
        );
        c.add(
            Table::new(
                "dim",
                Schema::new(vec![int("u"), int("v")]),
                vec![],
                vec![],
                rows2(&dim),
            )
            .unwrap(),
        );
        c.add(
            Table::new(
                "tail",
                Schema::new(vec![int("w"), int("pay3")]),
                vec![],
                vec![],
                rows2(&tail),
            )
            .unwrap(),
        );

        let mut q = QueryBuilder::new(&c);
        let b1 = q.scan("big1", "b1", &["a", "pay"]).unwrap();
        let b2 = q.scan("big2", "b2", &["b"]).unwrap();
        let x = q.join(b1, b2, &[("b1.a", "b2.b")]).unwrap();
        let d = q.scan("dim", "d", &["u", "v"]).unwrap();
        // Computed projections mint fresh attribute ids, so the dim scan
        // itself exposes no join-key attribute and the subtree stays
        // replicable; `m` sits before `n` in the replica layout.
        let mu = d.col("u").unwrap().add(Expr::lit(0i64));
        let nv = d.col("v").unwrap().add(Expr::lit(0i64));
        let p = q
            .project(d, &[(mu, "m", DataType::Int), (nv, "n", DataType::Int)])
            .unwrap();
        let y = q.join(x, p, &[("b1.a", "n")]).unwrap();
        // `m` joins the same equivalence class via the tail join.
        let t = q.scan("tail", "t", &["w"]).unwrap();
        let z = q.join(y, t, &[("m", "t.w"), ("n", "t.w")]).unwrap();
        let plan = z.into_plan();
        let phys = lower(&plan, q.into_attrs(), &c).unwrap();

        let expected = canonical(&execute_oracle(&phys).unwrap());
        let (expanded, _) = partition_plan(&phys, 2).unwrap();
        assert_eq!(
            canonical(&execute_oracle(&expanded).unwrap()),
            expected,
            "{}",
            expanded.display()
        );
        // Every Exchange above the dim projection hashes `n` (position 1),
        // the join-key column — never `m` (position 0).
        let mut saw_exchange = false;
        for n in &expanded.nodes {
            if let PhysKind::Exchange { col, .. } = &n.kind {
                if n.layout.len() == 2 {
                    saw_exchange = true;
                    assert_eq!(*col, 1, "Exchange hashes a non-key class column");
                }
            }
        }
        assert!(
            saw_exchange,
            "expected a pruned replica\n{}",
            expanded.display()
        );
    }
}
