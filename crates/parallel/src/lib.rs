#![warn(missing_docs)]
//! # sip-parallel — partition-parallel execution for the push engine
//!
//! The seed engine runs every operator on exactly one OS thread, so a join
//! can never use more than one core. This crate adds **intra-operator,
//! hash-partition parallelism** on top of the unchanged executor:
//!
//! 1. [`partition_plan`] analyzes a serial [`sip_engine::PhysPlan`], picks
//!    the attribute-equivalence class its joins agree on, and expands the
//!    plan into `dop` partition clones — partitioned scans (the fused form
//!    of an `Exchange`), per-partition joins / semijoins / aggregates,
//!    `Exchange` nodes above replicated subtrees feeding co-partitioned
//!    joins, and `Merge` boundaries where partitions rejoin the serial
//!    tail (including partial-aggregate + final-merge splits).
//! 2. [`PartitionedExec`] runs the expanded plan on the ordinary threaded
//!    executor: every clone is just an operator, so each partition gets its
//!    own thread, its own metrics slot, and — crucially for AIP — its own
//!    `FilterTap`.
//! 3. The [`sip_engine::PartitionMap`] returned alongside the plan tells
//!    AIP controllers which clone belongs to which partition, so a filter
//!    built from one partition's completed build side can be injected
//!    plan-wide immediately under a [`sip_engine::FilterScope`], and
//!    OR-merged (`AipSet::union`) into an unscoped plan-wide filter once
//!    every partition has reported — early partitions start pruning
//!    sideways while slow (Zipf-skewed) partitions are still building.
//!
//! Expansion is *correctness-conservative*: joins partition only when their
//! keys lie in the partitioning class (or one side is replicated),
//! aggregates either group by the class, split into partial + final merge,
//! or fall back to a serial aggregate above the merge, and plans that offer
//! no safe parallelism at all are reported as
//! [`PartitionError::NotPartitionable`] so callers can fall back to serial
//! execution.

mod partition;

pub mod exec;

pub use exec::PartitionedExec;
pub use partition::{partition_plan, PartitionError};
