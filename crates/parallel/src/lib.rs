#![warn(missing_docs)]
//! # sip-parallel — partition-parallel execution for the push engine
//!
//! The seed engine runs every operator on exactly one OS thread, so a join
//! can never use more than one core. This crate adds **intra-operator,
//! hash-partition parallelism** on top of the unchanged executor:
//!
//! 1. [`partition_plan`] analyzes a serial [`sip_engine::PhysPlan`] and
//!    expands it into `dop` partition clones. Every stream tracks the
//!    attribute set obeying the partition-hash invariant: scans partition
//!    on their own best join key, joins run per partition when a key pair
//!    is co-aligned, and — the piece that keeps multi-class plans (TPC-H
//!    5/9 join chains) parallel end to end — a join whose inputs are
//!    partitioned on *different* classes repartitions through an
//!    all-to-all **shuffle mesh** ([`sip_engine::PhysKind::ShuffleWrite`] /
//!    [`sip_engine::PhysKind::ShuffleRead`]) instead of collapsing to a
//!    serial region. Replicable subtrees are broadcast (small) or scanned
//!    once and distributed over a `1 × dop` mesh (large); the cost model
//!    ([`sip_optimizer::CostModel::repartition_wins`]) arbitrates
//!    repartition vs. the serial fallback.
//! 2. [`PartitionedExec`] runs the expanded plan on the ordinary threaded
//!    executor: every clone is just an operator, so each partition gets its
//!    own thread, its own metrics slot, and — crucially for AIP — its own
//!    `FilterTap`.
//! 3. The [`sip_engine::PartitionMap`] returned alongside the plan tells
//!    AIP controllers which clone belongs to which partition *and which
//!    partitioning class governs it*, so a filter built from one
//!    partition's completed build side can be injected plan-wide
//!    immediately under a [`sip_engine::FilterScope`] — including at sites
//!    on the far side of a shuffle, whose rows the scope check routes —
//!    and OR-merged (`AipSet::union`) into an unscoped plan-wide filter
//!    once every partition has reported.
//!
//! Expansion is *correctness-conservative*: joins partition only when
//! their keys provably co-locate matching rows (shuffling when they do
//! not), aggregates either group by their stream's class, split into
//! partial + final merge, or fall back to a serial aggregate above the
//! merge, and plans that offer no safe parallelism at all are reported as
//! [`PartitionError::NotPartitionable`] so callers can fall back to serial
//! execution.

mod partition;
mod shuffle;

pub mod adaptive;
pub mod exec;

pub use adaptive::{AdaptiveConfig, AdaptiveExec, AdaptiveReport};
pub use exec::PartitionedExec;
pub use partition::{partition_plan, partition_plan_cfg, PartitionError};
pub use shuffle::{PartitionConfig, SaltConfig};
