//! Stage-boundary adaptive execution.
//!
//! A frozen parallel plan commits to its salting, dop, and AIP decisions
//! before the first row flows, using base-table statistics. Mid-plan
//! streams — a join output whose key frequencies no base table predicts, a
//! filter whose selectivity the estimator guesses at — are exactly where
//! those statistics go blind, and the decisions they drive (reject an AIP
//! filter, skip salting, over-provision partitions) cannot be revisited
//! once the operator threads are running.
//!
//! [`AdaptiveExec`] splits the plan at a stage boundary instead: the lowest
//! stateful operator that has another stateful operator above it. Stage 1
//! (the subtree under the split) runs partition-parallel and its output is
//! **materialized as a table** — which makes every runtime observation
//! exact and free: [`Table::new`] computes per-column distinct counts,
//! min/max, and heavy-hitter digests over the actual intermediate rows.
//! Stage 2 is then *re-planned* against those measured statistics:
//!
//! 1. **Salting** — `partition_plan`'s salt planner reads the stage
//!    table's exact hot-key digests, so a mid-plan stream whose measured
//!    frequencies diverge from base-table stats is salted (or un-salted)
//!    from evidence, not guesswork.
//! 2. **Downstream join plans** — the cost-based AIP controller's
//!    estimator sees the stage table's true cardinality and distinct
//!    counts, so `ESTIMATEBENEFIT` prices downstream filters against
//!    observed reality (`UPDATEESTIMATES` with exact figures); decisions
//!    that a misestimated selectivity froze wrong flip to the beneficial
//!    choice.
//! 3. **Effective dop** — the downstream degree of parallelism is re-chosen
//!    from the *measured* row count (clamped so each partition gets a
//!    worthwhile share), so a stream that collapsed to a handful of rows
//!    stops paying per-partition thread and channel overhead.
//!
//! Adaptation changes only physical routing — partitioning, salting,
//! filter injection — never the result multiset; the differential suite
//! pins every (dop × adaptive on/off) combination to the serial oracle.

use crate::exec::PartitionedExec;
use crate::shuffle::PartitionConfig;
use sip_common::{plan_err, FxHashMap, OpId, Result, Schema};
use sip_data::Table;
use sip_engine::{
    ExecMonitor, ExecOptions, PartitionMap, PhysKind, PhysNode, PhysPlan, QueryOutput,
};
use std::sync::Arc;
use std::time::Duration;

/// Knobs for the adaptive split.
#[derive(Clone, Debug)]
pub struct AdaptiveConfig {
    /// Minimum stage-1 output rows each stage-2 partition must receive for
    /// parallelism to pay for its thread/channel overhead; the effective
    /// dop is clamped to `rows / min_rows_per_partition`.
    pub min_rows_per_partition: u64,
    /// Plan-expansion knobs shared by both stages.
    pub partition: PartitionConfig,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            min_rows_per_partition: 256,
            partition: PartitionConfig::default(),
        }
    }
}

/// What the adaptive executor decided and observed, for reporting.
#[derive(Clone, Debug, Default)]
pub struct AdaptiveReport {
    /// Did the plan split (false = no stage boundary found; ran frozen)?
    pub adapted: bool,
    /// Rows the materialized stage-1 output held.
    pub stage1_rows: u64,
    /// Stage-1 wall clock.
    pub stage1_wall: Duration,
    /// The dop the caller asked for.
    pub requested_dop: u32,
    /// The dop stage 2 actually ran at.
    pub stage2_dop: u32,
    /// Share of stage-1 rows held by the heaviest single key of any
    /// column (exact, from the materialized table's statistics).
    pub hot_share: f64,
    /// Attempts stage 1 took under the retry policy (1 = first try).
    pub stage1_attempts: u32,
    /// Attempts stage 2 took. A stage-2 retry restarts from the
    /// materialized `__stage1` checkpoint — stage 1 is never re-run.
    pub stage2_attempts: u32,
    /// Human-readable decision trace, one line per decision.
    pub decisions: Vec<String>,
}

/// Two-stage adaptive executor: run the lower stage, measure, re-plan the
/// upper stage. Falls back to a plain [`PartitionedExec`] run (the frozen
/// plan) when the plan offers no stage boundary.
#[derive(Clone, Debug)]
pub struct AdaptiveExec {
    dop: u32,
    config: AdaptiveConfig,
}

impl AdaptiveExec {
    /// An adaptive executor targeting `dop` partitions.
    pub fn new(dop: u32) -> Self {
        Self::with_config(dop, AdaptiveConfig::default())
    }

    /// An adaptive executor with explicit knobs.
    pub fn with_config(dop: u32, config: AdaptiveConfig) -> Self {
        AdaptiveExec {
            dop: dop.max(1),
            config,
        }
    }

    /// The stage boundary: the lowest (deepest, then earliest) stateful
    /// operator that has a stateful ancestor. Everything under it is worth
    /// measuring *because* decisions above it remain open. `None` when the
    /// plan has fewer than two stacked stateful operators, or already
    /// contains parallel-expansion nodes (it is not a serial plan).
    pub fn split_point(plan: &PhysPlan) -> Option<OpId> {
        let expanded = plan.nodes.iter().any(|n| {
            matches!(
                n.kind,
                PhysKind::Exchange { .. }
                    | PhysKind::Merge
                    | PhysKind::ShuffleWrite { .. }
                    | PhysKind::ShuffleRead { .. }
            )
        });
        if expanded {
            return None;
        }
        plan.stateful_nodes()
            .into_iter()
            .filter(|&op| {
                plan.ancestors(op)
                    .iter()
                    .any(|&a| plan.node(a).kind.is_stateful())
            })
            .max_by_key(|&op| (plan.depth(op), std::cmp::Reverse(op.index())))
    }

    /// Execute `plan`, adapting at the stage boundary when one exists.
    /// Returns the (stage-2) output plus the decision report. Metrics in
    /// the output cover stage 2 only; the report carries stage 1's wall
    /// clock and cardinality.
    pub fn execute(
        &self,
        plan: Arc<PhysPlan>,
        monitor: Arc<dyn ExecMonitor>,
        options: ExecOptions,
    ) -> Result<(QueryOutput, Option<Arc<PartitionMap>>, AdaptiveReport)> {
        let mut report = AdaptiveReport {
            requested_dop: self.dop,
            stage2_dop: self.dop,
            ..AdaptiveReport::default()
        };
        let Some(split) = Self::split_point(&plan) else {
            report
                .decisions
                .push("no stage boundary: running the frozen plan".to_string());
            let exec = PartitionedExec::with_config(self.dop, self.config.partition.clone());
            let (out, map) = exec.execute(plan, monitor, options)?;
            return Ok((out, map, report));
        };
        report.adapted = true;
        let sub = subtree(&plan, split);
        report.decisions.push(format!(
            "split at {split} ({}): stage 1 = {} ops, stage 2 = {} ops",
            plan.node(split).kind.name(),
            sub.len(),
            plan.nodes.len() - sub.len() + 1
        ));

        // Stage 1: run the subtree partition-parallel, collecting rows.
        // The caller's options are reserved for stage 2 (`ExecOptions`
        // owns channel state and is deliberately not `Clone`), so stage 1
        // runs on a fresh clone with forced row collection.
        let stage1_plan = Arc::new(extract_stage1(&plan, &sub, split)?);
        let mut stage1_opts = options.fresh_clone();
        stage1_opts.collect_rows = true;
        let exec1 = PartitionedExec::with_config(self.dop, self.config.partition.clone());
        let t0 = std::time::Instant::now();
        let (out1, _map1) = exec1.execute(stage1_plan, Arc::clone(&monitor), stage1_opts)?;
        report.stage1_wall = t0.elapsed();
        report.stage1_rows = out1.rows.len() as u64;
        report.stage1_attempts = out1.metrics.attempts;
        let stage1_recovered = out1.metrics.recovered;
        if stage1_recovered {
            report.decisions.push(format!(
                "stage 1 recovered (attempt {}); output checkpointed as __stage1",
                out1.metrics.attempts
            ));
        }

        // Materialize: `Table::new` computes exact per-column statistics
        // over the intermediate rows — the free, exact histogram every
        // stage-2 decision below reads.
        let table = materialize(&plan, split, out1.rows)?;
        report.hot_share = hot_share(&table);
        let per_row_nanos = report.stage1_wall.as_nanos() as u64 / report.stage1_rows.max(1);
        report.decisions.push(format!(
            "stage 1: {} rows in {:.1}ms ({per_row_nanos}ns/row); \
materialized as __stage1 with exact stats (hot share {:.2})",
            report.stage1_rows,
            report.stage1_wall.as_secs_f64() * 1e3,
            report.hot_share,
        ));

        // Effective dop from the measured cardinality: estimated rows per
        // partition must clear the configured floor, so a collapsed stream
        // stops paying per-partition overhead that the measured per-row
        // latency shows it cannot amortize.
        let dop2 = self.choose_dop(report.stage1_rows);
        report.stage2_dop = dop2;
        report.decisions.push(format!(
            "stage 2 dop: {dop2} (requested {}, floor {} rows/partition)",
            self.dop, self.config.min_rows_per_partition
        ));

        // Stage 2: re-plan the remainder against the measured table. The
        // salt planner and the AIP cost model both read the stage table's
        // exact statistics through the ordinary planning paths.
        let stage2_plan = Arc::new(replace_subtree(&plan, &sub, split, table)?);
        let exec2 = PartitionedExec::with_config(dop2, self.config.partition.clone());
        let (mut out2, map2) = exec2.execute(stage2_plan, monitor, options)?;
        report.stage2_attempts = out2.metrics.attempts;
        if out2.metrics.recovered {
            report.decisions.push(format!(
                "stage 2 recovered (attempt {}) from the __stage1 checkpoint; stage 1 not re-run",
                out2.metrics.attempts
            ));
        }
        // The query recovered if either stage did; attempts reports the
        // deeper of the two stages' retry depths.
        out2.metrics.recovered |= stage1_recovered;
        out2.metrics.attempts = out2.metrics.attempts.max(report.stage1_attempts);
        Ok((out2, map2, report))
    }

    fn choose_dop(&self, rows: u64) -> u32 {
        let cap = (rows / self.config.min_rows_per_partition.max(1)).max(1);
        (u64::from(self.dop)).min(cap) as u32
    }
}

/// Nodes of the subtree rooted at `root`, in arena (post) order.
fn subtree(plan: &PhysPlan, root: OpId) -> Vec<OpId> {
    let mut stack = vec![root];
    let mut out = Vec::new();
    while let Some(op) = stack.pop() {
        out.push(op);
        stack.extend(plan.node(op).inputs.iter().copied());
    }
    out.sort_unstable_by_key(|o| o.index());
    out
}

/// The subtree under `split` as a standalone plan (ids re-indexed, same
/// attribute catalog so layouts keep their meaning).
fn extract_stage1(plan: &PhysPlan, sub: &[OpId], split: OpId) -> Result<PhysPlan> {
    let mut remap: FxHashMap<u32, u32> = FxHashMap::default();
    let mut nodes = Vec::with_capacity(sub.len());
    for (new_idx, &op) in sub.iter().enumerate() {
        let n = plan.node(op);
        remap.insert(op.0, new_idx as u32);
        nodes.push(PhysNode {
            id: OpId(new_idx as u32),
            kind: n.kind.clone(),
            inputs: n.inputs.iter().map(|c| OpId(remap[&c.0])).collect(),
            layout: n.layout.clone(),
        });
    }
    let root = OpId(remap[&split.0]);
    PhysPlan::from_nodes(nodes, root, plan.attrs.clone())
}

/// The stage-1 output rows as a table named `__stage1`, with one column
/// per attribute of the split node's layout (so the replacement scan
/// reproduces the layout exactly).
fn materialize(plan: &PhysPlan, split: OpId, rows: Vec<sip_common::Row>) -> Result<Arc<Table>> {
    let layout = &plan.node(split).layout;
    let mut fields = Vec::with_capacity(layout.len());
    for &attr in layout {
        fields.push(sip_common::Field::new(
            plan.attrs.name(attr),
            plan.attrs.dtype(attr)?,
        ));
    }
    Ok(Arc::new(Table::new(
        "__stage1",
        Schema::new(fields),
        vec![],
        vec![],
        rows,
    )?))
}

/// Share of rows held by the heaviest single key of any column — the
/// statistic plan-time salting could not see for a mid-plan stream.
fn hot_share(table: &Table) -> f64 {
    let rows = table.meta().row_count.max(1) as f64;
    table
        .meta()
        .column_stats
        .iter()
        .map(|s| s.max_freq as f64 / rows)
        .fold(0.0, f64::max)
}

/// The original plan with the measured subtree replaced by a scan of the
/// stage table. The scan keeps the subtree root's exact layout, so every
/// bound expression and key position above the boundary stays valid.
fn replace_subtree(
    plan: &PhysPlan,
    sub: &[OpId],
    split: OpId,
    table: Arc<Table>,
) -> Result<PhysPlan> {
    let in_sub: FxHashMap<u32, ()> = sub.iter().map(|o| (o.0, ())).collect();
    let layout = plan.node(split).layout.clone();
    let mut nodes = Vec::with_capacity(plan.nodes.len() - sub.len() + 1);
    nodes.push(PhysNode {
        id: OpId(0),
        kind: PhysKind::Scan {
            table,
            cols: (0..layout.len()).collect(),
            binding: "__stage1".to_string(),
            part: None,
        },
        inputs: vec![],
        layout,
    });
    let mut remap: FxHashMap<u32, u32> = FxHashMap::default();
    remap.insert(split.0, 0);
    for n in &plan.nodes {
        if in_sub.contains_key(&n.id.0) {
            continue;
        }
        let new_id = nodes.len() as u32;
        remap.insert(n.id.0, new_id);
        nodes.push(PhysNode {
            id: OpId(new_id),
            kind: n.kind.clone(),
            inputs: n
                .inputs
                .iter()
                .map(|c| {
                    remap
                        .get(&c.0)
                        .copied()
                        .map(OpId)
                        .ok_or_else(|| plan_err!("stage-2 child {c} resolved before its parent"))
                })
                .collect::<Result<Vec<_>>>()?,
            layout: n.layout.clone(),
        });
    }
    let root = OpId(remap[&plan.root.0]);
    PhysPlan::from_nodes(nodes, root, plan.attrs.clone())
}
