//! Execution entry points for partition-parallel plans.

use crate::partition::{partition_plan_cfg, PartitionError};
use crate::shuffle::PartitionConfig;
use sip_common::Result;
use sip_engine::{
    execute_ctx, execute_with_recovery, run_with_recovery, ExecContext, ExecMonitor, ExecOptions,
    PartitionMap, PhysPlan, QueryOutput,
};
use std::sync::Arc;

/// Runs a serial [`PhysPlan`] with intra-operator hash-partition
/// parallelism.
///
/// The same plan the single-threaded entry points accept is expanded to
/// `dop` partitions ([`partition_plan`]) and handed to the ordinary
/// threaded executor; plans with no safe parallel region transparently fall
/// back to serial execution, so `PartitionedExec::new(n).execute(...)` is
/// always a drop-in replacement for [`sip_engine::execute`].
#[derive(Clone, Debug)]
pub struct PartitionedExec {
    dop: u32,
    config: PartitionConfig,
}

impl PartitionedExec {
    /// An executor with `dop` partitions (`0` and `1` mean serial) and the
    /// default [`PartitionConfig`] (shuffling enabled).
    pub fn new(dop: u32) -> Self {
        Self::with_config(dop, PartitionConfig::default())
    }

    /// An executor with explicit expansion knobs (shuffle on/off,
    /// broadcast threshold, cost model).
    pub fn with_config(dop: u32, config: PartitionConfig) -> Self {
        PartitionedExec {
            dop: dop.max(1),
            config,
        }
    }

    /// The configured degree of parallelism.
    pub fn dop(&self) -> u32 {
        self.dop
    }

    /// Expand `plan` for this executor's `dop`.
    ///
    /// Exposed separately so callers (benches, EXPLAIN) can inspect the
    /// expanded plan and [`PartitionMap`] without running it.
    pub fn plan(
        &self,
        plan: &PhysPlan,
    ) -> std::result::Result<(Arc<PhysPlan>, Arc<PartitionMap>), PartitionError> {
        partition_plan_cfg(plan, self.dop, &self.config)
    }

    /// Execute `plan`, partition-parallel when possible, serial otherwise.
    /// Returns the output together with the [`PartitionMap`] actually used
    /// (`None` = the serial fallback ran).
    ///
    /// [`ExecOptions::merge_fanin`] (when `>= 2`) overrides the config's
    /// merge-tree fan-in, so runtime callers can reshape the merge tail
    /// without constructing a [`PartitionConfig`].
    pub fn execute(
        &self,
        plan: Arc<PhysPlan>,
        monitor: Arc<dyn ExecMonitor>,
        options: ExecOptions,
    ) -> Result<(QueryOutput, Option<Arc<PartitionMap>>)> {
        let mut cfg = self.config.clone();
        if options.merge_fanin >= 2 {
            cfg.merge_fanin = options.merge_fanin as u32;
        }
        match partition_plan_cfg(&plan, self.dop, &cfg) {
            Ok((expanded, map)) => {
                // Run-level recovery scope: the expanded plan and partition
                // map are reused verbatim across attempts (expansion is
                // deterministic), so a retried run replays the exact same
                // physical plan from its sources.
                let out = run_with_recovery(options, |opts| {
                    let ctx =
                        ExecContext::new_partitioned(Arc::clone(&expanded), opts, Arc::clone(&map));
                    execute_ctx(ctx, Arc::clone(&monitor))
                })?;
                Ok((out, Some(map)))
            }
            Err(_) => Ok((execute_with_recovery(plan, monitor, options)?, None)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sip_data::{generate, TpchConfig};
    use sip_engine::{canonical, execute_oracle, lower, NoopMonitor};
    use sip_expr::AggFunc;
    use sip_plan::QueryBuilder;

    #[test]
    fn partitioned_execution_matches_serial() {
        let c = generate(&TpchConfig {
            scale_factor: 0.004,
            seed: 23,
            zipf_z: 0.5,
        })
        .unwrap();
        let mut q = QueryBuilder::new(&c);
        let p = q.scan("part", "p", &["p_partkey", "p_size"]).unwrap();
        let ps = q
            .scan("partsupp", "ps", &["ps_partkey", "ps_availqty"])
            .unwrap();
        let qty = ps.col("ps_availqty").unwrap();
        let agg = q
            .aggregate(ps, &["ps_partkey"], &[(AggFunc::Sum, qty, "avail")])
            .unwrap();
        let j = q.join(p, agg, &[("p.p_partkey", "ps.ps_partkey")]).unwrap();
        let plan = j.into_plan();
        let phys = Arc::new(lower(&plan, q.into_attrs(), &c).unwrap());
        let expected = canonical(&execute_oracle(&phys).unwrap());

        for dop in [1u32, 2, 4] {
            let exec = PartitionedExec::new(dop);
            let (out, map) = exec
                .execute(
                    Arc::clone(&phys),
                    Arc::new(NoopMonitor),
                    ExecOptions::default(),
                )
                .unwrap();
            assert_eq!(canonical(&out.rows), expected, "dop {dop}");
            if dop > 1 {
                let map = map.expect("partitioned path taken");
                // Per-partition metrics rollup covers every partition.
                let rollup = out.metrics.per_partition(&map);
                assert_eq!(rollup.len(), dop as usize);
                assert!(rollup.iter().all(|s| s.rows_out > 0));
            } else {
                assert!(map.is_none(), "dop 1 runs serial");
            }
        }
    }
}
