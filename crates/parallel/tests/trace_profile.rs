//! sip-trace integration across the partition-parallel executor: the
//! span/phase accounting invariants must hold on every shape the planner
//! can produce — serial, hash-partitioned, and salted — and tracing off
//! must keep the routing histograms (the metrics path) while attributing
//! zero time.
//!
//! Invariants checked per (dop × salting) cell:
//!
//! * results still match the serial oracle (tracing must be inert);
//! * per-operator attributed time never exceeds wall time (one thread per
//!   operator, so its busy time is bounded by the query's wall clock);
//! * one `Compute` span per input batch on every batch-loop operator:
//!   `phase_counts[Compute] == batches_in` for filters, projections,
//!   joins, aggregates, exchanges, and shuffle writers;
//! * span streams are merged deterministically (sorted by start time);
//! * [`sip_engine::QueryProfile`] built from the run is structurally
//!   consistent (one op row per plan node, one partition row per worker).

use rand::rngs::StdRng;
use rand::SeedableRng;
use sip_common::trace::Phase;
use sip_common::{DataType, Field, Row, Schema, Value};
use sip_data::{Catalog, Table, Zipf};
use sip_engine::{
    canonical, execute_baseline, execute_ctx, execute_oracle, lower, ExecContext, ExecOptions,
    NoopMonitor, PhysKind, PhysPlan, QueryOutput, QueryProfile, TraceLevel,
};
use sip_parallel::{partition_plan_cfg, PartitionConfig, SaltConfig};
use sip_plan::QueryBuilder;
use std::sync::Arc;

const KEYS: u64 = 40;
const FACT_ROWS: usize = 4000;

/// fact(fa, fb, v) with Zipf(1.5)-skewed keys and dimensions t2(ga),
/// t3(hb) covering the domain — the `skew_shuffle` workload, minus the
/// rare-key tail it needs for scoping checks.
fn skewed_catalog() -> Catalog {
    let zipf = Zipf::new(KEYS, 1.5);
    let mut rng = StdRng::seed_from_u64(0xD1CE);
    let int = |n: &str| Field::new(n, DataType::Int);
    let facts = (0..FACT_ROWS)
        .map(|i| {
            Row::new(vec![
                Value::Int(zipf.sample(&mut rng) as i64),
                Value::Int(zipf.sample(&mut rng) as i64),
                Value::Int(i as i64),
            ])
        })
        .collect();
    let dim = |name: &str, col: &str| {
        Table::new(
            name,
            Schema::new(vec![Field::new(col, DataType::Int)]),
            vec![],
            vec![],
            (1..=KEYS as i64)
                .map(|k| Row::new(vec![Value::Int(k)]))
                .collect(),
        )
        .unwrap()
    };
    let mut c = Catalog::new();
    c.add(
        Table::new(
            "fact",
            Schema::new(vec![int("fa"), int("fb"), int("v")]),
            vec![],
            vec![],
            facts,
        )
        .unwrap(),
    );
    c.add(dim("t2", "ga"));
    c.add(dim("t3", "hb"));
    c
}

/// (fact ⋈ t2 on fa) ⋈ t3 on fb — the second join is off-class, so the
/// Zipf-heavy joined stream must cross a shuffle mesh.
fn two_class_plan(c: &Catalog) -> PhysPlan {
    let mut q = QueryBuilder::new(c);
    let f = q.scan("fact", "f", &["fa", "fb", "v"]).unwrap();
    let g = q.scan("t2", "g", &["ga"]).unwrap();
    let j1 = q.join(f, g, &[("f.fa", "g.ga")]).unwrap();
    let h = q.scan("t3", "h", &["hb"]).unwrap();
    let j2 = q.join(j1, h, &[("f.fb", "h.hb")]).unwrap();
    lower(&j2.into_plan(), q.into_attrs(), c).unwrap()
}

fn salt_cfg(enabled: bool) -> PartitionConfig {
    PartitionConfig {
        salt: SaltConfig {
            enabled,
            hot_factor: 0.0005,
            max_hot_keys: 256,
            replicate_coverage: 1.1,
            force: enabled,
        },
        ..PartitionConfig::default()
    }
}

/// Run one cell, returning the executed plan (expanded for dop > 1) and
/// the output.
fn run_cell(
    phys: &PhysPlan,
    dop: u32,
    salt: bool,
    level: TraceLevel,
) -> (Arc<PhysPlan>, QueryOutput) {
    let opts = ExecOptions::default().with_trace(level);
    if dop <= 1 {
        let plan = Arc::new(phys.clone());
        let out = execute_baseline(Arc::clone(&plan), opts).unwrap();
        return (plan, out);
    }
    let (expanded, map) = partition_plan_cfg(phys, dop, &salt_cfg(salt)).unwrap();
    let ctx = ExecContext::new_partitioned(Arc::clone(&expanded), opts, map);
    let out = execute_ctx(ctx, Arc::new(NoopMonitor)).unwrap();
    (expanded, out)
}

/// Does the batch-loop invariant (`Compute` count == batches in) apply to
/// this operator kind? Scans produce rather than consume batches, reads
/// and merges only pull, and external sources never run in these plans.
fn batch_loop_op(kind: &PhysKind) -> bool {
    matches!(
        kind,
        PhysKind::Filter { .. }
            | PhysKind::Project { .. }
            | PhysKind::HashJoin { .. }
            | PhysKind::SemiJoin { .. }
            | PhysKind::Aggregate { .. }
            | PhysKind::Distinct
            | PhysKind::Exchange { .. }
            | PhysKind::ShuffleWrite { .. }
    )
}

#[test]
fn phase_accounting_holds_across_dop_and_salting() {
    let c = skewed_catalog();
    let phys = two_class_plan(&c);
    let expected = canonical(&execute_oracle(&phys).unwrap());
    for dop in [1u32, 2, 4] {
        for salt in [false, true] {
            if dop == 1 && salt {
                continue; // serial runs have no routing to salt
            }
            let (plan, out) = run_cell(&phys, dop, salt, TraceLevel::Spans);
            let tag = format!("dop {dop} salt {salt}");
            assert_eq!(
                canonical(&out.rows),
                expected,
                "{tag}: tracing changed results"
            );
            let wall = out.metrics.wall_time.as_nanos() as u64;
            assert_eq!(out.metrics.per_op.len(), plan.nodes.len(), "{tag}");
            // Phase attribution must never clamp: nested emitter time is
            // always a subset of its enclosing Compute span, even on
            // salted meshes where broadcast writers fan one batch out to
            // every reader.
            assert_eq!(
                out.metrics.attribution_underflow, 0,
                "{tag}: attribution clamped"
            );
            for node in &plan.nodes {
                let snap = &out.metrics.per_op[node.id.index()];
                assert!(
                    snap.busy_nanos() <= wall,
                    "{tag} {}: attributed {}ns exceeds wall {wall}ns",
                    node.id,
                    snap.busy_nanos()
                );
                if batch_loop_op(&node.kind) {
                    assert_eq!(
                        snap.phase_counts[Phase::Compute as usize],
                        snap.batches_in,
                        "{tag} {} ({}): one Compute span per input batch",
                        node.id,
                        node.kind.name()
                    );
                }
            }
            // Span streams merge deterministically: sorted by start time.
            assert!(
                !out.metrics.spans.is_empty(),
                "{tag}: no spans at Spans level"
            );
            assert!(
                out.metrics
                    .spans
                    .windows(2)
                    .all(|w| w[0].t_start <= w[1].t_start),
                "{tag}: span merge is not start-time sorted"
            );
            for s in &out.metrics.spans {
                assert!(s.t_end >= s.t_start, "{tag}: inverted span");
            }
        }
    }
}

#[test]
fn query_profile_is_structurally_consistent_when_partitioned() {
    let c = skewed_catalog();
    let phys = two_class_plan(&c);
    let dop = 4u32;
    let opts = ExecOptions::default().with_trace(TraceLevel::Ops);
    let (expanded, map) = partition_plan_cfg(&phys, dop, &salt_cfg(true)).unwrap();
    let ctx = ExecContext::new_partitioned(Arc::clone(&expanded), opts, Arc::clone(&map));
    let out = execute_ctx(ctx, Arc::new(NoopMonitor)).unwrap();

    let profile = QueryProfile::from_run(&expanded, &out.metrics, Some(&map));
    assert_eq!(profile.ops.len(), expanded.nodes.len());
    assert_eq!(profile.partitions.len(), dop as usize);
    assert_eq!(profile.dop, dop);
    // The per-partition rollup conserves the attributed time: worker busy
    // totals sum to the busy time of the partition-owned operators.
    let owned_busy: u64 = profile
        .ops
        .iter()
        .filter(|o| o.partition.is_some())
        .map(|o| o.busy_nanos())
        .sum();
    let worker_busy: u64 = profile.partitions.iter().map(|p| p.busy_nanos()).sum();
    assert_eq!(owned_busy, worker_busy);
    // One renderer for the per-worker lines, shared with the bench layer.
    let lines = sip_engine::profile::worker_lines(&out.metrics, &map);
    assert_eq!(lines.len(), dop as usize);
    assert!(lines.iter().all(|l| l.starts_with("worker ")), "{lines:?}");
    // The JSON artifact carries the schema tag and the salted routing.
    let json = profile.to_json();
    assert!(json.contains(sip_engine::PROFILE_SCHEMA));
    assert!(json.contains("\"partitions\": ["));
    // The attribution-underflow counter is surfaced (and clean) in the
    // artifact, so a clamped merge can never pass silently.
    assert_eq!(profile.attribution_underflow, 0);
    assert!(json.contains("\"attribution_underflow\": 0"));
}

#[test]
fn tracing_off_keeps_routing_and_attributes_no_time() {
    let c = skewed_catalog();
    let phys = two_class_plan(&c);
    let (plan, out) = run_cell(&phys, 4, false, TraceLevel::Off);
    assert!(out.metrics.spans.is_empty());
    let mut writers = 0usize;
    for node in &plan.nodes {
        let snap = &out.metrics.per_op[node.id.index()];
        assert_eq!(snap.busy_nanos(), 0, "{}: time attributed at Off", node.id);
        if matches!(node.kind, PhysKind::ShuffleWrite { .. }) {
            writers += 1;
            // Satellite of the trace refactor: routing histograms are
            // metrics, not trace — they must survive TraceLevel::Off.
            assert_eq!(snap.routed.len(), 4, "{}: routing lost at Off", node.id);
            assert!(snap.routed.iter().sum::<u64>() > 0, "{}", node.id);
        }
    }
    assert!(
        writers > 0,
        "plan has no shuffle writers:\n{}",
        plan.display()
    );
}

#[test]
fn trace_probe_monitor_receives_the_frozen_metrics() {
    let c = skewed_catalog();
    let phys = two_class_plan(&c);
    let (expanded, map) = partition_plan_cfg(&phys, 2, &salt_cfg(false)).unwrap();
    let probe = Arc::new(sip_engine::testkit::TraceProbe::default());
    let opts = ExecOptions::default().with_trace(TraceLevel::Spans);
    let ctx = ExecContext::new_partitioned(Arc::clone(&expanded), opts, map);
    let out = execute_ctx(ctx, Arc::clone(&probe) as Arc<dyn sip_engine::ExecMonitor>).unwrap();
    let captured = probe.captured.lock().unwrap();
    assert_eq!(
        captured.len(),
        1,
        "on_trace must fire exactly once per query"
    );
    // The sink sees the same frozen snapshot the caller gets.
    assert_eq!(captured[0].rows_out, out.metrics.rows_out);
    assert_eq!(captured[0].spans.len(), out.metrics.spans.len());
}
