//! Differential suite for the parallel executor: every catalog query, at
//! every dop in {1, 2, 4, 8}, under every AIP strategy, must produce the
//! serial oracle's row multiset — including the multi-class join chains
//! (TPC-H 5/9 shapes) that previously collapsed to the serial fallback and
//! now repartition through shuffle meshes.

use sip_core::{run_query_dop, AipConfig, Strategy};
use sip_data::{generate, TpchConfig};
use sip_engine::{canonical, execute_oracle, ExecOptions, PhysKind};
use sip_parallel::partition_plan;
use sip_queries::{all_queries, build_query};

const DOPS: [u32; 4] = [1, 2, 4, 8];

fn catalog() -> sip_data::Catalog {
    generate(&TpchConfig {
        scale_factor: 0.004,
        seed: 0x5EED,
        zipf_z: 0.5,
    })
    .unwrap()
}

fn check_all(strategy: Strategy) {
    let catalog = catalog();
    for def in all_queries() {
        let spec = build_query(def.id, &catalog).unwrap();
        let phys = spec.lower(&catalog, Strategy::Baseline).unwrap();
        let expected = canonical(&execute_oracle(&phys).unwrap());
        for dop in DOPS {
            let (out, map) = run_query_dop(
                &spec,
                &catalog,
                strategy,
                ExecOptions::default(),
                &AipConfig::paper(),
                dop,
            )
            .unwrap();
            assert_eq!(
                canonical(&out.rows),
                expected,
                "{} diverged from serial at dop {dop} under {strategy}",
                def.id
            );
            assert_eq!(
                map.is_some(),
                dop > 1,
                "{} took the wrong execution path at dop {dop}",
                def.id
            );
        }
    }
}

#[test]
fn baseline_matches_serial_at_every_dop() {
    check_all(Strategy::Baseline);
}

#[test]
fn feedforward_matches_serial_at_every_dop() {
    check_all(Strategy::FeedForward);
}

#[test]
fn costbased_matches_serial_at_every_dop() {
    check_all(Strategy::CostBased);
}

/// The acceptance bar for mid-plan repartitioning: the TPC-H 5/9-shaped
/// catalog queries execute at dop = 4 with **no serial join** — every
/// join/semijoin clone belongs to a partition, the plan dump contains
/// shuffle nodes, and results are identical to dop = 1.
#[test]
fn multi_class_chains_stay_parallel_end_to_end() {
    let catalog = catalog();
    for id in ["Q4A", "Q5A", "Q1A"] {
        let spec = build_query(id, &catalog).unwrap();
        let phys = spec.lower(&catalog, Strategy::Baseline).unwrap();
        let (expanded, map) = partition_plan(&phys, 4).unwrap();
        let serial_joins = expanded
            .nodes
            .iter()
            .filter(|n| {
                matches!(
                    n.kind,
                    PhysKind::HashJoin { .. } | PhysKind::SemiJoin { .. }
                ) && map.partition(n.id).is_none()
            })
            .count();
        assert_eq!(
            serial_joins,
            0,
            "{id} fell back to a serial join:\n{}",
            expanded.display()
        );
        assert!(
            expanded
                .nodes
                .iter()
                .any(|n| matches!(n.kind, PhysKind::ShuffleWrite { .. })),
            "{id} expanded without a shuffle:\n{}",
            expanded.display()
        );
        // Byte-identical results: dop 4 vs dop 1 (canonicalized, since the
        // threaded engine emits in nondeterministic order).
        let expected = canonical(&execute_oracle(&phys).unwrap());
        let (out1, _) = run_query_dop(
            &spec,
            &catalog,
            Strategy::FeedForward,
            ExecOptions::default(),
            &AipConfig::paper(),
            1,
        )
        .unwrap();
        let (out4, _) = run_query_dop(
            &spec,
            &catalog,
            Strategy::FeedForward,
            ExecOptions::default(),
            &AipConfig::paper(),
            4,
        )
        .unwrap();
        assert_eq!(canonical(&out1.rows), expected, "{id} dop 1");
        assert_eq!(canonical(&out4.rows), expected, "{id} dop 4");
    }
}

/// The batch kernels must be batch-size independent *through shuffle
/// meshes too*: sweep the boundary sizes (single-row batches, the 63/64/65
/// neighborhood around the old minimum, and a size larger than most
/// intermediate results) across repartitioning queries at dop 4.
#[test]
fn shuffle_kernels_are_batch_size_independent() {
    let catalog = catalog();
    for id in ["Q4A", "Q1A", "EX"] {
        let spec = build_query(id, &catalog).unwrap();
        let phys = spec.lower(&catalog, Strategy::Baseline).unwrap();
        let expected = canonical(&execute_oracle(&phys).unwrap());
        for batch in [1usize, 63, 64, 65, 4096] {
            let opts = ExecOptions::validated(batch, 2).unwrap();
            let (out, map) = run_query_dop(
                &spec,
                &catalog,
                Strategy::FeedForward,
                opts,
                &AipConfig::paper(),
                4,
            )
            .unwrap();
            assert!(map.is_some(), "{id} fell back to serial at batch {batch}");
            assert_eq!(
                canonical(&out.rows),
                expected,
                "{id} diverged at batch {batch}"
            );
        }
    }
}
