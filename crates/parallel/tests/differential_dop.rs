//! Differential suite for the parallel executor: every catalog query, at
//! every dop in {1, 2, 4, 8}, under every AIP strategy, must produce the
//! serial oracle's row multiset — including the multi-class join chains
//! (TPC-H 5/9 shapes) that previously collapsed to the serial fallback and
//! now repartition through shuffle meshes.

use sip_core::{run_query_dop, AipConfig, Strategy};
use sip_data::{generate, TpchConfig};
use sip_engine::{
    canonical, execute_ctx, execute_oracle, ExecContext, ExecOptions, NoopMonitor, PhysKind,
};
use sip_parallel::{partition_plan, partition_plan_cfg, PartitionConfig};
use sip_queries::{all_queries, build_query};
use std::sync::Arc;

const DOPS: [u32; 4] = [1, 2, 4, 8];

fn catalog() -> sip_data::Catalog {
    generate(&TpchConfig {
        scale_factor: 0.004,
        seed: 0x5EED,
        zipf_z: 0.5,
    })
    .unwrap()
}

fn check_all(strategy: Strategy) {
    let catalog = catalog();
    for def in all_queries() {
        let spec = build_query(def.id, &catalog).unwrap();
        let phys = spec.lower(&catalog, Strategy::Baseline).unwrap();
        let expected = canonical(&execute_oracle(&phys).unwrap());
        for dop in DOPS {
            let (out, map) = run_query_dop(
                &spec,
                &catalog,
                strategy,
                ExecOptions::default(),
                &AipConfig::paper(),
                dop,
            )
            .unwrap();
            assert_eq!(
                canonical(&out.rows),
                expected,
                "{} diverged from serial at dop {dop} under {strategy}",
                def.id
            );
            assert_eq!(
                map.is_some(),
                dop > 1,
                "{} took the wrong execution path at dop {dop}",
                def.id
            );
        }
    }
}

#[test]
fn baseline_matches_serial_at_every_dop() {
    check_all(Strategy::Baseline);
}

#[test]
fn feedforward_matches_serial_at_every_dop() {
    check_all(Strategy::FeedForward);
}

#[test]
fn costbased_matches_serial_at_every_dop() {
    check_all(Strategy::CostBased);
}

/// The acceptance bar for mid-plan repartitioning: the TPC-H 5/9-shaped
/// catalog queries execute at dop = 4 with **no serial join** — every
/// join/semijoin clone belongs to a partition, the plan dump contains
/// shuffle nodes, and results are identical to dop = 1.
#[test]
fn multi_class_chains_stay_parallel_end_to_end() {
    let catalog = catalog();
    for id in ["Q4A", "Q5A", "Q1A"] {
        let spec = build_query(id, &catalog).unwrap();
        let phys = spec.lower(&catalog, Strategy::Baseline).unwrap();
        let (expanded, map) = partition_plan(&phys, 4).unwrap();
        let serial_joins = expanded
            .nodes
            .iter()
            .filter(|n| {
                matches!(
                    n.kind,
                    PhysKind::HashJoin { .. } | PhysKind::SemiJoin { .. }
                ) && map.partition(n.id).is_none()
            })
            .count();
        assert_eq!(
            serial_joins,
            0,
            "{id} fell back to a serial join:\n{}",
            expanded.display()
        );
        assert!(
            expanded
                .nodes
                .iter()
                .any(|n| matches!(n.kind, PhysKind::ShuffleWrite { .. })),
            "{id} expanded without a shuffle:\n{}",
            expanded.display()
        );
        // Byte-identical results: dop 4 vs dop 1 (canonicalized, since the
        // threaded engine emits in nondeterministic order).
        let expected = canonical(&execute_oracle(&phys).unwrap());
        let (out1, _) = run_query_dop(
            &spec,
            &catalog,
            Strategy::FeedForward,
            ExecOptions::default(),
            &AipConfig::paper(),
            1,
        )
        .unwrap();
        let (out4, _) = run_query_dop(
            &spec,
            &catalog,
            Strategy::FeedForward,
            ExecOptions::default(),
            &AipConfig::paper(),
            4,
        )
        .unwrap();
        assert_eq!(canonical(&out1.rows), expected, "{id} dop 1");
        assert_eq!(canonical(&out4.rows), expected, "{id} dop 4");
    }
}

/// Admit-batch differential parity at dop ∈ {1, 2, 4} × batch sizes
/// {1, 63, 64, 65}: self-checking collectors
/// ([`sip_engine::testkit::install_admit_parity`]) at every stateful input
/// of the (expanded) plan verify that the batched AIP build produces
/// byte-identical working sets — and exactly equal `aip_probed` /
/// `aip_dropped` counters when probed — versus the per-row `admit` replay.
/// `EX` covers joins/aggregates through partitioned clones; the
/// magic-rewritten `Q3A` adds semijoin admit sites.
#[test]
fn admit_batch_parity_across_dop_and_batch_sizes() {
    let catalog = catalog();
    for (id, strategy) in [("EX", Strategy::Baseline), ("Q3A", Strategy::Magic)] {
        let spec = build_query(id, &catalog).unwrap();
        let phys = Arc::new(spec.lower(&catalog, strategy).unwrap());
        let expected = canonical(&execute_oracle(&phys).unwrap());
        let mut semi_seen = false;
        for dop in [1u32, 2, 4] {
            for batch in [1usize, 63, 64, 65] {
                let opts = ExecOptions::validated(batch, 2).unwrap();
                let (plan, ctx) = if dop == 1 {
                    (Arc::clone(&phys), ExecContext::new(Arc::clone(&phys), opts))
                } else {
                    let (expanded, map) = partition_plan(&phys, dop).unwrap();
                    (
                        Arc::clone(&expanded),
                        ExecContext::new_partitioned(expanded, opts, map),
                    )
                };
                semi_seen |= plan
                    .nodes
                    .iter()
                    .any(|n| matches!(n.kind, PhysKind::SemiJoin { .. }));
                let (outcome, installed) = sip_engine::testkit::install_admit_parity(&ctx, &plan);
                assert!(installed >= 2, "{id} dop {dop}: too few stateful inputs");
                let out = execute_ctx(Arc::clone(&ctx), Arc::new(NoopMonitor)).unwrap();
                assert_eq!(
                    canonical(&out.rows),
                    expected,
                    "{id} dop {dop} batch {batch} diverged"
                );
                let errs = outcome.errors.lock().unwrap();
                assert!(
                    errs.is_empty(),
                    "{id} dop {dop} batch {batch}:\n{}",
                    errs.join("\n")
                );
                assert_eq!(
                    *outcome.finished.lock().unwrap(),
                    installed,
                    "{id} dop {dop} batch {batch}: every collector must finish once"
                );
            }
        }
        if strategy == Strategy::Magic {
            assert!(semi_seen, "{id}: magic rewrite produced no semijoin");
        }
    }
}

/// Tree-merge row conservation under Zipf skew: a forced binary merge tail
/// at dop 4 and the auto tree at dop 8 must conserve the serial plan's
/// exact row multiset over the skewed catalog, every partition must report
/// in the rollup, and the forced plan must actually stack merges.
#[test]
fn tree_merge_conserves_rows_under_zipf_skew() {
    let catalog = catalog(); // zipf_z = 0.5
    for id in ["EX", "Q4A"] {
        let spec = build_query(id, &catalog).unwrap();
        let phys = spec.lower(&catalog, Strategy::Baseline).unwrap();
        let expected = canonical(&execute_oracle(&phys).unwrap());
        for (dop, fanin) in [(4u32, 2usize), (8, 0)] {
            let mut opts = ExecOptions::validated(64, 2).unwrap();
            opts.merge_fanin = fanin;
            let (out, map) = run_query_dop(
                &spec,
                &catalog,
                Strategy::FeedForward,
                opts,
                &AipConfig::paper(),
                dop,
            )
            .unwrap();
            let map = map.expect("partitioned path");
            assert_eq!(
                canonical(&out.rows),
                expected,
                "{id} dop {dop} fanin {fanin} lost or duplicated rows"
            );
            let rollup = out.metrics.per_partition(&map);
            assert_eq!(rollup.len(), dop as usize, "{id} dop {dop} rollup");
        }
    }
    // The forced-fanin expansion stacks merges (a Merge feeding a Merge).
    let spec = build_query("EX", &catalog).unwrap();
    let phys = spec.lower(&catalog, Strategy::Baseline).unwrap();
    let cfg = PartitionConfig {
        merge_fanin: 2,
        ..Default::default()
    };
    let (expanded, _) = partition_plan_cfg(&phys, 4, &cfg).unwrap();
    let stacked = expanded.nodes.iter().any(|n| {
        matches!(n.kind, PhysKind::Merge)
            && n.inputs
                .iter()
                .any(|&c| matches!(expanded.node(c).kind, PhysKind::Merge))
    });
    assert!(stacked, "no merge tree:\n{}", expanded.display());
}

/// The batch kernels must be batch-size independent *through shuffle
/// meshes too*: sweep the boundary sizes (single-row batches, the 63/64/65
/// neighborhood around the old minimum, and a size larger than most
/// intermediate results) across repartitioning queries at dop 4.
#[test]
fn shuffle_kernels_are_batch_size_independent() {
    let catalog = catalog();
    for id in ["Q4A", "Q1A", "EX"] {
        let spec = build_query(id, &catalog).unwrap();
        let phys = spec.lower(&catalog, Strategy::Baseline).unwrap();
        let expected = canonical(&execute_oracle(&phys).unwrap());
        for batch in [1usize, 63, 64, 65, 4096] {
            let opts = ExecOptions::validated(batch, 2).unwrap();
            let (out, map) = run_query_dop(
                &spec,
                &catalog,
                Strategy::FeedForward,
                opts,
                &AipConfig::paper(),
                4,
            )
            .unwrap();
            assert!(map.is_some(), "{id} fell back to serial at batch {batch}");
            assert_eq!(
                canonical(&out.rows),
                expected,
                "{id} diverged at batch {batch}"
            );
        }
    }
}
