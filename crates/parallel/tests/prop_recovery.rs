//! Property tests for the recovery layer: randomized fault points ×
//! dop {1, 2, 4} × salting × retry budgets, asserting the recovery
//! contract — a bounded retryable fault strictly below the budget heals
//! into a result with **no duplicate and no missing rows** (byte-equal
//! to the serial oracle), and every attempt's threads are reaped.
//!
//! The fault target is drawn over *all* operators of the executed plan,
//! so runs exercise fragment replay (mesh source chains), whole-run
//! retry (stateful operators above the mesh), and the no-op case where
//! the drawn operator never checks its guard — the contract holds in
//! all three.

use proptest::prelude::*;
use sip_common::retry::RetryPolicy;
use sip_common::{DataType, Field, Row, Schema, Value};
use sip_data::{Catalog, Table};
use sip_engine::{
    canonical, execute_ctx, execute_oracle, execute_with_recovery, lower, run_with_recovery,
    ExecContext, ExecOptions, FaultKind, FaultPlan, NoopMonitor, PhysPlan,
};
use sip_expr::AggFunc;
use sip_parallel::{partition_plan_cfg, PartitionConfig, SaltConfig};
use sip_plan::QueryBuilder;
use std::sync::Arc;
use std::time::Duration;

/// Abort the whole process if a case wedges — but unlike the shuffle
/// suite's fire-and-forget watchdog, this one is *joined* on success so
/// it never pollutes the thread-leak measurement below.
fn with_watchdog<T>(f: impl FnOnce() -> T) -> T {
    let (tx, rx) = std::sync::mpsc::channel::<()>();
    let h = std::thread::spawn(move || {
        if rx.recv_timeout(Duration::from_secs(300)).is_err() {
            eprintln!("prop_recovery: execution wedged (recovery deadlock?) — aborting");
            std::process::abort();
        }
    });
    let out = f();
    let _ = tx.send(());
    let _ = h.join();
    out
}

/// Live threads in this process (None off Linux — the leak assertion is
/// skipped there, the row-equality contract still runs).
fn thread_count() -> Option<usize> {
    if !cfg!(target_os = "linux") {
        return None;
    }
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

fn mini_catalog(facts: &[(i64, i64, i64)], bs: &[(i64, i64)], cs: &[i64]) -> Catalog {
    let mut c = Catalog::new();
    let int = |n: &str| Field::new(n, DataType::Int);
    c.add(
        Table::new(
            "fact",
            Schema::new(vec![int("f1"), int("f2"), int("v")]),
            vec![],
            vec![],
            facts
                .iter()
                .map(|&(a, b, v)| Row::new(vec![Value::Int(a), Value::Int(b), Value::Int(v)]))
                .collect(),
        )
        .unwrap(),
    );
    c.add(
        Table::new(
            "dimb",
            Schema::new(vec![int("b1"), int("b2")]),
            vec![],
            vec![],
            bs.iter()
                .map(|&(a, b)| Row::new(vec![Value::Int(a), Value::Int(b)]))
                .collect(),
        )
        .unwrap(),
    );
    c.add(
        Table::new(
            "dimc",
            Schema::new(vec![int("c1")]),
            vec![],
            vec![],
            cs.iter().map(|&a| Row::new(vec![Value::Int(a)])).collect(),
        )
        .unwrap(),
    );
    c
}

/// fact ⋈ dimb ⋈ dimc with drawn key columns, optionally topped by a
/// grouped SUM — same shape family as the shuffle property suite, so
/// co-located joins, one-sided shuffles, and double shuffles all occur
/// under the fault injector.
fn mini_plan(c: &Catalog, fk: usize, bk: usize, gk: usize, agg: bool) -> PhysPlan {
    let mut q = QueryBuilder::new(c);
    let f = q.scan("fact", "f", &["f1", "f2", "v"]).unwrap();
    let b = q.scan("dimb", "b", &["b1", "b2"]).unwrap();
    let fk_name = ["f.f1", "f.f2"][fk];
    let bk_name = ["b.b1", "b.b2"][bk];
    let j1 = q.join(f, b, &[(fk_name, bk_name)]).unwrap();
    let gk_name = ["f.f1", "f.f2", "b.b1", "b.b2"][gk];
    let cc = q.scan("dimc", "c", &["c1"]).unwrap();
    let j2 = q.join(j1, cc, &[(gk_name, "c.c1")]).unwrap();
    let plan = if agg {
        let v = j2.col("v").unwrap();
        q.aggregate(j2, &[gk_name], &[(AggFunc::Sum, v, "total")])
            .unwrap()
            .into_plan()
    } else {
        j2.into_plan()
    };
    lower(&plan, q.into_attrs(), c).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The core recovery invariant, randomized: for any plan shape, any
    /// fault point, and any bounded fault strictly below the retry
    /// budget, the run succeeds with rows byte-equal to the oracle —
    /// the mesh seam committed every batch exactly once across however
    /// many attempts it took — and no attempt leaks a thread.
    #[test]
    fn bounded_faults_below_budget_never_duplicate_or_lose_rows(
        facts in prop::collection::vec((0i64..10, 0i64..10, -20i64..20), 1..120),
        bs in prop::collection::vec((0i64..10, 0i64..10), 1..40),
        cs in prop::collection::vec(0i64..10, 1..16),
        fk in 0usize..2,
        bk in 0usize..2,
        gk in 0usize..4,
        aggflag in 0usize..2,
        dop_ix in 0usize..3,
        salt_ix in 0usize..2,
        op_seed in 0u32..1024,
        kind_ix in 0usize..2,
        times in 1u32..3,
        headroom in 1u32..3,
    ) {
        let dop = [1u32, 2, 4][dop_ix];
        let salted = salt_ix == 1;
        let kind = [FaultKind::Panic, FaultKind::Error][kind_ix].clone();
        // Strictly below budget: `times` firings can cost at most `times`
        // failed attempts, so `times + headroom` attempts must heal.
        let budget = times + headroom;
        let retry = RetryPolicy {
            base_backoff: Duration::from_micros(200),
            ..RetryPolicy::with_attempts(budget)
        };
        with_watchdog(|| {
            let catalog = mini_catalog(&facts, &bs, &cs);
            let phys = Arc::new(mini_plan(&catalog, fk, bk, gk, aggflag == 1));
            let expected = canonical(&execute_oracle(&phys).unwrap());
            let cfg = PartitionConfig {
                salt: SaltConfig {
                    enabled: salted,
                    force: salted,
                    ..SaltConfig::default()
                },
                ..PartitionConfig::default()
            };
            let before = thread_count();
            let result = if dop == 1 {
                let n = phys.nodes.len() as u32;
                let opts = ExecOptions::default()
                    .with_faults(FaultPlan::none().with_op_fault_times(op_seed % n, 0, kind, times))
                    .with_retry(retry);
                execute_with_recovery(Arc::clone(&phys), Arc::new(NoopMonitor), opts)
            } else {
                let (expanded, map) = match partition_plan_cfg(&phys, dop, &cfg) {
                    Ok(x) => x,
                    // Degenerate shapes fall back to serial — nothing to
                    // fault here that the dop==1 arm doesn't cover.
                    Err(_) => return,
                };
                let n = expanded.nodes.len() as u32;
                let opts = ExecOptions::default()
                    .with_faults(FaultPlan::none().with_op_fault_times(op_seed % n, 0, kind, times))
                    .with_retry(retry);
                run_with_recovery(opts, |o| {
                    let ctx =
                        ExecContext::new_partitioned(Arc::clone(&expanded), o, Arc::clone(&map));
                    execute_ctx(ctx, Arc::new(NoopMonitor))
                })
            };
            let out = result.unwrap_or_else(|e| {
                panic!(
                    "dop {dop} salted={salted} times={times}/budget {budget}: \
                     must heal below budget, got {e}"
                )
            });
            prop_assert_eq!(
                canonical(&out.rows),
                expected,
                "dop {} salted={} times={}/budget {}: duplicate or missing rows after recovery",
                dop, salted, times, budget
            );
            if let (Some(b), Some(a)) = (before, thread_count()) {
                prop_assert_eq!(
                    b, a,
                    "recovery leaked threads (dop {}, salted={})", dop, salted
                );
            }
        });
    }
}
