//! Skew test: Zipf-heavy keys routed through a shuffle mesh must neither
//! lose nor duplicate rows, and the per-partition row-count metrics must
//! sum to the serial total — guarding the hash routing against the skew
//! pitfalls catalogued in PAPERS.md (Beame/Koutris/Suciu): a hot key
//! concentrates most of the stream on one reader, stressing exactly the
//! backpressure path where a buggy mesh would drop or double-send batches.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sip_common::{DataType, Field, Row, Schema, Value};
use sip_data::{Catalog, Table, Zipf};
use sip_engine::{
    canonical, execute_ctx, execute_oracle, lower, ExecContext, ExecOptions, NoopMonitor, PhysKind,
    PhysPlan,
};
use sip_parallel::partition_plan;
use sip_plan::QueryBuilder;
use std::sync::Arc;

const KEYS: u64 = 40;
const FACT_ROWS: usize = 4000;

/// fact(fa, fb, v) with both keys Zipf(1.5)-skewed, plus two dimensions.
fn skewed_catalog() -> Catalog {
    let zipf = Zipf::new(KEYS, 1.5);
    let mut rng = StdRng::seed_from_u64(0xD1CE);
    let int = |n: &str| Field::new(n, DataType::Int);
    let mut facts = Vec::with_capacity(FACT_ROWS);
    for i in 0..FACT_ROWS {
        let fa = zipf.sample(&mut rng) as i64;
        let fb = zipf.sample(&mut rng) as i64;
        facts.push(Row::new(vec![
            Value::Int(fa),
            Value::Int(fb),
            Value::Int(i as i64),
        ]));
    }
    let dim = |name: &str, col: &str| {
        Table::new(
            name,
            Schema::new(vec![Field::new(col, DataType::Int)]),
            vec![],
            vec![],
            (1..=KEYS as i64)
                .map(|k| Row::new(vec![Value::Int(k)]))
                .collect(),
        )
        .unwrap()
    };
    let mut c = Catalog::new();
    c.add(
        Table::new(
            "fact",
            Schema::new(vec![int("fa"), int("fb"), int("v")]),
            vec![],
            vec![],
            facts,
        )
        .unwrap(),
    );
    c.add(dim("t2", "ga"));
    c.add(dim("t3", "hb"));
    c
}

/// (fact ⋈ t2 on fa) ⋈ t3 on fb: the first join co-locates on fa's class,
/// the second is off-class, so the joined stream — keyed by the Zipf-heavy
/// `fb` — must cross a shuffle mesh.
fn two_class_plan(c: &Catalog) -> PhysPlan {
    let mut q = QueryBuilder::new(c);
    let f = q.scan("fact", "f", &["fa", "fb", "v"]).unwrap();
    let g = q.scan("t2", "g", &["ga"]).unwrap();
    let j1 = q.join(f, g, &[("f.fa", "g.ga")]).unwrap();
    let h = q.scan("t3", "h", &["hb"]).unwrap();
    let j2 = q.join(j1, h, &[("f.fb", "h.hb")]).unwrap();
    let plan = j2.into_plan();
    lower(&plan, q.into_attrs(), c).unwrap()
}

#[test]
fn zipf_keys_survive_the_shuffle_exactly_once() {
    let c = skewed_catalog();
    let phys = two_class_plan(&c);
    let expected = canonical(&execute_oracle(&phys).unwrap());
    for dop in [2u32, 4, 8] {
        let (expanded, map) = partition_plan(&phys, dop).unwrap();
        let writers: Vec<_> = expanded
            .nodes
            .iter()
            .filter(|n| matches!(n.kind, PhysKind::ShuffleWrite { .. }))
            .map(|n| n.id)
            .collect();
        let readers: Vec<_> = expanded
            .nodes
            .iter()
            .filter(|n| matches!(n.kind, PhysKind::ShuffleRead { .. }))
            .map(|n| n.id)
            .collect();
        assert!(
            !writers.is_empty(),
            "no shuffle at dop {dop}:\n{}",
            expanded.display()
        );
        let ctx = ExecContext::new_partitioned(
            Arc::clone(&expanded),
            ExecOptions::default(),
            Arc::clone(&map),
        );
        let out = execute_ctx(ctx, Arc::new(NoopMonitor)).unwrap();
        // Neither lost nor duplicated: the multiset equals serial exactly.
        assert_eq!(canonical(&out.rows), expected, "dop {dop} diverged");

        // Conservation across the mesh: rows entering the writers equal
        // rows leaving the readers (no taps installed, so nothing may be
        // dropped in between).
        let rows_in: u64 = writers
            .iter()
            .map(|&w| out.metrics.per_op[w.index()].rows_in[0])
            .sum();
        let rows_out: u64 = readers
            .iter()
            .map(|&r| out.metrics.per_op[r.index()].rows_out)
            .sum();
        assert_eq!(rows_in, rows_out, "dop {dop}: mesh lost or duplicated rows");

        // The per-partition metric split sums to the serial total of the
        // shuffled stream (the fact ⋈ t2 join output).
        let serial_j1_rows = {
            let mut q = QueryBuilder::new(&c);
            let f = q.scan("fact", "f", &["fa", "fb", "v"]).unwrap();
            let g = q.scan("t2", "g", &["ga"]).unwrap();
            let j1 = q.join(f, g, &[("f.fa", "g.ga")]).unwrap();
            let p = lower(&j1.into_plan(), q.into_attrs(), &c).unwrap();
            execute_oracle(&p).unwrap().len() as u64
        };
        assert_eq!(
            rows_in, serial_j1_rows,
            "dop {dop}: per-partition counts do not sum to the serial total"
        );

        // The skew is real: at least one reader holds strictly more than
        // an even share (Zipf s=1.5 concentrates ~38% of rows on the hot
        // key), so the equality above exercised an unbalanced mesh.
        let max_reader = readers
            .iter()
            .map(|&r| out.metrics.per_op[r.index()].rows_out)
            .max()
            .unwrap();
        assert!(
            max_reader > rows_out / dop as u64,
            "dop {dop}: expected a skewed partition split, got a uniform one"
        );

        // Rollup covers every partition.
        assert_eq!(out.metrics.per_partition(&map).len(), dop as usize);
    }
}
