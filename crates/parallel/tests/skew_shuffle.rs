//! Skew suite: Zipf-heavy keys through shuffle meshes.
//!
//! Three layers of guarantees, per PAPERS.md (Beame/Koutris/Suciu):
//!
//! 1. **Conservation under plain hash routing** (salting off): hot keys
//!    are neither lost nor duplicated, per-partition counts sum to the
//!    serial total, and the imbalance is real — the regression guard for
//!    the pre-salting mesh.
//! 2. **Balance under salting**: the same workload with skew-adaptive
//!    routing produces a salted plan whose scatter-mesh readers stay
//!    within a max/mean bound the unsalted mesh grossly violates, while
//!    the result multiset still matches the serial oracle exactly.
//! 3. **AIP correctness with salting forced**: admit-batch parity
//!    (`sip_engine::testkit::install_admit_parity`) at dop ∈ {2, 4}, and
//!    full differential runs under the FeedForward/CostBased controllers
//!    with delayed dimensions — stressing the scoped-filter salted-key
//!    exemption (a partition's working set must never prune a salted key
//!    whose rows another partition received).

use rand::rngs::StdRng;
use rand::SeedableRng;
use sip_common::{DataType, Field, Row, Schema, Value};
use sip_data::{Catalog, Table, Zipf};
use sip_engine::{
    canonical, execute_ctx, execute_oracle, lower, DelayModel, ExecContext, ExecMonitor,
    ExecOptions, NoopMonitor, PhysKind, PhysPlan, SaltRole,
};
use sip_parallel::{partition_plan_cfg, PartitionConfig, SaltConfig};
use sip_plan::{PredicateIndex, QueryBuilder};
use std::sync::Arc;
use std::time::Duration;

const KEYS: u64 = 40;
const FACT_ROWS: usize = 4000;
/// Rare `fb` keys carrying exactly two rows each: under forced low-
/// threshold salting they scatter to a strict subset of the partitions,
/// so some partition's slice of the stream misses them entirely — the
/// configuration a scoped AIP filter must not prune.
const RARE_KEYS: std::ops::Range<i64> = 101..109;

/// fact(fa, fb, v) with both keys Zipf(1.5)-skewed plus a two-row tail,
/// and dimensions t2(ga), t3(hb), t4(kb) covering the full key domain.
fn skewed_catalog() -> Catalog {
    let zipf = Zipf::new(KEYS, 1.5);
    let mut rng = StdRng::seed_from_u64(0xD1CE);
    let int = |n: &str| Field::new(n, DataType::Int);
    let mut facts = Vec::with_capacity(FACT_ROWS + 2 * RARE_KEYS.clone().count());
    for i in 0..FACT_ROWS {
        let fa = zipf.sample(&mut rng) as i64;
        let fb = zipf.sample(&mut rng) as i64;
        facts.push(Row::new(vec![
            Value::Int(fa),
            Value::Int(fb),
            Value::Int(i as i64),
        ]));
    }
    for (i, k) in RARE_KEYS.enumerate() {
        for copy in 0..2 {
            let fa = zipf.sample(&mut rng) as i64;
            facts.push(Row::new(vec![
                Value::Int(fa),
                Value::Int(k),
                Value::Int((FACT_ROWS + 2 * i + copy) as i64),
            ]));
        }
    }
    let dim = |name: &str, col: &str| {
        Table::new(
            name,
            Schema::new(vec![Field::new(col, DataType::Int)]),
            vec![],
            vec![],
            (1..=KEYS as i64)
                .chain(RARE_KEYS)
                .map(|k| Row::new(vec![Value::Int(k)]))
                .collect(),
        )
        .unwrap()
    };
    let mut c = Catalog::new();
    c.add(
        Table::new(
            "fact",
            Schema::new(vec![int("fa"), int("fb"), int("v")]),
            vec![],
            vec![],
            facts,
        )
        .unwrap(),
    );
    c.add(dim("t2", "ga"));
    c.add(dim("t3", "hb"));
    c.add(dim("t4", "kb"));
    c
}

/// (fact ⋈ t2 on fa) ⋈ t3 on fb: the first join co-locates on fa's class,
/// the second is off-class, so the joined stream — keyed by the Zipf-heavy
/// `fb` — must cross a shuffle mesh.
fn two_class_plan(c: &Catalog) -> PhysPlan {
    let mut q = QueryBuilder::new(c);
    let f = q.scan("fact", "f", &["fa", "fb", "v"]).unwrap();
    let g = q.scan("t2", "g", &["ga"]).unwrap();
    let j1 = q.join(f, g, &[("f.fa", "g.ga")]).unwrap();
    let h = q.scan("t3", "h", &["hb"]).unwrap();
    let j2 = q.join(j1, h, &[("f.fb", "h.hb")]).unwrap();
    let plan = j2.into_plan();
    lower(&plan, q.into_attrs(), c).unwrap()
}

/// Two joins on the Zipf-heavy `fb`: the salted join's output feeds a
/// *second* keyed join on the same attribute — the shape where a scoped
/// AIP filter built from a salted stream's partition slice would wrongly
/// prune a salted key at the second join's dimension if the exemption
/// were missing.
fn double_fb_spec(c: &Catalog) -> (sip_plan::LogicalPlan, sip_plan::AttrCatalog) {
    let mut q = QueryBuilder::new(c);
    let f = q.scan("fact", "f", &["fa", "fb", "v"]).unwrap();
    let g = q.scan("t2", "g", &["ga"]).unwrap();
    let j1 = q.join(f, g, &[("f.fa", "g.ga")]).unwrap();
    let h = q.scan("t3", "h", &["hb"]).unwrap();
    let j2 = q.join(j1, h, &[("f.fb", "h.hb")]).unwrap();
    let t = q.scan("t4", "t", &["kb"]).unwrap();
    let j3 = q.join(j2, t, &[("f.fb", "t.kb")]).unwrap();
    (j3.into_plan(), q.into_attrs())
}

fn salt_off() -> PartitionConfig {
    PartitionConfig {
        salt: SaltConfig {
            enabled: false,
            ..SaltConfig::default()
        },
        ..PartitionConfig::default()
    }
}

/// Force salting through the cost gate, with the threshold floored at two
/// occurrences so the rare two-row keys salt too (scattering them to
/// fewer partitions than `dop`) — the worst case for per-partition AIP
/// scoping.
fn salt_forced() -> PartitionConfig {
    PartitionConfig {
        salt: SaltConfig {
            enabled: true,
            hot_factor: 0.0005,
            max_hot_keys: 256,
            replicate_coverage: 1.1, // keep per-key salting (no all-hot fallback)
            force: true,
        },
        ..PartitionConfig::default()
    }
}

#[test]
fn zipf_keys_survive_the_shuffle_exactly_once() {
    // Plain hash routing (salting off): the pre-salting conservation
    // guarantees must keep holding.
    let c = skewed_catalog();
    let phys = two_class_plan(&c);
    let expected = canonical(&execute_oracle(&phys).unwrap());
    for dop in [2u32, 4, 8] {
        let (expanded, map) = partition_plan_cfg(&phys, dop, &salt_off()).unwrap();
        let writers: Vec<_> = expanded
            .nodes
            .iter()
            .filter(|n| matches!(n.kind, PhysKind::ShuffleWrite { .. }))
            .map(|n| n.id)
            .collect();
        let readers: Vec<_> = expanded
            .nodes
            .iter()
            .filter(|n| matches!(n.kind, PhysKind::ShuffleRead { .. }))
            .map(|n| n.id)
            .collect();
        assert!(
            !writers.is_empty(),
            "no shuffle at dop {dop}:\n{}",
            expanded.display()
        );
        // Salting disabled: no writer carries a salt spec.
        assert!(expanded
            .nodes
            .iter()
            .all(|n| !matches!(&n.kind, PhysKind::ShuffleWrite { salt: Some(_), .. })));
        let ctx = ExecContext::new_partitioned(
            Arc::clone(&expanded),
            ExecOptions::default(),
            Arc::clone(&map),
        );
        let out = execute_ctx(ctx, Arc::new(NoopMonitor)).unwrap();
        // Neither lost nor duplicated: the multiset equals serial exactly.
        assert_eq!(canonical(&out.rows), expected, "dop {dop} diverged");

        // Conservation across the mesh: rows entering the writers equal
        // rows leaving the readers (no taps installed, so nothing may be
        // dropped in between).
        let rows_in: u64 = writers
            .iter()
            .map(|&w| out.metrics.per_op[w.index()].rows_in[0])
            .sum();
        let rows_out: u64 = readers
            .iter()
            .map(|&r| out.metrics.per_op[r.index()].rows_out)
            .sum();
        assert_eq!(rows_in, rows_out, "dop {dop}: mesh lost or duplicated rows");

        // The per-partition metric split sums to the serial total of the
        // shuffled stream (the fact ⋈ t2 join output).
        let serial_j1_rows = {
            let mut q = QueryBuilder::new(&c);
            let f = q.scan("fact", "f", &["fa", "fb", "v"]).unwrap();
            let g = q.scan("t2", "g", &["ga"]).unwrap();
            let j1 = q.join(f, g, &[("f.fa", "g.ga")]).unwrap();
            let p = lower(&j1.into_plan(), q.into_attrs(), &c).unwrap();
            execute_oracle(&p).unwrap().len() as u64
        };
        assert_eq!(
            rows_in, serial_j1_rows,
            "dop {dop}: per-partition counts do not sum to the serial total"
        );

        // The skew is real: at least one reader holds strictly more than
        // an even share (Zipf s=1.5 concentrates ~38% of rows on the hot
        // key), so the equality above exercised an unbalanced mesh.
        let max_reader = readers
            .iter()
            .map(|&r| out.metrics.per_op[r.index()].rows_out)
            .max()
            .unwrap();
        assert!(
            max_reader > rows_out / dop as u64,
            "dop {dop}: expected a skewed partition split, got a uniform one"
        );

        // Per-destination routed counts roll up into the partition report
        // and agree with the reader totals.
        let rollup = out.metrics.per_partition(&map);
        assert_eq!(rollup.len(), dop as usize);
        let routed_total: u64 = rollup.iter().map(|s| s.rows_routed_in).sum();
        assert!(
            routed_total >= rows_out,
            "dop {dop}: routed rollup {routed_total} misses mesh traffic {rows_out}"
        );
    }
}

/// Rows each reader of the salted (scatter-role) mesh emitted.
fn scatter_reader_rows(expanded: &PhysPlan, metrics: &sip_engine::ExecMetrics) -> Vec<u64> {
    let scatter_mesh = expanded
        .nodes
        .iter()
        .find_map(|n| match &n.kind {
            PhysKind::ShuffleWrite {
                mesh,
                salt: Some(s),
                ..
            } if s.role == SaltRole::Scatter => Some(*mesh),
            _ => None,
        })
        .expect("salted plan has a scatter mesh");
    expanded
        .nodes
        .iter()
        .filter_map(|n| match &n.kind {
            PhysKind::ShuffleRead { mesh, .. } if *mesh == scatter_mesh => {
                Some(metrics.per_op[n.id.index()].rows_out)
            }
            _ => None,
        })
        .collect()
}

/// The acceptance bar for the tentpole: with salting on (auto-detected
/// from the base-table stats — no forcing), the Zipf-1.5 mesh balances to
/// max/mean ≤ 1.5 where the unsalted mesh sits far above it, and the
/// result multiset still matches the serial oracle exactly.
#[test]
fn salting_balances_zipf_heavy_mesh() {
    let c = skewed_catalog();
    let phys = two_class_plan(&c);
    let expected = canonical(&execute_oracle(&phys).unwrap());
    let dop = 4u32;

    let imbalance = |cfg: &PartitionConfig| {
        let (expanded, map) = partition_plan_cfg(&phys, dop, cfg).unwrap();
        expanded.validate().unwrap();
        let ctx = ExecContext::new_partitioned(
            Arc::clone(&expanded),
            ExecOptions::default(),
            Arc::clone(&map),
        );
        let out = execute_ctx(ctx, Arc::new(NoopMonitor)).unwrap();
        assert_eq!(canonical(&out.rows), expected, "diverged from oracle");
        (expanded, map, out)
    };

    // Salting on (defaults): the hot key crosses the 0.5 threshold and the
    // plan salts the off-class join.
    let (salted_plan, _salted_map, salted_out) = imbalance(&PartitionConfig::default());
    let salted_writers = salted_plan
        .nodes
        .iter()
        .filter(|n| matches!(&n.kind, PhysKind::ShuffleWrite { salt: Some(_), .. }))
        .count();
    assert!(
        salted_writers > 0,
        "auto salting did not fire:\n{}",
        salted_plan.display()
    );
    let readers = scatter_reader_rows(&salted_plan, &salted_out.metrics);
    assert_eq!(readers.len(), dop as usize);
    let total: u64 = readers.iter().sum();
    let max = *readers.iter().max().unwrap() as f64;
    let mean = total as f64 / dop as f64;
    assert!(
        max / mean <= 1.5,
        "salted mesh still skewed: readers {readers:?} (max/mean {:.2})",
        max / mean
    );

    // Salting off: same workload, the hot key saturates one reader.
    let (off_plan, _off_map, off_out) = imbalance(&salt_off());
    let off_readers: Vec<u64> = off_plan
        .nodes
        .iter()
        .filter_map(|n| match &n.kind {
            PhysKind::ShuffleRead { .. } => Some(off_out.metrics.per_op[n.id.index()].rows_out),
            _ => None,
        })
        .collect();
    let off_total: u64 = off_readers.iter().sum();
    let off_max = *off_readers.iter().max().unwrap() as f64;
    let off_mean = off_total as f64 / off_readers.len() as f64;
    assert!(
        off_max / off_mean > 1.5,
        "unsalted mesh unexpectedly balanced: {off_readers:?}"
    );

    // The online sketch saw the hot key on at least one salted writer.
    let observed_hot: u64 = salted_out
        .metrics
        .per_op
        .iter()
        .map(|m| m.hot_keys_observed)
        .sum();
    assert!(
        observed_hot > 0,
        "runtime sketch observed no heavy hitter on a Zipf-1.5 stream"
    );
}

/// Admit-batch AIP parity with salting forced on: at dop ∈ {2, 4}, the
/// self-checking collectors at every stateful input of the salted plan
/// must see byte-identical batch-vs-row AIP sets and exactly equal
/// `aip_probed`/`aip_dropped` counters, and the result multiset must
/// equal the serial oracle.
#[test]
fn aip_parity_with_salting_forced() {
    let c = skewed_catalog();
    let (plan, attrs) = double_fb_spec(&c);
    let phys = Arc::new(lower(&plan, attrs, &c).unwrap());
    let expected = canonical(&execute_oracle(&phys).unwrap());
    for dop in [2u32, 4] {
        for batch in [64usize, 1024] {
            let (expanded, map) = partition_plan_cfg(&phys, dop, &salt_forced()).unwrap();
            assert!(
                expanded
                    .nodes
                    .iter()
                    .any(|n| matches!(&n.kind, PhysKind::ShuffleWrite { salt: Some(_), .. })),
                "forced salting produced no salted mesh at dop {dop}:\n{}",
                expanded.display()
            );
            let opts = ExecOptions::validated(batch, 2).unwrap();
            let ctx = ExecContext::new_partitioned(Arc::clone(&expanded), opts, map);
            let (outcome, installed) = sip_engine::testkit::install_admit_parity(&ctx, &expanded);
            assert!(installed >= 2, "dop {dop}: too few stateful inputs");
            let out = execute_ctx(Arc::clone(&ctx), Arc::new(NoopMonitor)).unwrap();
            assert_eq!(
                canonical(&out.rows),
                expected,
                "dop {dop} batch {batch}: salted plan diverged from the serial oracle"
            );
            let errs = outcome.errors.lock().unwrap();
            assert!(
                errs.is_empty(),
                "dop {dop} batch {batch}:\n{}",
                errs.join("\n")
            );
            assert_eq!(*outcome.finished.lock().unwrap(), installed);
        }
    }
}

/// Full differential with the AIP controllers live and salting forced:
/// FeedForward and CostBased inject partition-scoped filters from salted
/// streams (with many salted keys whose rows miss some partitions — the
/// delayed dimensions keep injection sites alive), and the result must
/// still match the serial oracle exactly. Without the scoped-filter
/// salted-key exemption this drops rows.
#[test]
fn controllers_preserve_salted_multisets() {
    let c = skewed_catalog();
    let (plan, attrs) = double_fb_spec(&c);
    let phys = Arc::new(lower(&plan, attrs.clone(), &c).unwrap());
    let expected = canonical(&execute_oracle(&phys).unwrap());
    let eq = PredicateIndex::build(&plan).eq;
    let slow_dim = DelayModel {
        initial: Duration::from_millis(120),
        every_n: 4,
        pause: Duration::from_millis(2),
    };
    for dop in [2u32, 4] {
        for controller in ["ff", "cb"] {
            let (expanded, map) = partition_plan_cfg(&phys, dop, &salt_forced()).unwrap();
            let mut opts = ExecOptions::validated(256, 4).unwrap();
            opts = opts
                .with_delay("t", slow_dim.clone())
                .with_delay("h", slow_dim.clone());
            let ctx = ExecContext::new_partitioned(Arc::clone(&expanded), opts, map);
            let monitor: Arc<dyn ExecMonitor> = match controller {
                "ff" => sip_core::FeedForward::new(eq.clone(), sip_core::AipConfig::paper()),
                _ => sip_core::CostBased::new(
                    eq.clone(),
                    sip_core::AipConfig::hash_sets(),
                    sip_optimizer::CostModel::default(),
                ),
            };
            let out = execute_ctx(ctx, monitor).unwrap();
            assert_eq!(
                canonical(&out.rows),
                expected,
                "{controller} dop {dop}: salted run with live controllers diverged"
            );
        }
    }
}
