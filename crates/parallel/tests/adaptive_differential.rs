//! Differential suite for stage-boundary adaptive execution.
//!
//! The workload is built so its skew is *invisible to base-table
//! statistics*: the fact table's `fb` column looks mildly skewed on its
//! own, but `fb` is correlated with the `flag` filter column — after
//! `flag = 1` the surviving stream is dominated by one `fb` key. No
//! per-column statistic predicts that; only measuring the stage-1 output
//! reveals it. The suite pins:
//!
//! * **oracle parity** across dop {1, 2, 4} × {frozen, adaptive} — the
//!   adaptive split, materialization, and re-planned stage 2 must change
//!   only physical routing, never the result multiset;
//! * the **decision trace**: the split point, the measured hot share the
//!   base tables could not see, and the re-chosen dop;
//! * the **dop clamp**: a collapsed stage-1 stream pulls stage 2 down to
//!   serial execution;
//! * the **stage-boundary feedback path**: a mesh's last writer hands the
//!   monitor a merged sketch + routed histogram mid-execution, and the
//!   cost-based controller folds it into `UPDATEESTIMATES`.

use sip_common::{DataType, Field, Row, Schema, SpaceSaving, Value};
use sip_data::{Catalog, Table};
use sip_engine::{
    canonical, execute_ctx, execute_oracle, lower, ExecContext, ExecMonitor, ExecOptions,
    NoopMonitor, PhysPlan, StageFeedback,
};
use sip_expr::Expr;
use sip_parallel::{partition_plan_cfg, AdaptiveConfig, AdaptiveExec, PartitionConfig};
use sip_plan::{PredicateIndex, QueryBuilder};
use std::sync::{Arc, Mutex};

const FACT_ROWS: usize = 3000;
const HOT_FB: i64 = 7;
const FA_KEYS: i64 = 120;
const FB_KEYS: i64 = 90;

/// fact(fa, fb, flag, v): `fa` uniform; rows with `flag = 1` (30%) carry
/// `fb = HOT_FB`, the rest spread `fb` uniformly. Per-column stats see a
/// modest 30% top key on `fb`; the *conditional* concentration (100% of
/// the filtered stream) is invisible until the stage-1 output is measured.
fn correlated_catalog() -> Catalog {
    let int = |n: &str| Field::new(n, DataType::Int);
    let mut facts = Vec::with_capacity(FACT_ROWS);
    for i in 0..FACT_ROWS as i64 {
        let flagged = i % 10 < 3;
        facts.push(Row::new(vec![
            Value::Int(i % FA_KEYS + 1),
            Value::Int(if flagged { HOT_FB } else { i % FB_KEYS + 1 }),
            Value::Int(i64::from(flagged)),
            Value::Int(i),
        ]));
    }
    let dim = |name: &str, col: &str, keys: i64| {
        Table::new(
            name,
            Schema::new(vec![Field::new(col, DataType::Int)]),
            vec![],
            vec![],
            (1..=keys).map(|k| Row::new(vec![Value::Int(k)])).collect(),
        )
        .unwrap()
    };
    let mut c = Catalog::new();
    c.add(
        Table::new(
            "fact",
            Schema::new(vec![int("fa"), int("fb"), int("flag"), int("v")]),
            vec![],
            vec![],
            facts,
        )
        .unwrap(),
    );
    c.add(dim("dim1", "da", FA_KEYS));
    c.add(dim("dim2", "db", FB_KEYS));
    c
}

/// σ(flag=1)(fact) ⋈ dim1 on fa — the stage-1 subtree — then ⋈ dim2 on
/// fb above it: two stacked stateful operators on different key classes,
/// so the adaptive split lands on the first join and the second join's
/// stream crosses a shuffle in the frozen plan.
fn two_stage_spec(c: &Catalog) -> (sip_plan::LogicalPlan, sip_plan::AttrCatalog) {
    let mut q = QueryBuilder::new(c);
    let f = q.scan("fact", "f", &["fa", "fb", "flag", "v"]).unwrap();
    let pred = f.col("flag").unwrap().eq(Expr::lit(1i64));
    let f = q.filter(f, pred);
    let d1 = q.scan("dim1", "d1", &["da"]).unwrap();
    let j1 = q.join(f, d1, &[("f.fa", "d1.da")]).unwrap();
    let d2 = q.scan("dim2", "d2", &["db"]).unwrap();
    let j2 = q.join(j1, d2, &[("f.fb", "d2.db")]).unwrap();
    (j2.into_plan(), q.into_attrs())
}

fn physical(c: &Catalog) -> (Arc<PhysPlan>, sip_plan::EqClasses) {
    let (plan, attrs) = two_stage_spec(c);
    let eq = PredicateIndex::build(&plan).eq;
    (Arc::new(lower(&plan, attrs, c).unwrap()), eq)
}

#[test]
fn adaptive_matches_oracle_across_dop_and_mode() {
    let c = correlated_catalog();
    let (phys, _eq) = physical(&c);
    let expected = canonical(&execute_oracle(&phys).unwrap());
    assert!(!expected.is_empty(), "workload produced no rows");
    for dop in [1u32, 2, 4] {
        // Frozen: the plan as partitioned up front.
        let frozen = sip_parallel::PartitionedExec::new(dop);
        let (out, _) = frozen
            .execute(
                Arc::clone(&phys),
                Arc::new(NoopMonitor),
                ExecOptions::default(),
            )
            .unwrap();
        assert_eq!(canonical(&out.rows), expected, "frozen dop {dop}");
        // Adaptive: split, measure, re-plan.
        let exec = AdaptiveExec::new(dop);
        let (out, _, report) = exec
            .execute(
                Arc::clone(&phys),
                Arc::new(NoopMonitor),
                ExecOptions::default(),
            )
            .unwrap();
        assert_eq!(canonical(&out.rows), expected, "adaptive dop {dop}");
        assert!(report.adapted, "dop {dop}: no split on a two-join plan");
        assert!(report.stage1_rows > 0, "dop {dop}: empty stage 1");
    }
}

#[test]
fn decision_trace_reports_measured_skew() {
    let c = correlated_catalog();
    let (phys, _eq) = physical(&c);
    let exec = AdaptiveExec::new(4);
    let (_, _, report) = exec
        .execute(phys, Arc::new(NoopMonitor), ExecOptions::default())
        .unwrap();
    assert!(report.adapted);
    let trace = report.decisions.join("\n");
    assert!(trace.contains("split at"), "{trace}");
    assert!(trace.contains("materialized as __stage1"), "{trace}");
    // Every surviving row carries fb = HOT_FB: the measured hot share is
    // total, while the base table's fb column showed only ~30%.
    assert!(
        report.hot_share > 0.9,
        "measured hot share {} should expose the correlation ({trace})",
        report.hot_share
    );
}

#[test]
fn measured_cardinality_clamps_stage2_dop() {
    let c = correlated_catalog();
    let (phys, _eq) = physical(&c);
    let expected = canonical(&execute_oracle(&phys).unwrap());
    // Floor above the stage-1 cardinality: stage 2 must run serial.
    let cfg = AdaptiveConfig {
        min_rows_per_partition: 10_000_000,
        partition: PartitionConfig::default(),
    };
    let exec = AdaptiveExec::with_config(4, cfg);
    let (out, map, report) = exec
        .execute(
            Arc::clone(&phys),
            Arc::new(NoopMonitor),
            ExecOptions::default(),
        )
        .unwrap();
    assert_eq!(canonical(&out.rows), expected);
    assert_eq!(report.requested_dop, 4);
    assert_eq!(report.stage2_dop, 1, "{:?}", report.decisions);
    assert!(map.is_none(), "stage 2 at dop 1 runs serial");
    // Permissive floor: the measured cardinality sustains the full dop.
    let exec = AdaptiveExec::with_config(
        4,
        AdaptiveConfig {
            min_rows_per_partition: 1,
            partition: PartitionConfig::default(),
        },
    );
    let (out, _, report) = exec
        .execute(phys, Arc::new(NoopMonitor), ExecOptions::default())
        .unwrap();
    assert_eq!(canonical(&out.rows), expected);
    assert_eq!(report.stage2_dop, 4, "{:?}", report.decisions);
}

/// One stage-boundary snapshot: (op, dop, rows, sketch, decision count).
type BoundarySnapshot = (u32, u32, u64, Option<SpaceSaving>, usize);

/// Captures every stage-boundary snapshot the engine hands out.
#[derive(Default)]
struct BoundaryProbe {
    seen: Mutex<Vec<BoundarySnapshot>>,
}

impl ExecMonitor for BoundaryProbe {
    fn on_stage_boundary(&self, _ctx: &Arc<ExecContext>, fb: &StageFeedback) {
        self.seen.lock().unwrap().push((
            fb.mesh,
            fb.writers,
            fb.rows_total(),
            fb.sketch.clone(),
            fb.op_rows.len(),
        ));
    }
}

#[test]
fn stage_boundary_fires_once_per_mesh_with_merged_sketch() {
    let c = correlated_catalog();
    let (phys, _eq) = physical(&c);
    let dop = 4u32;
    let (expanded, map) = partition_plan_cfg(&phys, dop, &PartitionConfig::default()).unwrap();
    let meshes: std::collections::BTreeSet<u32> = expanded
        .nodes
        .iter()
        .filter_map(|n| match n.kind {
            sip_engine::PhysKind::ShuffleWrite { mesh, .. } => Some(mesh),
            _ => None,
        })
        .collect();
    assert!(!meshes.is_empty(), "plan has no shuffle mesh to observe");
    let probe = Arc::new(BoundaryProbe::default());
    let ctx = ExecContext::new_partitioned(expanded, ExecOptions::default(), map);
    execute_ctx(ctx, Arc::clone(&probe) as Arc<dyn ExecMonitor>).unwrap();
    let seen = probe.seen.lock().unwrap();
    // Exactly one boundary per mesh (the last writer's countdown), each
    // carrying the merged per-writer sketch and a live-op snapshot.
    assert_eq!(
        seen.iter()
            .map(|s| s.0)
            .collect::<std::collections::BTreeSet<_>>(),
        meshes,
        "each mesh reports exactly one boundary"
    );
    assert_eq!(seen.len(), meshes.len());
    for (mesh, writers, rows, sketch, n_ops) in seen.iter() {
        assert!(*writers >= 1, "mesh {mesh}");
        let sketch = sketch.as_ref().expect("boundary sketch present");
        assert!(sketch.total() > 0, "mesh {mesh}: empty merged sketch");
        assert!(*rows > 0, "mesh {mesh}: no rows routed");
        assert_eq!(*n_ops, ctx_ops_len(), "mesh {mesh}: partial op snapshot");
    }

    // The cost-based controller consumes the same feedback: its decision
    // log must carry one UPDATEESTIMATES line per mesh.
    let (expanded, map) = partition_plan_cfg(&phys, dop, &PartitionConfig::default()).unwrap();
    let eq = physical(&c).1;
    let cb = sip_core::CostBased::new(
        eq,
        sip_core::AipConfig::hash_sets(),
        sip_optimizer::CostModel::default(),
    );
    let ctx = ExecContext::new_partitioned(expanded, ExecOptions::default(), map);
    execute_ctx(ctx, Arc::clone(&cb) as Arc<dyn ExecMonitor>).unwrap();
    let stage_lines = cb
        .decisions()
        .into_iter()
        .filter(|l| l.starts_with("stage mesh"))
        .count();
    assert_eq!(stage_lines, meshes.len(), "{:?}", cb.decisions());
}

/// The op-snapshot length the probe should see: every operator of the
/// expanded plan (the snapshot spans the whole plan, not just the mesh).
fn ctx_ops_len() -> usize {
    let c = correlated_catalog();
    let (phys, _eq) = physical(&c);
    let (expanded, _map) = partition_plan_cfg(&phys, 4, &PartitionConfig::default()).unwrap();
    expanded.nodes.len()
}

#[test]
fn adaptive_with_cost_based_controller_matches_oracle() {
    let c = correlated_catalog();
    let (phys, eq) = physical(&c);
    let expected = canonical(&execute_oracle(&phys).unwrap());
    for dop in [2u32, 4] {
        let cb = sip_core::CostBased::new(
            eq.clone(),
            sip_core::AipConfig::hash_sets(),
            sip_optimizer::CostModel::default(),
        );
        let exec = AdaptiveExec::new(dop);
        let (out, _, report) = exec
            .execute(
                Arc::clone(&phys),
                Arc::clone(&cb) as Arc<dyn ExecMonitor>,
                ExecOptions::default(),
            )
            .unwrap();
        assert_eq!(canonical(&out.rows), expected, "cb dop {dop}");
        assert!(report.adapted);
    }
}
