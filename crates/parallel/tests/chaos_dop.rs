//! Chaos differential sweep for the parallel executor: injected faults ×
//! dop {1, 2, 4} × routing variant (plain hash, salting forced, adaptive
//! re-planning).
//!
//! The invariant under every combination: a run returns either a result
//! **byte-identical to the serial oracle** or a **clean attributed
//! execution error** carrying the injected failure class — never a
//! partial `Ok`. A fault targeting an operator kind absent from the
//! executed plan must be a perfect no-op (the run still matches the
//! oracle), and a fault targeting a kind that is present must actually
//! fire at every dop.

use sip_common::{ExecFailure, SipError};
use sip_core::{run_query_dop, AipConfig, Strategy};
use sip_data::{generate, TpchConfig};
use sip_engine::{
    canonical, execute_ctx, execute_oracle, ExecContext, ExecOptions, FaultKind, FaultPlan,
    NoopMonitor, PhysKind,
};
use sip_parallel::{partition_plan_cfg, AdaptiveExec, PartitionConfig, SaltConfig};
use sip_queries::build_query;
use std::sync::Arc;

fn catalog() -> sip_data::Catalog {
    generate(&TpchConfig {
        scale_factor: 0.004,
        seed: 0x5EED,
        zipf_z: 0.5,
    })
    .unwrap()
}

/// Force salting through the cost gate so the sweep exercises salted
/// scatter meshes regardless of measured skew.
fn salt_forced() -> PartitionConfig {
    PartitionConfig {
        salt: SaltConfig {
            enabled: true,
            hot_factor: 0.0005,
            max_hot_keys: 256,
            replicate_coverage: 1.1,
            force: true,
        },
        ..PartitionConfig::default()
    }
}

/// One fault scenario of the sweep: a plan-wide kind-targeted fault (or
/// none) and whether it must fire on the plans this suite runs.
struct Scenario {
    label: &'static str,
    faults: FaultPlan,
    /// `Some(class)` = the targeted kind is present in every executed
    /// plan, so the run must fail with exactly this class.
    must_fail: Option<ExecFailure>,
}

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            label: "fault-free",
            faults: FaultPlan::none(),
            must_fail: None,
        },
        Scenario {
            label: "panic@HashJoin",
            faults: FaultPlan::none().with_kind_fault("HashJoin", 1, FaultKind::Panic),
            must_fail: Some(ExecFailure::Panic),
        },
        Scenario {
            label: "error@Scan",
            faults: FaultPlan::none().with_kind_fault("Scan", 1, FaultKind::Error),
            must_fail: Some(ExecFailure::Error),
        },
        Scenario {
            label: "panic@SemiJoin (absent kind: no-op)",
            faults: FaultPlan::none().with_kind_fault("SemiJoin", 0, FaultKind::Panic),
            must_fail: None,
        },
    ]
}

/// The chaos invariant: byte-identical to the oracle, or a clean
/// attributed execution error of the injected class — never partial Ok.
fn check_outcome(
    label: &str,
    expected: &[String],
    result: Result<Vec<sip_common::Row>, SipError>,
    must_fail: Option<ExecFailure>,
) {
    match result {
        Ok(rows) => {
            assert!(
                must_fail.is_none(),
                "{label}: fault on a present kind must fail, got Ok with {} rows",
                rows.len()
            );
            assert_eq!(canonical(&rows), expected, "{label}: partial or wrong Ok");
        }
        Err(e) => {
            assert_eq!(e.layer(), "exec", "{label}: unexpected layer for {e}");
            let class = e
                .exec_class()
                .unwrap_or_else(|| panic!("{label}: execution error without a failure class: {e}"));
            match must_fail {
                Some(expected_class) => assert_eq!(
                    class, expected_class,
                    "{label}: wrong root cause surfaced: {e}"
                ),
                // A fault-free (or no-op-fault) run may never fail.
                None => panic!("{label}: spurious failure: {e}"),
            }
            assert!(e.is_primary(), "{label}: symptom won over root cause: {e}");
        }
    }
}

/// Full query path (`run_query_dop`, plain hash routing) under the
/// scenario sweep at dop {1, 2, 4}.
#[test]
fn faults_across_dop_never_yield_partial_ok() {
    let catalog = catalog();
    let spec = build_query("EX", &catalog).unwrap();
    let phys = spec.lower(&catalog, Strategy::Baseline).unwrap();
    let expected = canonical(&execute_oracle(&phys).unwrap());
    for dop in [1u32, 2, 4] {
        for s in scenarios() {
            let opts = ExecOptions::default().with_faults(s.faults.clone());
            let result = run_query_dop(
                &spec,
                &catalog,
                Strategy::FeedForward,
                opts,
                &AipConfig::paper(),
                dop,
            )
            .map(|(out, _)| out.rows);
            check_outcome(
                &format!("EX dop {dop} {}", s.label),
                &expected,
                result,
                s.must_fail,
            );
        }
    }
}

/// Salting forced on: the scenario sweep through salted scatter meshes,
/// plus a mesh-specific fault (`ShuffleWrite`) that must fire whenever
/// the expanded plan contains a mesh.
#[test]
fn faults_with_salting_forced_never_yield_partial_ok() {
    let catalog = catalog();
    let spec = build_query("Q4A", &catalog).unwrap();
    let phys = Arc::new(spec.lower(&catalog, Strategy::Baseline).unwrap());
    let expected = canonical(&execute_oracle(&phys).unwrap());
    let cfg = salt_forced();
    for dop in [2u32, 4] {
        let (expanded, map) = partition_plan_cfg(&phys, dop, &cfg).unwrap();
        let has_mesh = expanded
            .nodes
            .iter()
            .any(|n| matches!(n.kind, PhysKind::ShuffleWrite { .. }));
        assert!(has_mesh, "Q4A dop {dop}: expanded without a shuffle mesh");
        let mut sweep = scenarios();
        sweep.push(Scenario {
            label: "error@ShuffleWrite",
            faults: FaultPlan::none().with_kind_fault("ShuffleWrite", 1, FaultKind::Error),
            must_fail: Some(ExecFailure::Error),
        });
        for s in sweep {
            let opts = ExecOptions::default().with_faults(s.faults.clone());
            let ctx = ExecContext::new_partitioned(Arc::clone(&expanded), opts, Arc::clone(&map));
            let result = execute_ctx(ctx, Arc::new(NoopMonitor)).map(|out| out.rows);
            check_outcome(
                &format!("Q4A salted dop {dop} {}", s.label),
                &expected,
                result,
                s.must_fail,
            );
        }
    }
}

/// Adaptive (stage-split, measure, re-plan) execution under the scenario
/// sweep: faults fire inside stage 1 or the re-planned stage 2 and must
/// surface identically; fault-free adaptive runs stay byte-identical.
#[test]
fn faults_under_adaptive_execution_never_yield_partial_ok() {
    let catalog = catalog();
    let spec = build_query("EX", &catalog).unwrap();
    let phys = Arc::new(spec.lower(&catalog, Strategy::Baseline).unwrap());
    let expected = canonical(&execute_oracle(&phys).unwrap());
    for dop in [1u32, 2, 4] {
        for s in scenarios() {
            let opts = ExecOptions::default().with_faults(s.faults.clone());
            let exec = AdaptiveExec::new(dop);
            let result = exec
                .execute(Arc::clone(&phys), Arc::new(NoopMonitor), opts)
                .map(|(out, _, _)| out.rows);
            check_outcome(
                &format!("EX adaptive dop {dop} {}", s.label),
                &expected,
                result,
                s.must_fail,
            );
        }
    }
}
