//! Chaos suite for the recovery layer: partition-fragment replay at the
//! shuffle mesh, whole-run retry, stage-checkpoint recovery, and
//! straggler speculation.
//!
//! The recovery contract sharpens PR 9's fail-fast invariant: a
//! retryable failure *below* the configured budget must yield a result
//! **byte-identical to the serial oracle** with `recovered: true` and
//! accurate attempt counts; a failure *above* the budget must yield a
//! clean attributed error naming the exhausted `RetryPolicy`. Never a
//! partial `Ok`, never duplicate rows — replayed fragments commit at
//! the mesh seam exactly once.

use sip_common::retry::{is_exhausted, RetryPolicy};
use sip_common::{ExecFailure, OpId, Row, Value};
use sip_core::{run_query_dop, AipConfig, Strategy};
use sip_data::{generate, Catalog, Table, TpchConfig};
use sip_engine::{
    canonical, execute_ctx, execute_oracle, lower, ExecContext, ExecOptions, FaultKind, FaultPlan,
    NoopMonitor, PhysKind, PhysPlan,
};
use sip_parallel::{partition_plan_cfg, AdaptiveExec, PartitionConfig, SaltConfig};
use sip_queries::build_query;
use std::sync::Arc;
use std::time::Duration;

fn catalog() -> Catalog {
    generate(&TpchConfig {
        scale_factor: 0.004,
        seed: 0x5EED,
        zipf_z: 0.5,
    })
    .unwrap()
}

fn salt_forced() -> PartitionConfig {
    PartitionConfig {
        salt: SaltConfig {
            enabled: true,
            hot_factor: 0.0005,
            max_hot_keys: 256,
            replicate_coverage: 1.1,
            force: true,
        },
        ..PartitionConfig::default()
    }
}

/// A retry policy fast enough for tests.
fn test_retry(attempts: u32) -> RetryPolicy {
    RetryPolicy {
        base_backoff: Duration::from_micros(200),
        ..RetryPolicy::with_attempts(attempts)
    }
}

/// A scan at the bottom of a replayable fragment (a single-consumer
/// `Scan → (Filter|Project)*` chain under a `ShuffleWrite`), if the
/// expanded plan has one. Mirrors the engine's fragment detection so the
/// tests can aim faults at exactly the ops the supervisor replays.
fn fragment_scan_op(plan: &PhysPlan) -> Option<OpId> {
    let mut consumers = vec![0u32; plan.nodes.len()];
    for n in &plan.nodes {
        for c in &n.inputs {
            consumers[c.index()] += 1;
        }
    }
    for n in &plan.nodes {
        if !matches!(n.kind, PhysKind::ShuffleWrite { .. }) {
            continue;
        }
        let mut cur = n.inputs[0];
        loop {
            if consumers[cur.index()] != 1 || plan.root == cur {
                break;
            }
            match &plan.node(cur).kind {
                PhysKind::Filter { .. } | PhysKind::Project { .. } => {
                    cur = plan.node(cur).inputs[0]
                }
                PhysKind::Scan { .. } => return Some(cur),
                _ => break,
            }
        }
    }
    None
}

/// Fragment replay in-place: a bounded fault on a mesh source chain is
/// healed by re-executing just that fragment — no whole-run retry
/// (`attempts` stays 1), exactly-once seam commit, byte-identical rows.
#[test]
fn fragment_replay_heals_mesh_source_faults_in_place() {
    let catalog = catalog();
    let spec = build_query("Q4A", &catalog).unwrap();
    let phys = Arc::new(spec.lower(&catalog, Strategy::Baseline).unwrap());
    let expected = canonical(&execute_oracle(&phys).unwrap());
    let cfg = salt_forced();
    for dop in [2u32, 4] {
        let (expanded, map) = partition_plan_cfg(&phys, dop, &cfg).unwrap();
        let scan = fragment_scan_op(&expanded)
            .unwrap_or_else(|| panic!("dop {dop}: expanded plan has no replayable fragment"));
        for fault in [FaultKind::Panic, FaultKind::Error] {
            let opts = ExecOptions::default()
                .with_faults(FaultPlan::none().with_op_fault_times(scan.0, 0, fault.clone(), 1))
                .with_retry(test_retry(3));
            let ctx = ExecContext::new_partitioned(Arc::clone(&expanded), opts, Arc::clone(&map));
            let out = execute_ctx(ctx, Arc::new(NoopMonitor))
                .unwrap_or_else(|e| panic!("dop {dop} {fault:?}@op{scan}: must recover, got {e}"));
            assert_eq!(
                canonical(&out.rows),
                expected,
                "dop {dop} {fault:?}@op{scan}: replayed fragment diverged (duplicate or lost rows)"
            );
            assert!(out.metrics.recovered, "dop {dop} {fault:?}: recovered flag");
            assert_eq!(
                out.metrics.attempts, 1,
                "dop {dop} {fault:?}: fragment replay must not count as a whole-run attempt"
            );
            let m = &out.metrics.per_op[scan.index()];
            assert!(
                m.retries > 0,
                "dop {dop} {fault:?}: faulted fragment op must report its retry"
            );
        }
    }
}

/// Above the fragment budget: a clean attributed error naming the
/// exhausted `RetryPolicy` — never a partial `Ok`.
#[test]
fn fragment_budget_exhaustion_is_clean_and_attributed() {
    let catalog = catalog();
    let spec = build_query("Q4A", &catalog).unwrap();
    let phys = Arc::new(spec.lower(&catalog, Strategy::Baseline).unwrap());
    let (expanded, map) = partition_plan_cfg(&phys, 4, &salt_forced()).unwrap();
    let scan = fragment_scan_op(&expanded).unwrap();
    // Unlimited fault: every fragment attempt dies; budget of two.
    let opts = ExecOptions::default()
        .with_faults(FaultPlan::none().with_op_fault(scan.0, 0, FaultKind::Error))
        .with_retry(test_retry(2));
    let ctx = ExecContext::new_partitioned(expanded, opts, map);
    let err = execute_ctx(ctx, Arc::new(NoopMonitor)).unwrap_err();
    assert_eq!(err.layer(), "exec", "wrong layer: {err}");
    assert_eq!(err.exec_class(), Some(ExecFailure::Error));
    assert!(err.is_primary(), "symptom won over root cause: {err}");
    assert!(
        is_exhausted(&err),
        "must carry the exhaustion marker: {err}"
    );
    assert!(
        err.to_string()
            .contains("RetryPolicy exhausted after 2/2 attempts"),
        "must name the spent budget: {err}"
    );
}

/// Straggler speculation: a fragment stalled past the quantum gets a
/// speculative duplicate; the first finisher commits at the seam gate,
/// exactly once.
#[test]
fn straggler_speculation_first_finisher_wins() {
    let catalog = catalog();
    let spec = build_query("Q4A", &catalog).unwrap();
    let phys = Arc::new(spec.lower(&catalog, Strategy::Baseline).unwrap());
    let expected = canonical(&execute_oracle(&phys).unwrap());
    let (expanded, map) = partition_plan_cfg(&phys, 4, &salt_forced()).unwrap();
    let scan = fragment_scan_op(&expanded).unwrap();
    for stall in [
        FaultKind::Stall(Duration::from_secs(5)),
        FaultKind::Hang, // sleeps until cancelled: only speculation gets past it
    ] {
        let opts = ExecOptions::default()
            .with_faults(FaultPlan::none().with_op_fault_times(scan.0, 0, stall.clone(), 1))
            .with_retry(test_retry(2).with_speculation(Duration::from_millis(25)));
        let ctx = ExecContext::new_partitioned(Arc::clone(&expanded), opts, Arc::clone(&map));
        let start = std::time::Instant::now();
        let out = execute_ctx(ctx, Arc::new(NoopMonitor))
            .unwrap_or_else(|e| panic!("{stall:?}: speculation must rescue the run, got {e}"));
        let elapsed = start.elapsed();
        assert_eq!(
            canonical(&out.rows),
            expected,
            "{stall:?}: speculative duplicate double-committed or lost rows"
        );
        assert!(out.metrics.recovered, "{stall:?}: recovered flag");
        let m = &out.metrics.per_op[scan.index()];
        assert!(
            m.speculated > 0,
            "{stall:?}: stalled fragment op must report the speculation"
        );
        assert!(
            elapsed < Duration::from_secs(4),
            "{stall:?}: the speculative duplicate must win long before the stall \
             ends, took {elapsed:?}"
        );
    }
}

/// The full-path sweep: bounded faults at every present kind × dop
/// {1, 2, 4}, all healed below budget into byte-identical results with
/// accurate attempt counts.
#[test]
fn bounded_faults_across_dop_heal_byte_identically() {
    let catalog = catalog();
    let spec = build_query("EX", &catalog).unwrap();
    let phys = spec.lower(&catalog, Strategy::Baseline).unwrap();
    let expected = canonical(&execute_oracle(&phys).unwrap());
    for dop in [1u32, 2, 4] {
        for (kind_name, fault) in [
            ("Scan", FaultKind::Panic),
            ("HashJoin", FaultKind::Error),
            ("Aggregate", FaultKind::Panic),
        ] {
            let opts = ExecOptions::default()
                .with_faults(FaultPlan::none().with_kind_fault_times(kind_name, 1, fault, 1))
                .with_retry(test_retry(3));
            let (out, _) = run_query_dop(
                &spec,
                &catalog,
                Strategy::FeedForward,
                opts,
                &AipConfig::paper(),
                dop,
            )
            .unwrap_or_else(|e| panic!("EX dop {dop} {kind_name}: must heal, got {e}"));
            assert_eq!(
                canonical(&out.rows),
                expected,
                "EX dop {dop} {kind_name}: recovered run diverged"
            );
            assert!(out.metrics.recovered, "EX dop {dop} {kind_name}: flag");
        }
    }
}

/// Stage-checkpoint recovery: a fault that fires only in stage 2 of an
/// adaptive run is retried from the materialized `__stage1` table —
/// stage 1 runs exactly once.
#[test]
fn adaptive_stage2_retries_from_the_stage1_checkpoint() {
    use sip_common::{DataType, Field, Schema};
    use sip_expr::AggFunc;
    use sip_plan::QueryBuilder;
    // join (stateful) under aggregate (stateful): the split lands at the
    // join, so the Aggregate exists only in stage 2.
    let schema = Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("v", DataType::Int),
    ]);
    let rows: Vec<Row> = (0..4000)
        .map(|i| Row::new(vec![Value::Int(i % 31), Value::Int(i)]))
        .collect();
    let mut c = Catalog::new();
    c.add(Table::new("t", schema.clone(), vec![], vec![], rows.clone()).unwrap());
    c.add(Table::new("u", schema, vec![], vec![], rows).unwrap());
    let mut q = QueryBuilder::new(&c);
    let t = q.scan("t", "t", &["k", "v"]).unwrap();
    let u = q.scan("u", "u", &["k", "v"]).unwrap();
    let j = q.join(t, u, &[("t.k", "u.k")]).unwrap();
    let agg = {
        let v = j.col("t.v").unwrap();
        q.aggregate(j, &["t.k"], &[(AggFunc::Sum, v, "s")]).unwrap()
    };
    let phys = Arc::new(lower(agg.plan(), q.attrs().clone(), &c).unwrap());
    let expected = canonical(&execute_oracle(&phys).unwrap());

    let opts = ExecOptions::default()
        .with_faults(FaultPlan::none().with_kind_fault_times("Aggregate", 1, FaultKind::Error, 1))
        .with_retry(test_retry(3));
    let exec = AdaptiveExec::new(4);
    let (out, _, report) = exec
        .execute(Arc::clone(&phys), Arc::new(NoopMonitor), opts)
        .unwrap();
    assert!(report.adapted, "plan must split for checkpoint recovery");
    assert_eq!(
        canonical(&out.rows),
        expected,
        "recovered adaptive run diverged"
    );
    assert!(out.metrics.recovered);
    assert_eq!(
        report.stage1_attempts, 1,
        "stage 1 must run exactly once: {:?}",
        report.decisions
    );
    assert_eq!(
        report.stage2_attempts, 2,
        "stage 2 must retry from the checkpoint: {:?}",
        report.decisions
    );
    assert!(
        report
            .decisions
            .iter()
            .any(|d| d.contains("__stage1 checkpoint")),
        "decision trace must record the checkpoint recovery: {:?}",
        report.decisions
    );
    assert_eq!(
        out.metrics.attempts, 2,
        "deepest stage retry depth surfaces"
    );
}

/// Count this process's live threads via /proc (Linux-only).
#[cfg(target_os = "linux")]
fn thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").unwrap();
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .unwrap()
}

/// Recovery must reap every thread of every attempt: healed runs,
/// exhausted runs, and speculative losers alike.
#[cfg(target_os = "linux")]
#[test]
fn recovery_paths_leak_no_threads() {
    let catalog = catalog();
    let spec = build_query("Q4A", &catalog).unwrap();
    let phys = Arc::new(spec.lower(&catalog, Strategy::Baseline).unwrap());
    let (expanded, map) = partition_plan_cfg(&phys, 4, &salt_forced()).unwrap();
    let scan = fragment_scan_op(&expanded).unwrap();
    // Warm up so lazily-spawned runtime threads don't count as leaks.
    {
        let ctx = ExecContext::new_partitioned(
            Arc::clone(&expanded),
            ExecOptions::default(),
            Arc::clone(&map),
        );
        let _ = execute_ctx(ctx, Arc::new(NoopMonitor));
    }
    let before = thread_count();
    let cases: Vec<(ExecOptions, bool)> = vec![
        // Healed fragment replay.
        (
            ExecOptions::default()
                .with_faults(FaultPlan::none().with_op_fault_times(scan.0, 0, FaultKind::Panic, 1))
                .with_retry(test_retry(3)),
            true,
        ),
        // Exhausted budget.
        (
            ExecOptions::default()
                .with_faults(FaultPlan::none().with_op_fault(scan.0, 0, FaultKind::Error))
                .with_retry(test_retry(2)),
            false,
        ),
        // Speculation over a hung loser.
        (
            ExecOptions::default()
                .with_faults(FaultPlan::none().with_op_fault_times(scan.0, 0, FaultKind::Hang, 1))
                .with_retry(test_retry(2).with_speculation(Duration::from_millis(25))),
            true,
        ),
    ];
    for (opts, must_succeed) in cases {
        let ctx = ExecContext::new_partitioned(Arc::clone(&expanded), opts, Arc::clone(&map));
        let result = execute_ctx(ctx, Arc::new(NoopMonitor));
        assert_eq!(
            result.is_ok(),
            must_succeed,
            "unexpected outcome: {result:?}"
        );
    }
    let after = thread_count();
    assert_eq!(
        before, after,
        "recovery must join every attempt's threads (including speculative losers)"
    );
}
