//! Property tests for the shuffle mesh: randomized mini-plans whose join
//! keys fall in *random* attribute classes (so alignment, one-sided
//! shuffles, and double shuffles all occur), executed at random dops —
//! row-multiset equality against the serial oracle, plus a capacity-1
//! stress mode proving no shuffle edge deadlocks when every channel in the
//! mesh holds a single batch.

use proptest::prelude::*;
use sip_common::{DataType, Field, Row, Schema, Value};
use sip_data::{Catalog, Table};
use sip_engine::{
    canonical, execute_ctx, execute_oracle, lower, ExecContext, ExecOptions, NoopMonitor, PhysKind,
    PhysPlan,
};
use sip_expr::AggFunc;
use sip_parallel::{partition_plan_cfg, PartitionConfig};
use sip_plan::QueryBuilder;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Abort the whole process if a case wedges: a deadlocked mesh would
/// otherwise hang the suite silently instead of failing it.
fn with_watchdog<T>(f: impl FnOnce() -> T) -> T {
    let done = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&done);
    std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_secs(300));
        if !flag.load(Ordering::SeqCst) {
            eprintln!("prop_shuffle: execution wedged (shuffle deadlock?) — aborting");
            std::process::abort();
        }
    });
    let out = f();
    done.store(true, Ordering::SeqCst);
    out
}

fn mini_catalog(facts: &[(i64, i64, i64)], bs: &[(i64, i64)], cs: &[i64]) -> Catalog {
    let mut c = Catalog::new();
    let int = |n: &str| Field::new(n, DataType::Int);
    c.add(
        Table::new(
            "fact",
            Schema::new(vec![int("f1"), int("f2"), int("v")]),
            vec![],
            vec![],
            facts
                .iter()
                .map(|&(a, b, v)| Row::new(vec![Value::Int(a), Value::Int(b), Value::Int(v)]))
                .collect(),
        )
        .unwrap(),
    );
    c.add(
        Table::new(
            "dimb",
            Schema::new(vec![int("b1"), int("b2")]),
            vec![],
            vec![],
            bs.iter()
                .map(|&(a, b)| Row::new(vec![Value::Int(a), Value::Int(b)]))
                .collect(),
        )
        .unwrap(),
    );
    c.add(
        Table::new(
            "dimc",
            Schema::new(vec![int("c1")]),
            vec![],
            vec![],
            cs.iter().map(|&a| Row::new(vec![Value::Int(a)])).collect(),
        )
        .unwrap(),
    );
    c
}

/// fact ⋈ dimb ⋈ dimc with randomly drawn key columns, optionally topped
/// by a grouped SUM. The second join's key is drawn from all four
/// first-join columns, so its class may or may not align with either
/// side's partitioning — exercising co-located joins, one-sided shuffles,
/// and (when neither aligns) double shuffles.
fn mini_plan(c: &Catalog, fk: usize, bk: usize, gk: usize, agg: bool) -> PhysPlan {
    let mut q = QueryBuilder::new(c);
    let f = q.scan("fact", "f", &["f1", "f2", "v"]).unwrap();
    let b = q.scan("dimb", "b", &["b1", "b2"]).unwrap();
    let fk_name = ["f.f1", "f.f2"][fk];
    let bk_name = ["b.b1", "b.b2"][bk];
    let j1 = q.join(f, b, &[(fk_name, bk_name)]).unwrap();
    let gk_name = ["f.f1", "f.f2", "b.b1", "b.b2"][gk];
    let cc = q.scan("dimc", "c", &["c1"]).unwrap();
    let j2 = q.join(j1, cc, &[(gk_name, "c.c1")]).unwrap();
    let plan = if agg {
        let v = j2.col("v").unwrap();
        q.aggregate(j2, &[gk_name], &[(AggFunc::Sum, v, "total")])
            .unwrap()
            .into_plan()
    } else {
        j2.into_plan()
    };
    lower(&plan, q.into_attrs(), c).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Multiset equality vs. the serial oracle for random key classes,
    /// random dops, and a capacity-1 backpressure window on every channel
    /// (mesh edges included): completion at all is the no-deadlock proof,
    /// backed by the process-level watchdog.
    #[test]
    fn random_key_classes_match_oracle_under_capacity_one(
        facts in prop::collection::vec((0i64..12, 0i64..12, -20i64..20), 1..160),
        bs in prop::collection::vec((0i64..12, 0i64..12), 1..48),
        cs in prop::collection::vec(0i64..12, 1..24),
        fk in 0usize..2,
        bk in 0usize..2,
        gk in 0usize..4,
        aggflag in 0usize..2,
        dop in 2u32..8,
        batch in 1usize..32,
    ) {
        with_watchdog(|| {
            let catalog = mini_catalog(&facts, &bs, &cs);
            let phys = mini_plan(&catalog, fk, bk, gk, aggflag == 1);
            let expected = canonical(&execute_oracle(&phys).unwrap());
            let cfg = PartitionConfig::default();
            let (expanded, map) = match partition_plan_cfg(&phys, dop, &cfg) {
                Ok(x) => x,
                // Degenerate shapes (no partitionable scan) fall back to
                // serial — nothing to stress.
                Err(_) => return,
            };
            prop_assert_eq!(
                canonical(&execute_oracle(&expanded).unwrap()),
                expected.clone(),
                "oracle(expanded) diverged\n{}",
                expanded.display()
            );
            let options = ExecOptions {
                batch_size: batch,
                channel_capacity: 1, // stress: one batch per edge
                ..Default::default()
            };
            let ctx = ExecContext::new_partitioned(Arc::clone(&expanded), options, map);
            let out = execute_ctx(ctx, Arc::new(NoopMonitor)).unwrap();
            prop_assert_eq!(
                canonical(&out.rows),
                expected,
                "threaded run diverged (dop {}, batch {})\n{}",
                dop,
                batch,
                expanded.display()
            );
        });
    }

    /// Misaligned second-join keys must produce an actual shuffle mesh (not
    /// a serial fallback) whenever the first join partitions both sides —
    /// pinning the tentpole behaviour so a regression back to
    /// merge-then-serial fails loudly.
    #[test]
    fn off_class_joins_repartition_instead_of_serializing(
        dop in 2u32..6,
        fk in 0usize..2,
        bk in 0usize..2,
    ) {
        let facts: Vec<(i64, i64, i64)> = (0..60).map(|i| (i % 8, (i / 2) % 8, i)).collect();
        let bs: Vec<(i64, i64)> = (0..24).map(|i| (i % 8, (i / 3) % 8)).collect();
        let cs: Vec<i64> = (0..8).collect();
        let catalog = mini_catalog(&facts, &bs, &cs);
        // gk picks the fact column NOT used by the first join, so the
        // second join is never aligned with the first join's class.
        let gk = 1 - fk;
        let phys = mini_plan(&catalog, fk, bk, gk, false);
        let (expanded, map) = partition_plan_cfg(&phys, dop, &PartitionConfig::default()).unwrap();
        let serial_joins = expanded
            .nodes
            .iter()
            .filter(|n| {
                matches!(n.kind, PhysKind::HashJoin { .. }) && map.partition(n.id).is_none()
            })
            .count();
        prop_assert_eq!(serial_joins, 0, "serial fallback:\n{}", expanded.display());
        prop_assert!(
            expanded
                .nodes
                .iter()
                .any(|n| matches!(n.kind, PhysKind::ShuffleWrite { .. })),
            "no shuffle in:\n{}",
            expanded.display()
        );
        prop_assert_eq!(
            canonical(&execute_oracle(&expanded).unwrap()),
            canonical(&execute_oracle(&phys).unwrap())
        );
    }
}
