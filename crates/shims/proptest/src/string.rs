//! String strategies from a regex subset.
//!
//! Upstream proptest treats `&str` as a regex-driven string strategy. The
//! workspace only uses patterns of the form
//! `[<class>]{m,n}` — a single character class with a repetition count —
//! optionally preceded/followed by literal characters, so that is the
//! subset implemented here. Unsupported patterns panic with a clear
//! message rather than silently generating wrong data.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// One parsed element of a pattern.
enum Piece {
    /// A set of candidate characters with a repetition range `[lo, hi]`.
    Class { chars: Vec<char>, lo: u32, hi: u32 },
    /// A literal character.
    Lit(char),
}

fn parse(pattern: &str) -> Vec<Piece> {
    let mut pieces = Vec::new();
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        match chars[i] {
            '[' => {
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"))
                    + i
                    + 1;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (a, b) = (chars[j], chars[j + 2]);
                        assert!(a <= b, "bad range {a}-{b} in pattern {pattern:?}");
                        for c in a..=b {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                assert!(!set.is_empty(), "empty class in pattern {pattern:?}");
                i = close + 1;
                let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                    let close = chars[i + 1..]
                        .iter()
                        .position(|&c| c == '}')
                        .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"))
                        + i
                        + 1;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((a, b)) => (
                            a.trim().parse().expect("bad repeat lower bound"),
                            b.trim().parse().expect("bad repeat upper bound"),
                        ),
                        None => {
                            let n: u32 = body.trim().parse().expect("bad repeat count");
                            (n, n)
                        }
                    }
                } else {
                    (1, 1)
                };
                pieces.push(Piece::Class { chars: set, lo, hi });
            }
            '{' | '}' | '*' | '+' | '?' | '(' | ')' | '|' | '.' | '\\' => {
                panic!(
                    "string pattern {pattern:?} uses regex syntax beyond the \
                     vendored proptest shim's `[class]{{m,n}}` subset"
                )
            }
            lit => {
                pieces.push(Piece::Lit(lit));
                i += 1;
            }
        }
    }
    pieces
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(self) {
            match piece {
                Piece::Lit(c) => out.push(c),
                Piece::Class { chars, lo, hi } => {
                    let n = lo + rng.below((hi - lo + 1) as u64) as u32;
                    for _ in 0..n {
                        out.push(chars[rng.below(chars.len() as u64) as usize]);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_ranges_and_literals() {
        let mut r = TestRng::for_case("pat", 0);
        for _ in 0..300 {
            let s = "[a-zA-Z0-9 ]{0,12}".generate(&mut r);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == ' '));
        }
        for _ in 0..300 {
            let s = "[abc%_]{0,8}".generate(&mut r);
            assert!(s.chars().all(|c| "abc%_".contains(c)));
        }
    }

    #[test]
    fn exact_count_and_literal_prefix() {
        let mut r = TestRng::for_case("pat2", 0);
        let s = "x[ab]{3}".generate(&mut r);
        assert_eq!(s.len(), 4);
        assert!(s.starts_with('x'));
    }

    #[test]
    #[should_panic(expected = "beyond the")]
    fn unsupported_syntax_panics() {
        let mut r = TestRng::for_case("pat3", 0);
        let _ = "(a|b)+".generate(&mut r);
    }
}
