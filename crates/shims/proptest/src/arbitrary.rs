//! `any::<T>()` — canonical strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Produce one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Canonical strategy for `T` covering its whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Mix edge values in (upstream biases toward them too):
                // ~1/16 of draws pick from {MIN, -1, 0, 1, MAX}.
                if rng.below(16) == 0 {
                    const EDGES: [i128; 5] = [<$t>::MIN as i128, -1, 0, 1, <$t>::MAX as i128];
                    let e = EDGES[rng.below(5) as usize];
                    // -1 may be out of domain for unsigned types; clamp.
                    if e >= <$t>::MIN as i128 && e <= <$t>::MAX as i128 {
                        return e as $t;
                    }
                }
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values only (matches how the workspace uses floats).
        let mantissa = rng.unit_f64() * 2.0 - 1.0;
        let exp = rng.below(61) as i32 - 30;
        mantissa * (2f64).powi(exp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_covers_edges_eventually() {
        let mut r = TestRng::for_case("any_edges", 0);
        let mut saw_zero = false;
        let mut saw_negative = false;
        for _ in 0..2000 {
            let v: i64 = any::<i64>().generate(&mut r);
            saw_zero |= v == 0;
            saw_negative |= v < 0;
        }
        assert!(saw_zero && saw_negative);
    }

    #[test]
    fn floats_are_finite() {
        let mut r = TestRng::for_case("finite", 0);
        for _ in 0..1000 {
            assert!(any::<f64>().generate(&mut r).is_finite());
        }
    }
}
