//! The [`Strategy`] trait and combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A generator of values for property tests.
///
/// Unlike upstream proptest, a strategy here produces plain values (no
/// shrink trees); `generate` is the whole interface.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe core used by [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.dyn_generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies (built by [`crate::prop_oneof!`]).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("strategy_tests", 0)
    }

    #[test]
    fn ranges_and_tuples() {
        let mut r = rng();
        for _ in 0..500 {
            let v: i64 = (-5i64..5).generate(&mut r);
            assert!((-5..5).contains(&v));
            let (a, b) = (0u32..4, 10usize..=12).generate(&mut r);
            assert!(a < 4 && (10..=12).contains(&b));
            let f = (0.5f64..2.0).generate(&mut r);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn map_union_just() {
        let mut r = rng();
        let s = crate::prop_oneof![Just(-1i64), (0i64..10).prop_map(|v| v * 2)];
        for _ in 0..200 {
            let v = s.generate(&mut r);
            assert!(v == -1 || (v % 2 == 0 && (0..20).contains(&v)));
        }
    }
}
