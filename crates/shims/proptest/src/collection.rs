//! Collection strategies: `vec` and `hash_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::HashSet;
use std::hash::Hash;
use std::ops::Range;

/// Size specifications accepted by collection strategies: a fixed `usize`
/// or a `Range<usize>`.
pub trait SizeRange {
    /// Draw a concrete size.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty collection size range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

/// Strategy for `Vec<S::Value>` with a size drawn from `size`.
pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
    VecStrategy { element, size }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S, Z> {
    element: S,
    size: Z,
}

impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `HashSet<S::Value>` with *up to* `size` elements (duplicates
/// collapse, like upstream when the element domain is small).
pub fn hash_set<S, Z>(element: S, size: Z) -> HashSetStrategy<S, Z>
where
    S: Strategy,
    S::Value: Hash + Eq,
    Z: SizeRange,
{
    HashSetStrategy { element, size }
}

/// The strategy returned by [`hash_set`].
pub struct HashSetStrategy<S, Z> {
    element: S,
    size: Z,
}

impl<S, Z> Strategy for HashSetStrategy<S, Z>
where
    S: Strategy,
    S::Value: Hash + Eq,
    Z: SizeRange,
{
    type Value = HashSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.pick(rng);
        let mut out = HashSet::with_capacity(n);
        // A couple of extra draws compensate for collisions without risking
        // an unbounded loop on tiny domains.
        for _ in 0..(n + n / 2 + 2) {
            if out.len() >= n {
                break;
            }
            out.insert(self.element.generate(rng));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sizes_and_elements() {
        let mut r = TestRng::for_case("vec", 0);
        for _ in 0..200 {
            let v = vec(0i64..10, 2usize..5).generate(&mut r);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|x| (0..10).contains(x)));
        }
        let fixed = vec(0i64..10, 6usize).generate(&mut r);
        assert_eq!(fixed.len(), 6);
    }

    #[test]
    fn hash_set_respects_bound() {
        let mut r = TestRng::for_case("set", 0);
        for _ in 0..200 {
            let s = hash_set(0i64..500, 0usize..20).generate(&mut r);
            assert!(s.len() < 20);
        }
    }
}
