//! Offline shim for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! the subset of the proptest API its property tests use: the [`proptest!`]
//! macro with `#![proptest_config]`, range / tuple / `Just` / regex-subset
//! string strategies, `prop_oneof!`, `prop::collection::{vec, hash_set}`,
//! and `prop_assert!` / `prop_assert_eq!`. Cases are generated from a
//! deterministic per-test RNG seeded from the test name, so failures replay
//! identically run-to-run; there is **no shrinking**. Swap the path
//! dependency for the real crate when a registry is available.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Re-exports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` module namespace used by `prop::collection::vec` etc.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Assert inside a property body (plain assert; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Define property tests. Mirrors `proptest::proptest!`:
///
/// ```
/// use proptest::prelude::*;
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     // In test code this carries #[test]; attributes pass through.
///     fn addition_commutes(a in -100i64..100, b in -100i64..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] items.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(stringify!($name), __case);
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}
