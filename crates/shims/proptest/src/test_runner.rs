//! Deterministic case generation for the [`crate::proptest!`] macro.

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; tests that need more set it explicitly.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-case RNG (SplitMix64 stream seeded from the test name
/// and case index).
#[derive(Clone, Debug)]
pub struct TestRng {
    x: u64,
}

impl TestRng {
    /// RNG for case `case` of the property named `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            x: h ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.x = self.x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound <= 1 {
            return 0;
        }
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_distinct_per_case() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_case("t", 0);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_case("t", 0);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = TestRng::for_case("t", 1);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::for_case("bounds", 0);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
        assert_eq!(r.below(0), 0);
        assert_eq!(r.below(1), 0);
    }
}
