//! Multi-producer multi-consumer channels with bounded capacity,
//! disconnect-aware blocking, and a select facility.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Error returned by [`Sender::send`] when every receiver is gone.
#[derive(PartialEq, Eq, Clone, Copy)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and every
/// sender is gone.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum TryRecvError {
    /// The channel is currently empty but senders remain.
    Empty,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

/// A waker shared between a [`Select`] session and the channels it watches:
/// a generation counter bumped on every event of interest.
pub(crate) struct Waker {
    gen: Mutex<u64>,
    cond: Condvar,
}

impl Waker {
    fn new() -> Arc<Self> {
        Arc::new(Waker {
            gen: Mutex::new(0),
            cond: Condvar::new(),
        })
    }

    fn generation(&self) -> u64 {
        *self.gen.lock().unwrap()
    }

    fn wake(&self) {
        *self.gen.lock().unwrap() += 1;
        self.cond.notify_all();
    }

    /// Wait until the generation moves past `seen` (bounded by a timeout so
    /// a missed edge can never wedge the caller).
    fn wait_past(&self, seen: u64, timeout: Duration) {
        let mut g = self.gen.lock().unwrap();
        while *g == seen {
            let (guard, res) = self.cond.wait_timeout(g, timeout).unwrap();
            g = guard;
            if res.timed_out() {
                break;
            }
        }
    }
}

struct State<T> {
    queue: VecDeque<T>,
    cap: usize,
    senders: usize,
    receivers: usize,
    /// Select sessions to poke whenever a message arrives or the channel
    /// disconnects.
    wakers: Vec<Arc<Waker>>,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Inner<T> {
    fn wake_selects(state: &mut State<T>) {
        state.wakers.retain(|w| {
            w.wake();
            // Keep only wakers still externally referenced (their Select
            // session holds the other strong count).
            Arc::strong_count(w) > 1
        });
    }
}

/// The sending half of a channel.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// The receiving half of a channel.
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

/// Create a channel holding at most `cap` queued messages.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(cap.max(1))
}

/// Create a channel with no practical queue bound.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(usize::MAX)
}

fn with_capacity<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            cap,
            senders: 1,
            receivers: 1,
            wakers: Vec::new(),
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

impl<T> Sender<T> {
    /// Send a message, blocking while the channel is full. Fails only when
    /// every receiver has been dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut state = self.inner.state.lock().unwrap();
        loop {
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            if state.queue.len() < state.cap {
                state.queue.push_back(msg);
                Inner::wake_selects(&mut state);
                drop(state);
                self.inner.not_empty.notify_one();
                return Ok(());
            }
            state = self.inner.not_full.wait(state).unwrap();
        }
    }

    /// Number of currently queued messages (sender-side occupancy gauge).
    pub fn len(&self) -> usize {
        self.inner.state.lock().unwrap().queue.len()
    }

    /// True when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.state.lock().unwrap().senders += 1;
        Sender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.inner.state.lock().unwrap();
        state.senders -= 1;
        if state.senders == 0 {
            Inner::wake_selects(&mut state);
            drop(state);
            self.inner.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Receive a message, blocking while the channel is empty. Fails only
    /// when the channel is drained and every sender has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.inner.state.lock().unwrap();
        loop {
            if let Some(msg) = state.queue.pop_front() {
                drop(state);
                self.inner.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.inner.not_empty.wait(state).unwrap();
        }
    }

    /// Receive without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.inner.state.lock().unwrap();
        if let Some(msg) = state.queue.pop_front() {
            drop(state);
            self.inner.not_full.notify_one();
            return Ok(msg);
        }
        if state.senders == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Number of currently queued messages.
    pub fn len(&self) -> usize {
        self.inner.state.lock().unwrap().queue.len()
    }

    /// True when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn register_waker(&self, w: &Arc<Waker>) {
        self.inner.state.lock().unwrap().wakers.push(Arc::clone(w));
    }

    fn unregister_waker(&self, w: &Arc<Waker>) {
        self.inner
            .state
            .lock()
            .unwrap()
            .wakers
            .retain(|x| !Arc::ptr_eq(x, w));
    }

    /// A message (or disconnect) is observable right now.
    fn is_ready(&self) -> bool {
        let state = self.inner.state.lock().unwrap();
        !state.queue.is_empty() || state.senders == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.inner.state.lock().unwrap().receivers += 1;
        Receiver {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.inner.state.lock().unwrap();
        state.receivers -= 1;
        if state.receivers == 0 {
            drop(state);
            self.inner.not_full.notify_all();
        }
    }
}

/// Dyn-compatible view of a receiver used by [`Select`].
trait SelectHandle {
    fn register(&self, w: &Arc<Waker>);
    fn unregister(&self, w: &Arc<Waker>);
    fn ready(&self) -> bool;
}

impl<T> SelectHandle for Receiver<T> {
    fn register(&self, w: &Arc<Waker>) {
        self.register_waker(w);
    }
    fn unregister(&self, w: &Arc<Waker>) {
        self.unregister_waker(w);
    }
    fn ready(&self) -> bool {
        self.is_ready()
    }
}

/// Waits over any number of receive operations, crossbeam-style:
///
/// ```
/// use crossbeam::channel::{bounded, Select};
/// let (tx, rx) = bounded::<u32>(1);
/// tx.send(7).unwrap();
/// let mut sel = Select::new();
/// sel.recv(&rx);
/// let op = sel.select();
/// assert_eq!(op.index(), 0);
/// assert_eq!(op.recv(&rx), Ok(7));
/// ```
pub struct Select<'a> {
    handles: Vec<&'a dyn SelectHandle>,
    waker: Arc<Waker>,
    registered: bool,
    /// Rotates the scan start so no operand starves.
    next_start: usize,
}

impl<'a> Select<'a> {
    /// An empty select session.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Select {
            handles: Vec::new(),
            waker: Waker::new(),
            registered: false,
            next_start: 0,
        }
    }

    /// Add a receive operation; returns its operation index.
    pub fn recv<T>(&mut self, r: &'a Receiver<T>) -> usize {
        assert!(
            !self.registered,
            "cannot add operations while select is registered"
        );
        self.handles.push(r);
        self.handles.len() - 1
    }

    /// Block until one operation is ready and return it.
    pub fn select(&mut self) -> SelectedOperation<'_> {
        let index = self.ready();
        SelectedOperation {
            index,
            _marker: std::marker::PhantomData,
        }
    }

    /// Block until one operation is ready and return its index.
    pub fn ready(&mut self) -> usize {
        assert!(!self.handles.is_empty(), "select with no operations");
        if !self.registered {
            for h in &self.handles {
                h.register(&self.waker);
            }
            self.registered = true;
        }
        loop {
            let seen = self.waker.generation();
            let n = self.handles.len();
            for off in 0..n {
                let i = (self.next_start + off) % n;
                if self.handles[i].ready() {
                    self.next_start = (i + 1) % n;
                    return i;
                }
            }
            // Timeout bounds the damage of any missed wakeup edge.
            self.waker.wait_past(seen, Duration::from_millis(1));
        }
    }
}

impl Drop for Select<'_> {
    fn drop(&mut self) {
        if self.registered {
            for h in &self.handles {
                h.unregister(&self.waker);
            }
        }
    }
}

/// A ready operation returned by [`Select::select`].
pub struct SelectedOperation<'a> {
    index: usize,
    // Ties the lifetime to the Select session, mirroring crossbeam.
    _marker: std::marker::PhantomData<&'a ()>,
}

#[allow(clippy::needless_update)]
impl SelectedOperation<'_> {
    /// Index of the ready operation (registration order).
    pub fn index(&self) -> usize {
        self.index
    }

    /// Complete the operation by receiving on `r`.
    ///
    /// Readiness may have been a disconnect, which surfaces as
    /// `Err(RecvError)` exactly like crossbeam. If another consumer stole
    /// the ready message, this falls back to a blocking receive.
    pub fn recv<T>(self, r: &Receiver<T>) -> Result<T, RecvError> {
        match r.try_recv() {
            Ok(v) => Ok(v),
            Err(TryRecvError::Disconnected) => Err(RecvError),
            Err(TryRecvError::Empty) => r.recv(),
        }
    }
}

/// Two-arm receive multiplexing, crossbeam-channel style:
///
/// ```ignore
/// crossbeam::channel::select! {
///     recv(rx_a) -> msg => handle_a(msg),
///     recv(rx_b) -> msg => handle_b(msg),
/// }
/// ```
#[macro_export]
macro_rules! select {
    (recv($r1:expr) -> $m1:pat => $e1:expr, recv($r2:expr) -> $m2:pat => $e2:expr $(,)?) => {{
        let __sel_r1 = &$r1;
        let __sel_r2 = &$r2;
        let mut __sel = $crate::channel::Select::new();
        __sel.recv(__sel_r1);
        __sel.recv(__sel_r2);
        let __op = __sel.select();
        if __op.index() == 0 {
            let $m1 = __op.recv(__sel_r1);
            $e1
        } else {
            let $m2 = __op.recv(__sel_r2);
            $e2
        }
    }};
}

pub use crate::select;

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Instant;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = bounded(4);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn recv_fails_after_all_senders_drop() {
        let (tx, rx) = bounded(2);
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(9));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = bounded::<u32>(2);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn bounded_capacity_blocks_until_drained() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = thread::spawn(move || {
            let start = Instant::now();
            tx.send(2).unwrap(); // blocks until the main thread receives
            start.elapsed()
        });
        thread::sleep(Duration::from_millis(30));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert!(t.join().unwrap() >= Duration::from_millis(20));
    }

    #[test]
    fn mpmc_all_messages_arrive_once() {
        let (tx, rx) = bounded(8);
        let mut senders = Vec::new();
        for s in 0..4 {
            let tx = tx.clone();
            senders.push(thread::spawn(move || {
                for i in 0..100 {
                    tx.send(s * 1000 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let rx2 = rx.clone();
        let consumer = thread::spawn(move || {
            let mut got = Vec::new();
            while let Ok(v) = rx2.recv() {
                got.push(v);
            }
            got
        });
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        got.extend(consumer.join().unwrap());
        for s in senders {
            s.join().unwrap();
        }
        got.sort_unstable();
        let expect: Vec<i32> = (0..4)
            .flat_map(|s| (0..100).map(move |i| s * 1000 + i))
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn select_macro_picks_live_arm() {
        let (tx_a, rx_a) = bounded::<u32>(1);
        let (tx_b, rx_b) = bounded::<u32>(1);
        tx_b.send(42).unwrap();
        let (idx, val) = select! {
            recv(rx_a) -> m => (0, m),
            recv(rx_b) -> m => (1, m),
        };
        assert_eq!((idx, val), (1, Ok(42)));
        drop(tx_a);
        let (idx, val) = select! {
            recv(rx_a) -> m => (0usize, m),
            recv(rx_b) -> m => (1, m),
        };
        assert!(idx == 0 && val.is_err());
    }

    #[test]
    fn select_blocks_until_message() {
        let (tx, rx_a) = bounded::<u32>(1);
        let (_tx_b, rx_b) = bounded::<u32>(1);
        let t = thread::spawn(move || {
            thread::sleep(Duration::from_millis(30));
            tx.send(5).unwrap();
        });
        let got = select! {
            recv(rx_a) -> m => m.unwrap(),
            recv(rx_b) -> m => m.unwrap(),
        };
        assert_eq!(got, 5);
        t.join().unwrap();
    }

    #[test]
    fn n_ary_select_drains_all() {
        let mut txs = Vec::new();
        let mut rxs = Vec::new();
        for _ in 0..5 {
            let (tx, rx) = bounded::<usize>(2);
            txs.push(tx);
            rxs.push(rx);
        }
        for (i, tx) in txs.iter().enumerate() {
            tx.send(i).unwrap();
        }
        drop(txs);
        let mut seen = Vec::new();
        let mut live: Vec<usize> = (0..rxs.len()).collect();
        while !live.is_empty() {
            let mut sel = Select::new();
            for &i in &live {
                sel.recv(&rxs[i]);
            }
            let op = sel.select();
            let pos = op.index();
            let chan = live[pos];
            match op.recv(&rxs[chan]) {
                Ok(v) => seen.push(v),
                Err(_) => {
                    live.remove(pos);
                }
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }
}
