//! Offline shim for the `crossbeam` crate.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! the subset of `crossbeam::channel` the engine uses: [`channel::bounded`]
//! / [`channel::unbounded`] MPMC channels with disconnect semantics, the
//! two-arm [`select!`] macro, and the [`channel::Select`] multiplexer the
//! N-ary `Merge` operator needs. The implementation is a mutex + condvar
//! ring with an out-of-band waker list for multiplexed waits; it trades a
//! little raw throughput for zero dependencies. Swap the path dependency
//! for the real crate when a registry is available — call sites are
//! API-compatible.

pub mod channel;
