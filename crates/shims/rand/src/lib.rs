//! Offline shim for the `rand` crate.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! the subset of the `rand` 0.8 API the data generators use: [`Rng`] with
//! `gen_range` / `gen_bool` / `gen::<f64>()`, [`SeedableRng::seed_from_u64`],
//! and [`rngs::StdRng`]. The generator is xoshiro256++ seeded via SplitMix64
//! — deterministic, fast, and statistically solid for data synthesis; it is
//! *not* the real `StdRng` (ChaCha12), so absolute generated values differ
//! from upstream `rand`, which is fine because every consumer in this
//! workspace treats the seed as an opaque reproducibility handle.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (`a..b` or `a..=b`).
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }

    /// Sample a value from the standard distribution of `T`
    /// (`f64` = uniform in `[0, 1)`).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding interface (only the `u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

#[inline]
fn unit_f64(bits: u64) -> f64 {
    // 53 high bits → [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types with a standard distribution for [`Rng::gen`].
pub trait Standard: Sized {
    /// Sample one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + (unit_f64(rng.next_u64()) as f32) * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (see crate docs for the
    /// relationship to upstream `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let w = r.gen_range(3usize..=9);
            assert!((3..=9).contains(&w));
            let f = r.gen_range(-2.5f64..4.0);
            assert!((-2.5..4.0).contains(&f));
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(99);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[r.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "{hits}");
    }

    #[test]
    fn works_through_mut_ref_and_generic() {
        fn sample(rng: &mut impl Rng) -> i64 {
            rng.gen_range(1..=6)
        }
        fn sample_unsized<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut r = StdRng::seed_from_u64(4);
        let v = sample(&mut r);
        assert!((1..=6).contains(&v));
        let f = sample_unsized(&mut r);
        assert!((0.0..1.0).contains(&f));
    }
}
