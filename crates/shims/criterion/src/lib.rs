//! Offline shim for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! the subset of the criterion API its benches use: `Criterion`,
//! `benchmark_group` / `bench_function` / `bench_with_input`, `Bencher::
//! {iter, iter_batched}`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros. Measurement is a simple
//! calibrated timing loop reporting mean ns/iter — adequate for relative
//! comparisons on CI, with none of criterion's statistics. Swap the path
//! dependency for the real crate when a registry is available.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; retained for API compatibility.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Re-run setup for every iteration.
    PerIteration,
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// A `name/parameter` id.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// An id that is only a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// The timing loop handed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the calibrated iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` over fresh inputs produced by `setup` (setup time is
    /// excluded from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

/// Target for each benchmark's total measuring time.
const TARGET: Duration = Duration::from_millis(200);

fn run_one(label: &str, mut pass: impl FnMut(&mut Bencher)) {
    // Calibrate: run once, scale the iteration count toward TARGET.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    pass(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters = (TARGET.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    pass(&mut b);
    let ns = b.elapsed.as_nanos() as f64 / b.iters.max(1) as f64;
    println!("bench: {label:<40} {ns:>14.1} ns/iter  ({} iters)", b.iters);
}

impl Criterion {
    /// Set the nominal sample size (retained for API compatibility).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _parent: self,
        }
    }

    /// Run one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl fmt::Display, f: F) {
        run_one(&name.to_string(), f);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the nominal sample size (retained for API compatibility).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        run_one(&format!("{}/{}", self.name, id), f);
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
    }

    /// Finish the group.
    pub fn finish(self) {}
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declare the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_functions_run_and_report() {
        let mut c = Criterion::default().sample_size(5);
        let mut ran = 0u64;
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        {
            let mut g = c.benchmark_group("group");
            g.sample_size(5);
            g.bench_with_input(BenchmarkId::from_parameter("x"), &3u64, |b, &x| {
                b.iter(|| {
                    ran += 1;
                    x * 2
                })
            });
            g.finish();
        }
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_runs_setup_per_iter() {
        let mut b = Bencher {
            iters: 4,
            elapsed: Duration::ZERO,
        };
        let mut setups = 0;
        b.iter_batched(
            || {
                setups += 1;
                vec![1u8; 8]
            },
            |v| v.len(),
            BatchSize::SmallInput,
        );
        assert_eq!(setups, 4);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("probe", 4).to_string(), "probe/4");
        assert_eq!(BenchmarkId::from_parameter("k=1").to_string(), "k=1");
    }
}
