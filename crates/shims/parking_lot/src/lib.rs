//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *subset* of the `parking_lot` API the engine uses —
//! [`Mutex`] and [`RwLock`] with non-poisoning guards — implemented over
//! `std::sync`. Swap this path dependency for the real crate when a
//! registry is available; no call sites need to change.

use std::fmt;

/// A mutual-exclusion lock that never poisons: a panic while holding the
/// guard simply releases it, matching `parking_lot` semantics.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    #[inline]
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    #[inline]
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Poison is ignored.
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock that never poisons.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock.
    #[inline]
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    #[inline]
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    #[inline]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire an exclusive write guard.
    #[inline]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            _ => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
