#![warn(missing_docs)]
//! # sip-plan
//!
//! Logical query plans and the structures sideways information passing is
//! planned over: a query-global attribute catalog, transitive attribute
//! equivalence (the paper's `EQ` function, via union-find), and the
//! source-predicate graph of Fig. 2(a).
//!
//! Plans are built with [`builder::QueryBuilder`], which allocates global
//! [`sip_common::AttrId`]s. Attribute *identity is preserved* through joins,
//! group-bys and pass-through projections, which is what lets an AIP set
//! built above a blocking operator filter a scan far away in the plan.

pub mod attrs;
pub mod builder;
pub mod logical;
pub mod predgraph;
pub mod unionfind;

pub use attrs::{AttrCatalog, AttrInfo, AttrOrigin};
pub use builder::{QueryBuilder, Rel};
pub use logical::{AggSpec, LogicalPlan};
pub use predgraph::{EqClasses, PredicateIndex, SourcePredGraph};
pub use unionfind::UnionFind;
