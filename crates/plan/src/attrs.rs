//! The query-global attribute catalog.
//!
//! Every column instance a query touches gets one [`AttrId`]. Two scans of
//! the same base table (like `partsupp ps1` / `partsupp ps2` in the paper's
//! running example) get *distinct* ids for the same underlying column, while
//! one attribute keeps its id as it flows through joins, group-bys, and
//! pass-through projections.

use sip_common::{AttrId, DataType, Result, SipError};

/// Where an attribute comes from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AttrOrigin {
    /// A base-table column, via a specific table binding (alias).
    Base {
        /// Underlying table name.
        table: String,
        /// The binding (alias) this instance was scanned under.
        binding: String,
        /// Column position in the base table.
        column: usize,
    },
    /// Computed by a projection or aggregation.
    Derived,
}

/// Metadata for one attribute.
#[derive(Clone, Debug)]
pub struct AttrInfo {
    /// The id (also this entry's index in the catalog).
    pub id: AttrId,
    /// Human-readable name (`ps1.ps_supplycost`, `numsold`, ...).
    pub name: String,
    /// Static type.
    pub dtype: DataType,
    /// Provenance.
    pub origin: AttrOrigin,
}

/// Allocator + registry of all attributes in one query.
#[derive(Clone, Debug, Default)]
pub struct AttrCatalog {
    infos: Vec<AttrInfo>,
}

impl AttrCatalog {
    /// Empty catalog.
    pub fn new() -> Self {
        AttrCatalog::default()
    }

    /// Register a base-table column instance.
    pub fn base(
        &mut self,
        table: &str,
        binding: &str,
        column_name: &str,
        column: usize,
        dtype: DataType,
    ) -> AttrId {
        let id = AttrId(self.infos.len() as u32);
        self.infos.push(AttrInfo {
            id,
            name: format!("{binding}.{column_name}"),
            dtype,
            origin: AttrOrigin::Base {
                table: table.to_string(),
                binding: binding.to_string(),
                column,
            },
        });
        id
    }

    /// Register a derived (computed) attribute.
    pub fn derived(&mut self, name: &str, dtype: DataType) -> AttrId {
        let id = AttrId(self.infos.len() as u32);
        self.infos.push(AttrInfo {
            id,
            name: name.to_string(),
            dtype,
            origin: AttrOrigin::Derived,
        });
        id
    }

    /// Info for an attribute.
    pub fn info(&self, id: AttrId) -> Result<&AttrInfo> {
        self.infos
            .get(id.index())
            .ok_or_else(|| SipError::Plan(format!("unknown attribute {id}")))
    }

    /// Attribute display name (falls back to the raw id).
    pub fn name(&self, id: AttrId) -> String {
        self.info(id)
            .map(|i| i.name.clone())
            .unwrap_or_else(|_| id.to_string())
    }

    /// Static type.
    pub fn dtype(&self, id: AttrId) -> Result<DataType> {
        Ok(self.info(id)?.dtype)
    }

    /// The binding (table alias) an attribute originates from, if base.
    pub fn binding(&self, id: AttrId) -> Option<&str> {
        match &self.info(id).ok()?.origin {
            AttrOrigin::Base { binding, .. } => Some(binding),
            AttrOrigin::Derived => None,
        }
    }

    /// Number of attributes registered.
    pub fn len(&self) -> usize {
        self.infos.len()
    }

    /// True when no attributes registered.
    pub fn is_empty(&self) -> bool {
        self.infos.is_empty()
    }

    /// Iterate all attribute infos.
    pub fn iter(&self) -> impl Iterator<Item = &AttrInfo> {
        self.infos.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_bindings_get_distinct_ids() {
        let mut c = AttrCatalog::new();
        let a = c.base("partsupp", "ps1", "ps_partkey", 0, DataType::Int);
        let b = c.base("partsupp", "ps2", "ps_partkey", 0, DataType::Int);
        assert_ne!(a, b);
        assert_eq!(c.name(a), "ps1.ps_partkey");
        assert_eq!(c.name(b), "ps2.ps_partkey");
        assert_eq!(c.binding(a), Some("ps1"));
    }

    #[test]
    fn derived_attrs() {
        let mut c = AttrCatalog::new();
        let a = c.derived("numsold", DataType::Float);
        assert_eq!(c.name(a), "numsold");
        assert_eq!(c.dtype(a).unwrap(), DataType::Float);
        assert_eq!(c.binding(a), None);
        assert_eq!(c.info(a).unwrap().origin, AttrOrigin::Derived);
    }

    #[test]
    fn unknown_attr_errors() {
        let c = AttrCatalog::new();
        assert!(c.info(AttrId(5)).is_err());
        assert_eq!(c.name(AttrId(5)), "a5");
    }

    #[test]
    fn ids_are_dense() {
        let mut c = AttrCatalog::new();
        for i in 0..10u32 {
            let id = c.derived(&format!("x{i}"), DataType::Int);
            assert_eq!(id, AttrId(i));
        }
        assert_eq!(c.len(), 10);
        assert_eq!(c.iter().count(), 10);
    }
}
