//! Union-find over dense `u32` ids, used for transitive attribute
//! equivalence (the paper's `EQ` function in `AIPCANDIDATES`, Fig. 3).

/// Disjoint-set forest with path halving and union by size.
#[derive(Clone, Debug, Default)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    /// An empty structure; ids are added on demand.
    pub fn new() -> Self {
        UnionFind::default()
    }

    fn ensure(&mut self, id: u32) {
        while self.parent.len() <= id as usize {
            self.parent.push(self.parent.len() as u32);
            self.size.push(1);
        }
    }

    /// Representative of `id`'s class.
    pub fn find(&mut self, id: u32) -> u32 {
        self.ensure(id);
        let mut x = id;
        while self.parent[x as usize] != x {
            // Path halving.
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Representative without mutation (no path compression); ids never seen
    /// are their own class.
    pub fn find_const(&self, id: u32) -> u32 {
        let mut x = id;
        loop {
            let p = self.parent.get(x as usize).copied().unwrap_or(x);
            if p == x {
                return x;
            }
            x = p;
        }
    }

    /// Merge the classes of `a` and `b`.
    pub fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
    }

    /// Are `a` and `b` in the same class?
    pub fn same(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// All members of `id`'s class among ids seen so far.
    pub fn class_members(&mut self, id: u32) -> Vec<u32> {
        let root = self.find(id);
        (0..self.parent.len() as u32)
            .filter(|&x| self.find_const(x) == root)
            .collect()
    }

    /// Number of ids tracked.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when no ids tracked.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_until_union() {
        let mut uf = UnionFind::new();
        assert_ne!(uf.find(1), uf.find(2));
        assert!(!uf.same(1, 2));
    }

    #[test]
    fn union_is_transitive() {
        let mut uf = UnionFind::new();
        uf.union(1, 2);
        uf.union(2, 3);
        uf.union(7, 8);
        assert!(uf.same(1, 3));
        assert!(uf.same(3, 1));
        assert!(!uf.same(1, 7));
        assert!(uf.same(7, 8));
    }

    #[test]
    fn class_members_lists_whole_class() {
        let mut uf = UnionFind::new();
        uf.union(0, 4);
        uf.union(4, 2);
        uf.find(5); // materialize 5 as singleton
        let mut m = uf.class_members(2);
        m.sort_unstable();
        assert_eq!(m, vec![0, 2, 4]);
        assert_eq!(uf.class_members(5), vec![5]);
    }

    #[test]
    fn idempotent_unions() {
        let mut uf = UnionFind::new();
        uf.union(1, 2);
        uf.union(1, 2);
        uf.union(2, 1);
        assert!(uf.same(1, 2));
        assert_eq!(uf.class_members(1).len(), 2);
    }

    #[test]
    fn find_const_matches_find() {
        let mut uf = UnionFind::new();
        uf.union(3, 9);
        uf.union(9, 12);
        let r = uf.find(3);
        assert_eq!(uf.find_const(12), r);
        assert_eq!(uf.find_const(100), 100); // unseen id
    }

    #[test]
    fn large_chain() {
        let mut uf = UnionFind::new();
        for i in 0..999 {
            uf.union(i, i + 1);
        }
        assert!(uf.same(0, 999));
        assert_eq!(uf.class_members(500).len(), 1000);
    }
}
