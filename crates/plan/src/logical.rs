//! Logical plan trees.
//!
//! Logical plans are *structural*: they fix which relations are scanned,
//! which predicates apply, and where blocking (aggregate/distinct) operators
//! sit — exactly the information the AIP algorithms reason over. Physical
//! concerns (row layouts, threading, filter taps) appear only when the
//! optimizer lowers a logical plan.

use crate::attrs::AttrCatalog;
use sip_common::{plan_err, AttrId, Result};
use sip_expr::{AggFunc, Expr};
use std::fmt::Write as _;

/// One aggregate computation inside an [`LogicalPlan::Aggregate`].
#[derive(Clone, Debug)]
pub struct AggSpec {
    /// The aggregate function.
    pub func: AggFunc,
    /// Input expression, over the aggregate's input attributes.
    pub input: Expr,
    /// The derived output attribute.
    pub output: AttrId,
}

/// A logical plan node.
#[derive(Clone, Debug)]
pub enum LogicalPlan {
    /// Scan a base table under a binding, emitting selected columns.
    Scan {
        /// Base table name.
        table: String,
        /// The binding (alias) — distinct scans of one table are distinct
        /// table variables in the source-predicate graph.
        binding: String,
        /// `(base column position, global attribute)` pairs, in output order.
        cols: Vec<(usize, AttrId)>,
    },
    /// Filter rows by a predicate.
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Predicate over input attributes.
        predicate: Expr,
    },
    /// Compute expressions (projection; may rename/derive attributes).
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// `(expression, output attribute)` pairs, in output order.
        exprs: Vec<(Expr, AttrId)>,
    },
    /// Equi-join with optional residual predicate.
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Equality key pairs `(left attr, right attr)`.
        keys: Vec<(AttrId, AttrId)>,
        /// Extra non-equi predicate over the concatenated output.
        residual: Option<Expr>,
    },
    /// Hash aggregation. Group attributes keep their identity; aggregate
    /// outputs are fresh derived attributes.
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Grouping attributes (pass through with identity preserved).
        group_by: Vec<AttrId>,
        /// Aggregates.
        aggs: Vec<AggSpec>,
    },
    /// Duplicate elimination over the full row.
    Distinct {
        /// Input plan.
        input: Box<LogicalPlan>,
    },
    /// Semijoin: keep probe rows whose key appears in the build side.
    /// Used by the magic-sets baseline rewrite; AIP never creates plan
    /// nodes — it injects filters into existing operators instead.
    SemiJoin {
        /// Probe input (reduced).
        probe: Box<LogicalPlan>,
        /// Build input (the filter set).
        build: Box<LogicalPlan>,
        /// Equality key pairs `(probe attr, build attr)`.
        keys: Vec<(AttrId, AttrId)>,
    },
}

impl LogicalPlan {
    /// The output attributes, in row order.
    pub fn output_attrs(&self) -> Vec<AttrId> {
        match self {
            LogicalPlan::Scan { cols, .. } => cols.iter().map(|&(_, a)| a).collect(),
            LogicalPlan::Filter { input, .. } | LogicalPlan::Distinct { input } => {
                input.output_attrs()
            }
            LogicalPlan::Project { exprs, .. } => exprs.iter().map(|&(_, a)| a).collect(),
            LogicalPlan::Join { left, right, .. } => {
                let mut out = left.output_attrs();
                out.extend(right.output_attrs());
                out
            }
            LogicalPlan::SemiJoin { probe, .. } => probe.output_attrs(),
            LogicalPlan::Aggregate { group_by, aggs, .. } => {
                let mut out = group_by.clone();
                out.extend(aggs.iter().map(|a| a.output));
                out
            }
        }
    }

    /// Child plans.
    pub fn children(&self) -> Vec<&LogicalPlan> {
        match self {
            LogicalPlan::Scan { .. } => vec![],
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Distinct { input } => vec![input],
            LogicalPlan::Join { left, right, .. } => vec![left, right],
            LogicalPlan::SemiJoin { probe, build, .. } => vec![probe, build],
        }
    }

    /// All scan bindings in the subtree, depth-first.
    pub fn bindings(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.walk(&mut |n| {
            if let LogicalPlan::Scan { binding, .. } = n {
                out.push(binding.as_str());
            }
        });
        out
    }

    /// Visit every node, pre-order.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a LogicalPlan)) {
        f(self);
        for c in self.children() {
            c.walk(f);
        }
    }

    /// Collect every conjunctive predicate that must hold over contributing
    /// tuples: filter conjuncts, join key equalities (as `Expr`s), and join
    /// residual conjuncts. This is the list `P` fed to `AIPCANDIDATES`
    /// (Fig. 3).
    pub fn all_conjuncts(&self) -> Vec<Expr> {
        let mut out = Vec::new();
        self.walk(&mut |n| match n {
            LogicalPlan::Filter { predicate, .. } => {
                out.extend(predicate.conjuncts().into_iter().cloned());
            }
            LogicalPlan::Join { keys, residual, .. } => {
                for &(l, r) in keys {
                    out.push(Expr::attr(l).eq(Expr::attr(r)));
                }
                if let Some(res) = residual {
                    out.extend(res.conjuncts().into_iter().cloned());
                }
            }
            LogicalPlan::SemiJoin { keys, .. } => {
                for &(p, b) in keys {
                    out.push(Expr::attr(p).eq(Expr::attr(b)));
                }
            }
            _ => {}
        });
        out
    }

    /// Validate attribute flow: every expression references only attributes
    /// its input produces; join keys come from the matching side.
    pub fn validate(&self) -> Result<()> {
        match self {
            LogicalPlan::Scan { cols, table, .. } => {
                if cols.is_empty() {
                    return Err(plan_err!("scan of {table} emits no columns"));
                }
                Ok(())
            }
            LogicalPlan::Filter { input, predicate } => {
                input.validate()?;
                check_attrs_in(&predicate.attrs(), &input.output_attrs(), "filter")
            }
            LogicalPlan::Project { input, exprs } => {
                input.validate()?;
                let avail = input.output_attrs();
                for (e, _) in exprs {
                    check_attrs_in(&e.attrs(), &avail, "project")?;
                }
                Ok(())
            }
            LogicalPlan::Join {
                left,
                right,
                keys,
                residual,
            } => {
                left.validate()?;
                right.validate()?;
                let la = left.output_attrs();
                let ra = right.output_attrs();
                if keys.is_empty() {
                    return Err(plan_err!("join without keys (cross products unsupported)"));
                }
                for &(l, r) in keys {
                    check_attrs_in(&[l], &la, "join left key")?;
                    check_attrs_in(&[r], &ra, "join right key")?;
                }
                if let Some(res) = residual {
                    let mut all = la;
                    all.extend(ra);
                    check_attrs_in(&res.attrs(), &all, "join residual")?;
                }
                Ok(())
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                input.validate()?;
                let avail = input.output_attrs();
                check_attrs_in(group_by, &avail, "group-by")?;
                for a in aggs {
                    check_attrs_in(&a.input.attrs(), &avail, "aggregate input")?;
                }
                Ok(())
            }
            LogicalPlan::Distinct { input } => input.validate(),
            LogicalPlan::SemiJoin { probe, build, keys } => {
                probe.validate()?;
                build.validate()?;
                if keys.is_empty() {
                    return Err(plan_err!("semijoin without keys"));
                }
                let pa = probe.output_attrs();
                let ba = build.output_attrs();
                for &(p, b) in keys {
                    check_attrs_in(&[p], &pa, "semijoin probe key")?;
                    check_attrs_in(&[b], &ba, "semijoin build key")?;
                }
                Ok(())
            }
        }
    }

    /// Pretty-print the tree with attribute names from `attrs`.
    pub fn display(&self, attrs: &AttrCatalog) -> String {
        let mut out = String::new();
        self.fmt_indent(attrs, 0, &mut out);
        out
    }

    fn fmt_indent(&self, attrs: &AttrCatalog, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        match self {
            LogicalPlan::Scan {
                table,
                binding,
                cols,
            } => {
                let names: Vec<String> = cols.iter().map(|&(_, a)| attrs.name(a)).collect();
                let _ = writeln!(out, "{pad}Scan {table} as {binding} [{}]", names.join(", "));
            }
            LogicalPlan::Filter { input, predicate } => {
                let _ = writeln!(out, "{pad}Filter {}", pretty_expr(predicate, attrs));
                input.fmt_indent(attrs, depth + 1, out);
            }
            LogicalPlan::Project { input, exprs } => {
                let cols: Vec<String> = exprs
                    .iter()
                    .map(|(e, a)| format!("{} as {}", pretty_expr(e, attrs), attrs.name(*a)))
                    .collect();
                let _ = writeln!(out, "{pad}Project [{}]", cols.join(", "));
                input.fmt_indent(attrs, depth + 1, out);
            }
            LogicalPlan::Join {
                left,
                right,
                keys,
                residual,
            } => {
                let ks: Vec<String> = keys
                    .iter()
                    .map(|&(l, r)| format!("{} = {}", attrs.name(l), attrs.name(r)))
                    .collect();
                let res = residual
                    .as_ref()
                    .map(|e| format!(" and {}", pretty_expr(e, attrs)))
                    .unwrap_or_default();
                let _ = writeln!(out, "{pad}HashJoin on {}{}", ks.join(" AND "), res);
                left.fmt_indent(attrs, depth + 1, out);
                right.fmt_indent(attrs, depth + 1, out);
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let g: Vec<String> = group_by.iter().map(|&a| attrs.name(a)).collect();
                let ag: Vec<String> = aggs
                    .iter()
                    .map(|a| {
                        format!(
                            "{}({}) as {}",
                            a.func,
                            pretty_expr(&a.input, attrs),
                            attrs.name(a.output)
                        )
                    })
                    .collect();
                let _ = writeln!(
                    out,
                    "{pad}Aggregate group=[{}] aggs=[{}]",
                    g.join(", "),
                    ag.join(", ")
                );
                input.fmt_indent(attrs, depth + 1, out);
            }
            LogicalPlan::Distinct { input } => {
                let _ = writeln!(out, "{pad}Distinct");
                input.fmt_indent(attrs, depth + 1, out);
            }
            LogicalPlan::SemiJoin { probe, build, keys } => {
                let ks: Vec<String> = keys
                    .iter()
                    .map(|&(p, b)| format!("{} = {}", attrs.name(p), attrs.name(b)))
                    .collect();
                let _ = writeln!(out, "{pad}SemiJoin on {}", ks.join(" AND "));
                probe.fmt_indent(attrs, depth + 1, out);
                build.fmt_indent(attrs, depth + 1, out);
            }
        }
    }
}

/// Render an expression with attribute names substituted.
pub fn pretty_expr(e: &Expr, attrs: &AttrCatalog) -> String {
    match e {
        Expr::Attr(a) => attrs.name(*a),
        Expr::Col(i) => format!("#{i}"),
        Expr::Lit(v) => match v {
            sip_common::Value::Str(s) => format!("'{s}'"),
            other => other.to_string(),
        },
        Expr::Cmp(l, op, r) => format!(
            "({} {} {})",
            pretty_expr(l, attrs),
            op.symbol(),
            pretty_expr(r, attrs)
        ),
        Expr::Arith(l, op, r) => format!(
            "({} {} {})",
            pretty_expr(l, attrs),
            op.symbol(),
            pretty_expr(r, attrs)
        ),
        Expr::And(l, r) => format!("({} AND {})", pretty_expr(l, attrs), pretty_expr(r, attrs)),
        Expr::Or(l, r) => format!("({} OR {})", pretty_expr(l, attrs), pretty_expr(r, attrs)),
        Expr::Not(x) => format!("(NOT {})", pretty_expr(x, attrs)),
        Expr::Like(x, p) => format!("({} LIKE '{p}')", pretty_expr(x, attrs)),
        Expr::Year(x) => format!("year({})", pretty_expr(x, attrs)),
    }
}

fn check_attrs_in(needed: &[AttrId], avail: &[AttrId], ctx: &str) -> Result<()> {
    for a in needed {
        if !avail.contains(a) {
            return Err(plan_err!("{ctx}: attribute {a} not produced by input"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sip_common::DataType;

    fn scan(attrs: &mut AttrCatalog, table: &str, cols: &[&str]) -> (LogicalPlan, Vec<AttrId>) {
        let ids: Vec<AttrId> = cols
            .iter()
            .enumerate()
            .map(|(i, c)| attrs.base(table, table, c, i, DataType::Int))
            .collect();
        (
            LogicalPlan::Scan {
                table: table.into(),
                binding: table.into(),
                cols: ids.iter().enumerate().map(|(i, &a)| (i, a)).collect(),
            },
            ids,
        )
    }

    #[test]
    fn output_attrs_flow() {
        let mut attrs = AttrCatalog::new();
        let (s1, a1) = scan(&mut attrs, "t", &["x", "y"]);
        let (s2, a2) = scan(&mut attrs, "u", &["z"]);
        let join = LogicalPlan::Join {
            left: Box::new(s1),
            right: Box::new(s2),
            keys: vec![(a1[0], a2[0])],
            residual: None,
        };
        assert_eq!(join.output_attrs(), vec![a1[0], a1[1], a2[0]]);
        join.validate().unwrap();
    }

    #[test]
    fn aggregate_preserves_group_identity() {
        let mut attrs = AttrCatalog::new();
        let (s, a) = scan(&mut attrs, "t", &["k", "v"]);
        let out = attrs.derived("total", DataType::Int);
        let agg = LogicalPlan::Aggregate {
            input: Box::new(s),
            group_by: vec![a[0]],
            aggs: vec![AggSpec {
                func: AggFunc::Sum,
                input: Expr::attr(a[1]),
                output: out,
            }],
        };
        // Group key keeps its AttrId through the blocking operator.
        assert_eq!(agg.output_attrs(), vec![a[0], out]);
        agg.validate().unwrap();
    }

    #[test]
    fn validation_catches_unknown_attrs() {
        let mut attrs = AttrCatalog::new();
        let (s, _a) = scan(&mut attrs, "t", &["x"]);
        let ghost = AttrId(99);
        let bad = LogicalPlan::Filter {
            input: Box::new(s),
            predicate: Expr::attr(ghost).gt(Expr::lit(0i64)),
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn validation_rejects_cross_product() {
        let mut attrs = AttrCatalog::new();
        let (s1, _) = scan(&mut attrs, "t", &["x"]);
        let (s2, _) = scan(&mut attrs, "u", &["y"]);
        let j = LogicalPlan::Join {
            left: Box::new(s1),
            right: Box::new(s2),
            keys: vec![],
            residual: None,
        };
        assert!(j.validate().is_err());
    }

    #[test]
    fn conjunct_collection_includes_join_keys() {
        let mut attrs = AttrCatalog::new();
        let (s1, a1) = scan(&mut attrs, "t", &["x"]);
        let (s2, a2) = scan(&mut attrs, "u", &["y"]);
        let filtered = LogicalPlan::Filter {
            input: Box::new(s1),
            predicate: Expr::attr(a1[0])
                .gt(Expr::lit(5i64))
                .and(Expr::attr(a1[0]).lt(Expr::lit(50i64))),
        };
        let join = LogicalPlan::Join {
            left: Box::new(filtered),
            right: Box::new(s2),
            keys: vec![(a1[0], a2[0])],
            residual: None,
        };
        let cj = join.all_conjuncts();
        assert_eq!(cj.len(), 3); // two filter conjuncts + one key equality
    }

    #[test]
    fn bindings_and_display() {
        let mut attrs = AttrCatalog::new();
        let (s1, a1) = scan(&mut attrs, "part", &["pk"]);
        let (s2, a2) = scan(&mut attrs, "partsupp", &["fk"]);
        let j = LogicalPlan::Join {
            left: Box::new(s1),
            right: Box::new(s2),
            keys: vec![(a1[0], a2[0])],
            residual: None,
        };
        assert_eq!(j.bindings(), vec!["part", "partsupp"]);
        let text = j.display(&attrs);
        assert!(text.contains("HashJoin on part.pk = partsupp.fk"), "{text}");
        assert!(text.contains("Scan part as part"));
    }
}
