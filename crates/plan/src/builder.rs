//! Fluent construction of logical plans against a data catalog.
//!
//! The builder resolves column names, allocates global attribute ids, and
//! keeps a name scope per relation so queries read close to their SQL:
//!
//! ```
//! use sip_data::{generate, TpchConfig};
//! use sip_expr::Expr;
//! use sip_plan::QueryBuilder;
//!
//! let catalog = generate(&TpchConfig::uniform(0.002)).unwrap();
//! let mut q = QueryBuilder::new(&catalog);
//! let part = q.scan("part", "p", &["p_partkey", "p_size"]).unwrap();
//! let pred = part.col("p_size").unwrap().eq(Expr::lit(1i64));
//! let small = q.filter(part, pred);
//! assert!(small.plan().validate().is_ok());
//! ```
//!
//! See `sip-queries` for the complete paper workload built with this API.

use crate::attrs::AttrCatalog;
use crate::logical::{AggSpec, LogicalPlan};
use sip_common::{plan_err, AttrId, DataType, Result};
use sip_data::Catalog;
use sip_expr::{AggFunc, Expr};

/// A relation under construction: a plan plus its name scope.
#[derive(Clone, Debug)]
pub struct Rel {
    plan: LogicalPlan,
    scope: Vec<(String, AttrId)>,
}

impl Rel {
    /// Resolve a column name. Accepts `binding.column` or a bare column name
    /// when unambiguous.
    pub fn attr(&self, name: &str) -> Result<AttrId> {
        let mut hit = None;
        for (n, a) in &self.scope {
            let matches = n == name || (!name.contains('.') && n.rsplit('.').next() == Some(name));
            if matches {
                if let Some(prev) = hit {
                    if prev != *a {
                        return Err(plan_err!("column name {name:?} is ambiguous"));
                    }
                }
                hit = Some(*a);
            }
        }
        hit.ok_or_else(|| plan_err!("column {name:?} not in scope {:?}", self.names()))
    }

    /// Expression referencing a column by name.
    pub fn col(&self, name: &str) -> Result<Expr> {
        Ok(Expr::attr(self.attr(name)?))
    }

    /// All names in scope.
    pub fn names(&self) -> Vec<&str> {
        self.scope.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// The underlying plan.
    pub fn plan(&self) -> &LogicalPlan {
        &self.plan
    }

    /// Consume into the plan.
    pub fn into_plan(self) -> LogicalPlan {
        self.plan
    }
}

/// Builder owning the attribute catalog for one query.
#[derive(Debug)]
pub struct QueryBuilder<'a> {
    catalog: &'a Catalog,
    attrs: AttrCatalog,
}

impl<'a> QueryBuilder<'a> {
    /// Start building against a data catalog.
    pub fn new(catalog: &'a Catalog) -> Self {
        QueryBuilder {
            catalog,
            attrs: AttrCatalog::new(),
        }
    }

    /// The attribute catalog built so far.
    pub fn attrs(&self) -> &AttrCatalog {
        &self.attrs
    }

    /// Consume the builder, returning the attribute catalog.
    pub fn into_attrs(self) -> AttrCatalog {
        self.attrs
    }

    /// Scan `table` under `binding`, emitting `cols` (base-table column
    /// names, in the requested order).
    pub fn scan(&mut self, table: &str, binding: &str, cols: &[&str]) -> Result<Rel> {
        let t = self.catalog.get(table)?;
        let schema = t.schema().clone();
        let mut plan_cols = Vec::with_capacity(cols.len());
        let mut scope = Vec::with_capacity(cols.len());
        for name in cols {
            let pos = schema.index_of(name)?;
            let dtype = schema.field(pos).dtype;
            let id = self.attrs.base(table, binding, name, pos, dtype);
            plan_cols.push((pos, id));
            scope.push((format!("{binding}.{name}"), id));
        }
        Ok(Rel {
            plan: LogicalPlan::Scan {
                table: table.to_string(),
                binding: binding.to_string(),
                cols: plan_cols,
            },
            scope,
        })
    }

    /// Filter by a predicate (attributes must come from `rel`'s scope).
    pub fn filter(&self, rel: Rel, predicate: Expr) -> Rel {
        Rel {
            plan: LogicalPlan::Filter {
                input: Box::new(rel.plan),
                predicate,
            },
            scope: rel.scope,
        }
    }

    /// Equi-join two relations on named key pairs, e.g.
    /// `[("p.p_partkey", "ps.ps_partkey")]`.
    pub fn join(&self, left: Rel, right: Rel, keys: &[(&str, &str)]) -> Result<Rel> {
        self.join_residual(left, right, keys, None)
    }

    /// Equi-join with an extra residual predicate over the joined scope.
    pub fn join_residual(
        &self,
        left: Rel,
        right: Rel,
        keys: &[(&str, &str)],
        residual: Option<Expr>,
    ) -> Result<Rel> {
        let mut key_ids = Vec::with_capacity(keys.len());
        for (l, r) in keys {
            key_ids.push((left.attr(l)?, right.attr(r)?));
        }
        let mut scope = left.scope;
        scope.extend(right.scope);
        Ok(Rel {
            plan: LogicalPlan::Join {
                left: Box::new(left.plan),
                right: Box::new(right.plan),
                keys: key_ids,
                residual,
            },
            scope,
        })
    }

    /// Hash aggregation: group by named columns, computing aggregates.
    /// Each aggregate is `(func, input expression, output name)`; the output
    /// type is Float for AVG and the input's nominal type otherwise (Float
    /// used as the safe default for SUM over mixed numerics).
    pub fn aggregate(
        &mut self,
        rel: Rel,
        group_by: &[&str],
        aggs: &[(AggFunc, Expr, &str)],
    ) -> Result<Rel> {
        let mut group_ids = Vec::with_capacity(group_by.len());
        let mut scope = Vec::new();
        for g in group_by {
            let id = rel.attr(g)?;
            group_ids.push(id);
            // Keep the qualified name visible downstream.
            for (n, a) in &rel.scope {
                if *a == id {
                    scope.push((n.clone(), id));
                    break;
                }
            }
        }
        let mut specs = Vec::with_capacity(aggs.len());
        for (func, input, name) in aggs {
            let dtype = match func {
                AggFunc::Count => DataType::Int,
                _ => DataType::Float,
            };
            let out = self.attrs.derived(name, dtype);
            specs.push(AggSpec {
                func: *func,
                input: input.clone(),
                output: out,
            });
            scope.push((name.to_string(), out));
        }
        Ok(Rel {
            plan: LogicalPlan::Aggregate {
                input: Box::new(rel.plan),
                group_by: group_ids,
                aggs: specs,
            },
            scope,
        })
    }

    /// Pass-through projection: keep only the named columns, preserving
    /// attribute identity (no new ids).
    pub fn project_cols(&self, rel: Rel, cols: &[&str]) -> Result<Rel> {
        let mut exprs = Vec::with_capacity(cols.len());
        let mut scope = Vec::with_capacity(cols.len());
        for name in cols {
            let id = rel.attr(name)?;
            exprs.push((Expr::attr(id), id));
            for (n, a) in &rel.scope {
                if *a == id {
                    scope.push((n.clone(), id));
                    break;
                }
            }
        }
        Ok(Rel {
            plan: LogicalPlan::Project {
                input: Box::new(rel.plan),
                exprs,
            },
            scope,
        })
    }

    /// Computing projection: derive new attributes from expressions.
    pub fn project(&mut self, rel: Rel, exprs: &[(Expr, &str, DataType)]) -> Result<Rel> {
        let mut out_exprs = Vec::with_capacity(exprs.len());
        let mut scope = Vec::with_capacity(exprs.len());
        for (e, name, dtype) in exprs {
            // Pass-through attr refs keep their identity.
            let id = match e {
                Expr::Attr(a) => *a,
                _ => self.attrs.derived(name, *dtype),
            };
            out_exprs.push((e.clone(), id));
            scope.push((name.to_string(), id));
        }
        Ok(Rel {
            plan: LogicalPlan::Project {
                input: Box::new(rel.plan),
                exprs: out_exprs,
            },
            scope,
        })
    }

    /// Duplicate elimination.
    pub fn distinct(&self, rel: Rel) -> Rel {
        Rel {
            plan: LogicalPlan::Distinct {
                input: Box::new(rel.plan),
            },
            scope: rel.scope,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sip_data::{generate, TpchConfig};

    fn tiny_catalog() -> Catalog {
        generate(&TpchConfig {
            scale_factor: 0.002,
            seed: 11,
            zipf_z: 0.0,
        })
        .unwrap()
    }

    #[test]
    fn scan_resolves_columns() {
        let c = tiny_catalog();
        let mut q = QueryBuilder::new(&c);
        let p = q.scan("part", "p", &["p_partkey", "p_size"]).unwrap();
        assert!(p.attr("p_partkey").is_ok());
        assert!(p.attr("p.p_partkey").is_ok());
        assert!(p.attr("nope").is_err());
        assert!(q.scan("part", "p2", &["ghost_col"]).is_err());
        assert!(q.scan("ghost_table", "g", &["x"]).is_err());
    }

    #[test]
    fn join_merges_scopes_and_detects_ambiguity() {
        let c = tiny_catalog();
        let mut q = QueryBuilder::new(&c);
        let ps1 = q.scan("partsupp", "ps1", &["ps_partkey"]).unwrap();
        let ps2 = q.scan("partsupp", "ps2", &["ps_partkey"]).unwrap();
        let j = q
            .join(ps1, ps2, &[("ps1.ps_partkey", "ps2.ps_partkey")])
            .unwrap();
        // Bare name now ambiguous; qualified names resolve.
        assert!(j.attr("ps_partkey").is_err());
        assert!(j.attr("ps1.ps_partkey").is_ok());
        assert_ne!(
            j.attr("ps1.ps_partkey").unwrap(),
            j.attr("ps2.ps_partkey").unwrap()
        );
        j.plan().validate().unwrap();
    }

    #[test]
    fn aggregate_scope_and_identity() {
        let c = tiny_catalog();
        let mut q = QueryBuilder::new(&c);
        let ps = q
            .scan("partsupp", "ps2", &["ps_partkey", "ps_availqty"])
            .unwrap();
        let key_before = ps.attr("ps_partkey").unwrap();
        let qty = ps.col("ps_availqty").unwrap();
        let agg = q
            .aggregate(ps, &["ps_partkey"], &[(AggFunc::Sum, qty, "avail")])
            .unwrap();
        // Group key identity preserved across the blocking operator.
        assert_eq!(agg.attr("ps_partkey").unwrap(), key_before);
        assert!(agg.attr("avail").is_ok());
        agg.plan().validate().unwrap();
    }

    #[test]
    fn projection_identity_rules() {
        let c = tiny_catalog();
        let mut q = QueryBuilder::new(&c);
        let p = q
            .scan("part", "p", &["p_partkey", "p_retailprice"])
            .unwrap();
        let id_before = p.attr("p_partkey").unwrap();
        let pass = q.project_cols(p.clone(), &["p_partkey"]).unwrap();
        assert_eq!(pass.attr("p_partkey").unwrap(), id_before);
        // Computed projection derives a fresh id.
        let half = p.col("p_retailprice").unwrap().mul(Expr::lit(0.5f64));
        let derived = q
            .project(p, &[(half, "half_price", DataType::Float)])
            .unwrap();
        assert!(derived.attr("half_price").is_ok());
        derived.plan().validate().unwrap();
    }

    #[test]
    fn full_mini_query_validates() {
        let c = tiny_catalog();
        let mut q = QueryBuilder::new(&c);
        let p = q.scan("part", "p", &["p_partkey", "p_size"]).unwrap();
        let sized = {
            let pred = p.col("p_size").unwrap().eq(Expr::lit(1i64));
            q.filter(p, pred)
        };
        let ps = q
            .scan("partsupp", "ps", &["ps_partkey", "ps_supplycost"])
            .unwrap();
        let joined = q
            .join(sized, ps, &[("p.p_partkey", "ps.ps_partkey")])
            .unwrap();
        let dist = q.distinct(q.project_cols(joined, &["p.p_partkey"]).unwrap());
        dist.plan().validate().unwrap();
        assert_eq!(dist.plan().output_attrs().len(), 1);
        assert_eq!(dist.plan().bindings(), vec!["p", "ps"]);
    }
}
