//! Attribute equivalence and the source-predicate graph (Fig. 2a).
//!
//! [`EqClasses`] is the paper's `EQ` function: the transitive closure of all
//! equality predicates in the query, over global attribute ids.
//! [`PredicateIndex`] bundles `EQ` with the conjunct list `P` consumed by
//! `AIPCANDIDATES` (Fig. 3). [`SourcePredGraph`] is the optimizer-built
//! graph "describing the predicates (edges) between table variables (nodes),
//! and whether these predicates are directional" (§IV-A).

use crate::attrs::AttrCatalog;
use crate::logical::{pretty_expr, LogicalPlan};
use crate::unionfind::UnionFind;
use sip_common::AttrId;
use sip_expr::{CmpOp, Expr};
use std::fmt::Write as _;

/// Transitive attribute equivalence (the paper's `EQ`).
#[derive(Clone, Debug, Default)]
pub struct EqClasses {
    uf: UnionFind,
    known: Vec<AttrId>,
}

impl EqClasses {
    /// Build from a conjunct list: every `attr = attr` conjunct merges two
    /// classes.
    pub fn from_conjuncts(conjuncts: &[Expr]) -> Self {
        let mut eq = EqClasses::default();
        for c in conjuncts {
            for a in c.attrs() {
                eq.touch(a);
            }
            if let Expr::Cmp(l, CmpOp::Eq, r) = c {
                if let (Expr::Attr(a), Expr::Attr(b)) = (l.as_ref(), r.as_ref()) {
                    eq.uf.union(a.0, b.0);
                }
            }
        }
        eq
    }

    fn touch(&mut self, a: AttrId) {
        self.uf.find(a.0);
        if !self.known.contains(&a) {
            self.known.push(a);
        }
    }

    /// Are two attributes transitively equated?
    pub fn same(&mut self, a: AttrId, b: AttrId) -> bool {
        self.uf.same(a.0, b.0)
    }

    /// Class representative.
    pub fn class(&self, a: AttrId) -> u32 {
        self.uf.find_const(a.0)
    }

    /// All attributes equated with `a` (including `a` itself when known).
    pub fn members(&mut self, a: AttrId) -> Vec<AttrId> {
        let root = self.uf.find(a.0);
        self.known
            .iter()
            .copied()
            .filter(|x| self.uf.find_const(x.0) == root)
            .collect()
    }

    /// Every attribute seen in any conjunct.
    pub fn known_attrs(&self) -> &[AttrId] {
        &self.known
    }
}

/// `EQ` plus the conjunct list `P` for `AIPCANDIDATES`.
#[derive(Clone, Debug)]
pub struct PredicateIndex {
    /// Every conjunct that must hold over contributing tuples.
    pub conjuncts: Vec<Expr>,
    /// Transitive equality over attributes.
    pub eq: EqClasses,
}

impl PredicateIndex {
    /// Build from a validated logical plan.
    pub fn build(plan: &LogicalPlan) -> Self {
        let conjuncts = plan.all_conjuncts();
        let eq = EqClasses::from_conjuncts(&conjuncts);
        PredicateIndex { conjuncts, eq }
    }

    /// Conjuncts that mention attribute `a`.
    pub fn conjuncts_over(&self, a: AttrId) -> Vec<&Expr> {
        self.conjuncts
            .iter()
            .filter(|c| c.attrs().contains(&a))
            .collect()
    }
}

/// One edge of the source-predicate graph.
#[derive(Clone, Debug)]
pub struct PredEdge {
    /// Binding of one endpoint.
    pub from: String,
    /// Binding of the other endpoint.
    pub to: String,
    /// Pretty-printed predicate.
    pub label: String,
    /// Directional edges arise "when the correlated attribute is projected
    /// away" — i.e., one endpoint's attribute does not survive to the query
    /// output, so information can only usefully flow one way.
    pub directional: bool,
}

/// The source-predicate graph of Fig. 2(a): table variables as nodes,
/// predicates as edges, single-variable predicates as node annotations.
#[derive(Clone, Debug, Default)]
pub struct SourcePredGraph {
    /// Scan bindings, in plan order.
    pub nodes: Vec<String>,
    /// Cross-binding predicate edges.
    pub edges: Vec<PredEdge>,
    /// `(binding, predicate)` annotations for single-binding predicates.
    pub local_predicates: Vec<(String, String)>,
}

impl SourcePredGraph {
    /// Build from a plan and its attribute catalog.
    pub fn build(plan: &LogicalPlan, attrs: &AttrCatalog) -> Self {
        let nodes: Vec<String> = plan.bindings().iter().map(|s| s.to_string()).collect();
        let root_attrs = plan.output_attrs();
        let mut edges = Vec::new();
        let mut local = Vec::new();
        for c in plan.all_conjuncts() {
            let mut bindings: Vec<&str> = Vec::new();
            for a in c.attrs() {
                if let Some(b) = attrs.binding(a) {
                    if !bindings.contains(&b) {
                        bindings.push(b);
                    }
                }
            }
            match bindings.len() {
                1 => local.push((bindings[0].to_string(), pretty_expr(&c, attrs))),
                2 => {
                    // Directional when any referenced attribute is projected
                    // away before the root.
                    let directional = c.attrs().iter().any(|a| !root_attrs.contains(a));
                    edges.push(PredEdge {
                        from: bindings[0].to_string(),
                        to: bindings[1].to_string(),
                        label: pretty_expr(&c, attrs),
                        directional,
                    });
                }
                _ => {
                    // Predicates over derived attributes or 3+ bindings do
                    // not become graph edges; they stay global conjuncts.
                }
            }
        }
        SourcePredGraph {
            nodes,
            edges,
            local_predicates: local,
        }
    }

    /// Render in a compact textual form (the Fig. 2 reproduction).
    pub fn display(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "source-predicate graph");
        let _ = writeln!(out, "  nodes: {}", self.nodes.join(", "));
        for e in &self.edges {
            let arrow = if e.directional { "->" } else { "--" };
            let _ = writeln!(out, "  {} {} {} : {}", e.from, arrow, e.to, e.label);
        }
        for (b, p) in &self.local_predicates {
            let _ = writeln!(out, "  [{b}] {p}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::QueryBuilder;
    use sip_data::{generate, TpchConfig};
    use sip_expr::AggFunc;

    fn catalog() -> sip_data::Catalog {
        generate(&TpchConfig {
            scale_factor: 0.002,
            seed: 21,
            zipf_z: 0.0,
        })
        .unwrap()
    }

    /// Build a miniature version of the paper's running example:
    /// part ⋈ partsupp ⋈ (aggregate over partsupp ps2).
    fn mini_example(c: &sip_data::Catalog) -> (LogicalPlan, AttrCatalog, AttrId, AttrId, AttrId) {
        let mut q = QueryBuilder::new(c);
        let p = q
            .scan("part", "p", &["p_partkey", "p_retailprice"])
            .unwrap();
        let ps1 = q
            .scan("partsupp", "ps1", &["ps_partkey", "ps_supplycost"])
            .unwrap();
        let ps2 = q
            .scan("partsupp", "ps2", &["ps_partkey", "ps_availqty"])
            .unwrap();
        let p_key = p.attr("p_partkey").unwrap();
        let ps1_key = ps1.attr("ps_partkey").unwrap();
        let ps2_key = ps2.attr("ps_partkey").unwrap();
        let qty = ps2.col("ps_availqty").unwrap();
        let avail = q
            .aggregate(ps2, &["ps_partkey"], &[(AggFunc::Sum, qty, "avail")])
            .unwrap();
        let j1 = q
            .join(p, ps1, &[("p.p_partkey", "ps1.ps_partkey")])
            .unwrap();
        let j2 = q
            .join(j1, avail, &[("p.p_partkey", "ps2.ps_partkey")])
            .unwrap();
        let out = q.project_cols(j2, &["p.p_partkey"]).unwrap();
        let plan = out.into_plan();
        plan.validate().unwrap();
        (plan, q.into_attrs(), p_key, ps1_key, ps2_key)
    }

    #[test]
    fn eq_spans_blocking_operators() {
        let c = catalog();
        let (plan, _attrs, p_key, ps1_key, ps2_key) = mini_example(&c);
        let mut idx = PredicateIndex::build(&plan);
        // p_partkey = ps1.ps_partkey and p_partkey = ps2.ps_partkey (through
        // the aggregate!) are all one class.
        assert!(idx.eq.same(p_key, ps1_key));
        assert!(idx.eq.same(p_key, ps2_key));
        assert!(idx.eq.same(ps1_key, ps2_key));
        let members = idx.eq.members(p_key);
        assert_eq!(members.len(), 3, "{members:?}");
    }

    #[test]
    fn unrelated_attrs_stay_separate() {
        let c = catalog();
        let mut q = QueryBuilder::new(&c);
        let p = q.scan("part", "p", &["p_partkey", "p_size"]).unwrap();
        let s = q.scan("supplier", "s", &["s_suppkey"]).unwrap();
        let pk = p.attr("p_partkey").unwrap();
        let size = p.attr("p_size").unwrap();
        let sk = s.attr("s_suppkey").unwrap();
        let pred = p.col("p_size").unwrap().eq(Expr::lit(1i64));
        let fp = q.filter(p, pred);
        let plan = fp.into_plan();
        let mut idx = PredicateIndex::build(&plan);
        assert!(!idx.eq.same(pk, size));
        assert!(!idx.eq.same(pk, sk));
    }

    #[test]
    fn conjuncts_over_finds_predicates() {
        let c = catalog();
        let (plan, _attrs, p_key, _, _) = mini_example(&c);
        let idx = PredicateIndex::build(&plan);
        let over = idx.conjuncts_over(p_key);
        assert_eq!(over.len(), 2, "{over:?}"); // two join equalities
    }

    #[test]
    fn graph_nodes_and_edges() {
        let c = catalog();
        let (plan, attrs, _, _, _) = mini_example(&c);
        let g = SourcePredGraph::build(&plan, &attrs);
        assert_eq!(g.nodes, vec!["p", "ps1", "ps2"]);
        assert_eq!(g.edges.len(), 2);
        // ps1 / ps2 keys don't reach the root output (only p_partkey does),
        // so both edges are directional.
        assert!(g.edges.iter().all(|e| e.directional));
        let text = g.display();
        assert!(text.contains("p -> ps1"), "{text}");
    }

    #[test]
    fn local_predicates_annotate_nodes() {
        let c = catalog();
        let mut q = QueryBuilder::new(&c);
        let p = q.scan("part", "p", &["p_partkey", "p_size"]).unwrap();
        let ps = q.scan("partsupp", "ps", &["ps_partkey"]).unwrap();
        let pred = p.col("p_size").unwrap().eq(Expr::lit(1i64));
        let fp = q.filter(p, pred);
        let j = q.join(fp, ps, &[("p.p_partkey", "ps.ps_partkey")]).unwrap();
        let plan = j.into_plan();
        let g = SourcePredGraph::build(&plan, q.attrs());
        assert_eq!(g.local_predicates.len(), 1);
        assert_eq!(g.local_predicates[0].0, "p");
        assert!(g.local_predicates[0].1.contains("p_size"));
    }
}
