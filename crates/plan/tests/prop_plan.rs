//! Property-based tests: union-find equivalence laws and source-predicate
//! graph construction invariants.

use proptest::prelude::*;
use sip_common::AttrId;
use sip_expr::Expr;
use sip_plan::{EqClasses, UnionFind};
use std::collections::HashMap;

/// A naive partition via map-to-representative rebuilding.
#[derive(Default)]
struct NaivePartition {
    rep: HashMap<u32, u32>,
}

impl NaivePartition {
    fn find(&mut self, x: u32) -> u32 {
        let r = *self.rep.get(&x).unwrap_or(&x);
        if r == x {
            x
        } else {
            let root = self.find(r);
            self.rep.insert(x, root);
            root
        }
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.rep.insert(ra, rb);
        }
    }

    fn same(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn union_find_matches_naive_partition(
        unions in prop::collection::vec((0u32..40, 0u32..40), 0..80),
        queries in prop::collection::vec((0u32..40, 0u32..40), 0..40),
    ) {
        let mut uf = UnionFind::new();
        let mut naive = NaivePartition::default();
        for &(a, b) in &unions {
            uf.union(a, b);
            naive.union(a, b);
        }
        for &(a, b) in &queries {
            prop_assert_eq!(uf.same(a, b), naive.same(a, b), "({}, {})", a, b);
        }
    }

    #[test]
    fn union_find_classes_partition_the_domain(
        unions in prop::collection::vec((0u32..30, 0u32..30), 0..60),
    ) {
        let mut uf = UnionFind::new();
        for &(a, b) in &unions {
            uf.union(a, b);
        }
        uf.find(29); // materialize the whole domain
        // Every element appears in exactly one class.
        let mut seen = [0u32; 30];
        for x in 0..30u32 {
            for m in uf.class_members(x) {
                if m < 30 && uf.find(m) == uf.find(x) {
                    // counted when x is the smallest member of its class
                    if uf.class_members(x)[0] == x {
                        seen[m as usize] += 1;
                    }
                }
            }
        }
        for (i, &count) in seen.iter().enumerate() {
            prop_assert_eq!(count, 1, "element {} in {} classes", i, count);
        }
    }

    #[test]
    fn eq_classes_transitive_closure(
        pairs in prop::collection::vec((0u32..20, 0u32..20), 0..30),
        probe in (0u32..20, 0u32..20),
    ) {
        let conjuncts: Vec<Expr> = pairs
            .iter()
            .map(|&(a, b)| Expr::attr(AttrId(a)).eq(Expr::attr(AttrId(b))))
            .collect();
        let mut eq = EqClasses::from_conjuncts(&conjuncts);
        let mut naive = NaivePartition::default();
        for &(a, b) in &pairs {
            naive.union(a, b);
        }
        prop_assert_eq!(
            eq.same(AttrId(probe.0), AttrId(probe.1)),
            naive.same(probe.0, probe.1)
        );
    }

    #[test]
    fn non_equality_conjuncts_do_not_merge(
        a in 0u32..10, b in 10u32..20,
    ) {
        // A less-than predicate must not equate attributes.
        let conjuncts = vec![Expr::attr(AttrId(a)).lt(Expr::attr(AttrId(b)))];
        let mut eq = EqClasses::from_conjuncts(&conjuncts);
        prop_assert!(!eq.same(AttrId(a), AttrId(b)));
    }
}
