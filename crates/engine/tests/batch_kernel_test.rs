//! Differential suite for the batch-vectorized operator interiors.
//!
//! The batch kernels (one digest pass per batch per key-column set,
//! selection-vector filtering, positional key re-checks) must be
//! observationally identical to the row-at-a-time reference semantics:
//! `probe_quiet` per row per filter for taps, and `execute_oracle` for
//! whole plans. Beyond row multisets, the `aip_probed` / `aip_dropped`
//! counters — per filter and per operator — must match an exact row-level
//! replay, at every batch size including the boundary cases (1, 63/64/65,
//! row_count ± 1).

use proptest::prelude::*;
use sip_common::{hash_key, DataType, Field, OpId, Row, Schema, Value};
use sip_data::{Catalog, Table};
use sip_engine::{
    canonical, execute_ctx, execute_oracle, ExecContext, ExecOptions, FilterScope, InjectedFilter,
    MergePolicy, NoopMonitor, PhysPlan,
};
use sip_expr::{AggFunc, CmpOp, Expr};
use sip_filter::{AipSetBuilder, AipSetKind};
use sip_plan::QueryBuilder;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// A randomly generated injected filter, kept alongside the ingredients so
/// the test can rebuild an identical one for the engine run and the replay.
#[derive(Clone, Debug)]
struct FilterSpec {
    kind: u8,
    positions: Vec<usize>,
    keys: Vec<Vec<i64>>,
    scope: Option<(u32, u32)>,
}

fn key_values(spec: &FilterSpec, raw: &[i64]) -> Vec<Value> {
    // Type-match each key slot to the probed column: column 2 is a string.
    spec.positions
        .iter()
        .zip(raw.iter())
        .map(|(&p, &k)| {
            if p == 2 {
                Value::str(format!("s{k}"))
            } else {
                Value::Int(k)
            }
        })
        .collect()
}

fn build_filter(spec: &FilterSpec, label: impl Into<String>) -> InjectedFilter {
    let kind = match spec.kind % 3 {
        0 => AipSetKind::Bloom,
        1 => AipSetKind::Hash,
        _ => AipSetKind::MinMax,
    };
    let mut b = AipSetBuilder::new(kind, spec.keys.len().max(1), 0.05, 1);
    for raw in &spec.keys {
        let key = key_values(spec, raw);
        b.insert(hash_key(&key), &key);
    }
    InjectedFilter::scoped(
        label,
        spec.positions.clone(),
        Arc::new(b.finish()),
        spec.scope.map(|(partition, dop)| FilterScope {
            partition: partition % dop,
            dop,
        }),
    )
}

/// Row-at-a-time reference: apply the chain with `probe_quiet` (early break
/// on the first drop), tallying exactly what the engine's batch kernel must
/// report.
struct Replay {
    rows: Vec<Row>,
    per_filter: Vec<(u64, u64)>,
    probed_rows: u64,
    dropped_rows: u64,
}

fn replay(rows: &[Row], chain: &[InjectedFilter]) -> Replay {
    let mut out = Vec::new();
    let mut per_filter = vec![(0u64, 0u64); chain.len()];
    let mut probed_rows = 0u64;
    let mut dropped_rows = 0u64;
    for row in rows {
        let mut probed_any = false;
        let mut keep = true;
        for (f, c) in chain.iter().zip(per_filter.iter_mut()) {
            match f.probe_quiet(row) {
                None => {}
                Some(true) => {
                    probed_any = true;
                    c.0 += 1;
                }
                Some(false) => {
                    probed_any = true;
                    c.0 += 1;
                    c.1 += 1;
                    keep = false;
                    break;
                }
            }
        }
        if probed_any {
            probed_rows += 1;
        }
        if keep {
            out.push(row.clone());
        } else {
            dropped_rows += 1;
        }
    }
    Replay {
        rows: out,
        per_filter,
        probed_rows,
        dropped_rows,
    }
}

/// Run `plan` with `chain` injected at `op`, returning output rows plus the
/// engine's counters at that operator.
#[allow(clippy::type_complexity)]
fn run_with_taps(
    plan: Arc<PhysPlan>,
    op: OpId,
    chain: &[FilterSpec],
    batch_size: usize,
) -> (Vec<Row>, Vec<(u64, u64)>, u64, u64) {
    let opts = ExecOptions {
        batch_size,
        channel_capacity: 2,
        ..Default::default()
    };
    let ctx = ExecContext::new(plan, opts);
    for (i, spec) in chain.iter().enumerate() {
        ctx.inject_filter(op, build_filter(spec, format!("f{i}")), MergePolicy::Stack);
    }
    let out = execute_ctx(Arc::clone(&ctx), Arc::new(NoopMonitor)).unwrap();
    let snap = ctx.taps[op.index()].snapshot();
    let per_filter: Vec<(u64, u64)> = snap
        .iter()
        .map(|f| {
            (
                f.probed.load(Ordering::Relaxed),
                f.dropped.load(Ordering::Relaxed),
            )
        })
        .collect();
    let m = ctx.hub.op(op);
    (
        out.rows,
        per_filter,
        m.aip_probed.load(Ordering::Relaxed),
        m.aip_dropped.load(Ordering::Relaxed),
    )
}

fn table_catalog(rows: &[(Option<i64>, i64)]) -> Catalog {
    let schema = Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("v", DataType::Int),
        Field::new("s", DataType::Str),
    ]);
    let rows: Vec<Row> = rows
        .iter()
        .map(|&(k, v)| {
            Row::new(vec![
                k.map(Value::Int).unwrap_or(Value::Null),
                Value::Int(v),
                Value::str(format!("s{}", v.rem_euclid(5))),
            ])
        })
        .collect();
    let mut c = Catalog::new();
    c.add(Table::new("t", schema, vec![], vec![], rows).unwrap());
    c
}

fn scan_plan(catalog: &Catalog) -> Arc<PhysPlan> {
    let mut q = QueryBuilder::new(catalog);
    let t = q.scan("t", "t", &["k", "v", "s"]).unwrap();
    Arc::new(sip_engine::lower(t.plan(), q.attrs().clone(), catalog).unwrap())
}

fn arb_filter_spec() -> impl Strategy<Value = FilterSpec> {
    (
        0u8..3,
        1u8..8, // non-empty bitmask over probe columns {0, 1, 2}
        prop::collection::vec(prop::collection::vec(-5i64..25, 3usize..4), 0..24),
        (0u8..2, 0u32..4, 1u32..4), // scope: present flag, partition, dop
    )
        .prop_map(|(kind, mask, raw_keys, (scoped, partition, dop))| {
            let positions: Vec<usize> = (0..3).filter(|b| mask & (1 << b) != 0).collect();
            let arity = positions.len();
            FilterSpec {
                kind,
                positions,
                keys: raw_keys.into_iter().map(|k| k[..arity].to_vec()).collect(),
                scope: (scoped == 1).then_some((partition, dop)),
            }
        })
}

/// Map a small selector to a batch size, hitting the documented boundary
/// cases relative to the row count `n`.
fn batch_size_for(choice: u8, extra: usize, n: usize) -> usize {
    match choice % 8 {
        0 => 1,
        1 => 2,
        2 => 63,
        3 => 64,
        4 => 65,
        5 => n.saturating_sub(1).max(1),
        6 => n + 1,
        _ => extra.max(1),
    }
}

proptest! {
    // Each case spins up operator threads; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random tap stacks at a scan output: the engine's batch kernel must
    /// reproduce the row-at-a-time reference bit-for-bit — surviving
    /// multiset, per-filter probed/dropped, and the host operator's
    /// aip_probed/aip_dropped.
    #[test]
    fn tap_kernel_counters_match_row_replay(
        raw_data in prop::collection::vec(((0u8..4, 0i64..20), -50i64..50), 1..150),
        chain_specs in prop::collection::vec(arb_filter_spec(), 1usize..4),
        batch_choice in 0u8..8,
        extra_batch in 1usize..200,
    ) {
        // ~25% of key values are NULL (flag 0), exercising the null path
        // of the digest pass alongside the tap's hash-NULL-like-any-value
        // semantics.
        let data: Vec<(Option<i64>, i64)> = raw_data
            .into_iter()
            .map(|((flag, k), v)| ((flag > 0).then_some(k), v))
            .collect();
        let catalog = table_catalog(&data);
        let plan = scan_plan(&catalog);
        let op = plan.root;
        let batch = batch_size_for(batch_choice, extra_batch, data.len());

        // Reference: the scan's deterministic output (the projected table)
        // through the row-at-a-time tap semantics.
        let scanned = execute_oracle(&plan).unwrap();
        let reference_chain: Vec<InjectedFilter> = chain_specs
            .iter()
            .enumerate()
            .map(|(i, s)| build_filter(s, format!("f{i}")))
            .collect();
        let expected = replay(&scanned, &reference_chain);

        let (rows, per_filter, probed, dropped) =
            run_with_taps(Arc::clone(&plan), op, &chain_specs, batch);

        prop_assert_eq!(canonical(&rows), canonical(&expected.rows),
            "row multiset diverged at batch {}", batch);
        prop_assert_eq!(&per_filter, &expected.per_filter,
            "per-filter counters diverged at batch {}", batch);
        prop_assert_eq!(probed, expected.probed_rows,
            "aip_probed diverged at batch {}", batch);
        prop_assert_eq!(dropped, expected.dropped_rows,
            "aip_dropped diverged at batch {}", batch);
    }

    /// Random join/aggregate/distinct plans at boundary batch sizes, with a
    /// random tap stack at the root: results must equal the oracle's rows
    /// passed through the row-at-a-time tap replay, with exact counter
    /// parity at the root operator.
    #[test]
    fn plan_kernels_match_oracle_at_boundary_batches(
        facts in prop::collection::vec((0i64..25, -40i64..40), 1..120),
        dims in prop::collection::vec((0i64..25, -40i64..40), 1..40),
        dim_cut in -30i64..30,
        shape in 0u8..3,
        chain_specs in prop::collection::vec(arb_filter_spec(), 0usize..3),
        batch_choice in 0u8..8,
        extra_batch in 1usize..200,
    ) {
        let fact_schema = Schema::new(vec![
            Field::new("f_key", DataType::Int),
            Field::new("f_val", DataType::Int),
        ]);
        let dim_schema = Schema::new(vec![
            Field::new("d_key", DataType::Int),
            Field::new("d_weight", DataType::Int),
        ]);
        let fact_rows: Vec<Row> = facts.iter()
            .map(|&(k, v)| Row::new(vec![Value::Int(k), Value::Int(v)]))
            .collect();
        let dim_rows: Vec<Row> = dims.iter()
            .map(|&(k, w)| Row::new(vec![Value::Int(k), Value::Int(w)]))
            .collect();
        let mut catalog = Catalog::new();
        catalog.add(Table::new("fact", fact_schema, vec![], vec![], fact_rows).unwrap());
        catalog.add(Table::new("dim", dim_schema, vec![0], vec![], dim_rows).unwrap());

        let mut q = QueryBuilder::new(&catalog);
        let f = q.scan("fact", "f", &["f_key", "f_val"]).unwrap();
        let d = q.scan("dim", "d", &["d_key", "d_weight"]).unwrap();
        let d_pred = d.col("d_weight").unwrap().cmp(CmpOp::Lt, Expr::lit(dim_cut));
        let d = q.filter(d, d_pred);
        let joined = q.join(f, d, &[("f.f_key", "d.d_key")]).unwrap();
        let out = match shape % 3 {
            0 => joined,
            1 => {
                let val = joined.col("f.f_val").unwrap();
                q.aggregate(joined, &["f.f_key"], &[(AggFunc::Sum, val, "total")])
                    .unwrap()
            }
            _ => q.distinct(joined),
        };
        let plan = out.into_plan();
        let phys = Arc::new(sip_engine::lower(&plan, q.into_attrs(), &catalog).unwrap());
        let op = phys.root;
        let batch = batch_size_for(batch_choice, extra_batch, facts.len());

        // Filters at the root probe the root layout; clamp positions to it.
        let arity = phys.node(op).layout.len();
        let chain_specs: Vec<FilterSpec> = chain_specs
            .into_iter()
            .map(|mut s| {
                s.positions.retain(|&p| p < arity);
                if s.positions.is_empty() {
                    s.positions.push(0);
                }
                let n = s.positions.len();
                for k in s.keys.iter_mut() {
                    k.truncate(n);
                }
                s
            })
            .collect();

        let oracle_rows = execute_oracle(&phys).unwrap();
        let reference_chain: Vec<InjectedFilter> = chain_specs
            .iter()
            .enumerate()
            .map(|(i, s)| build_filter(s, format!("f{i}")))
            .collect();
        let expected = replay(&oracle_rows, &reference_chain);

        let (rows, per_filter, probed, dropped) =
            run_with_taps(Arc::clone(&phys), op, &chain_specs, batch);

        prop_assert_eq!(canonical(&rows), canonical(&expected.rows),
            "shape {} diverged at batch {}", shape, batch);
        prop_assert_eq!(&per_filter, &expected.per_filter,
            "per-filter counters diverged (shape {}, batch {})", shape, batch);
        prop_assert_eq!(probed, expected.probed_rows);
        prop_assert_eq!(dropped, expected.dropped_rows);
    }
}

/// A filter whose set is a superset of every value flowing through an
/// interior operator must drop nothing and leave the result untouched —
/// the safety property AIP relies on, exercised through the batch kernels
/// at an interior (join) tap rather than the root.
#[test]
fn superset_filter_at_interior_op_is_transparent() {
    let data: Vec<(Option<i64>, i64)> = (0..100).map(|i| (Some(i % 20), i)).collect();
    let catalog = {
        let fact_schema = Schema::new(vec![
            Field::new("f_key", DataType::Int),
            Field::new("f_val", DataType::Int),
        ]);
        let rows: Vec<Row> = data
            .iter()
            .map(|&(k, v)| Row::new(vec![Value::Int(k.unwrap()), Value::Int(v)]))
            .collect();
        let dim_schema = Schema::new(vec![Field::new("d_key", DataType::Int)]);
        let dim_rows: Vec<Row> = (0..20).map(|i| Row::new(vec![Value::Int(i)])).collect();
        let mut c = Catalog::new();
        c.add(Table::new("fact", fact_schema, vec![], vec![], rows).unwrap());
        c.add(Table::new("dim", dim_schema, vec![0], vec![], dim_rows).unwrap());
        c
    };
    let mut q = QueryBuilder::new(&catalog);
    let f = q.scan("fact", "f", &["f_key", "f_val"]).unwrap();
    let d = q.scan("dim", "d", &["d_key"]).unwrap();
    let joined = q.join(f, d, &[("f.f_key", "d.d_key")]).unwrap();
    let plan = joined.into_plan();
    let phys = Arc::new(sip_engine::lower(&plan, q.into_attrs(), &catalog).unwrap());
    let expected = canonical(&execute_oracle(&phys).unwrap());

    // Find the join node; inject a superset (full key domain) hash set on
    // its first output column.
    let join_op = phys
        .nodes
        .iter()
        .find(|n| n.kind.name().contains("Join"))
        .map(|n| n.id)
        .expect("plan has a join");
    for batch in [1usize, 7, 64, 65, 1024] {
        let opts = ExecOptions {
            batch_size: batch,
            channel_capacity: 2,
            ..Default::default()
        };
        let ctx = ExecContext::new(Arc::clone(&phys), opts);
        let mut b = AipSetBuilder::new(AipSetKind::Hash, 20, 0.05, 1);
        for k in 0..20i64 {
            let key = vec![Value::Int(k)];
            b.insert(hash_key(&key), &key);
        }
        ctx.inject_filter(
            join_op,
            InjectedFilter::new("superset", vec![0], Arc::new(b.finish())),
            MergePolicy::Stack,
        );
        let out = execute_ctx(Arc::clone(&ctx), Arc::new(NoopMonitor)).unwrap();
        assert_eq!(canonical(&out.rows), expected, "batch {batch}");
        let snap = ctx.taps[join_op.index()].snapshot();
        assert_eq!(snap[0].dropped.load(Ordering::Relaxed), 0);
        assert_eq!(
            snap[0].probed.load(Ordering::Relaxed),
            expected.len() as u64,
            "every join output row is probed exactly once (batch {batch})"
        );
        assert_eq!(ctx.hub.op(join_op).aip_dropped.load(Ordering::Relaxed), 0);
    }
}

/// Admit-batch differential parity over a join + aggregate + semijoin-free
/// plan at every boundary batch size: byte-identical AIP sets and exact
/// counter equality vs the per-row admit replay, at every stateful input.
#[test]
fn admit_batch_matches_row_admit_at_boundary_batches() {
    let facts: Vec<(Option<i64>, i64)> = (0..157)
        .map(|i| ((i % 11 != 0).then_some(i % 23), i))
        .collect();
    let catalog = {
        let fact_schema = Schema::new(vec![
            Field::new("f_key", DataType::Int),
            Field::new("f_val", DataType::Int),
        ]);
        let dim_schema = Schema::new(vec![
            Field::new("d_key", DataType::Int),
            Field::new("d_weight", DataType::Int),
        ]);
        let fact_rows: Vec<Row> = facts
            .iter()
            .map(|&(k, v)| {
                Row::new(vec![
                    k.map(Value::Int).unwrap_or(Value::Null),
                    Value::Int(v),
                ])
            })
            .collect();
        let dim_rows: Vec<Row> = (0..23)
            .map(|i| Row::new(vec![Value::Int(i), Value::Int(i * 3 % 7)]))
            .collect();
        let mut c = Catalog::new();
        c.add(Table::new("fact", fact_schema, vec![], vec![], fact_rows).unwrap());
        c.add(Table::new("dim", dim_schema, vec![0], vec![], dim_rows).unwrap());
        c
    };
    let mut q = QueryBuilder::new(&catalog);
    let f = q.scan("fact", "f", &["f_key", "f_val"]).unwrap();
    let d = q.scan("dim", "d", &["d_key", "d_weight"]).unwrap();
    let joined = q.join(f, d, &[("f.f_key", "d.d_key")]).unwrap();
    let val = joined.col("f.f_val").unwrap();
    let agg = q
        .aggregate(joined, &["f.f_key"], &[(AggFunc::Sum, val, "total")])
        .unwrap();
    let plan = agg.into_plan();
    let phys = Arc::new(sip_engine::lower(&plan, q.into_attrs(), &catalog).unwrap());
    let expected = canonical(&execute_oracle(&phys).unwrap());

    for batch in [1usize, 63, 64, 65, 156, 157, 158, 1024] {
        let opts = ExecOptions {
            batch_size: batch,
            channel_capacity: 2,
            ..Default::default()
        };
        let ctx = ExecContext::new(Arc::clone(&phys), opts);
        let (outcome, installed) = sip_engine::testkit::install_admit_parity(&ctx, &phys);
        assert!(installed >= 3, "expected several stateful inputs");
        let out = execute_ctx(Arc::clone(&ctx), Arc::new(NoopMonitor)).unwrap();
        assert_eq!(canonical(&out.rows), expected, "batch {batch}");
        let errs = outcome.errors.lock().unwrap();
        assert!(errs.is_empty(), "batch {batch}:\n{}", errs.join("\n"));
        assert_eq!(
            *outcome.finished.lock().unwrap(),
            installed,
            "batch {batch}: every collector must finish exactly once"
        );
    }
}

/// Degenerate sizing is rejected with a config error before any operator
/// thread spawns.
#[test]
fn zero_batch_size_is_a_config_error() {
    let catalog = table_catalog(&[(Some(1), 1)]);
    let plan = scan_plan(&catalog);
    for (batch_size, channel_capacity) in [(0usize, 16usize), (16, 0)] {
        let opts = ExecOptions {
            batch_size,
            channel_capacity,
            ..Default::default()
        };
        let err = execute_ctx(
            ExecContext::new(Arc::clone(&plan), opts),
            Arc::new(NoopMonitor),
        )
        .unwrap_err();
        assert_eq!(err.layer(), "config");
    }
}
