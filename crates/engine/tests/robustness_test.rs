//! Robustness and failure-injection tests for the push engine: runtime
//! expression errors must propagate (not hang), AIP filters must be
//! droppable mid-query without correctness loss (the §V memory-pressure
//! valve), external sources must integrate cleanly, and the pipelined
//! semijoin must agree with the oracle under adversarial schedules.

use crossbeam::channel::bounded;
use sip_common::{hash_key, Batch, DataType, Field, Row, Schema, Value};
use sip_data::{Catalog, Table};
use sip_engine::{
    canonical, execute, execute_baseline, execute_oracle, lower, ExecContext, ExecMonitor,
    ExecOptions, InjectedFilter, MergePolicy, Msg, NoopMonitor, PhysKind, PhysNode, PhysPlan,
    QueryOutput,
};
use sip_expr::{AggFunc, Expr};
use sip_filter::{AipSet, BucketedKeySet};
use sip_plan::{AttrCatalog, QueryBuilder};
use std::sync::Arc;

fn small_catalog(n: i64) -> Catalog {
    let schema = Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("v", DataType::Int),
    ]);
    let rows: Vec<Row> = (0..n)
        .map(|i| Row::new(vec![Value::Int(i % 17), Value::Int(i)]))
        .collect();
    let mut c = Catalog::new();
    c.add(Table::new("t", schema.clone(), vec![], vec![], rows.clone()).unwrap());
    c.add(Table::new("u", schema, vec![], vec![], rows).unwrap());
    c
}

#[test]
fn division_by_zero_propagates_as_error() {
    let c = small_catalog(100);
    let mut q = QueryBuilder::new(&c);
    let t = q.scan("t", "t", &["k", "v"]).unwrap();
    // v / (v - v) divides by zero on every row.
    let bad = t
        .col("v")
        .unwrap()
        .div(t.col("v").unwrap().sub(t.col("v").unwrap()));
    let proj = q.project(t, &[(bad, "boom", DataType::Int)]).unwrap();
    let plan = lower(proj.plan(), q.attrs().clone(), &c).unwrap();
    let err = execute_baseline(Arc::new(plan), ExecOptions::default());
    assert!(err.is_err(), "expected propagation, got {err:?}");
    assert_eq!(err.unwrap_err().layer(), "expr");
}

#[test]
fn filters_cleared_mid_query_never_change_results() {
    // Inject a filter that passes everything, then clear taps mid-flight:
    // dropping AIP filters is always safe (performance, not correctness).
    struct ClearingMonitor;
    impl ExecMonitor for ClearingMonitor {
        fn on_query_start(&self, ctx: &Arc<ExecContext>) {
            // Install a pass-through-ish exact filter at every scan.
            let mut keys = BucketedKeySet::new();
            for i in 0..17i64 {
                let k = vec![Value::Int(i)];
                keys.insert(hash_key(&k), k);
            }
            let set = Arc::new(AipSet::Hash(keys));
            for node in &ctx.plan.nodes {
                if matches!(node.kind, PhysKind::Scan { .. }) {
                    ctx.inject_filter(
                        node.id,
                        InjectedFilter::new("all-pass", vec![0], Arc::clone(&set)),
                        MergePolicy::Stack,
                    );
                }
            }
        }
        fn on_input_complete(&self, ctx: &Arc<ExecContext>, _ev: &sip_engine::CompletionEvent<'_>) {
            // Memory pressure: drop every filter.
            for tap in &ctx.taps {
                tap.clear();
            }
        }
    }

    let c = small_catalog(500);
    let mut q = QueryBuilder::new(&c);
    let t = q.scan("t", "t", &["k", "v"]).unwrap();
    let u = q.scan("u", "u", &["k", "v"]).unwrap();
    let j = q.join(t, u, &[("t.k", "u.k")]).unwrap();
    let total = {
        let v = j.col("t.v").unwrap();
        q.aggregate(j, &["t.k"], &[(AggFunc::Sum, v, "s")]).unwrap()
    };
    let plan = Arc::new(lower(total.plan(), q.attrs().clone(), &c).unwrap());
    let expected = canonical(&execute_oracle(&plan).unwrap());
    let out = execute(plan, Arc::new(ClearingMonitor), ExecOptions::default()).unwrap();
    assert_eq!(canonical(&out.rows), expected);
}

#[test]
fn hostile_filter_on_join_key_prunes_consistently() {
    // A filter admitting only even keys at one scan must behave exactly
    // like a predicate `k % 2 = 0` on that input.
    struct EvenFilter;
    impl ExecMonitor for EvenFilter {
        fn on_query_start(&self, ctx: &Arc<ExecContext>) {
            let mut keys = BucketedKeySet::new();
            for i in (0..17i64).step_by(2) {
                let k = vec![Value::Int(i)];
                keys.insert(hash_key(&k), k);
            }
            let set = Arc::new(AipSet::Hash(keys));
            let scan = ctx
                .plan
                .nodes
                .iter()
                .find(|n| matches!(&n.kind, PhysKind::Scan { binding, .. } if binding == "t"))
                .unwrap()
                .id;
            ctx.inject_filter(
                scan,
                InjectedFilter::new("even-only", vec![0], set),
                MergePolicy::Stack,
            );
        }
    }

    let c = small_catalog(300);
    let build = |with_pred: bool| {
        let mut q = QueryBuilder::new(&c);
        let t = q.scan("t", "t", &["k", "v"]).unwrap();
        let t = if with_pred {
            // (k/2)*2 = k  ⇔  k is even
            let pred = t
                .col("k")
                .unwrap()
                .div(Expr::lit(2i64))
                .mul(Expr::lit(2i64))
                .eq(t.col("k").unwrap());
            q.filter(t, pred)
        } else {
            t
        };
        let u = q.scan("u", "u", &["k", "v"]).unwrap();
        let j = q.join(t, u, &[("t.k", "u.k")]).unwrap();
        Arc::new(lower(j.plan(), q.attrs().clone(), &c).unwrap())
    };
    let expected = canonical(&execute_oracle(&build(true)).unwrap());
    let out = execute(build(false), Arc::new(EvenFilter), ExecOptions::default()).unwrap();
    assert_eq!(canonical(&out.rows), expected);
}

#[test]
fn external_source_feeds_pipeline() {
    // Hand-build a plan: ExternalSource -> Aggregate(sum v by k).
    let mut attrs = AttrCatalog::new();
    let k = attrs.base("ext", "ext", "k", 0, DataType::Int);
    let v = attrs.base("ext", "ext", "v", 1, DataType::Int);
    let s = attrs.derived("s", DataType::Float);
    let nodes = vec![
        PhysNode {
            id: sip_common::OpId(0),
            kind: PhysKind::ExternalSource {
                label: "test-feed".into(),
            },
            inputs: vec![],
            layout: vec![k, v],
        },
        PhysNode {
            id: sip_common::OpId(1),
            kind: PhysKind::Aggregate {
                group_cols: vec![0],
                aggs: vec![sip_engine::BoundAgg {
                    func: AggFunc::Sum,
                    input: Expr::Col(1),
                }],
            },
            inputs: vec![sip_common::OpId(0)],
            layout: vec![k, s],
        },
    ];
    let plan = Arc::new(PhysPlan::from_nodes(nodes, sip_common::OpId(1), attrs).unwrap());
    let (tx, rx) = bounded::<Msg>(4);
    let options = ExecOptions::default();
    options.external_inputs.lock().insert(0, rx);
    let feeder = std::thread::spawn(move || {
        for chunk in 0..5i64 {
            let rows: Vec<Row> = (0..20)
                .map(|i| Row::new(vec![Value::Int(i % 4), Value::Int(chunk * 20 + i)]))
                .collect();
            tx.send(Msg::Batch(Batch::new(rows))).unwrap();
        }
        tx.send(Msg::Eof).unwrap();
    });
    let out: QueryOutput = execute(plan, Arc::new(NoopMonitor), options).unwrap();
    feeder.join().unwrap();
    assert_eq!(out.rows.len(), 4); // four groups
    let total: f64 = out.rows.iter().map(|r| r.get(1).as_float().unwrap()).sum();
    // Sum of 0..100 = 4950.
    assert_eq!(total, 4950.0);
}

#[test]
fn missing_external_input_errors_cleanly() {
    let mut attrs = AttrCatalog::new();
    let k = attrs.base("ext", "ext", "k", 0, DataType::Int);
    let nodes = vec![PhysNode {
        id: sip_common::OpId(0),
        kind: PhysKind::ExternalSource {
            label: "unwired".into(),
        },
        inputs: vec![],
        layout: vec![k],
    }];
    let plan = Arc::new(PhysPlan::from_nodes(nodes, sip_common::OpId(0), attrs).unwrap());
    let err = execute_baseline(plan, ExecOptions::default());
    assert!(err.is_err());
}

#[test]
fn semijoin_matches_oracle_under_tiny_channels() {
    let c = small_catalog(400);
    let mut q = QueryBuilder::new(&c);
    let t = q.scan("t", "t", &["k", "v"]).unwrap();
    let u = q.scan("u", "u", &["k", "v"]).unwrap();
    let pred = u.col("v").unwrap().lt(Expr::lit(40i64));
    let u = q.filter(u, pred);
    let keys = vec![(t.attr("k").unwrap(), u.attr("k").unwrap())];
    let plan = sip_plan::LogicalPlan::SemiJoin {
        probe: Box::new(t.into_plan()),
        build: Box::new(u.into_plan()),
        keys,
    };
    plan.validate().unwrap();
    let phys = Arc::new(lower(&plan, q.into_attrs(), &c).unwrap());
    let expected = canonical(&execute_oracle(&phys).unwrap());
    for batch in [1usize, 3, 1024] {
        let opts = ExecOptions {
            batch_size: batch,
            channel_capacity: 1,
            ..Default::default()
        };
        let out = execute_baseline(Arc::clone(&phys), opts).unwrap();
        assert_eq!(canonical(&out.rows), expected, "batch={batch}");
    }
}

#[test]
fn state_returns_to_zero_after_query() {
    let c = small_catalog(1000);
    let mut q = QueryBuilder::new(&c);
    let t = q.scan("t", "t", &["k", "v"]).unwrap();
    let u = q.scan("u", "u", &["k", "v"]).unwrap();
    let j = q.join(t, u, &[("t.k", "u.k")]).unwrap();
    let agg = {
        let v = j.col("t.v").unwrap();
        q.aggregate(j, &["t.k"], &[(AggFunc::Sum, v, "s")]).unwrap()
    };
    let plan = Arc::new(lower(agg.plan(), q.attrs().clone(), &c).unwrap());
    let out = execute_baseline(plan, ExecOptions::default()).unwrap();
    assert!(out.metrics.peak_state_bytes > 0);
    // Every operator released what it buffered.
    assert_eq!(out.metrics.final_state_bytes, 0);
}
