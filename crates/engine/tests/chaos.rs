//! Chaos suite for the fail-fast query lifecycle: injected faults
//! (panic / error / stall) at every operator kind, deadlines, external
//! cancellation, and clean teardown.
//!
//! The one invariant every case asserts: a run either returns a result
//! **byte-identical to the serial oracle** or a **clean attributed
//! error** — never a partial `Ok`. The first test demonstrates the bug
//! class this PR removes: a consumer that conflates channel disconnect
//! with `Msg::Eof` silently truncates the stream when its producer
//! panics; the engine now classifies that disconnect as a hard error
//! with the failing operator's identity attached.

use crossbeam::channel::bounded;
use sip_common::retry::{is_exhausted, RetryPolicy};
use sip_common::{ExecFailure, Row, Value};
use sip_data::{Catalog, Table};
use sip_engine::testkit::TraceProbe;
use sip_engine::{
    canonical, execute, execute_baseline, execute_oracle, execute_with_recovery, lower,
    ExecContext, ExecMonitor, ExecOptions, FaultKind, FaultPlan, Msg, NoopMonitor, QueryOutput,
    QueryProfile, TraceLevel,
};
use sip_expr::AggFunc;
use sip_plan::QueryBuilder;
use std::sync::Arc;
use std::time::Duration;

fn small_catalog(n: i64) -> Catalog {
    use sip_common::{DataType, Field, Schema};
    let schema = Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("v", DataType::Int),
    ]);
    let rows: Vec<Row> = (0..n)
        .map(|i| Row::new(vec![Value::Int(i % 17), Value::Int(i)]))
        .collect();
    let mut c = Catalog::new();
    c.add(Table::new("t", schema.clone(), vec![], vec![], rows.clone()).unwrap());
    c.add(Table::new("u", schema, vec![], vec![], rows).unwrap());
    c
}

/// Join + aggregate over both tables: covers Scan, HashJoin, and
/// Aggregate operator threads in one plan.
fn join_agg_plan(c: &Catalog) -> Arc<sip_engine::PhysPlan> {
    let mut q = QueryBuilder::new(c);
    let t = q.scan("t", "t", &["k", "v"]).unwrap();
    let u = q.scan("u", "u", &["k", "v"]).unwrap();
    let j = q.join(t, u, &[("t.k", "u.k")]).unwrap();
    let agg = {
        let v = j.col("t.v").unwrap();
        q.aggregate(j, &["t.k"], &[(AggFunc::Sum, v, "s")]).unwrap()
    };
    Arc::new(lower(agg.plan(), q.attrs().clone(), c).unwrap())
}

/// Small batches so every operator sees several of them and an
/// `after_batches: 1` fault always fires mid-stream.
fn small_batches() -> ExecOptions {
    ExecOptions {
        batch_size: 64,
        channel_capacity: 2,
        ..Default::default()
    }
}

/// The pre-fix bug class, reproduced outside the engine: a consumer
/// using the old `Ok(Msg::Eof) | Err(_) => break` conflation treats its
/// producer's panic (channel drop without Eof) as end-of-stream and
/// returns a silently truncated result. The engine half of the story —
/// the same fault shape now failing loudly — is the next test.
#[test]
fn disconnect_conflated_with_eof_yields_partial_ok() {
    let (tx, rx) = bounded::<Msg>(4);
    let producer = std::thread::spawn(move || {
        for chunk in 0..2i64 {
            let rows: Vec<Row> = (0..10)
                .map(|i| Row::new(vec![Value::Int(chunk * 10 + i)]))
                .collect();
            tx.send(Msg::Batch(sip_common::Batch::new(rows))).unwrap();
        }
        // Producer dies before sending its remaining batches: the channel
        // drops with no Msg::Eof. (A real operator panic does exactly
        // this to its output channel.)
        panic!("producer died mid-stream");
    });
    let mut rows = Vec::new();
    loop {
        match rx.recv() {
            Ok(Msg::Batch(b)) => rows.extend(b.rows),
            Ok(Msg::Cols(b)) => rows.extend(b.to_rows()),
            // The pre-fix consumer seam: disconnect looks like Eof.
            Ok(Msg::Eof) | Err(_) => break,
        }
    }
    assert!(producer.join().is_err(), "producer must have panicked");
    // 20 of the intended 40 rows "successfully" returned — a partial Ok
    // with no indication anything failed. This is what the engine's
    // strict Eof discipline forbids.
    assert_eq!(rows.len(), 20);
}

#[test]
fn operator_panic_is_contained_and_attributed() {
    let c = small_catalog(500);
    let plan = join_agg_plan(&c);
    let opts =
        small_batches().with_faults(FaultPlan::none().with_kind_fault("Scan", 1, FaultKind::Panic));
    let err = execute_baseline(Arc::clone(&plan), opts).unwrap_err();
    assert_eq!(err.layer(), "exec", "panic must surface as an exec error");
    assert_eq!(err.exec_class(), Some(ExecFailure::Panic));
    assert!(err.is_primary(), "a panic is a root cause, not a symptom");
    let msg = err.to_string();
    assert!(
        msg.contains("Scan") && msg.contains("injected fault"),
        "panic error must name the failing operator kind: {msg}"
    );
}

#[test]
fn faults_at_every_kind_never_yield_partial_ok() {
    let c = small_catalog(500);
    let plan = join_agg_plan(&c);
    let expected = canonical(&execute_oracle(&plan).unwrap());
    for kind_name in ["Scan", "HashJoin", "Aggregate"] {
        for (fault, class) in [
            (FaultKind::Panic, ExecFailure::Panic),
            (FaultKind::Error, ExecFailure::Error),
        ] {
            let opts = small_batches().with_faults(FaultPlan::none().with_kind_fault(
                kind_name,
                1,
                fault.clone(),
            ));
            let err = execute_baseline(Arc::clone(&plan), opts).unwrap_err();
            assert_eq!(
                err.exec_class(),
                Some(class),
                "{kind_name}/{fault:?} must classify as {class:?}, got: {err}"
            );
            assert!(
                err.to_string().contains(kind_name),
                "{kind_name}/{fault:?} error must be attributed to the kind: {err}"
            );
        }
    }
    // The same plan with no faults installed is byte-identical to the
    // oracle — the fault machinery costs nothing when idle.
    let out = execute_baseline(plan, small_batches()).unwrap();
    assert_eq!(canonical(&out.rows), expected);
}

#[test]
fn stall_fault_trips_deadline_with_phase_shares() {
    let c = small_catalog(500);
    let plan = join_agg_plan(&c);
    let opts = small_batches()
        .with_trace(TraceLevel::Ops)
        .with_deadline(Duration::from_millis(100))
        .with_faults(FaultPlan::none().with_kind_fault(
            "Scan",
            1,
            FaultKind::Stall(Duration::from_secs(30)),
        ));
    let start = std::time::Instant::now();
    let err = execute_baseline(plan, opts).unwrap_err();
    let elapsed = start.elapsed();
    let msg = err.to_string();
    assert!(
        msg.contains("deadline exceeded"),
        "stalled query must report the deadline, got: {msg}"
    );
    assert!(
        msg.contains("phase shares"),
        "deadline error must attach per-phase time shares, got: {msg}"
    );
    // The stall is 30 s; the deadline must tear the pipeline down long
    // before that (cancellable sleeps wake within their 2 ms slice).
    assert!(
        elapsed < Duration::from_secs(5),
        "deadline must interrupt the stall promptly, took {elapsed:?}"
    );
}

#[test]
fn zero_deadline_rejected_at_config_time() {
    let opts = ExecOptions::default().with_deadline(Duration::ZERO);
    let err = opts.validate().unwrap_err();
    assert_eq!(err.layer(), "config");
    // The executor entry points validate before spawning any thread, so a
    // hand-assembled zero deadline also fails as a config error.
    let c = small_catalog(10);
    let plan = join_agg_plan(&c);
    let err =
        execute_baseline(plan, ExecOptions::default().with_deadline(Duration::ZERO)).unwrap_err();
    assert_eq!(err.layer(), "config");
}

/// Monitor that cancels the query as soon as execution starts (before
/// the first scan batch can clear the emitter's token check) and
/// captures the frozen metrics of the torn-down run.
struct CancelAtStart {
    reasons: Vec<&'static str>,
    probe: TraceProbe,
}

impl ExecMonitor for CancelAtStart {
    fn on_query_start(&self, ctx: &Arc<ExecContext>) {
        for r in &self.reasons {
            ctx.cancel.cancel(*r);
        }
    }
    fn on_trace(&self, ctx: &Arc<ExecContext>, metrics: &sip_engine::ExecMetrics) {
        self.probe.on_trace(ctx, metrics);
    }
}

#[test]
fn cancel_during_first_batch_yields_cancelled_profile() {
    let c = small_catalog(500);
    let plan = join_agg_plan(&c);
    let monitor = Arc::new(CancelAtStart {
        reasons: vec!["user abort"],
        probe: TraceProbe::default(),
    });
    let err = execute(
        Arc::clone(&plan),
        Arc::clone(&monitor) as Arc<dyn ExecMonitor>,
        small_batches().with_trace(TraceLevel::Ops),
    )
    .unwrap_err();
    assert_eq!(err.exec_class(), Some(ExecFailure::Cancelled));
    assert!(
        err.to_string().contains("user abort"),
        "cancellation error must carry the reason: {err}"
    );
    // Even a run cancelled on its first batch freezes coherent metrics
    // and serializes a schema-valid profile flagged `cancelled`.
    let captured = monitor.probe.captured.lock().unwrap();
    assert_eq!(captured.len(), 1, "on_trace must fire for failed runs too");
    let metrics = &captured[0];
    assert!(metrics.cancelled, "metrics must record the cancellation");
    assert_eq!(
        metrics.attribution_underflow, 0,
        "teardown must not corrupt span accounting"
    );
    let profile = QueryProfile::from_run(&plan, metrics, None);
    assert!(profile.cancelled);
    let json = profile.to_json();
    assert!(
        json.contains("\"cancelled\": true"),
        "profile JSON must carry the cancelled flag: {json}"
    );
}

#[test]
fn double_cancel_is_idempotent_first_reason_wins() {
    let c = small_catalog(500);
    let plan = join_agg_plan(&c);
    let monitor = Arc::new(CancelAtStart {
        reasons: vec!["first reason", "second reason"],
        probe: TraceProbe::default(),
    });
    let err = execute(plan, monitor, small_batches()).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("first reason"), "first reason must win: {msg}");
    assert!(
        !msg.contains("second reason"),
        "later cancels are no-ops: {msg}"
    );
}

/// Count this process's live threads via /proc (Linux-only, like the
/// executor's thread-per-operator model this suite exercises).
#[cfg(target_os = "linux")]
fn thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").unwrap();
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .unwrap()
}

#[cfg(target_os = "linux")]
#[test]
fn faulted_runs_leak_no_threads() {
    let c = small_catalog(500);
    let plan = join_agg_plan(&c);
    // Warm up once so lazily-spawned runtime threads don't count as leaks.
    let _ = execute_baseline(Arc::clone(&plan), small_batches());
    let before = thread_count();
    for kind_name in ["Scan", "HashJoin", "Aggregate"] {
        for fault in [FaultKind::Panic, FaultKind::Error] {
            let opts =
                small_batches().with_faults(FaultPlan::none().with_kind_fault(kind_name, 1, fault));
            assert!(execute_baseline(Arc::clone(&plan), opts).is_err());
        }
    }
    let after = thread_count();
    assert_eq!(
        before, after,
        "every faulted run must join all its operator threads"
    );
}

/// A retry policy fast enough for tests: microsecond backoff, three
/// attempts total.
fn test_retry(attempts: u32) -> RetryPolicy {
    RetryPolicy {
        base_backoff: Duration::from_micros(200),
        ..RetryPolicy::with_attempts(attempts)
    }
}

#[test]
fn whole_run_retry_heals_bounded_faults_byte_identically() {
    let c = small_catalog(500);
    let plan = join_agg_plan(&c);
    let expected = canonical(&execute_oracle(&plan).unwrap());
    for kind_name in ["Scan", "HashJoin", "Aggregate"] {
        for fault in [FaultKind::Panic, FaultKind::Error] {
            // The fault fires exactly once (shared ledger), so attempt 2
            // runs clean.
            let opts = small_batches()
                .with_faults(FaultPlan::none().with_kind_fault_times(
                    kind_name,
                    1,
                    fault.clone(),
                    1,
                ))
                .with_retry(test_retry(3));
            let out = execute_with_recovery(Arc::clone(&plan), Arc::new(NoopMonitor), opts)
                .unwrap_or_else(|e| panic!("{kind_name}/{fault:?} must recover, got: {e}"));
            assert_eq!(
                canonical(&out.rows),
                expected,
                "{kind_name}/{fault:?} recovered run diverged from oracle"
            );
            assert!(
                out.metrics.recovered,
                "{kind_name}/{fault:?} must flag recovery"
            );
            assert_eq!(out.metrics.attempts, 2, "{kind_name}/{fault:?} attempts");
        }
    }
}

#[test]
fn retry_budget_exhaustion_names_the_policy() {
    let c = small_catalog(500);
    let plan = join_agg_plan(&c);
    // Unlimited fault: every attempt dies the same way.
    let opts = small_batches()
        .with_faults(FaultPlan::none().with_kind_fault("HashJoin", 1, FaultKind::Error))
        .with_retry(test_retry(3));
    let err = execute_with_recovery(plan, Arc::new(NoopMonitor), opts).unwrap_err();
    assert!(
        is_exhausted(&err),
        "exhaustion must carry the marker: {err}"
    );
    let msg = err.to_string();
    assert!(
        msg.contains("RetryPolicy exhausted after 3/3 attempts"),
        "error must name the spent budget: {msg}"
    );
    assert_eq!(err.exec_class(), Some(ExecFailure::Error));
    assert!(
        msg.contains("HashJoin"),
        "attribution must survive exhaustion marking: {msg}"
    );
}

#[test]
fn non_retryable_classes_fail_on_first_attempt() {
    let c = small_catalog(500);
    let plan = join_agg_plan(&c);
    // Panics declared non-retryable: the policy must not spend attempts.
    let policy = RetryPolicy {
        retry_panic: false,
        ..test_retry(5)
    };
    let opts = small_batches()
        .with_faults(FaultPlan::none().with_kind_fault_times("Scan", 1, FaultKind::Panic, 1))
        .with_retry(policy);
    let err = execute_with_recovery(plan, Arc::new(NoopMonitor), opts).unwrap_err();
    assert_eq!(err.exec_class(), Some(ExecFailure::Panic));
    assert!(
        !is_exhausted(&err),
        "a non-retryable failure is not budget exhaustion: {err}"
    );
}

#[test]
fn cancellation_and_deadlines_are_never_retried() {
    let c = small_catalog(500);
    let plan = join_agg_plan(&c);
    let opts = small_batches()
        .with_deadline(Duration::from_millis(50))
        .with_faults(FaultPlan::none().with_kind_fault(
            "Scan",
            1,
            FaultKind::Stall(Duration::from_secs(30)),
        ))
        .with_retry(test_retry(5));
    let start = std::time::Instant::now();
    let err = execute_with_recovery(plan, Arc::new(NoopMonitor), opts).unwrap_err();
    let elapsed = start.elapsed();
    assert!(
        err.to_string().contains("deadline exceeded"),
        "deadline must win: {err}"
    );
    assert!(
        !is_exhausted(&err),
        "a deadline is not a retry budget: {err}"
    );
    // One deadline, not five: the run was not re-attempted.
    assert!(
        elapsed < Duration::from_secs(5),
        "cancelled runs must not burn retry attempts, took {elapsed:?}"
    );
}

#[test]
fn recovered_profile_reports_attempts() {
    let c = small_catalog(500);
    let plan = join_agg_plan(&c);
    let opts = small_batches()
        .with_faults(FaultPlan::none().with_kind_fault_times("Aggregate", 1, FaultKind::Error, 1))
        .with_retry(test_retry(3));
    let out = execute_with_recovery(Arc::clone(&plan), Arc::new(NoopMonitor), opts).unwrap();
    let profile = QueryProfile::from_run(&plan, &out.metrics, None);
    assert!(profile.recovered);
    assert_eq!(profile.attempts, 2);
    let json = profile.to_json();
    assert!(
        json.contains("\"recovered\": true") && json.contains("\"attempts\": 2"),
        "profile JSON must carry the recovery outcome: {json}"
    );
}

#[cfg(target_os = "linux")]
#[test]
fn recovered_runs_leak_no_threads() {
    let c = small_catalog(500);
    let plan = join_agg_plan(&c);
    let _ = execute_baseline(Arc::clone(&plan), small_batches());
    let before = thread_count();
    for kind_name in ["Scan", "HashJoin", "Aggregate"] {
        let heal = small_batches()
            .with_faults(FaultPlan::none().with_kind_fault_times(kind_name, 1, FaultKind::Panic, 1))
            .with_retry(test_retry(3));
        assert!(execute_with_recovery(Arc::clone(&plan), Arc::new(NoopMonitor), heal).is_ok());
        let exhaust = small_batches()
            .with_faults(FaultPlan::none().with_kind_fault(kind_name, 1, FaultKind::Error))
            .with_retry(test_retry(2));
        assert!(execute_with_recovery(Arc::clone(&plan), Arc::new(NoopMonitor), exhaust).is_err());
    }
    let after = thread_count();
    assert_eq!(
        before, after,
        "every retried run must join all threads of every attempt"
    );
}

#[test]
fn fault_free_runs_with_generous_deadline_match_oracle() {
    let c = small_catalog(400);
    let plan = join_agg_plan(&c);
    let expected = canonical(&execute_oracle(&plan).unwrap());
    for batch in [1usize, 3, 64] {
        let opts = ExecOptions {
            batch_size: batch,
            channel_capacity: 1,
            ..Default::default()
        }
        .with_deadline(Duration::from_secs(60));
        let out: QueryOutput = execute_baseline(Arc::clone(&plan), opts).unwrap();
        assert_eq!(canonical(&out.rows), expected, "batch={batch}");
    }
}
