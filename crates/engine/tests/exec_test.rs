//! Differential tests: the threaded push engine must agree with the
//! single-threaded oracle on every plan shape, batch size, and delay
//! configuration.

use sip_data::{generate, Catalog, TpchConfig};
use sip_engine::{
    canonical, execute_baseline, execute_oracle, lower, DelayModel, ExecOptions, PhysPlan,
};
use sip_expr::{AggFunc, CmpOp, Expr};
use sip_plan::QueryBuilder;
use std::sync::Arc;
use std::time::Duration;

fn catalog() -> Catalog {
    generate(&TpchConfig {
        scale_factor: 0.005,
        seed: 77,
        zipf_z: 0.0,
    })
    .unwrap()
}

/// part(p_size=1) ⋈ partsupp — simple SPJ.
fn spj_plan(c: &Catalog) -> PhysPlan {
    let mut q = QueryBuilder::new(c);
    let p = q
        .scan("part", "p", &["p_partkey", "p_size", "p_retailprice"])
        .unwrap();
    let pred = p.col("p_size").unwrap().eq(Expr::lit(1i64));
    let p = q.filter(p, pred);
    let ps = q
        .scan("partsupp", "ps", &["ps_partkey", "ps_supplycost"])
        .unwrap();
    let j = q.join(p, ps, &[("p.p_partkey", "ps.ps_partkey")]).unwrap();
    let out = q
        .project_cols(j, &["p.p_partkey", "ps.ps_supplycost"])
        .unwrap();
    let plan = out.into_plan();
    lower(&plan, q.into_attrs(), c).unwrap()
}

/// Bushy plan with aggregation on both sides of the root join — the shape
/// of the paper's Fig. 1.
fn bushy_agg_plan(c: &Catalog) -> PhysPlan {
    let mut q = QueryBuilder::new(c);
    // Left: part ⋈ partsupp with a price predicate, projected + distinct.
    let p = q
        .scan("part", "p", &["p_partkey", "p_retailprice"])
        .unwrap();
    let ps1 = q
        .scan("partsupp", "ps1", &["ps_partkey", "ps_supplycost"])
        .unwrap();
    let residual = ps1
        .col("ps_supplycost")
        .unwrap()
        .mul(Expr::lit(2.0f64))
        .cmp(CmpOp::Lt, p.col("p_retailprice").unwrap());
    let left = q
        .join_residual(p, ps1, &[("p.p_partkey", "ps1.ps_partkey")], Some(residual))
        .unwrap();
    let left = q.distinct(q.project_cols(left, &["p.p_partkey"]).unwrap());
    // Right: sum of availqty per part.
    let ps2 = q
        .scan("partsupp", "ps2", &["ps_partkey", "ps_availqty"])
        .unwrap();
    let qty = ps2.col("ps_availqty").unwrap();
    let avail = q
        .aggregate(ps2, &["ps_partkey"], &[(AggFunc::Sum, qty, "avail")])
        .unwrap();
    let j = q
        .join(left, avail, &[("p.p_partkey", "ps2.ps_partkey")])
        .unwrap();
    let out = q.project_cols(j, &["p.p_partkey", "avail"]).unwrap();
    let plan = out.into_plan();
    lower(&plan, q.into_attrs(), c).unwrap()
}

/// Aggregation above a join, with expressions (TPC-H 5 shape).
fn agg_over_join_plan(c: &Catalog) -> PhysPlan {
    let mut q = QueryBuilder::new(c);
    let n = q.scan("nation", "n", &["n_nationkey", "n_name"]).unwrap();
    let s = q
        .scan("supplier", "s", &["s_suppkey", "s_nationkey"])
        .unwrap();
    let l = q
        .scan(
            "lineitem",
            "l",
            &["l_suppkey", "l_extendedprice", "l_discount"],
        )
        .unwrap();
    let sn = q.join(s, n, &[("s.s_nationkey", "n.n_nationkey")]).unwrap();
    let lsn = q.join(l, sn, &[("l.l_suppkey", "s.s_suppkey")]).unwrap();
    let revenue = lsn
        .col("l_extendedprice")
        .unwrap()
        .mul(Expr::lit(1.0f64).sub(lsn.col("l_discount").unwrap()));
    let agg = q
        .aggregate(lsn, &["n_name"], &[(AggFunc::Sum, revenue, "revenue")])
        .unwrap();
    let plan = agg.into_plan();
    lower(&plan, q.into_attrs(), c).unwrap()
}

fn check_matches_oracle(plan: PhysPlan, opts: ExecOptions) {
    let expected = canonical(&execute_oracle(&plan).unwrap());
    let got = execute_baseline(Arc::new(plan), opts).unwrap();
    assert_eq!(canonical(&got.rows), expected);
}

#[test]
fn spj_matches_oracle() {
    let c = catalog();
    check_matches_oracle(spj_plan(&c), ExecOptions::default());
}

#[test]
fn spj_matches_oracle_tiny_batches() {
    let c = catalog();
    let opts = ExecOptions {
        batch_size: 3,
        channel_capacity: 1,
        ..Default::default()
    };
    check_matches_oracle(spj_plan(&c), opts);
}

#[test]
fn bushy_agg_matches_oracle() {
    let c = catalog();
    check_matches_oracle(bushy_agg_plan(&c), ExecOptions::default());
}

#[test]
fn bushy_agg_matches_oracle_under_delay() {
    let c = catalog();
    let opts = ExecOptions::default()
        .with_delay("ps2", DelayModel::initial_only(Duration::from_millis(30)));
    check_matches_oracle(bushy_agg_plan(&c), opts);
}

#[test]
fn agg_over_join_matches_oracle() {
    let c = catalog();
    check_matches_oracle(agg_over_join_plan(&c), ExecOptions::default());
}

#[test]
fn repeated_runs_are_equivalent() {
    // Scheduling nondeterminism must never change the result multiset.
    let c = catalog();
    let mut results = Vec::new();
    for _ in 0..5 {
        let got = execute_baseline(Arc::new(bushy_agg_plan(&c)), ExecOptions::default()).unwrap();
        results.push(canonical(&got.rows));
    }
    for r in &results[1..] {
        assert_eq!(r, &results[0]);
    }
}

#[test]
fn metrics_report_rows_and_state() {
    let c = catalog();
    let plan = bushy_agg_plan(&c);
    let got = execute_baseline(Arc::new(plan), ExecOptions::default()).unwrap();
    assert!(got.metrics.rows_out > 0);
    assert_eq!(got.metrics.rows_out as usize, got.rows.len());
    // Stateful operators buffered something.
    assert!(got.metrics.peak_state_bytes > 0);
    // All state released at the end.
    assert!(got.metrics.wall_time > Duration::ZERO);
    assert_eq!(got.metrics.filters_injected, 0);
    assert_eq!(got.metrics.aip_dropped_total, 0);
}

#[test]
fn delay_slows_execution() {
    let c = catalog();
    let fast = execute_baseline(Arc::new(spj_plan(&c)), ExecOptions::default())
        .unwrap()
        .metrics
        .wall_time;
    let slow_opts = ExecOptions::default()
        .with_delay("ps", DelayModel::initial_only(Duration::from_millis(150)));
    let slow = execute_baseline(Arc::new(spj_plan(&c)), slow_opts)
        .unwrap()
        .metrics
        .wall_time;
    assert!(
        slow >= fast + Duration::from_millis(100),
        "slow {slow:?} vs fast {fast:?}"
    );
}

#[test]
fn collect_rows_off_still_counts() {
    let c = catalog();
    let opts = ExecOptions {
        collect_rows: false,
        ..Default::default()
    };
    let with = execute_baseline(Arc::new(spj_plan(&c)), ExecOptions::default()).unwrap();
    let without = execute_baseline(Arc::new(spj_plan(&c)), opts).unwrap();
    assert!(without.rows.is_empty());
    assert_eq!(without.metrics.rows_out, with.metrics.rows_out);
}
