//! A deterministic, single-threaded reference executor.
//!
//! Evaluates a physical plan bottom-up with full materialization — no
//! threads, channels, taps, or monitors. Differential tests compare the
//! threaded engine (under every AIP strategy) against this oracle: by the
//! semijoin-equivalence argument of §III-B, all of them must produce the
//! same multiset of rows.

use crate::operators::key_of;
use crate::physical::{PhysKind, PhysPlan};
use sip_common::{exec_err, FxHashMap, FxHashSet, OpId, Result, Row};
use sip_expr::AggAccumulator;

/// Evaluate the plan and return the root's output rows (multiset order
/// unspecified but deterministic for a fixed plan).
pub fn execute_oracle(plan: &PhysPlan) -> Result<Vec<Row>> {
    plan.validate()?;
    let mut outputs: Vec<Option<Vec<Row>>> = vec![None; plan.nodes.len()];
    for node in &plan.nodes {
        let rows = eval_node(plan, node.id, &mut outputs)?;
        outputs[node.id.index()] = Some(rows);
    }
    Ok(outputs[plan.root.index()].take().expect("root evaluated"))
}

fn take_input(outputs: &mut [Option<Vec<Row>>], op: OpId) -> Vec<Row> {
    outputs[op.index()].take().expect("child already evaluated")
}

fn eval_node(plan: &PhysPlan, op: OpId, outputs: &mut [Option<Vec<Row>>]) -> Result<Vec<Row>> {
    let node = plan.node(op);
    match &node.kind {
        PhysKind::Scan {
            table, cols, part, ..
        } => Ok(table
            .rows()
            .iter()
            .enumerate()
            .map(|(i, r)| (i, r.project(cols)))
            .filter(|(i, r)| match part {
                Some(p) => p.owns_row(r.key_hash(&[p.col]), *i as u64),
                None => true,
            })
            .map(|(_, r)| r)
            .collect()),
        PhysKind::ExternalSource { label } => {
            Err(exec_err!("oracle cannot evaluate external source {label}"))
        }
        PhysKind::Filter { predicate } => {
            let input = take_input(outputs, node.inputs[0]);
            let mut out = Vec::new();
            for row in input {
                if predicate.eval_bool(&row)? {
                    out.push(row);
                }
            }
            Ok(out)
        }
        PhysKind::Project { exprs } => {
            let input = take_input(outputs, node.inputs[0]);
            let mut out = Vec::with_capacity(input.len());
            for row in input {
                let mut vals = Vec::with_capacity(exprs.len());
                for e in exprs {
                    vals.push(e.eval(&row)?);
                }
                out.push(Row::new(vals));
            }
            Ok(out)
        }
        PhysKind::HashJoin {
            left_keys,
            right_keys,
            residual,
        } => {
            let left = take_input(outputs, node.inputs[0]);
            let right = take_input(outputs, node.inputs[1]);
            // Classic build-probe join (build on right).
            let mut table: FxHashMap<u64, Vec<&Row>> = FxHashMap::default();
            for r in &right {
                if let Some((d, _)) = key_of(r, right_keys) {
                    table.entry(d).or_default().push(r);
                }
            }
            let mut out = Vec::new();
            for l in &left {
                let Some((d, key)) = key_of(l, left_keys) else {
                    continue;
                };
                if let Some(cands) = table.get(&d) {
                    for r in cands {
                        let matches = right_keys
                            .iter()
                            .zip(key.iter())
                            .all(|(&p, k)| r.get(p) == k);
                        if !matches {
                            continue;
                        }
                        let joined = l.concat(r);
                        match residual {
                            Some(pred) if !pred.eval_bool(&joined)? => {}
                            _ => out.push(joined),
                        }
                    }
                }
            }
            Ok(out)
        }
        PhysKind::Aggregate { group_cols, aggs } => {
            let input = take_input(outputs, node.inputs[0]);
            let mut groups: FxHashMap<u64, Vec<(Row, Vec<AggAccumulator>)>> = FxHashMap::default();
            for row in &input {
                let Some((d, _)) = key_of(row, group_cols) else {
                    continue;
                };
                let bucket = groups.entry(d).or_default();
                let found = bucket.iter_mut().find(|(k, _)| {
                    group_cols
                        .iter()
                        .enumerate()
                        .all(|(i, &p)| k.get(i) == row.get(p))
                });
                let entry = match found {
                    Some(e) => e,
                    None => {
                        bucket.push((
                            row.project(group_cols),
                            aggs.iter().map(|a| a.func.accumulator()).collect(),
                        ));
                        bucket.last_mut().unwrap()
                    }
                };
                for (acc, spec) in entry.1.iter_mut().zip(aggs.iter()) {
                    acc.update(&spec.input.eval(row)?)?;
                }
            }
            let mut out = Vec::new();
            for bucket in groups.values() {
                for (key, accs) in bucket {
                    let mut vals = key.values().to_vec();
                    for acc in accs {
                        vals.push(acc.finish());
                    }
                    out.push(Row::new(vals));
                }
            }
            Ok(out)
        }
        PhysKind::Distinct => {
            let input = take_input(outputs, node.inputs[0]);
            let mut seen: FxHashSet<Row> = FxHashSet::default();
            let mut out = Vec::new();
            for row in input {
                if seen.insert(row.clone()) {
                    out.push(row);
                }
            }
            Ok(out)
        }
        PhysKind::Exchange {
            col,
            partition,
            dop,
        } => {
            let input = take_input(outputs, node.inputs[0]);
            Ok(input
                .into_iter()
                .filter(|r| sip_common::hash::partition_of(r.key_hash(&[*col]), *dop) == *partition)
                .collect())
        }
        PhysKind::Merge => {
            let mut out = Vec::new();
            for &c in &node.inputs {
                out.extend(take_input(outputs, c));
            }
            Ok(out)
        }
        // A writer's materialized "output" is its full input — the rows it
        // would spray over the mesh. Readers gather from every writer of
        // their mesh by *cloning* (not taking): a mesh has `dop` readers
        // but each writer has at most one tree parent, so ownership-based
        // take_input cannot model the all-to-all edge.
        PhysKind::ShuffleWrite { .. } => Ok(take_input(outputs, node.inputs[0])),
        PhysKind::ShuffleRead {
            mesh,
            partition,
            dop,
            ..
        } => {
            let mut out = Vec::new();
            for w in &plan.nodes {
                let PhysKind::ShuffleWrite {
                    mesh: m,
                    col,
                    writer,
                    salt,
                    ..
                } = &w.kind
                else {
                    continue;
                };
                if m != mesh {
                    continue;
                }
                let rows = outputs[w.id.index()]
                    .as_ref()
                    .expect("mesh writers precede readers (validate_meshes)");
                // Salted keys route outside the hash invariant: scattered
                // rows are dealt round-robin (any single destination per
                // row is correct because the matching build rows are
                // replicated; the oracle picks a deterministic deal keyed
                // on writer index + per-writer salted-row ordinal),
                // broadcast rows reach every partition.
                let mut salted_seen = 0u64;
                for r in rows {
                    let digest = r.key_hash(&[*col]);
                    let keep = match salt {
                        Some(s) if s.keys.covers(digest) => match s.role {
                            crate::physical::SaltRole::Scatter => {
                                let dest = ((*writer as u64 + salted_seen) % *dop as u64) as u32;
                                salted_seen += 1;
                                dest == *partition
                            }
                            crate::physical::SaltRole::Broadcast => true,
                        },
                        _ => sip_common::hash::partition_of(digest, *dop) == *partition,
                    };
                    if keep {
                        out.push(r.clone());
                    }
                }
            }
            Ok(out)
        }
        PhysKind::SemiJoin {
            probe_keys,
            build_keys,
        } => {
            let probe = take_input(outputs, node.inputs[0]);
            let build = take_input(outputs, node.inputs[1]);
            let mut keys: FxHashMap<u64, Vec<Vec<sip_common::Value>>> = FxHashMap::default();
            for r in &build {
                if let Some((d, k)) = key_of(r, build_keys) {
                    let bucket = keys.entry(d).or_default();
                    if !bucket.iter().any(|x| x == &k) {
                        bucket.push(k);
                    }
                }
            }
            let mut out = Vec::new();
            for row in probe {
                let Some((d, k)) = key_of(&row, probe_keys) else {
                    continue;
                };
                if keys
                    .get(&d)
                    .map(|b| b.iter().any(|x| x == &k))
                    .unwrap_or(false)
                {
                    out.push(row);
                }
            }
            Ok(out)
        }
    }
}

/// Canonicalize a multiset of rows for comparison: sort by display form.
/// Floats are rounded to 6 decimals so accumulation order cannot flip a
/// comparison.
pub fn canonical(rows: &[Row]) -> Vec<String> {
    let mut keys: Vec<String> = rows
        .iter()
        .map(|r| {
            r.values()
                .iter()
                .map(|v| match v {
                    sip_common::Value::Float(f) => format!("{:.6}", f),
                    other => other.to_string(),
                })
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    keys.sort_unstable();
    keys
}
