//! Per-operator and per-query metrics.
//!
//! Tukwila "supplement\[s\] all query operators with cardinality counters"
//! (§V-A); those counters are what the cost-based AIP manager's
//! `UPDATEESTIMATES` reads at runtime. State bytes feed both per-operator
//! peaks and the global [`StateTracker`] whose high-water mark is the
//! paper's "Intermediate State (MB)" metric.

use parking_lot::Mutex;
use sip_common::bytes::StateTracker;
use sip_common::OpId;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Live counters for one operator. All relaxed atomics — they are
/// monotonically-increasing counters, not synchronization.
#[derive(Debug, Default)]
pub struct OpMetrics {
    /// Rows received per input (index 0/1).
    pub rows_in: [AtomicU64; 2],
    /// Rows emitted.
    pub rows_out: AtomicU64,
    /// Rows probed against injected AIP filters at this node's output.
    pub aip_probed: AtomicU64,
    /// Rows dropped by injected AIP filters.
    pub aip_dropped: AtomicU64,
    /// Current buffered state bytes.
    pub state_bytes: AtomicI64,
    /// Peak buffered state bytes for this operator.
    pub state_peak: AtomicU64,
    /// Input EOF flags.
    pub input_done: [AtomicBool; 2],
    /// Set once the operator has emitted its own EOF.
    pub finished: AtomicBool,
    /// For routing operators (ShuffleWrite, Exchange): rows routed per
    /// destination partition, published once at operator finish — the raw
    /// material of the skew report (`max/mean` over destinations shows a
    /// hot key saturating one reader, and whether salting levelled it).
    pub routed: Mutex<Vec<u64>>,
    /// Heavy-hitter keys the routing operator's online space-saving sketch
    /// observed crossing the hot threshold (share of the stream above
    /// `1/dop`) — near-zero-cost skew observability fed by the digest pass
    /// the router already computes.
    pub hot_keys_observed: AtomicU64,
}

impl OpMetrics {
    /// Record state growth/shrink, updating the per-op peak and the global
    /// tracker.
    pub fn add_state(&self, delta: i64, global: &StateTracker) {
        let now = self.state_bytes.fetch_add(delta, Ordering::Relaxed) + delta;
        if delta > 0 {
            let now_u = now.max(0) as u64;
            let mut seen = self.state_peak.load(Ordering::Relaxed);
            while now_u > seen {
                match self.state_peak.compare_exchange_weak(
                    seen,
                    now_u,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(cur) => seen = cur,
                }
            }
        }
        global.add(delta);
    }

    /// Publish a routing operator's per-destination row counts and the
    /// number of heavy hitters its online sketch observed (merging with
    /// any sibling's counts — a distribute mesh has one writer, an
    /// all-to-all mesh merges nothing because each writer is its own op).
    pub fn record_routing(&self, routed: &[u64], hot_keys: u64) {
        let mut guard = self.routed.lock();
        if guard.len() < routed.len() {
            guard.resize(routed.len(), 0);
        }
        for (slot, n) in guard.iter_mut().zip(routed.iter()) {
            *slot += n;
        }
        self.hot_keys_observed
            .fetch_add(hot_keys, Ordering::Relaxed);
    }

    /// Snapshot for reporting.
    pub fn snapshot(&self, op: OpId) -> OpMetricsSnapshot {
        OpMetricsSnapshot {
            op,
            rows_in: [
                self.rows_in[0].load(Ordering::Relaxed),
                self.rows_in[1].load(Ordering::Relaxed),
            ],
            rows_out: self.rows_out.load(Ordering::Relaxed),
            aip_probed: self.aip_probed.load(Ordering::Relaxed),
            aip_dropped: self.aip_dropped.load(Ordering::Relaxed),
            state_peak: self.state_peak.load(Ordering::Relaxed),
            routed: self.routed.lock().clone(),
            hot_keys_observed: self.hot_keys_observed.load(Ordering::Relaxed),
        }
    }
}

/// Frozen per-operator counters.
#[derive(Clone, Debug)]
pub struct OpMetricsSnapshot {
    /// Operator id.
    pub op: OpId,
    /// Rows received per input.
    pub rows_in: [u64; 2],
    /// Rows emitted.
    pub rows_out: u64,
    /// AIP probes at this operator.
    pub aip_probed: u64,
    /// AIP drops at this operator.
    pub aip_dropped: u64,
    /// Peak buffered bytes.
    pub state_peak: u64,
    /// Rows routed per destination partition (routing operators only;
    /// empty elsewhere).
    pub routed: Vec<u64>,
    /// Heavy hitters the routing operator's online sketch observed.
    pub hot_keys_observed: u64,
}

/// Whole-query result metrics.
#[derive(Clone, Debug)]
pub struct ExecMetrics {
    /// Wall-clock execution time.
    pub wall_time: Duration,
    /// Exact peak of summed intermediate state (bytes).
    pub peak_state_bytes: u64,
    /// Intermediate-state bytes still held when the query finished (should
    /// be zero: every operator must release what it buffered).
    pub final_state_bytes: u64,
    /// Per-operator snapshots, indexed by operator id.
    pub per_op: Vec<OpMetricsSnapshot>,
    /// Rows the root produced.
    pub rows_out: u64,
    /// Total rows dropped by AIP filters anywhere in the plan.
    pub aip_dropped_total: u64,
    /// Number of AIP filters injected during the run.
    pub filters_injected: u64,
    /// Simulated bytes shipped between sites (0 for local queries).
    pub network_bytes: u64,
}

impl ExecMetrics {
    /// Peak state in MB (the paper's y-axis).
    pub fn peak_state_mb(&self) -> f64 {
        self.peak_state_bytes as f64 / (1024.0 * 1024.0)
    }

    /// Roll the per-operator counters of a partition-parallel run up to one
    /// row per worker partition (serial-section operators are excluded).
    pub fn per_partition(&self, map: &crate::context::PartitionMap) -> Vec<PartitionSnapshot> {
        let mut out: Vec<PartitionSnapshot> = (0..map.dop)
            .map(|p| PartitionSnapshot {
                partition: p,
                rows_out: 0,
                aip_probed: 0,
                aip_dropped: 0,
                state_peak: 0,
                rows_routed_in: 0,
            })
            .collect();
        for m in &self.per_op {
            if let Some(p) = map.partition(m.op) {
                let s = &mut out[p as usize];
                s.rows_out += m.rows_out;
                s.aip_probed += m.aip_probed;
                s.aip_dropped += m.aip_dropped;
                s.state_peak += m.state_peak;
            }
            // Routing operators (wherever they live, including serial-
            // section distribute writers) credit the rows they sent to
            // each *destination* partition — the skew view: a hot key
            // shows up as one partition's rows_routed_in towering over
            // the others.
            for (p, &n) in m.routed.iter().enumerate() {
                if p < out.len() {
                    out[p].rows_routed_in += n;
                }
            }
        }
        out
    }
}

/// Counters of one worker partition of a parallel run, summed over the
/// partition's operator clones.
#[derive(Clone, Debug)]
pub struct PartitionSnapshot {
    /// The partition index.
    pub partition: u32,
    /// Rows emitted by the partition's operators.
    pub rows_out: u64,
    /// Rows probed against AIP filters inside the partition.
    pub aip_probed: u64,
    /// Rows dropped by AIP filters inside the partition.
    pub aip_dropped: u64,
    /// Sum of the partition operators' peak state bytes.
    pub state_peak: u64,
    /// Rows routing operators (ShuffleWrite/Exchange) sent *to* this
    /// partition — the per-destination skew view.
    pub rows_routed_in: u64,
}

/// Shared metrics hub for one execution.
#[derive(Debug)]
pub struct MetricsHub {
    /// Per-op metrics, indexed by OpId.
    pub ops: Vec<Arc<OpMetrics>>,
    /// Global intermediate-state tracker.
    pub state: Arc<StateTracker>,
    /// Filters injected (incremented by controllers).
    pub filters_injected: AtomicU64,
    /// Simulated network bytes (incremented by sip-net).
    pub network_bytes: AtomicU64,
}

impl MetricsHub {
    /// A hub for `n_ops` operators.
    pub fn new(n_ops: usize) -> Arc<Self> {
        Arc::new(MetricsHub {
            ops: (0..n_ops).map(|_| Arc::new(OpMetrics::default())).collect(),
            state: StateTracker::new(),
            filters_injected: AtomicU64::new(0),
            network_bytes: AtomicU64::new(0),
        })
    }

    /// Metrics for one op.
    pub fn op(&self, op: OpId) -> &OpMetrics {
        &self.ops[op.index()]
    }

    /// Freeze into an [`ExecMetrics`].
    pub fn finish(&self, wall_time: Duration, rows_out: u64) -> ExecMetrics {
        let per_op: Vec<OpMetricsSnapshot> = self
            .ops
            .iter()
            .enumerate()
            .map(|(i, m)| m.snapshot(OpId(i as u32)))
            .collect();
        let aip_dropped_total = per_op.iter().map(|m| m.aip_dropped).sum();
        ExecMetrics {
            wall_time,
            peak_state_bytes: self.state.peak(),
            final_state_bytes: self.state.current(),
            per_op,
            rows_out,
            aip_dropped_total,
            filters_injected: self.filters_injected.load(Ordering::Relaxed),
            network_bytes: self.network_bytes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_op_peak_tracks_max() {
        let hub = MetricsHub::new(2);
        let m = hub.op(OpId(0));
        m.add_state(100, &hub.state);
        m.add_state(-40, &hub.state);
        m.add_state(20, &hub.state);
        assert_eq!(m.state_bytes.load(Ordering::Relaxed), 80);
        assert_eq!(m.state_peak.load(Ordering::Relaxed), 100);
        assert_eq!(hub.state.peak(), 100);
    }

    #[test]
    fn global_peak_sums_operators() {
        let hub = MetricsHub::new(2);
        hub.op(OpId(0)).add_state(100, &hub.state);
        hub.op(OpId(1)).add_state(100, &hub.state);
        hub.op(OpId(0)).add_state(-100, &hub.state);
        assert_eq!(hub.state.peak(), 200);
        assert_eq!(hub.state.current(), 100);
    }

    #[test]
    fn finish_aggregates() {
        let hub = MetricsHub::new(2);
        hub.op(OpId(0)).aip_dropped.store(5, Ordering::Relaxed);
        hub.op(OpId(1)).aip_dropped.store(7, Ordering::Relaxed);
        hub.filters_injected.store(2, Ordering::Relaxed);
        let m = hub.finish(Duration::from_millis(10), 42);
        assert_eq!(m.rows_out, 42);
        assert_eq!(m.aip_dropped_total, 12);
        assert_eq!(m.filters_injected, 2);
        assert_eq!(m.per_op.len(), 2);
        assert_eq!(m.per_op[1].op, OpId(1));
    }

    #[test]
    fn routing_counts_merge_and_snapshot() {
        let hub = MetricsHub::new(2);
        let m = hub.op(OpId(0));
        m.record_routing(&[5, 0, 7], 1);
        m.record_routing(&[1, 2, 3, 4], 2); // a wider merge grows the vec
        let snap = m.snapshot(OpId(0));
        assert_eq!(snap.routed, vec![6, 2, 10, 4]);
        assert_eq!(snap.hot_keys_observed, 3);
        assert!(hub.op(OpId(1)).snapshot(OpId(1)).routed.is_empty());
    }

    #[test]
    fn mb_conversion() {
        let hub = MetricsHub::new(1);
        hub.op(OpId(0)).add_state(2 * 1024 * 1024, &hub.state);
        let m = hub.finish(Duration::ZERO, 0);
        assert!((m.peak_state_mb() - 2.0).abs() < 1e-9);
    }
}
