//! Per-operator and per-query metrics.
//!
//! Tukwila "supplement\[s\] all query operators with cardinality counters"
//! (§V-A); those counters are what the cost-based AIP manager's
//! `UPDATEESTIMATES` reads at runtime. State bytes feed both per-operator
//! peaks and the global [`StateTracker`] whose high-water mark is the
//! paper's "Intermediate State (MB)" metric.
//!
//! Timing comes from the `sip-trace` layer ([`sip_common::trace`]): every
//! operator thread accumulates phase spans in a thread-local
//! [`sip_common::OpTracer`] and hands them to the hub's [`TraceHub`] once
//! at finish; [`MetricsHub::finish`] merges them into the per-operator
//! snapshots. Routing counts travel the same path — there is no longer any
//! `Mutex` merge on the operator side.

use sip_common::bytes::StateTracker;
use sip_common::trace::{FilterEvent, SpanEvent, TraceHub, TraceLevel, N_PHASES};
use sip_common::{OpId, Phase};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Live counters for one operator. All relaxed atomics — they are
/// monotonically-increasing counters, not synchronization.
#[derive(Debug, Default)]
pub struct OpMetrics {
    /// Rows received per input (index 0/1).
    pub rows_in: [AtomicU64; 2],
    /// Batches received across inputs (what Compute span counts are
    /// checked against in the profile tests).
    pub batches_in: AtomicU64,
    /// Rows emitted.
    pub rows_out: AtomicU64,
    /// Rows probed against injected AIP filters at this node's output.
    pub aip_probed: AtomicU64,
    /// Rows dropped by injected AIP filters.
    pub aip_dropped: AtomicU64,
    /// Current buffered state bytes.
    pub state_bytes: AtomicI64,
    /// Peak buffered state bytes for this operator.
    pub state_peak: AtomicU64,
    /// Input EOF flags.
    pub input_done: [AtomicBool; 2],
    /// Set once the operator has emitted its own EOF.
    pub finished: AtomicBool,
    /// Recovery retries spent on this operator (fragment replays this
    /// operator took part in, or whole-run attempts it was re-run by).
    pub retries: AtomicU64,
    /// Speculative duplicate executions launched for this operator by
    /// the straggler detector.
    pub speculated: AtomicU64,
}

impl OpMetrics {
    /// Record state growth/shrink, updating the per-op peak and the global
    /// tracker.
    pub fn add_state(&self, delta: i64, global: &StateTracker) {
        let now = self.state_bytes.fetch_add(delta, Ordering::Relaxed) + delta;
        if delta > 0 {
            let now_u = now.max(0) as u64;
            let mut seen = self.state_peak.load(Ordering::Relaxed);
            while now_u > seen {
                match self.state_peak.compare_exchange_weak(
                    seen,
                    now_u,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(cur) => seen = cur,
                }
            }
        }
        global.add(delta);
    }

    /// Fold another operator's counters into this one. Used by the
    /// recovery layer when a fragment attempt wins: the winning view's
    /// hub holds a complete, as-if-clean-run accounting for the fragment
    /// operators (the winner recomputed the whole stream, whoever's
    /// batches crossed the seam), and it lands in the global hub exactly
    /// once. Counters add; peaks take the max; completion flags OR.
    pub fn absorb(&self, other: &OpMetrics) {
        for i in 0..2 {
            self.rows_in[i].fetch_add(other.rows_in[i].load(Ordering::Relaxed), Ordering::Relaxed);
            if other.input_done[i].load(Ordering::Relaxed) {
                self.input_done[i].store(true, Ordering::Relaxed);
            }
        }
        for (dst, src) in [
            (&self.batches_in, &other.batches_in),
            (&self.rows_out, &other.rows_out),
            (&self.aip_probed, &other.aip_probed),
            (&self.aip_dropped, &other.aip_dropped),
            (&self.retries, &other.retries),
            (&self.speculated, &other.speculated),
        ] {
            dst.fetch_add(src.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.state_peak
            .fetch_max(other.state_peak.load(Ordering::Relaxed), Ordering::Relaxed);
        if other.finished.load(Ordering::Relaxed) {
            self.finished.store(true, Ordering::Relaxed);
        }
    }

    /// Snapshot the atomic counters. Trace-derived fields (phases, routing,
    /// occupancy) are zero here — [`MetricsHub::finish`] overlays them from
    /// the merged thread traces.
    pub fn snapshot(&self, op: OpId) -> OpMetricsSnapshot {
        OpMetricsSnapshot {
            op,
            retries: self.retries.load(Ordering::Relaxed),
            speculated: self.speculated.load(Ordering::Relaxed),
            rows_in: [
                self.rows_in[0].load(Ordering::Relaxed),
                self.rows_in[1].load(Ordering::Relaxed),
            ],
            batches_in: self.batches_in.load(Ordering::Relaxed),
            rows_out: self.rows_out.load(Ordering::Relaxed),
            aip_probed: self.aip_probed.load(Ordering::Relaxed),
            aip_dropped: self.aip_dropped.load(Ordering::Relaxed),
            state_peak: self.state_peak.load(Ordering::Relaxed),
            phase_nanos: [0; N_PHASES],
            phase_counts: [0; N_PHASES],
            routed: Vec::new(),
            hot_keys_observed: 0,
            occupancy_sum: 0,
            occupancy_samples: 0,
        }
    }
}

/// Frozen per-operator counters.
#[derive(Clone, Debug)]
pub struct OpMetricsSnapshot {
    /// Operator id.
    pub op: OpId,
    /// Rows received per input.
    pub rows_in: [u64; 2],
    /// Batches received across inputs.
    pub batches_in: u64,
    /// Rows emitted.
    pub rows_out: u64,
    /// AIP probes at this operator.
    pub aip_probed: u64,
    /// AIP drops at this operator.
    pub aip_dropped: u64,
    /// Peak buffered bytes.
    pub state_peak: u64,
    /// Nanoseconds attributed per [`Phase`] (zero with tracing off). The
    /// `Compute` slot already has nested emitter-flush time subtracted, so
    /// the phases partition the operator's busy time.
    pub phase_nanos: [u64; N_PHASES],
    /// Spans recorded per [`Phase`].
    pub phase_counts: [u64; N_PHASES],
    /// Rows routed per destination partition (routing operators only;
    /// empty elsewhere).
    pub routed: Vec<u64>,
    /// Heavy hitters the routing operator's online sketch observed.
    pub hot_keys_observed: u64,
    /// Sum of sampled downstream-channel queue lengths at send time.
    pub occupancy_sum: u64,
    /// Number of occupancy samples.
    pub occupancy_samples: u64,
    /// Recovery retries this operator took part in (0 on a clean run).
    pub retries: u64,
    /// Speculative duplicates launched for this operator.
    pub speculated: u64,
}

impl OpMetricsSnapshot {
    /// Total attributed busy nanoseconds (sum over phases).
    pub fn busy_nanos(&self) -> u64 {
        self.phase_nanos.iter().sum()
    }

    /// Nanoseconds attributed to one phase.
    pub fn phase(&self, p: Phase) -> u64 {
        self.phase_nanos[p as usize]
    }

    /// Mean sampled occupancy of this operator's downstream channel, or
    /// `None` when nothing was sampled.
    pub fn occupancy_mean(&self) -> Option<f64> {
        if self.occupancy_samples == 0 {
            None
        } else {
            Some(self.occupancy_sum as f64 / self.occupancy_samples as f64)
        }
    }
}

/// ROI of one injected AIP filter at query end: probe/drop counters from
/// the live filter plus the working set's size. Collected from the taps
/// when metrics are frozen.
#[derive(Clone, Debug)]
pub struct FilterStat {
    /// The operator the filter was injected at.
    pub site: OpId,
    /// Filter label (producer attribute).
    pub label: String,
    /// Rows probed against this filter.
    pub probed: u64,
    /// Rows it dropped.
    pub dropped: u64,
    /// Keys in the working set.
    pub keys: u64,
    /// Footprint in bytes.
    pub bytes: u64,
}

/// Whole-query result metrics.
#[derive(Clone, Debug)]
pub struct ExecMetrics {
    /// Wall-clock execution time.
    pub wall_time: Duration,
    /// Exact peak of summed intermediate state (bytes).
    pub peak_state_bytes: u64,
    /// Intermediate-state bytes still held when the query finished (should
    /// be zero: every operator must release what it buffered).
    pub final_state_bytes: u64,
    /// Per-operator snapshots, indexed by operator id.
    pub per_op: Vec<OpMetricsSnapshot>,
    /// Rows the root produced.
    pub rows_out: u64,
    /// Total rows dropped by AIP filters anywhere in the plan.
    pub aip_dropped_total: u64,
    /// Number of AIP filters injected during the run.
    pub filters_injected: u64,
    /// Simulated bytes shipped between sites (0 for local queries).
    pub network_bytes: u64,
    /// Operators whose nested emitter-flush time exceeded their `Compute`
    /// total at merge time. The subtraction clamps to zero instead of
    /// going negative, but a nonzero count means the one-Compute-span-
    /// per-batch attribution invariant broke somewhere and that operator's
    /// phase breakdown under-reports compute; surfaced in the query
    /// profile so it cannot clamp silently.
    pub attribution_underflow: u64,
    /// The trace level the run recorded at.
    pub trace_level: TraceLevel,
    /// Individual span events ([`TraceLevel::Spans`] only), merged and
    /// deterministically ordered.
    pub spans: Vec<SpanEvent>,
    /// AIP filter lifecycle events (built/scoped/OR-merged/shipped).
    pub filter_events: Vec<FilterEvent>,
    /// Per-filter ROI at query end (probed/dropped/footprint).
    pub filter_stats: Vec<FilterStat>,
    /// True when the run was cancelled (first failure, deadline, or an
    /// explicit cancel): the counters are a coherent snapshot of the work
    /// done *before* teardown, not a complete accounting of the query.
    pub cancelled: bool,
    /// True when the result was produced *through* recovery — a fragment
    /// replay, a speculative duplicate, or a whole-run retry healed at
    /// least one failure on the way to this (byte-identical) result.
    pub recovered: bool,
    /// Run-level attempts spent producing this result (1 = first try).
    /// Fragment-level replays are finer-grained and live in each
    /// operator's [`OpMetricsSnapshot::retries`].
    pub attempts: u32,
}

impl ExecMetrics {
    /// Peak state in MB (the paper's y-axis).
    pub fn peak_state_mb(&self) -> f64 {
        self.peak_state_bytes as f64 / (1024.0 * 1024.0)
    }

    /// Whole-plan nanoseconds per phase (sum over operators).
    pub fn phase_totals(&self) -> [u64; N_PHASES] {
        let mut totals = [0u64; N_PHASES];
        for m in &self.per_op {
            for (t, &n) in totals.iter_mut().zip(m.phase_nanos.iter()) {
                *t += n;
            }
        }
        totals
    }

    /// Roll the per-operator counters of a partition-parallel run up to one
    /// row per worker partition (serial-section operators are excluded).
    pub fn per_partition(&self, map: &crate::context::PartitionMap) -> Vec<PartitionSnapshot> {
        let mut out: Vec<PartitionSnapshot> = (0..map.dop)
            .map(|p| PartitionSnapshot {
                partition: p,
                rows_out: 0,
                aip_probed: 0,
                aip_dropped: 0,
                state_peak: 0,
                rows_routed_in: 0,
                phase_nanos: [0; N_PHASES],
            })
            .collect();
        for m in &self.per_op {
            if let Some(p) = map.partition(m.op) {
                let s = &mut out[p as usize];
                s.rows_out += m.rows_out;
                s.aip_probed += m.aip_probed;
                s.aip_dropped += m.aip_dropped;
                s.state_peak += m.state_peak;
                for (t, &n) in s.phase_nanos.iter_mut().zip(m.phase_nanos.iter()) {
                    *t += n;
                }
            }
            // Routing operators (wherever they live, including serial-
            // section distribute writers) credit the rows they sent to
            // each *destination* partition — the skew view: a hot key
            // shows up as one partition's rows_routed_in towering over
            // the others.
            for (p, &n) in m.routed.iter().enumerate() {
                if p < out.len() {
                    out[p].rows_routed_in += n;
                }
            }
        }
        out
    }
}

/// Counters of one worker partition of a parallel run, summed over the
/// partition's operator clones.
#[derive(Clone, Debug)]
pub struct PartitionSnapshot {
    /// The partition index.
    pub partition: u32,
    /// Rows emitted by the partition's operators.
    pub rows_out: u64,
    /// Rows probed against AIP filters inside the partition.
    pub aip_probed: u64,
    /// Rows dropped by AIP filters inside the partition.
    pub aip_dropped: u64,
    /// Sum of the partition operators' peak state bytes.
    pub state_peak: u64,
    /// Rows routing operators (ShuffleWrite/Exchange) sent *to* this
    /// partition — the per-destination skew view.
    pub rows_routed_in: u64,
    /// Nanoseconds attributed per [`Phase`] across the partition's
    /// operators (zero with tracing off).
    pub phase_nanos: [u64; N_PHASES],
}

impl PartitionSnapshot {
    /// Total attributed busy nanoseconds of this partition.
    pub fn busy_nanos(&self) -> u64 {
        self.phase_nanos.iter().sum()
    }
}

/// Shared metrics hub for one execution.
#[derive(Debug)]
pub struct MetricsHub {
    /// Per-op metrics, indexed by OpId.
    pub ops: Vec<Arc<OpMetrics>>,
    /// Global intermediate-state tracker.
    pub state: Arc<StateTracker>,
    /// Filters injected (incremented by controllers).
    pub filters_injected: AtomicU64,
    /// Simulated network bytes (incremented by sip-net).
    pub network_bytes: AtomicU64,
    /// Set by the recovery layer when a fragment replay or speculative
    /// duplicate healed a failure inside this run.
    pub recovered: AtomicBool,
    /// Span/routing collection point (see [`sip_common::trace`]).
    pub trace: Arc<TraceHub>,
}

impl MetricsHub {
    /// A hub for `n_ops` operators with tracing off.
    pub fn new(n_ops: usize) -> Arc<Self> {
        Self::with_trace(n_ops, TraceLevel::Off)
    }

    /// A hub for `n_ops` operators recording at `level`.
    pub fn with_trace(n_ops: usize, level: TraceLevel) -> Arc<Self> {
        Arc::new(MetricsHub {
            ops: (0..n_ops).map(|_| Arc::new(OpMetrics::default())).collect(),
            state: StateTracker::new(),
            filters_injected: AtomicU64::new(0),
            network_bytes: AtomicU64::new(0),
            recovered: AtomicBool::new(false),
            trace: TraceHub::new(level),
        })
    }

    /// Metrics for one op.
    pub fn op(&self, op: OpId) -> &OpMetrics {
        &self.ops[op.index()]
    }

    /// Freeze into an [`ExecMetrics`], merging every flushed thread trace
    /// into the per-operator snapshots (deterministic: the drain orders
    /// traces by `(op, partition)` and all merge ops are sums).
    pub fn finish(&self, wall_time: Duration, rows_out: u64) -> ExecMetrics {
        self.finish_with(wall_time, rows_out, false)
    }

    /// [`MetricsHub::finish`] for a run that may have been torn down
    /// early. A cancelled run legitimately violates the
    /// one-Compute-span-per-batch attribution invariant (an operator can
    /// die between its emitter's nested flush record and the enclosing
    /// Compute span's end), so with `cancelled` the nested subtraction
    /// clamps without asserting or counting underflow — the metrics are
    /// flagged [`ExecMetrics::cancelled`] instead.
    pub fn finish_with(&self, wall_time: Duration, rows_out: u64, cancelled: bool) -> ExecMetrics {
        let mut per_op: Vec<OpMetricsSnapshot> = self
            .ops
            .iter()
            .enumerate()
            .map(|(i, m)| m.snapshot(OpId(i as u32)))
            .collect();
        let snap = self.trace.drain();
        let mut nested: Vec<u64> = vec![0; per_op.len()];
        for t in &snap.threads {
            let Some(m) = per_op.get_mut(t.op as usize) else {
                continue;
            };
            for (slot, &n) in m.phase_nanos.iter_mut().zip(t.phase_nanos.iter()) {
                *slot += n;
            }
            for (slot, &n) in m.phase_counts.iter_mut().zip(t.phase_counts.iter()) {
                *slot += n;
            }
            nested[t.op as usize] += t.nested_nanos;
            if m.routed.len() < t.routed.len() {
                m.routed.resize(t.routed.len(), 0);
            }
            for (slot, &n) in m.routed.iter_mut().zip(t.routed.iter()) {
                *slot += n;
            }
            m.hot_keys_observed += t.hot_keys;
            m.occupancy_sum += t.occupancy_sum;
            m.occupancy_samples += t.occupancy_samples;
        }
        // Emitter auto-flush time elapsed inside Compute spans: subtract it
        // once per op so phases partition busy time instead of overlapping.
        // Every nested interval lies inside some Compute span by
        // construction, so nested <= compute must hold; an underflow means
        // a span was mis-attributed and that operator's compute total is
        // clamped (under-reported), which the counter makes visible.
        let mut attribution_underflow = 0u64;
        for (i, (m, &n)) in per_op.iter_mut().zip(nested.iter()).enumerate() {
            let c = Phase::Compute as usize;
            debug_assert!(
                cancelled || n <= m.phase_nanos[c],
                "op {i}: nested emitter time {n}ns exceeds its Compute total {}ns \
                 (a span escaped the one-Compute-span-per-batch invariant)",
                m.phase_nanos[c]
            );
            if n > m.phase_nanos[c] && !cancelled {
                attribution_underflow += 1;
            }
            m.phase_nanos[c] = m.phase_nanos[c].saturating_sub(n);
        }
        let aip_dropped_total = per_op.iter().map(|m| m.aip_dropped).sum();
        ExecMetrics {
            wall_time,
            peak_state_bytes: self.state.peak(),
            final_state_bytes: self.state.current(),
            per_op,
            rows_out,
            aip_dropped_total,
            filters_injected: self.filters_injected.load(Ordering::Relaxed),
            network_bytes: self.network_bytes.load(Ordering::Relaxed),
            attribution_underflow,
            trace_level: self.trace.level(),
            spans: snap.events,
            filter_events: snap.filters,
            filter_stats: Vec::new(),
            cancelled,
            recovered: self.recovered.load(Ordering::Relaxed),
            attempts: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_op_peak_tracks_max() {
        let hub = MetricsHub::new(2);
        let m = hub.op(OpId(0));
        m.add_state(100, &hub.state);
        m.add_state(-40, &hub.state);
        m.add_state(20, &hub.state);
        assert_eq!(m.state_bytes.load(Ordering::Relaxed), 80);
        assert_eq!(m.state_peak.load(Ordering::Relaxed), 100);
        assert_eq!(hub.state.peak(), 100);
    }

    #[test]
    fn global_peak_sums_operators() {
        let hub = MetricsHub::new(2);
        hub.op(OpId(0)).add_state(100, &hub.state);
        hub.op(OpId(1)).add_state(100, &hub.state);
        hub.op(OpId(0)).add_state(-100, &hub.state);
        assert_eq!(hub.state.peak(), 200);
        assert_eq!(hub.state.current(), 100);
    }

    #[test]
    fn finish_aggregates() {
        let hub = MetricsHub::new(2);
        hub.op(OpId(0)).aip_dropped.store(5, Ordering::Relaxed);
        hub.op(OpId(1)).aip_dropped.store(7, Ordering::Relaxed);
        hub.filters_injected.store(2, Ordering::Relaxed);
        let m = hub.finish(Duration::from_millis(10), 42);
        assert_eq!(m.rows_out, 42);
        assert_eq!(m.aip_dropped_total, 12);
        assert_eq!(m.filters_injected, 2);
        assert_eq!(m.per_op.len(), 2);
        assert_eq!(m.per_op[1].op, OpId(1));
        assert_eq!(m.trace_level, TraceLevel::Off);
    }

    #[test]
    fn routing_counts_merge_through_trace_path() {
        // Two writer threads of the same routing op flush independently;
        // finish merges their counts — the lock-free replacement for the
        // old OpMetrics::record_routing Mutex.
        let hub = MetricsHub::new(2);
        let mut a = hub.trace.tracer(0, None);
        a.set_routed(&[5, 0, 7], 1);
        a.flush();
        let mut b = hub.trace.tracer(0, None);
        b.set_routed(&[1, 2, 3, 4], 2); // a wider merge grows the vec
        b.flush();
        let m = hub.finish(Duration::ZERO, 0);
        assert_eq!(m.per_op[0].routed, vec![6, 2, 10, 4]);
        assert_eq!(m.per_op[0].hot_keys_observed, 3);
        assert!(m.per_op[1].routed.is_empty());
    }

    #[test]
    fn finish_merges_phases_and_subtracts_nested() {
        let hub = MetricsHub::with_trace(1, TraceLevel::Ops);
        // Operator thread: one compute span of >= 10ms.
        let mut op_side = hub.trace.tracer(0, None);
        let before = std::time::Instant::now();
        let s = op_side.begin();
        std::thread::sleep(Duration::from_millis(10));
        op_side.end(Phase::Compute, s);
        let raw_upper = before.elapsed().as_nanos() as u64;
        op_side.flush();
        // Emitter trace: >= 3ms of send time that elapsed inside the
        // compute span above, flagged as nested.
        let mut em = hub.trace.tracer(0, None);
        let s = em.begin();
        std::thread::sleep(Duration::from_millis(3));
        em.end(Phase::ChannelSend, s);
        em.add_nested(s);
        em.flush();
        let m = hub.finish(Duration::from_millis(20), 0);
        let snap = &m.per_op[0];
        let compute = snap.phase(Phase::Compute);
        let send = snap.phase(Phase::ChannelSend);
        assert!(send >= Duration::from_millis(3).as_nanos() as u64);
        assert!(compute > 0, "nested subtraction must not erase compute");
        // adjusted = raw - nested, nested >= 3ms, raw <= raw_upper.
        let bound = raw_upper.saturating_sub(Duration::from_millis(2).as_nanos() as u64);
        assert!(compute <= bound, "nested send time was not subtracted");
        assert_eq!(snap.phase_counts[Phase::Compute as usize], 1);
    }

    #[test]
    fn nested_within_compute_leaves_no_underflow() {
        let hub = MetricsHub::with_trace(1, TraceLevel::Ops);
        let mut t = hub.trace.tracer(0, None);
        let s = t.begin();
        std::thread::sleep(Duration::from_millis(2));
        t.end(Phase::Compute, s);
        t.flush();
        let mut em = hub.trace.tracer(0, None);
        let s = em.begin();
        em.end(Phase::ChannelSend, s);
        em.add_nested(s); // ~0ns nested, well inside the 2ms compute
        em.flush();
        let m = hub.finish(Duration::ZERO, 0);
        assert_eq!(m.attribution_underflow, 0);
    }

    #[test]
    fn attribution_underflow_is_loud_not_silent() {
        // An impossible trace: nested emitter time with no Compute span at
        // all. Debug builds must assert; release builds must clamp *and*
        // count the clamp instead of silently zeroing.
        let hub = MetricsHub::with_trace(1, TraceLevel::Ops);
        let mut em = hub.trace.tracer(0, None);
        let s = em.begin();
        std::thread::sleep(Duration::from_millis(1));
        em.end(Phase::ChannelSend, s);
        em.add_nested(s);
        em.flush();
        #[cfg(debug_assertions)]
        {
            let hub2 = Arc::clone(&hub);
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                hub2.finish(Duration::ZERO, 0)
            }));
            assert!(r.is_err(), "debug build must assert on underflow");
        }
        #[cfg(not(debug_assertions))]
        {
            let m = hub.finish(Duration::ZERO, 0);
            assert_eq!(m.attribution_underflow, 1);
            assert_eq!(m.per_op[0].phase(Phase::Compute), 0);
        }
    }

    #[test]
    fn cancelled_finish_clamps_underflow_quietly() {
        // The same impossible trace as above, but for a cancelled run —
        // an operator that died mid-batch legitimately leaves nested time
        // with no enclosing Compute span. The cancelled finish must not
        // assert and must not count the clamp as an attribution bug; the
        // `cancelled` flag is the caveat instead.
        let hub = MetricsHub::with_trace(1, TraceLevel::Ops);
        let mut em = hub.trace.tracer(0, None);
        let s = em.begin();
        std::thread::sleep(Duration::from_millis(1));
        em.end(Phase::ChannelSend, s);
        em.add_nested(s);
        em.flush();
        let m = hub.finish_with(Duration::ZERO, 0, true);
        assert!(m.cancelled);
        assert_eq!(m.attribution_underflow, 0);
        assert_eq!(m.per_op[0].phase(Phase::Compute), 0);
        // And a normal finish still reports not-cancelled.
        assert!(!MetricsHub::new(1).finish(Duration::ZERO, 0).cancelled);
    }

    #[test]
    fn merge_is_deterministic_across_flush_orders() {
        let run = |reverse: bool| {
            let hub = MetricsHub::with_trace(3, TraceLevel::Ops);
            let mut tracers = Vec::new();
            for op in [2u32, 0, 1, 2] {
                let mut t = hub.trace.tracer(op, Some(op));
                let s = t.begin();
                t.end(Phase::Compute, s);
                t.set_routed(&[1, 2], 0);
                tracers.push(t);
            }
            if reverse {
                tracers.reverse();
            }
            for t in tracers {
                t.flush();
            }
            let m = hub.finish(Duration::ZERO, 0);
            m.per_op
                .iter()
                .map(|s| (s.op, s.phase_counts, s.routed.clone()))
                .collect::<Vec<_>>()
        };
        let a = run(false);
        let b = run(true);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.0, y.0);
            assert_eq!(x.1, y.1);
            assert_eq!(x.2, y.2);
        }
    }

    #[test]
    fn mb_conversion() {
        let hub = MetricsHub::new(1);
        hub.op(OpId(0)).add_state(2 * 1024 * 1024, &hub.state);
        let m = hub.finish(Duration::ZERO, 0);
        assert!((m.peak_state_mb() - 2.0).abs() < 1e-9);
    }
}
