//! The runtime-monitoring interface AIP controllers plug into.
//!
//! The engine is deliberately ignorant of AIP policy: it exposes exactly the
//! hooks §V says Tukwila provides — cardinality counters (via
//! [`crate::metrics::MetricsHub`]), standardized intermediate-state
//! structures exposed "to the execution engine for use in AIP"
//! ([`StateView`]), on-the-fly semijoin registration
//! ([`crate::taps::FilterTap`]), and completion notifications. The
//! feed-forward and cost-based algorithms in `sip-core` are pure consumers
//! of this interface.

use crate::context::ExecContext;
use crate::metrics::ExecMetrics;
use sip_common::{AttrId, DigestBuffer, OpId, Row, SpaceSaving};
use std::sync::Arc;

/// Live counters surfaced at a stage boundary — the moment every writer of
/// one shuffle mesh has finished, while downstream operators are still
/// running. This is the paper's sideways-information idea applied to the
/// *plan itself*: the mesh just measured the exact stream the frozen plan
/// could only estimate, and a controller can still act on what has not
/// started yet (re-estimate downstream joins, salt a later mesh, pick the
/// dop of a deferred stage).
#[derive(Clone, Debug)]
pub struct StageFeedback {
    /// The mesh whose writers all finished.
    pub mesh: u32,
    /// Number of writers that fed the mesh.
    pub writers: u32,
    /// Consumer partitions of the mesh.
    pub dop: u32,
    /// Rows routed per consumer partition, summed over writers — the
    /// observed (not estimated) placement histogram.
    pub rows_routed: Vec<u64>,
    /// Heavy-hitter keys the writers' sketches observed in aggregate.
    pub hot_keys: u64,
    /// The per-writer [`SpaceSaving`] sketches merged across the mesh:
    /// observed key frequencies for the stream, comparable against the
    /// base-table statistics the plan's salting decision was frozen from.
    pub sketch: Option<SpaceSaving>,
    /// Live `(op, rows_out, finished)` for every operator at the moment of
    /// the snapshot — what `UPDATEESTIMATES` overlays on its estimates.
    pub op_rows: Vec<(OpId, u64, bool)>,
}

impl StageFeedback {
    /// Total rows that crossed the mesh.
    pub fn rows_total(&self) -> u64 {
        self.rows_routed.iter().sum()
    }

    /// Observed share of the stream held by its heaviest key (0.0 when the
    /// mesh carried nothing or no sketch was recorded). This is the
    /// runtime counterpart of `Table::hot_fraction` — computed from rows
    /// that actually flowed, not from base-table stats.
    pub fn hot_share(&self) -> f64 {
        let total = self.rows_total();
        if total == 0 {
            return 0.0;
        }
        let heaviest = self
            .sketch
            .as_ref()
            .and_then(|s| s.entries().first().map(|e| e.count))
            .unwrap_or(0);
        heaviest.min(total) as f64 / total as f64
    }

    /// Max/mean balance of the routed histogram (1.0 = perfectly even;
    /// `dop` = everything on one partition). 1.0 for an empty mesh.
    pub fn balance(&self) -> f64 {
        let total = self.rows_total();
        if total == 0 || self.rows_routed.is_empty() {
            return 1.0;
        }
        let mean = total as f64 / self.rows_routed.len() as f64;
        let max = *self.rows_routed.iter().max().unwrap() as f64;
        max / mean
    }
}

/// Read-only view over the buffered state a stateful operator holds for one
/// input: a join side's hash table, an aggregate's group keys, a distinct
/// set, or a semijoin build set.
pub trait StateView {
    /// The attribute at each position of the rows yielded by [`StateView::for_each`].
    fn layout(&self) -> &[AttrId];
    /// Number of buffered rows (groups for aggregates).
    fn len(&self) -> usize;
    /// True when no rows are buffered.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Approximate buffered bytes.
    fn state_bytes(&self) -> usize;
    /// `true` when the state covers the *entire* input — `false` when the
    /// pipelined-hash-join short-circuit stopped buffering early, in which
    /// case the state must not be used as an AIP set (it would cause false
    /// negatives).
    fn complete(&self) -> bool;
    /// Visit every buffered row.
    fn for_each(&self, f: &mut dyn FnMut(&Row));
    /// Exact distinct-key count for the single column at `pos`, when the
    /// operator's hash structure already maintains it (a join side keyed by
    /// exactly that column, an aggregate's single group key, a distinct over
    /// one column). `None` = unknown; callers fall back to estimates.
    fn distinct_hint(&self, _pos: usize) -> Option<usize> {
        None
    }
}

/// Notification that a stateful operator's input has fully arrived.
pub struct CompletionEvent<'a> {
    /// The stateful operator.
    pub op: OpId,
    /// Which input completed (0 or 1).
    pub input: usize,
    /// Rows that arrived on this input.
    pub rows_in: u64,
    /// The operator's buffered state for that input.
    pub view: &'a dyn StateView,
}

/// Per-input row observer — the feed-forward algorithm's incrementally
/// built "working copy" AIP set (§IV-A) implements this.
pub trait RowCollector: Send {
    /// Called for every row admitted into the host operator's input.
    fn admit(&mut self, row: &Row);
    /// Batch admit: every row of `rows` at once, with the digest pass the
    /// host operator already paid for its own keys. `key_positions` names
    /// the columns `digests` was computed over (the operator's group /
    /// join / build key columns); a collector whose source column set
    /// matches reuses the buffer outright, so the common AIP case — the
    /// working set summarizes exactly the key the operator hashes — costs
    /// **zero** additional hashes and zero key materialization.
    ///
    /// Must be observationally identical to calling
    /// [`RowCollector::admit`] on each row in order; the default does
    /// exactly that.
    fn admit_batch(&mut self, rows: &[Row], _key_positions: &[usize], _digests: &DigestBuffer) {
        for row in rows {
            self.admit(row);
        }
    }
    /// Called exactly once when the input reaches EOF.
    fn finish(&mut self, ctx: &Arc<ExecContext>);
}

/// Callbacks from the executing engine. All methods run synchronously on
/// operator threads; long work here genuinely delays the query, exactly as
/// AIP-set construction does in the paper's measurements.
pub trait ExecMonitor: Send + Sync {
    /// The plan is wired and about to start. Controllers install collectors
    /// and pre-register candidate sets here.
    fn on_query_start(&self, _ctx: &Arc<ExecContext>) {}
    /// A stateful operator's input completed; `ev.view` is valid only for
    /// the duration of the call.
    fn on_input_complete(&self, _ctx: &Arc<ExecContext>, _ev: &CompletionEvent<'_>) {}
    /// Every writer of shuffle mesh `fb.mesh` has finished — a stage
    /// boundary. Runs on the last writer's thread *during* execution
    /// (downstream operators are still draining the mesh), so controllers
    /// can fold the observed cardinalities and frequencies into decisions
    /// about work that has not happened yet.
    fn on_stage_boundary(&self, _ctx: &Arc<ExecContext>, _fb: &StageFeedback) {}
    /// The run's metrics were frozen: every operator thread has joined and
    /// the `sip-trace` thread traces are merged into `metrics` (per-op
    /// phase breakdowns, span events, filter lifecycle). Runs right before
    /// [`ExecMonitor::on_query_end`] — the span-event sink for harnesses
    /// that assert on trace contents.
    fn on_trace(&self, _ctx: &Arc<ExecContext>, _metrics: &ExecMetrics) {}
    /// The root has emitted EOF.
    fn on_query_end(&self, _ctx: &Arc<ExecContext>) {}
}

/// A monitor that does nothing — baseline execution.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopMonitor;

impl ExecMonitor for NoopMonitor {}

/// A [`StateView`] over a plain row slice (used by operators whose state is
/// directly a row collection, and by tests).
pub struct SliceStateView<'a> {
    layout: &'a [AttrId],
    rows: &'a [Row],
    bytes: usize,
    complete: bool,
}

impl<'a> SliceStateView<'a> {
    /// Wrap a slice.
    pub fn new(layout: &'a [AttrId], rows: &'a [Row], bytes: usize, complete: bool) -> Self {
        SliceStateView {
            layout,
            rows,
            bytes,
            complete,
        }
    }
}

impl StateView for SliceStateView<'_> {
    fn layout(&self) -> &[AttrId] {
        self.layout
    }
    fn len(&self) -> usize {
        self.rows.len()
    }
    fn state_bytes(&self) -> usize {
        self.bytes
    }
    fn complete(&self) -> bool {
        self.complete
    }
    fn for_each(&self, f: &mut dyn FnMut(&Row)) {
        for r in self.rows {
            f(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sip_common::Value;

    #[test]
    fn slice_view_reports_contents() {
        let layout = [AttrId(3), AttrId(4)];
        let rows = vec![
            Row::new(vec![Value::Int(1), Value::Int(2)]),
            Row::new(vec![Value::Int(3), Value::Int(4)]),
        ];
        let v = SliceStateView::new(&layout, &rows, 64, true);
        assert_eq!(v.len(), 2);
        assert_eq!(v.layout(), &layout);
        assert!(v.complete());
        assert_eq!(v.state_bytes(), 64);
        let mut seen = 0;
        v.for_each(&mut |_r| seen += 1);
        assert_eq!(seen, 2);
    }
}
