#![warn(missing_docs)]
//! # sip-engine
//!
//! A push-style, multithreaded query execution engine in the mold of the
//! paper's Tukwila substrate (§V): symmetric pipelined hash joins, hash
//! aggregation, bushy plans, one thread per operator with bounded-channel
//! backpressure, per-operator cardinality counters, byte-accurate
//! intermediate-state accounting, source-delay simulation, and — crucially
//! for AIP — runtime-injectable semijoin filter taps plus state views and
//! completion callbacks that controllers (in `sip-core`) consume.

pub mod context;
pub mod delay;
pub mod exec;
pub mod fault;
pub mod metrics;
pub mod monitor;
pub(crate) mod operators;
pub mod oracle;
pub mod physical;
pub mod profile;
pub mod recovery;
pub mod report;
pub mod taps;
#[doc(hidden)]
pub mod testkit;

pub use context::{ExecContext, ExecOptions, Msg, PartitionMap};
pub use delay::DelayModel;
pub use exec::{execute, execute_baseline, execute_ctx, execute_with_recovery, QueryOutput};
pub use fault::{FaultKind, FaultPlan, FaultSpec, LinkFault, LinkFaultKind};
pub use metrics::{
    ExecMetrics, FilterStat, MetricsHub, OpMetrics, OpMetricsSnapshot, PartitionSnapshot,
};
pub use monitor::{
    CompletionEvent, ExecMonitor, NoopMonitor, RowCollector, StageFeedback, StateView,
};
pub use oracle::{canonical, execute_oracle};
pub use physical::{
    lower, BoundAgg, PhysKind, PhysNode, PhysPlan, SaltRole, SaltSpec, ScanPartition,
};
pub use profile::{QueryProfile, PROFILE_SCHEMA};
pub use recovery::run_with_recovery;
pub use report::{explain_analyze, explain_analyze_profiled};
pub use sip_common::trace::TraceLevel;
pub use sip_filter::SaltedKeys;
pub use taps::{FilterScope, FilterTap, InjectedFilter, MergePolicy, TapKernel};
