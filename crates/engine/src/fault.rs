//! Fault injection for chaos testing.
//!
//! A [`FaultPlan`] rides [`crate::ExecOptions`] the way a
//! [`crate::DelayModel`] does, but instead of slowing a source it
//! *breaks* the pipeline on purpose: any operator can be made to panic,
//! error, stall (bounded) or hang (until cancelled) after N batches, and
//! a `sip-net` link can be made to drop or hang mid-stream. The chaos
//! harnesses (`crates/engine/tests/chaos.rs`,
//! `crates/parallel/tests/chaos_dop.rs`) sweep these faults across dop ×
//! salting × adaptive × retry budgets and assert the lifecycle
//! invariant: every run is either byte-identical to the oracle or a
//! clean attributed error — never a partial `Ok`.
//!
//! Fault checks are zero-cost when no plan is installed: an operator
//! whose [`FaultPlan::spec_for`] lookup comes back `None` never touches
//! the fault state again.
//!
//! ## Fire budgets and recovery
//!
//! Each spec carries a `times` budget counted in a **ledger shared by
//! every clone of the plan** (the recovery layer re-executes failed
//! fragments with cloned options). A fault with `times: 2` fires twice
//! *across all attempts and partitions combined* and then goes quiet —
//! which is exactly how a transient fault looks to a retry loop. The
//! default `u32::MAX` keeps the pre-recovery behavior: every armed
//! operator instance fires once per attempt, forever.

use parking_lot::Mutex;
use sip_common::{FxHashMap, Result, SipError};
use std::sync::Arc;
use std::time::Duration;

/// What an injected operator fault does when it fires.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic the operator thread (exercises `catch_unwind` containment).
    Panic,
    /// Return an ordinary operator error.
    Error,
    /// Sleep for the given duration (cancellably), then continue. A
    /// *bounded* stall: used to exercise deadline enforcement and
    /// straggler speculation against a slow-but-alive operator without
    /// wedging the test itself.
    Stall(Duration),
    /// Stall indefinitely: sleep until the run's `CancelToken` trips,
    /// then fail with a cancellation. A truly wedged operator — only
    /// deadlines, cancellation, or straggler speculation get past it.
    Hang,
}

/// One injected operator fault: fire `kind`, after the operator has
/// received `after_batches` batches (0 = before the first batch), at
/// most `times` times plan-wide (see the module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// What happens when the fault fires.
    pub kind: FaultKind,
    /// How many batches the operator processes normally first.
    pub after_batches: u64,
    /// Plan-wide fire budget shared across partitions and retry
    /// attempts. `u32::MAX` ≈ unlimited (fires on every attempt).
    pub times: u32,
}

/// How an injected `sip-net` link fault behaves.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LinkFaultKind {
    /// The link drops mid-transfer: the feeder loses the in-flight batch
    /// and must reconnect (pay the link latency again) and re-feed from
    /// the last acked batch.
    Drop,
    /// The link hangs for the given duration before delivering.
    Hang(Duration),
}

/// An injected fault on a simulated `sip-net` link.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinkFault {
    /// Batches delivered cleanly before the fault fires.
    pub after_batches: u64,
    /// Drop or hang.
    pub kind: LinkFaultKind,
    /// How many times the fault fires (each retry hits it again until
    /// exhausted). `u32::MAX` ≈ a permanently dead link.
    pub fail_times: u32,
}

/// A set of injected faults for one execution. Empty by default.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Faults keyed by operator kind name (`"HashJoin"`, `"Scan"`, ...):
    /// every operator of that kind gets the fault. With partition-parallel
    /// plans this is the way to hit a clone without knowing expanded ids.
    by_kind: FxHashMap<String, FaultSpec>,
    /// Faults keyed by physical operator id — precise targeting.
    by_op: FxHashMap<u32, FaultSpec>,
    /// Fault on the simulated remote link (`sip-net` feeder threads).
    pub link: Option<LinkFault>,
    /// Fires already spent per spec key, shared by **every clone** of
    /// this plan so bounded faults stay exhausted across retry attempts.
    ledger: Arc<Mutex<FxHashMap<String, u32>>>,
}

/// The ledger is bookkeeping, not configuration: two plans injecting the
/// same faults are equal regardless of how often either has fired.
impl PartialEq for FaultPlan {
    fn eq(&self, other: &Self) -> bool {
        self.by_kind == other.by_kind && self.by_op == other.by_op && self.link == other.link
    }
}
impl Eq for FaultPlan {}

impl FaultPlan {
    /// No faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Are any faults installed?
    pub fn is_empty(&self) -> bool {
        self.by_kind.is_empty() && self.by_op.is_empty() && self.link.is_none()
    }

    /// Inject `kind` at every operator whose kind name is `op_kind`,
    /// after `after_batches` clean batches, with an unlimited fire
    /// budget.
    pub fn with_kind_fault(
        self,
        op_kind: impl Into<String>,
        after_batches: u64,
        kind: FaultKind,
    ) -> Self {
        self.with_kind_fault_times(op_kind, after_batches, kind, u32::MAX)
    }

    /// Like [`FaultPlan::with_kind_fault`] but firing at most `times`
    /// times plan-wide — the transient-fault shape recovery tests use.
    pub fn with_kind_fault_times(
        mut self,
        op_kind: impl Into<String>,
        after_batches: u64,
        kind: FaultKind,
        times: u32,
    ) -> Self {
        self.by_kind.insert(
            op_kind.into(),
            FaultSpec {
                kind,
                after_batches,
                times,
            },
        );
        self
    }

    /// Inject `kind` at the operator with physical id `op`, with an
    /// unlimited fire budget.
    pub fn with_op_fault(self, op: u32, after_batches: u64, kind: FaultKind) -> Self {
        self.with_op_fault_times(op, after_batches, kind, u32::MAX)
    }

    /// Like [`FaultPlan::with_op_fault`] but firing at most `times`
    /// times plan-wide.
    pub fn with_op_fault_times(
        mut self,
        op: u32,
        after_batches: u64,
        kind: FaultKind,
        times: u32,
    ) -> Self {
        self.by_op.insert(
            op,
            FaultSpec {
                kind,
                after_batches,
                times,
            },
        );
        self
    }

    /// Inject a link fault on the simulated remote feed.
    pub fn with_link_fault(mut self, fault: LinkFault) -> Self {
        self.link = Some(fault);
        self
    }

    /// The fault an operator should arm, if any. Id-targeted faults win
    /// over kind-targeted ones.
    pub fn spec_for(&self, op: u32, kind_name: &str) -> Option<FaultSpec> {
        self.by_op
            .get(&op)
            .or_else(|| self.by_kind.get(kind_name))
            .cloned()
    }

    /// Arm the fault (if any) for one operator thread, binding it to the
    /// shared fire ledger so `times` budgets are honored across
    /// partitions and retry attempts.
    pub fn arm(&self, op: u32, kind_name: &str) -> FaultState {
        match self.by_op.get(&op) {
            Some(spec) => {
                FaultState::armed(spec.clone(), Arc::clone(&self.ledger), format!("op:{op}"))
            }
            None => match self.by_kind.get(kind_name) {
                Some(spec) => FaultState::armed(
                    spec.clone(),
                    Arc::clone(&self.ledger),
                    format!("kind:{kind_name}"),
                ),
                None => FaultState::default(),
            },
        }
    }

    /// Check internal consistency, mirroring
    /// [`crate::DelayModel::validate`]: a zero-length stall would be a
    /// no-op fault and almost certainly a mistyped duration, a fault
    /// with a zero fire budget never happens, and likewise for links.
    pub fn validate(&self) -> Result<()> {
        for (target, spec) in self
            .by_kind
            .iter()
            .map(|(k, s)| (k.clone(), s))
            .chain(self.by_op.iter().map(|(op, s)| (format!("op {op}"), s)))
        {
            if matches!(spec.kind, FaultKind::Stall(d) if d.is_zero()) {
                return Err(SipError::Config(format!(
                    "FaultPlan: stall of 0ns at {target} would be a no-op; \
                     give the stall a duration or drop the fault"
                )));
            }
            if spec.times == 0 {
                return Err(SipError::Config(format!(
                    "FaultPlan: fault at {target} with times == 0 would never fire; \
                     set times >= 1 or drop the fault"
                )));
            }
        }
        if let Some(link) = &self.link {
            if link.fail_times == 0 {
                return Err(SipError::Config(
                    "FaultPlan: link fault with fail_times == 0 would never fire; \
                     set fail_times >= 1 or drop the fault"
                        .into(),
                ));
            }
            if matches!(link.kind, LinkFaultKind::Hang(d) if d.is_zero()) {
                return Err(SipError::Config(
                    "FaultPlan: link hang of 0ns would be a no-op; \
                     give the hang a duration or drop the fault"
                        .into(),
                ));
            }
        }
        Ok(())
    }
}

/// Per-operator-thread fault progress: counts incoming batches and
/// reports when the armed fault should fire. Fires at most once per
/// thread, and — when the spec carries a `times` budget — at most
/// `times` times plan-wide via the shared ledger.
#[derive(Debug, Default)]
pub struct FaultState {
    spec: Option<FaultSpec>,
    batches: u64,
    fired: bool,
    ledger: Option<(Arc<Mutex<FxHashMap<String, u32>>>, String)>,
}

impl FaultState {
    /// Arm `spec` (or nothing) without a plan-wide budget. Kept for
    /// direct unit-testing of the threshold logic; engine code arms via
    /// [`FaultPlan::arm`].
    pub fn new(spec: Option<FaultSpec>) -> Self {
        FaultState {
            spec,
            batches: 0,
            fired: false,
            ledger: None,
        }
    }

    fn armed(spec: FaultSpec, ledger: Arc<Mutex<FxHashMap<String, u32>>>, key: String) -> Self {
        FaultState {
            spec: Some(spec),
            batches: 0,
            fired: false,
            ledger: Some((ledger, key)),
        }
    }

    /// Account for one incoming batch; returns the fault to fire now, if
    /// its threshold has been crossed and the plan-wide budget is not
    /// spent. The check is two branches when no fault is armed.
    pub fn on_batch(&mut self) -> Option<FaultKind> {
        let spec = self.spec.as_ref()?;
        if self.fired {
            return None;
        }
        if self.batches >= spec.after_batches {
            self.fired = true;
            if let Some((ledger, key)) = &self.ledger {
                if spec.times != u32::MAX {
                    let mut spent = ledger.lock();
                    let n = spent.entry(key.clone()).or_insert(0);
                    if *n >= spec.times {
                        return None; // budget exhausted: the fault healed
                    }
                    *n += 1;
                }
            }
            return Some(spec.kind.clone());
        }
        self.batches += 1;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_arms_nothing() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert!(plan.validate().is_ok());
        assert_eq!(plan.spec_for(3, "HashJoin"), None);
        let mut state = FaultState::new(None);
        for _ in 0..10 {
            assert_eq!(state.on_batch(), None);
        }
    }

    #[test]
    fn op_fault_wins_over_kind_fault() {
        let plan = FaultPlan::none()
            .with_kind_fault("Filter", 0, FaultKind::Error)
            .with_op_fault(7, 2, FaultKind::Panic);
        assert_eq!(
            plan.spec_for(7, "Filter").unwrap().kind,
            FaultKind::Panic,
            "id targeting beats kind targeting"
        );
        assert_eq!(plan.spec_for(8, "Filter").unwrap().kind, FaultKind::Error);
        assert_eq!(plan.spec_for(8, "Scan"), None);
    }

    #[test]
    fn fault_fires_once_after_threshold() {
        let mut state = FaultState::new(Some(FaultSpec {
            kind: FaultKind::Error,
            after_batches: 2,
            times: u32::MAX,
        }));
        assert_eq!(state.on_batch(), None);
        assert_eq!(state.on_batch(), None);
        assert_eq!(state.on_batch(), Some(FaultKind::Error));
        assert_eq!(state.on_batch(), None, "a fault fires at most once");
    }

    #[test]
    fn zero_threshold_fires_immediately() {
        let mut state = FaultState::new(Some(FaultSpec {
            kind: FaultKind::Panic,
            after_batches: 0,
            times: u32::MAX,
        }));
        assert_eq!(state.on_batch(), Some(FaultKind::Panic));
    }

    #[test]
    fn fire_budget_is_shared_across_clones_and_attempts() {
        let plan = FaultPlan::none().with_kind_fault_times("Scan", 0, FaultKind::Error, 2);
        // Three "attempts" (fresh FaultStates), against a budget of two
        // — including one armed from a *clone* of the plan, the way a
        // recovery retry clones options.
        let clone = plan.clone();
        assert_eq!(plan.arm(1, "Scan").on_batch(), Some(FaultKind::Error));
        assert_eq!(clone.arm(1, "Scan").on_batch(), Some(FaultKind::Error));
        assert_eq!(
            plan.arm(1, "Scan").on_batch(),
            None,
            "budget of 2 must be spent plan-wide"
        );
        // Equality ignores the ledger: a fresh identical plan compares
        // equal to the spent one.
        let fresh = FaultPlan::none().with_kind_fault_times("Scan", 0, FaultKind::Error, 2);
        assert_eq!(fresh, plan);
        // ... but has its own budget.
        assert_eq!(fresh.arm(1, "Scan").on_batch(), Some(FaultKind::Error));
    }

    #[test]
    fn unlimited_budget_never_consults_the_ledger() {
        let plan = FaultPlan::none().with_kind_fault("Scan", 0, FaultKind::Panic);
        for _ in 0..4 {
            assert_eq!(plan.arm(9, "Scan").on_batch(), Some(FaultKind::Panic));
        }
        assert!(plan.ledger.lock().is_empty());
    }

    #[test]
    fn degenerate_faults_are_rejected_at_config_time() {
        let stall = FaultPlan::none().with_kind_fault("Scan", 0, FaultKind::Stall(Duration::ZERO));
        assert_eq!(stall.validate().unwrap_err().layer(), "config");
        let never = FaultPlan::none().with_kind_fault_times("Scan", 0, FaultKind::Panic, 0);
        assert_eq!(never.validate().unwrap_err().layer(), "config");
        let link = FaultPlan::none().with_link_fault(LinkFault {
            after_batches: 1,
            kind: LinkFaultKind::Drop,
            fail_times: 0,
        });
        assert_eq!(link.validate().unwrap_err().layer(), "config");
        let ok = FaultPlan::none()
            .with_kind_fault("Scan", 1, FaultKind::Stall(Duration::from_millis(1)))
            .with_kind_fault_times("Filter", 0, FaultKind::Hang, 1)
            .with_link_fault(LinkFault {
                after_batches: 1,
                kind: LinkFaultKind::Drop,
                fail_times: 2,
            });
        assert!(ok.validate().is_ok());
    }
}
