//! The threaded push executor.
//!
//! Every operator runs on its own OS thread, connected by bounded channels:
//! the multithreaded, nondeterministically-scheduled execution model of
//! Tukwila (§V-A), where the CPU naturally switches to whatever part of the
//! bushy plan has data available.

use crate::context::{ExecContext, ExecOptions, Msg};
use crate::metrics::ExecMetrics;
use crate::monitor::ExecMonitor;
use crate::operators;
use crate::physical::{PhysKind, PhysPlan};
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use sip_common::{Result, Row, SipError};
use std::sync::Arc;
use std::time::Instant;

/// The outcome of one query execution.
#[derive(Debug)]
pub struct QueryOutput {
    /// Result rows (empty when `collect_rows` is off).
    pub rows: Vec<Row>,
    /// Collected metrics.
    pub metrics: ExecMetrics,
}

/// Execute `plan` with `monitor` receiving runtime callbacks.
///
/// Returns when the root operator has emitted EOF and all operator threads
/// have joined. The first operator error (if any) is propagated.
pub fn execute(
    plan: Arc<PhysPlan>,
    monitor: Arc<dyn ExecMonitor>,
    options: ExecOptions,
) -> Result<QueryOutput> {
    plan.validate()?;
    let ctx = ExecContext::new(Arc::clone(&plan), options);
    execute_ctx(ctx, monitor)
}

/// Execute with a caller-constructed context — used by the distributed
/// harness, whose simulated remote sites need shared access to the taps
/// (so shipped filters can be applied *before* transmission).
pub fn execute_ctx(ctx: Arc<ExecContext>, monitor: Arc<dyn ExecMonitor>) -> Result<QueryOutput> {
    let plan = Arc::clone(&ctx.plan);
    plan.validate()?;
    // Reject degenerate sizing with a config error before any thread
    // spawns (a zero batch size would panic inside the scan's chunking).
    ctx.options.validate()?;
    monitor.on_query_start(&ctx);

    let start = Instant::now();
    let error_slot: Arc<Mutex<Option<SipError>>> = Arc::new(Mutex::new(None));
    let mut senders: Vec<Option<Sender<Msg>>> = Vec::with_capacity(plan.nodes.len());
    let mut receivers: Vec<Option<Receiver<Msg>>> = Vec::with_capacity(plan.nodes.len());
    for _ in &plan.nodes {
        let (tx, rx) = bounded(ctx.options.channel_capacity);
        senders.push(Some(tx));
        receivers.push(Some(rx));
    }
    let root_rx = receivers[plan.root.index()]
        .take()
        .expect("root receiver present");

    let mut handles = Vec::with_capacity(plan.nodes.len());
    for node in &plan.nodes {
        let op = node.id;
        let out = senders[op.index()].take().expect("sender unused");
        let mut ins: Vec<Receiver<Msg>> = node
            .inputs
            .iter()
            .map(|c| receivers[c.index()].take().expect("input receiver unused"))
            .collect();
        let ctx = Arc::clone(&ctx);
        let monitor = Arc::clone(&monitor);
        let errs = Arc::clone(&error_slot);
        let kind_name = node.kind.name();
        let handle = std::thread::Builder::new()
            .name(format!("sip-{op}-{kind_name}"))
            .spawn(move || {
                let result = match &ctx.plan.node(op).kind {
                    PhysKind::Scan { .. } => operators::scan::run_scan(&ctx, op, out),
                    PhysKind::ExternalSource { .. } => operators::scan::run_external(&ctx, op, out),
                    PhysKind::Filter { .. } => {
                        operators::stateless::run_filter(&ctx, op, ins.remove(0), out)
                    }
                    PhysKind::Project { .. } => {
                        operators::stateless::run_project(&ctx, op, ins.remove(0), out)
                    }
                    PhysKind::HashJoin { .. } => {
                        let right = ins.remove(1);
                        let left = ins.remove(0);
                        operators::hash_join::run_hash_join(&ctx, &monitor, op, left, right, out)
                    }
                    PhysKind::Aggregate { .. } => {
                        operators::aggregate::run_aggregate(&ctx, &monitor, op, ins.remove(0), out)
                    }
                    PhysKind::Distinct => {
                        operators::aggregate::run_distinct(&ctx, &monitor, op, ins.remove(0), out)
                    }
                    PhysKind::SemiJoin { .. } => {
                        let build = ins.remove(1);
                        let probe = ins.remove(0);
                        operators::semi_join::run_semi_join(&ctx, &monitor, op, probe, build, out)
                    }
                    PhysKind::Exchange { .. } => {
                        operators::exchange::run_exchange(&ctx, op, ins.remove(0), out)
                    }
                    PhysKind::Merge => operators::exchange::run_merge(&ctx, op, ins, out),
                    PhysKind::ShuffleWrite { .. } => operators::shuffle::run_shuffle_write(
                        &ctx,
                        &monitor,
                        op,
                        ins.remove(0),
                        out,
                    ),
                    PhysKind::ShuffleRead { .. } => {
                        operators::shuffle::run_shuffle_read(&ctx, op, ins, out)
                    }
                };
                if let Err(e) = result {
                    errs.lock().get_or_insert(e);
                }
            })
            .expect("spawn operator thread");
        handles.push(handle);
    }
    drop(senders);
    drop(receivers);

    // Drain the root. Columnar batches convert to rows here — the root is
    // a row seam by design (callers consume `Vec<Row>`).
    let mut rows: Vec<Row> = Vec::new();
    let mut rows_out = 0u64;
    while let Ok(msg) = root_rx.recv() {
        match msg {
            Msg::Batch(b) => {
                rows_out += b.len() as u64;
                if ctx.options.collect_rows {
                    rows.extend(b.rows);
                }
            }
            Msg::Cols(c) => {
                rows_out += c.len() as u64;
                if ctx.options.collect_rows {
                    rows.extend(c.to_rows());
                }
            }
            Msg::Eof => break,
        }
    }
    for h in handles {
        let _ = h.join();
    }
    let wall = start.elapsed();
    let metrics = ctx.finish_metrics(wall, rows_out);
    monitor.on_trace(&ctx, &metrics);
    monitor.on_query_end(&ctx);

    if let Some(e) = error_slot.lock().take() {
        return Err(e);
    }
    Ok(QueryOutput { rows, metrics })
}

/// Convenience: execute with no monitor (pure baseline).
pub fn execute_baseline(plan: Arc<PhysPlan>, options: ExecOptions) -> Result<QueryOutput> {
    execute(plan, Arc::new(crate::monitor::NoopMonitor), options)
}
