//! The threaded push executor.
//!
//! Every operator runs on its own OS thread, connected by bounded channels:
//! the multithreaded, nondeterministically-scheduled execution model of
//! Tukwila (§V-A), where the CPU naturally switches to whatever part of the
//! bushy plan has data available.
//!
//! # Failure semantics
//!
//! A query returns either its complete result or an attributed error —
//! never a silent truncation. Three mechanisms enforce this:
//!
//! * **Panic containment.** Every operator thread body runs under
//!   `catch_unwind`; a panic becomes a [`SipError::ExecAt`] carrying the
//!   operator id, kind, partition, and the panic payload, instead of a
//!   closed channel that looks like EOF downstream.
//! * **Error-vs-Eof discipline.** A channel that disconnects without a
//!   clean [`Msg::Eof`] means the upstream operator died; every consumer
//!   (operators and the root drain here) treats it as a hard error rather
//!   than end-of-stream.
//! * **First-error propagation with cancellation.** Failures land in the
//!   context's error slots ([`ExecContext::fail`]) and trip the shared
//!   [`sip_common::CancelToken`]; every other operator observes the token
//!   once per batch and winds down promptly. Root causes (panics,
//!   operator errors) take precedence over the disconnect/cancellation
//!   symptoms they trigger, so the reported error names the culprit.

use crate::context::{ExecContext, ExecOptions, Msg};
use crate::metrics::ExecMetrics;
use crate::monitor::ExecMonitor;
use crate::operators;
use crate::physical::{PhysKind, PhysPlan};
use crossbeam::channel::{bounded, Receiver, Sender};
use sip_common::error::ExecFailure;
use sip_common::{OpId, Result, Row, SipError};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

/// The outcome of one query execution.
#[derive(Debug)]
pub struct QueryOutput {
    /// Result rows (empty when `collect_rows` is off).
    pub rows: Vec<Row>,
    /// Collected metrics.
    pub metrics: ExecMetrics,
}

/// Execute `plan` with `monitor` receiving runtime callbacks.
///
/// Returns when the root operator has emitted EOF and all operator threads
/// have joined. The first operator error (if any) is propagated.
pub fn execute(
    plan: Arc<PhysPlan>,
    monitor: Arc<dyn ExecMonitor>,
    options: ExecOptions,
) -> Result<QueryOutput> {
    plan.validate()?;
    let ctx = ExecContext::new(Arc::clone(&plan), options);
    execute_ctx(ctx, monitor)
}

/// Render a panic payload for attribution (panics carry `&str` or
/// `String` in practice; anything else is reported by type only).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Attach the per-phase time shares to a deadline-exceeded error so a
/// timeout is diagnosable (which phase ate the budget).
fn with_deadline_detail(e: SipError, metrics: &ExecMetrics) -> SipError {
    if !e.message().contains("deadline exceeded") {
        return e;
    }
    let shares = crate::profile::fmt_phase_split(&metrics.phase_totals());
    match e {
        SipError::ExecAt {
            message,
            op,
            kind,
            partition,
            class,
        } => SipError::ExecAt {
            message: format!("{message}; phase shares {shares}"),
            op,
            kind,
            partition,
            class,
        },
        other => SipError::Exec(format!("{}; phase shares {shares}", other.message())),
    }
}

/// Spawn one operator thread against `ctx` — the global run context, or
/// a recovery fragment view (the recovery layer replays *the same
/// operator implementations* it supervises, so a replayed fragment is
/// byte-identical to a clean run by construction).
///
/// Contains panics: an uncontained panic closes this thread's channels,
/// which the consumer would otherwise have no way to distinguish from a
/// clean EOF. The channel endpoints are owned by the closure, so they
/// drop during the unwind either way — what `catch_unwind` buys is the
/// attributed error recorded *before* anyone can misread the hangup.
pub(crate) fn spawn_operator(
    ctx: &Arc<ExecContext>,
    monitor: &Arc<dyn ExecMonitor>,
    op: OpId,
    mut ins: Vec<Receiver<Msg>>,
    out: Sender<Msg>,
) -> std::thread::JoinHandle<()> {
    let ctx = Arc::clone(ctx);
    let monitor = Arc::clone(monitor);
    let kind_name = ctx.plan.node(op).kind.name();
    std::thread::Builder::new()
        .name(format!("sip-{op}-{kind_name}"))
        .spawn(move || {
            let result = catch_unwind(AssertUnwindSafe(|| match &ctx.plan.node(op).kind {
                PhysKind::Scan { .. } => operators::scan::run_scan(&ctx, op, out),
                PhysKind::ExternalSource { .. } => operators::scan::run_external(&ctx, op, out),
                PhysKind::Filter { .. } => {
                    operators::stateless::run_filter(&ctx, op, ins.remove(0), out)
                }
                PhysKind::Project { .. } => {
                    operators::stateless::run_project(&ctx, op, ins.remove(0), out)
                }
                PhysKind::HashJoin { .. } => {
                    let right = ins.remove(1);
                    let left = ins.remove(0);
                    operators::hash_join::run_hash_join(&ctx, &monitor, op, left, right, out)
                }
                PhysKind::Aggregate { .. } => {
                    operators::aggregate::run_aggregate(&ctx, &monitor, op, ins.remove(0), out)
                }
                PhysKind::Distinct => {
                    operators::aggregate::run_distinct(&ctx, &monitor, op, ins.remove(0), out)
                }
                PhysKind::SemiJoin { .. } => {
                    let build = ins.remove(1);
                    let probe = ins.remove(0);
                    operators::semi_join::run_semi_join(&ctx, &monitor, op, probe, build, out)
                }
                PhysKind::Exchange { .. } => {
                    operators::exchange::run_exchange(&ctx, op, ins.remove(0), out)
                }
                PhysKind::Merge => operators::exchange::run_merge(&ctx, op, ins, out),
                PhysKind::ShuffleWrite { .. } => {
                    operators::shuffle::run_shuffle_write(&ctx, &monitor, op, ins.remove(0), out)
                }
                PhysKind::ShuffleRead { .. } => {
                    operators::shuffle::run_shuffle_read(&ctx, op, ins, out)
                }
            }));
            match result {
                Ok(Ok(())) => {}
                Ok(Err(e)) => {
                    // Attribute bare exec errors to this operator;
                    // other layers (expr, net, ...) and already-
                    // attributed errors pass through unchanged.
                    let e = match e {
                        SipError::Exec(m) => ctx.attributed(op, m, ExecFailure::Error),
                        other => other,
                    };
                    ctx.fail(e);
                }
                Err(payload) => {
                    let msg = panic_message(payload);
                    ctx.fail(ctx.attributed(
                        op,
                        format!("operator thread panicked: {msg}"),
                        ExecFailure::Panic,
                    ));
                }
            }
        })
        .expect("spawn operator thread")
}

/// Execute with a caller-constructed context — used by the distributed
/// harness, whose simulated remote sites need shared access to the taps
/// (so shipped filters can be applied *before* transmission).
pub fn execute_ctx(ctx: Arc<ExecContext>, monitor: Arc<dyn ExecMonitor>) -> Result<QueryOutput> {
    let plan = Arc::clone(&ctx.plan);
    plan.validate()?;
    // Reject degenerate sizing with a config error before any thread
    // spawns (a zero batch size would panic inside the scan's chunking).
    ctx.options.validate()?;
    monitor.on_query_start(&ctx);

    let start = Instant::now();
    let mut senders: Vec<Option<Sender<Msg>>> = Vec::with_capacity(plan.nodes.len());
    let mut receivers: Vec<Option<Receiver<Msg>>> = Vec::with_capacity(plan.nodes.len());
    for _ in &plan.nodes {
        let (tx, rx) = bounded(ctx.options.channel_capacity);
        senders.push(Some(tx));
        receivers.push(Some(rx));
    }
    let root_rx = receivers[plan.root.index()]
        .take()
        .expect("root receiver present");

    // Recovery: below every shuffle-mesh writer, the stateless source
    // chain (`Scan → Filter/Project*`) is a replayable *fragment*. With a
    // retry policy installed those operators do not spawn here — each
    // fragment gets a supervisor thread that re-executes the chain in
    // isolated views until it delivers, committing batches exactly once
    // at the writer-input seam.
    let fragments = if ctx.options.retry.is_some() {
        crate::recovery::fragments(&plan)
    } else {
        Vec::new()
    };
    let mut fragment_member = vec![false; plan.nodes.len()];
    for frag in &fragments {
        for op in &frag.ops {
            fragment_member[op.index()] = true;
        }
    }

    let mut handles = Vec::with_capacity(plan.nodes.len());
    for node in &plan.nodes {
        let op = node.id;
        if fragment_member[op.index()] {
            continue;
        }
        let out = senders[op.index()].take().expect("sender unused");
        let ins: Vec<Receiver<Msg>> = node
            .inputs
            .iter()
            .map(|c| receivers[c.index()].take().expect("input receiver unused"))
            .collect();
        handles.push(spawn_operator(&ctx, &monitor, op, ins, out));
    }
    for frag in fragments {
        let seam = senders[frag.top.index()]
            .take()
            .expect("fragment seam sender unused");
        handles.push(crate::recovery::spawn_fragment_supervisor(
            Arc::clone(&ctx),
            Arc::clone(&monitor),
            frag,
            seam,
        ));
    }
    drop(senders);
    drop(receivers);

    // Drain the root. Columnar batches convert to rows here — the root is
    // a row seam by design (callers consume `Vec<Row>`). A disconnect
    // before Eof means the root operator died: record it (as a symptom —
    // the failing operator's own error takes precedence) instead of
    // returning whatever partial result drained so far as a success.
    let mut rows: Vec<Row> = Vec::new();
    let mut rows_out = 0u64;
    let mut clean_eof = false;
    loop {
        match root_rx.recv() {
            Ok(Msg::Batch(b)) => {
                rows_out += b.len() as u64;
                if ctx.options.collect_rows {
                    rows.extend(b.rows);
                }
            }
            Ok(Msg::Cols(c)) => {
                rows_out += c.len() as u64;
                if ctx.options.collect_rows {
                    rows.extend(c.to_rows());
                }
            }
            Ok(Msg::Eof) => {
                clean_eof = true;
                break;
            }
            Err(_) => break,
        }
    }
    if !clean_eof {
        ctx.fail(ctx.attributed(
            plan.root,
            "root channel closed before Eof",
            ExecFailure::Disconnect,
        ));
    }
    // Unblock any producer still parked on a full root channel, then join
    // everything — no thread outlives the query.
    drop(root_rx);
    for h in handles {
        if h.join().is_err() {
            // catch_unwind contains operator panics, so this fires only
            // if the error-recording path itself panicked.
            ctx.fail(SipError::Exec(
                "operator thread panicked outside containment".into(),
            ));
        }
    }
    let wall = start.elapsed();
    let metrics = ctx.finish_metrics(wall, rows_out);
    monitor.on_trace(&ctx, &metrics);
    monitor.on_query_end(&ctx);

    if let Some(e) = ctx.take_error() {
        return Err(with_deadline_detail(e, &metrics));
    }
    // Backstop for an external cancel that tripped the token without any
    // operator observing it before the run completed its teardown.
    if ctx.cancel.cancelled_flag() && !clean_eof {
        let reason = ctx
            .cancel
            .reason()
            .unwrap_or_else(|| "query cancelled".into());
        return Err(with_deadline_detail(SipError::Exec(reason), &metrics));
    }
    Ok(QueryOutput { rows, metrics })
}

/// Convenience: execute with no monitor (pure baseline).
pub fn execute_baseline(plan: Arc<PhysPlan>, options: ExecOptions) -> Result<QueryOutput> {
    execute(plan, Arc::new(crate::monitor::NoopMonitor), options)
}

/// [`execute`] under the options' retry policy: failures the policy
/// covers (and fragment replay inside the run did not already heal) are
/// retried whole-run from the deterministic sources, up to the budget.
/// With no policy installed this is exactly [`execute`].
pub fn execute_with_recovery(
    plan: Arc<PhysPlan>,
    monitor: Arc<dyn ExecMonitor>,
    options: ExecOptions,
) -> Result<QueryOutput> {
    crate::recovery::run_with_recovery(options, |opts| {
        execute(Arc::clone(&plan), Arc::clone(&monitor), opts)
    })
}
