//! Shared per-execution context: options, taps, metrics, collectors.

use crate::delay::DelayModel;
use crate::metrics::MetricsHub;
use crate::monitor::RowCollector;
use crate::physical::PhysPlan;
use crate::taps::{FilterTap, InjectedFilter, MergePolicy};
use crossbeam::channel::Receiver;
use parking_lot::Mutex;
use sip_common::{AttrId, Batch, FxHashMap, FxHashSet, OpId};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Describes how an expanded (partition-parallel) plan maps back onto the
/// serial plan it was built from. Produced by `sip-parallel`, consumed by
/// AIP controllers (to scope per-partition filters and OR-merge them into
/// plan-wide ones) and by per-partition metrics rollups.
#[derive(Clone, Debug)]
pub struct PartitionMap {
    /// Degree of parallelism the plan was expanded for.
    pub dop: u32,
    /// For each expanded operator: `Some(p)` when the operator is part of
    /// partition `p`'s clone (including replicated subtrees instantiated
    /// for that partition), `None` for the serial section (merges, final
    /// aggregates, the tail above the region).
    pub partition_of: Vec<Option<u32>>,
    /// For each expanded operator: the operator of the *source* plan it was
    /// cloned from (synthesized Exchange/Merge nodes map to the source
    /// operator they wrap).
    pub logical_of: Vec<OpId>,
    /// The attribute-equivalence class the plan is hash-partitioned on.
    /// A per-partition AIP set over one of these attributes covers exactly
    /// its partition's hash class and may be injected plan-wide under a
    /// [`crate::taps::FilterScope`]; sets over other attributes are partial
    /// and only usable once every partition's set is OR-merged.
    pub class_attrs: FxHashSet<AttrId>,
}

impl PartitionMap {
    /// The partition an expanded operator belongs to, if any.
    pub fn partition(&self, op: OpId) -> Option<u32> {
        self.partition_of.get(op.index()).copied().flatten()
    }

    /// The source-plan operator an expanded operator was cloned from.
    pub fn logical(&self, op: OpId) -> OpId {
        self.logical_of[op.index()]
    }

    /// Is `attr` part of the partitioning class?
    pub fn in_class(&self, attr: AttrId) -> bool {
        self.class_attrs.contains(&attr)
    }
}

/// A message flowing between operators.
#[derive(Debug)]
pub enum Msg {
    /// A batch of rows.
    Batch(Batch),
    /// End of stream.
    Eof,
}

/// Options for one execution.
#[derive(Debug)]
pub struct ExecOptions {
    /// Rows per inter-operator batch.
    pub batch_size: usize,
    /// Bounded-channel capacity (batches) — the backpressure window.
    pub channel_capacity: usize,
    /// Delay models, keyed by scan binding (then by table name as fallback).
    pub delays: FxHashMap<String, DelayModel>,
    /// Collect result rows at the sink (disable for pure timing runs of
    /// large outputs).
    pub collect_rows: bool,
    /// Feeding channels for [`crate::physical::PhysKind::ExternalSource`]
    /// nodes, keyed by operator id. Taken (not cloned) at spawn time.
    pub external_inputs: Mutex<FxHashMap<u32, Receiver<Msg>>>,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            batch_size: 1024,
            channel_capacity: 16,
            delays: FxHashMap::default(),
            collect_rows: true,
            external_inputs: Mutex::new(FxHashMap::default()),
        }
    }
}

impl ExecOptions {
    /// Add a delay model for a binding or table name.
    pub fn with_delay(mut self, binding: impl Into<String>, model: DelayModel) -> Self {
        self.delays.insert(binding.into(), model);
        self
    }

    /// Look up the delay for a scan.
    pub fn delay_for(&self, binding: &str, table: &str) -> Option<&DelayModel> {
        self.delays.get(binding).or_else(|| self.delays.get(table))
    }
}

/// Shared state for one run: the plan, metrics hub, tap points, and
/// controller-installed collectors.
pub struct ExecContext {
    /// The executing plan.
    pub plan: Arc<PhysPlan>,
    /// Metrics hub.
    pub hub: Arc<MetricsHub>,
    /// One tap per operator (indexed by OpId), applied to that operator's
    /// output rows.
    pub taps: Vec<FilterTap>,
    /// Execution options.
    pub options: ExecOptions,
    /// Partition structure when this context executes an expanded
    /// partition-parallel plan (`None` for serial plans).
    pub partitions: Option<Arc<PartitionMap>>,
    collectors: Mutex<FxHashMap<(u32, usize), Box<dyn RowCollector>>>,
}

impl ExecContext {
    /// Build a context for `plan`.
    pub fn new(plan: Arc<PhysPlan>, options: ExecOptions) -> Arc<Self> {
        Self::build(plan, options, None)
    }

    /// Build a context for an expanded partition-parallel plan. Every
    /// partition clone gets its own [`FilterTap`] and metrics slot simply by
    /// being its own operator.
    pub fn new_partitioned(
        plan: Arc<PhysPlan>,
        options: ExecOptions,
        partitions: Arc<PartitionMap>,
    ) -> Arc<Self> {
        Self::build(plan, options, Some(partitions))
    }

    fn build(
        plan: Arc<PhysPlan>,
        options: ExecOptions,
        partitions: Option<Arc<PartitionMap>>,
    ) -> Arc<Self> {
        let n = plan.nodes.len();
        Arc::new(ExecContext {
            hub: MetricsHub::new(n),
            taps: (0..n).map(|_| FilterTap::new()).collect(),
            plan,
            options,
            partitions,
            collectors: Mutex::new(FxHashMap::default()),
        })
    }

    /// The output layout of an operator.
    pub fn layout(&self, op: OpId) -> &[AttrId] {
        &self.plan.node(op).layout
    }

    /// Inject a semijoin filter at `op`'s output. Counts toward
    /// `filters_injected`.
    pub fn inject_filter(&self, op: OpId, filter: InjectedFilter, policy: MergePolicy) {
        self.taps[op.index()].inject(filter, policy);
        self.hub.filters_injected.fetch_add(1, Ordering::Relaxed);
    }

    /// Install a per-input row collector (controllers call this from
    /// `on_query_start`; later installs are ignored by operators already
    /// past startup).
    pub fn install_collector(&self, op: OpId, input: usize, c: Box<dyn RowCollector>) {
        self.collectors.lock().insert((op.0, input), c);
    }

    /// Used by operator threads to claim their collectors.
    pub(crate) fn take_collector(&self, op: OpId, input: usize) -> Option<Box<dyn RowCollector>> {
        self.collectors.lock().remove(&(op.0, input))
    }
}

impl std::fmt::Debug for ExecContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecContext")
            .field("nodes", &self.plan.nodes.len())
            .field("taps", &self.taps.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn delay_lookup_prefers_binding() {
        let opts = ExecOptions::default()
            .with_delay("partsupp", DelayModel::paper_delayed())
            .with_delay("ps2", DelayModel::initial_only(Duration::from_millis(1)));
        assert_eq!(
            opts.delay_for("ps2", "partsupp"),
            Some(&DelayModel::initial_only(Duration::from_millis(1)))
        );
        assert_eq!(
            opts.delay_for("ps1", "partsupp"),
            Some(&DelayModel::paper_delayed())
        );
        assert_eq!(opts.delay_for("l", "lineitem"), None);
    }

    #[test]
    fn defaults_are_sane() {
        let opts = ExecOptions::default();
        assert!(opts.batch_size >= 64);
        assert!(opts.channel_capacity >= 1);
        assert!(opts.collect_rows);
    }
}
