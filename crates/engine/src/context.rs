//! Shared per-execution context: options, taps, metrics, collectors.

use crate::delay::DelayModel;
use crate::fault::{FaultPlan, FaultState};
use crate::metrics::{ExecMetrics, FilterStat, MetricsHub};
use crate::monitor::RowCollector;
use crate::physical::{PhysKind, PhysPlan};
use crate::taps::{FilterTap, InjectedFilter, MergePolicy};
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use sip_common::cancel::CancelToken;
use sip_common::error::ExecFailure;
use sip_common::retry::RetryPolicy;
use sip_common::trace::{OpTracer, TraceLevel};
use sip_common::{AttrId, Batch, FxHashMap, FxHashSet, OpId, SipError};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// Describes how an expanded (partition-parallel) plan maps back onto the
/// serial plan it was built from. Produced by `sip-parallel`, consumed by
/// AIP controllers (to scope per-partition filters and OR-merge them into
/// plan-wide ones) and by per-partition metrics rollups.
#[derive(Clone, Debug)]
pub struct PartitionMap {
    /// Degree of parallelism the plan was expanded for.
    pub dop: u32,
    /// For each expanded operator: `Some(p)` when the operator is part of
    /// partition `p`'s clone (including replicated subtrees instantiated
    /// for that partition), `None` for the serial section (merges, final
    /// aggregates, the tail above the region).
    pub partition_of: Vec<Option<u32>>,
    /// For each expanded operator: the operator of the *source* plan it was
    /// cloned from (synthesized Exchange/Merge nodes map to the source
    /// operator they wrap).
    pub logical_of: Vec<OpId>,
    /// The attribute-equivalence class the plan's partitioned *scans* are
    /// hash-split on (the expander's top-scoring class). Kept for display
    /// and back-compat; per-operator scoping should use
    /// [`PartitionMap::in_class_at`], which understands that a shuffle
    /// changes the partitioning class mid-plan.
    pub class_attrs: FxHashSet<AttrId>,
    /// For each expanded operator in a partition region: the id (into
    /// [`PartitionMap::classes`]) of the partitioning class its *output
    /// rows* obey — i.e. every row at partition `p` hashes to `p` on every
    /// attribute of that class. `None` for serial-section operators.
    pub op_class: Vec<Option<u32>>,
    /// The interned partitioning classes. Unlike `class_attrs` (a whole
    /// equivalence class), these hold only attributes whose *values*
    /// provably obey the partition-hash invariant on that stream.
    pub classes: Vec<FxHashSet<AttrId>>,
    /// Per interned class: the key digests a skew-adaptive shuffle routes
    /// *outside* the partition-hash invariant (salted hot keys — scattered
    /// probe rows, replicated build rows). A per-partition AIP filter
    /// scoped to such a class must pass these digests unprobed: partition
    /// `p`'s working set no longer covers `p`'s full hash class for them.
    /// The plan-wide OR-merged union stays exempt-free — it covers the
    /// whole subexpression regardless of routing. Classes absent from this
    /// map are strict.
    pub salted: FxHashMap<u32, Arc<sip_filter::SaltedKeys>>,
    /// Expanded operators whose aggregate-value columns hold *partial*
    /// (per-partition) accumulator states awaiting the final merge
    /// aggregate — the partial clones themselves and the Merge feeding the
    /// final aggregate. Maps op index → number of leading group columns.
    /// An injected filter probing a value column here would prune a
    /// partition's contribution and corrupt the merged aggregate; group
    /// columns stay filterable (they prune whole groups, by value).
    pub partial_agg_group_cols: FxHashMap<u32, usize>,
}

impl PartitionMap {
    /// The partition an expanded operator belongs to, if any.
    pub fn partition(&self, op: OpId) -> Option<u32> {
        self.partition_of.get(op.index()).copied().flatten()
    }

    /// The source-plan operator an expanded operator was cloned from.
    pub fn logical(&self, op: OpId) -> OpId {
        self.logical_of[op.index()]
    }

    /// Is `attr` part of the scan partitioning class?
    pub fn in_class(&self, attr: AttrId) -> bool {
        self.class_attrs.contains(&attr)
    }

    /// May an injected filter probe position `pos` of `op`'s output?
    /// False only for the aggregate-value columns of partial-aggregate
    /// sites, whose values are not final until the merge aggregate runs.
    pub fn filterable_at(&self, op: OpId, pos: usize) -> bool {
        match self.partial_agg_group_cols.get(&op.0) {
            Some(&n_groups) => pos < n_groups,
            None => true,
        }
    }

    /// Does `attr` obey the partition-hash invariant on `op`'s output
    /// stream — for every key except the stream's salted digests
    /// ([`PartitionMap::salted_at`])? True exactly when a per-partition
    /// AIP set built from state fed by `op` can be injected plan-wide
    /// under a [`crate::taps::FilterScope`] keyed by `attr`, with the
    /// salted digests attached as the scope's pass-unprobed exemption.
    pub fn in_class_at(&self, op: OpId, attr: AttrId) -> bool {
        self.op_class
            .get(op.index())
            .copied()
            .flatten()
            .map(|c| self.classes[c as usize].contains(&attr))
            .unwrap_or(false)
    }

    /// The digests routed outside the partition-hash invariant on `op`'s
    /// output stream (`None` = the stream's class is strict). Controllers
    /// attach this to every [`crate::taps::FilterScope`]d filter whose set
    /// summarizes state fed by `op`.
    pub fn salted_at(&self, op: OpId) -> Option<Arc<sip_filter::SaltedKeys>> {
        let class = self.op_class.get(op.index()).copied().flatten()?;
        self.salted.get(&class).cloned()
    }
}

/// A message flowing between operators.
#[derive(Debug)]
pub enum Msg {
    /// A batch of rows.
    Batch(Batch),
    /// A batch in columnar layout. Operators accept both payload kinds;
    /// the stateless pipeline (scan → filter/project → exchange/shuffle)
    /// keeps data columnar, while row seams (join state, aggregation,
    /// the root sink) convert on receipt.
    Cols(sip_common::ColumnarBatch),
    /// End of stream.
    Eof,
}

impl Msg {
    /// Rows carried by this message (0 for EOF).
    pub fn len(&self) -> usize {
        match self {
            Msg::Batch(b) => b.len(),
            Msg::Cols(c) => c.len(),
            Msg::Eof => 0,
        }
    }

    /// True when the message carries no rows (including EOF).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Options for one execution.
#[derive(Debug)]
pub struct ExecOptions {
    /// Rows per inter-operator batch.
    pub batch_size: usize,
    /// Bounded-channel capacity (batches) — the backpressure window.
    pub channel_capacity: usize,
    /// Delay models, keyed by scan binding (then by table name as fallback).
    pub delays: FxHashMap<String, DelayModel>,
    /// Collect result rows at the sink (disable for pure timing runs of
    /// large outputs).
    pub collect_rows: bool,
    /// Fan-in of the tree-structured merge tail in partition-parallel
    /// plans (consumed by `sip-parallel` at expansion time): `0` = auto
    /// (one flat merge up to dop 4, a binary tree above — the flat merge
    /// thread is the serial hop tree merging removes for large outputs);
    /// values `>= 2` force that fan-in. `1` is rejected by validation (a
    /// 1-ary merge tree cannot terminate).
    pub merge_fanin: usize,
    /// Feeding channels for [`crate::physical::PhysKind::ExternalSource`]
    /// nodes, keyed by operator id. Taken (not cloned) at spawn time.
    pub external_inputs: Mutex<FxHashMap<u32, Receiver<Msg>>>,
    /// How much runtime detail the `sip-trace` layer records
    /// ([`TraceLevel::Off`] by default — routing/skew counts still flow).
    pub trace_level: TraceLevel,
    /// Wall-clock budget for the whole query. When it expires the shared
    /// [`CancelToken`] trips and the run returns a deadline-exceeded
    /// execution error carrying the per-phase time shares recorded so
    /// far. `None` (the default) = no deadline.
    pub deadline: Option<Duration>,
    /// Injected faults for chaos testing ([`FaultPlan::none`] by
    /// default — the per-batch check is two branches when empty).
    pub faults: FaultPlan,
    /// Recovery policy. `None` (the default) keeps PR 9's fail-fast
    /// behavior: the first failure kills the query. `Some(policy)`
    /// enables the recovery layer — fragment replay below shuffle
    /// seams, run-level retry, stage-checkpoint recovery, and (when the
    /// policy carries a `speculation_quantum`) straggler speculation.
    pub retry: Option<RetryPolicy>,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            batch_size: 1024,
            channel_capacity: 16,
            delays: FxHashMap::default(),
            collect_rows: true,
            merge_fanin: 0,
            external_inputs: Mutex::new(FxHashMap::default()),
            trace_level: TraceLevel::default(),
            deadline: None,
            faults: FaultPlan::none(),
            retry: None,
        }
    }
}

impl ExecOptions {
    /// Validated construction: the two sizing knobs with everything else at
    /// defaults. Returns a [`SipError::Config`](sip_common::SipError) for
    /// values that would wedge or panic the executor instead of failing at
    /// runtime inside an operator thread.
    pub fn validated(batch_size: usize, channel_capacity: usize) -> sip_common::Result<Self> {
        let opts = ExecOptions {
            batch_size,
            channel_capacity,
            ..Default::default()
        };
        opts.validate()?;
        Ok(opts)
    }

    /// Check the sizing invariants. Called by the executor entry points, so
    /// a hand-assembled `ExecOptions` is rejected with a config error
    /// before any operator thread spawns.
    pub fn validate(&self) -> sip_common::Result<()> {
        if self.batch_size == 0 {
            return Err(sip_common::SipError::Config(
                "batch_size must be at least 1 row".into(),
            ));
        }
        if self.channel_capacity == 0 {
            return Err(sip_common::SipError::Config(
                "channel_capacity must hold at least 1 batch (the backpressure window)".into(),
            ));
        }
        if self.merge_fanin == 1 {
            return Err(sip_common::SipError::Config(
                "merge_fanin must be 0 (auto) or at least 2 (a 1-ary merge tree cannot terminate)"
                    .into(),
            ));
        }
        if let Some(d) = self.deadline {
            if d.is_zero() {
                return Err(sip_common::SipError::Config(
                    "deadline of 0 would cancel every query before its first batch; \
                     use None for no deadline or a positive duration"
                        .into(),
                ));
            }
        }
        self.faults.validate()?;
        if let Some(policy) = &self.retry {
            policy.validate()?;
        }
        for (binding, model) in &self.delays {
            model.validate().map_err(|e| {
                sip_common::SipError::Config(format!("delay model for {binding:?}: {e}"))
            })?;
        }
        Ok(())
    }

    /// Add a delay model for a binding or table name.
    pub fn with_delay(mut self, binding: impl Into<String>, model: DelayModel) -> Self {
        self.delays.insert(binding.into(), model);
        self
    }

    /// Set the `sip-trace` recording level.
    pub fn with_trace(mut self, level: TraceLevel) -> Self {
        self.trace_level = level;
        self
    }

    /// Set a wall-clock deadline for the whole query.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Install an injected-fault plan (chaos testing).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Enable the recovery layer under `policy`.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// A fresh copy of these options for a retry attempt. Everything is
    /// cloned — including the fault plan, whose fire ledger is *shared*
    /// (an Arc), so bounded chaos faults stay exhausted across attempts
    /// — except `external_inputs`: those channels were taken by the
    /// failed run's threads and cannot be replayed, so recovery scopes
    /// must not be offered contexts that had any (see
    /// [`crate::exec::execute_with_recovery`]).
    pub fn fresh_clone(&self) -> ExecOptions {
        ExecOptions {
            batch_size: self.batch_size,
            channel_capacity: self.channel_capacity,
            delays: self.delays.clone(),
            collect_rows: self.collect_rows,
            merge_fanin: self.merge_fanin,
            external_inputs: Mutex::new(FxHashMap::default()),
            trace_level: self.trace_level,
            deadline: self.deadline,
            faults: self.faults.clone(),
            retry: self.retry.clone(),
        }
    }

    /// Look up the delay for a scan.
    pub fn delay_for(&self, binding: &str, table: &str) -> Option<&DelayModel> {
        self.delays.get(binding).or_else(|| self.delays.get(table))
    }
}

/// Shared state for one run: the plan, metrics hub, tap points, and
/// controller-installed collectors.
pub struct ExecContext {
    /// The executing plan.
    pub plan: Arc<PhysPlan>,
    /// Metrics hub.
    pub hub: Arc<MetricsHub>,
    /// One tap per operator (indexed by OpId), applied to that operator's
    /// output rows.
    pub taps: Vec<FilterTap>,
    /// Execution options.
    pub options: ExecOptions,
    /// Partition structure when this context executes an expanded
    /// partition-parallel plan (`None` for serial plans).
    pub partitions: Option<Arc<PartitionMap>>,
    /// The shared cancellation token for this run. Trips on the first
    /// failure (or deadline, or an explicit cancel); every operator
    /// observes it once per batch and winds down.
    pub cancel: CancelToken,
    /// First-error slots. `primary` holds root causes (operator panics
    /// and errors); `secondary` holds symptoms (disconnects,
    /// cancellation errors) that only matter when no root cause was
    /// recorded — a consumer can observe its input channel die *before*
    /// the failing producer's wrapper records the panic, and the query
    /// error must name the panic, not the hangup.
    errors: Mutex<ErrorSlots>,
    collectors: Mutex<FxHashMap<(u32, usize), Box<dyn RowCollector>>>,
    /// Shuffle-mesh producer channels, `(mesh, writer)` → one bounded
    /// `Sender` per consumer partition, in partition order. Built from the
    /// plan's `ShuffleWrite`/`ShuffleRead` nodes; taken once by each
    /// writer thread at spawn.
    shuffle_tx: Mutex<MeshEndpoints<Sender<Msg>>>,
    /// Shuffle-mesh consumer channels, `(mesh, partition)` → one bounded
    /// `Receiver` per writer, in writer order. Taken once by each reader
    /// thread at spawn.
    shuffle_rx: Mutex<MeshEndpoints<Receiver<Msg>>>,
    /// Per-mesh countdown of writers still running. The writer that drops
    /// a mesh's count to zero owns the stage boundary: it builds the
    /// [`crate::monitor::StageFeedback`] snapshot and invokes
    /// [`crate::monitor::ExecMonitor::on_stage_boundary`].
    mesh_writers_left: FxHashMap<u32, std::sync::atomic::AtomicU32>,
}

/// Per-mesh channel endpoints keyed by `(mesh, writer-or-partition)`.
type MeshEndpoints<T> = FxHashMap<(u32, u32), Vec<T>>;

/// First-error storage with root-cause precedence (see
/// [`ExecContext::fail`]).
#[derive(Debug, Default)]
struct ErrorSlots {
    primary: Option<SipError>,
    secondary: Option<SipError>,
}

impl ExecContext {
    /// Build a context for `plan`.
    pub fn new(plan: Arc<PhysPlan>, options: ExecOptions) -> Arc<Self> {
        Self::build(plan, options, None)
    }

    /// Build a context for an expanded partition-parallel plan. Every
    /// partition clone gets its own [`FilterTap`] and metrics slot simply by
    /// being its own operator.
    pub fn new_partitioned(
        plan: Arc<PhysPlan>,
        options: ExecOptions,
        partitions: Arc<PartitionMap>,
    ) -> Arc<Self> {
        Self::build(plan, options, Some(partitions))
    }

    fn build(
        plan: Arc<PhysPlan>,
        options: ExecOptions,
        partitions: Option<Arc<PartitionMap>>,
    ) -> Arc<Self> {
        let n = plan.nodes.len();
        let (shuffle_tx, shuffle_rx) = Self::build_meshes(&plan, options.channel_capacity.max(1));
        let mut mesh_writers_left: FxHashMap<u32, std::sync::atomic::AtomicU32> =
            FxHashMap::default();
        for node in &plan.nodes {
            if let PhysKind::ShuffleWrite { mesh, .. } = node.kind {
                mesh_writers_left
                    .entry(mesh)
                    .or_insert_with(|| std::sync::atomic::AtomicU32::new(0))
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        let cancel = CancelToken::new();
        if let Some(deadline) = options.deadline {
            cancel.set_deadline(std::time::Instant::now() + deadline);
        }
        Arc::new(ExecContext {
            hub: MetricsHub::with_trace(n, options.trace_level),
            taps: (0..n).map(|_| FilterTap::new()).collect(),
            plan,
            options,
            partitions,
            cancel,
            errors: Mutex::new(ErrorSlots::default()),
            collectors: Mutex::new(FxHashMap::default()),
            shuffle_tx: Mutex::new(shuffle_tx),
            shuffle_rx: Mutex::new(shuffle_rx),
            mesh_writers_left,
        })
    }

    /// Build an isolated *fragment view* of this context for one
    /// recovery attempt: same plan and partition structure, but a fresh
    /// metrics hub, cancel token, error slots, and collectors, the
    /// caller's taps (frozen per-attempt filter copies), and no shuffle
    /// meshes — fragment members are stateless chain operators whose
    /// output the recovery supervisor forwards across the mesh seam
    /// itself. The view's options are a [`ExecOptions::fresh_clone`]
    /// with the deadline cleared: the *global* token enforces the run
    /// deadline (its expiry tears the seam down), and a per-view
    /// deadline would restart the clock on every attempt.
    pub(crate) fn fragment_view(self: &Arc<Self>, taps: Vec<FilterTap>) -> Arc<ExecContext> {
        let n = self.plan.nodes.len();
        debug_assert_eq!(taps.len(), n);
        let mut options = self.options.fresh_clone();
        options.deadline = None;
        Arc::new(ExecContext {
            hub: MetricsHub::with_trace(n, options.trace_level),
            taps,
            plan: Arc::clone(&self.plan),
            options,
            partitions: self.partitions.clone(),
            cancel: CancelToken::new(),
            errors: Mutex::new(ErrorSlots::default()),
            collectors: Mutex::new(FxHashMap::default()),
            shuffle_tx: Mutex::new(FxHashMap::default()),
            shuffle_rx: Mutex::new(FxHashMap::default()),
            mesh_writers_left: FxHashMap::default(),
        })
    }

    /// Attribute `message` to `op`: attach the operator's kind name and
    /// (when partition-parallel) its partition.
    pub fn attributed(&self, op: OpId, message: impl Into<String>, class: ExecFailure) -> SipError {
        SipError::exec_at(
            message,
            op.0,
            self.plan.node(op).kind.name(),
            self.partitions.as_ref().and_then(|m| m.partition(op)),
            class,
        )
    }

    /// Record a failure and trip the cancellation token. Root causes
    /// (panics, operator errors, anything non-`ExecAt`) land in the
    /// primary slot; disconnects and cancellation errors — symptoms of a
    /// failure elsewhere — land in the secondary slot and only surface
    /// when nothing primary was recorded. First error per slot wins.
    pub fn fail(&self, e: SipError) {
        let reason = e.to_string();
        {
            let mut slots = self.errors.lock();
            let slot = if e.is_primary() {
                &mut slots.primary
            } else {
                &mut slots.secondary
            };
            slot.get_or_insert(e);
        }
        self.cancel.cancel(reason);
    }

    /// The error this run should report, if any: the first root cause,
    /// else the first symptom.
    pub fn take_error(&self) -> Option<SipError> {
        let mut slots = self.errors.lock();
        slots.primary.take().or_else(|| slots.secondary.take())
    }

    /// Per-batch cancellation check for operator loops: returns an
    /// attributed `Cancelled` error once the shared token has tripped.
    pub fn check_cancel(&self, op: OpId) -> sip_common::Result<()> {
        if self.cancel.is_cancelled() {
            let reason = self
                .cancel
                .reason()
                .unwrap_or_else(|| "query cancelled".into());
            return Err(self.attributed(op, reason, ExecFailure::Cancelled));
        }
        Ok(())
    }

    /// The attributed error for an input channel that disconnected
    /// without a clean `Msg::Eof` — the upstream operator died.
    pub fn disconnect_err(&self, op: OpId) -> SipError {
        self.attributed(
            op,
            "input channel closed before Eof (upstream operator died)",
            ExecFailure::Disconnect,
        )
    }

    /// Arm `op`'s injected fault, if the options' [`FaultPlan`] targets
    /// it. Operators advance the returned state once per incoming batch.
    pub fn arm_fault(&self, op: OpId) -> FaultState {
        if self.options.faults.is_empty() {
            return FaultState::default();
        }
        let kind_name = self.plan.node(op).kind.name();
        self.options.faults.arm(op.0, kind_name)
    }

    /// Materialize every shuffle mesh in the plan as a `writers × dop`
    /// grid of bounded channels — one dedicated channel per (writer,
    /// reader) edge, so each edge carries its own backpressure window and
    /// a slow reader only ever stalls the writers actually sending to it.
    fn build_meshes(
        plan: &PhysPlan,
        capacity: usize,
    ) -> (MeshEndpoints<Sender<Msg>>, MeshEndpoints<Receiver<Msg>>) {
        let mut txs: MeshEndpoints<Sender<Msg>> = FxHashMap::default();
        // Receivers are tagged with their writer index so each reader's
        // list can be sorted into writer order before handoff.
        let mut rxs: MeshEndpoints<(u32, Receiver<Msg>)> = FxHashMap::default();
        for node in &plan.nodes {
            if let PhysKind::ShuffleWrite {
                mesh, writer, dop, ..
            } = node.kind
            {
                let mut per_partition = Vec::with_capacity(dop as usize);
                for p in 0..dop {
                    let (tx, rx) = bounded(capacity);
                    per_partition.push(tx);
                    rxs.entry((mesh, p)).or_default().push((writer, rx));
                }
                txs.insert((mesh, writer), per_partition);
            }
        }
        let rxs = rxs
            .into_iter()
            .map(|(k, mut v)| {
                v.sort_by_key(|&(w, _)| w);
                (k, v.into_iter().map(|(_, rx)| rx).collect())
            })
            .collect();
        (txs, rxs)
    }

    /// Claim a shuffle writer's mesh senders (one per consumer partition).
    pub(crate) fn take_shuffle_senders(&self, mesh: u32, writer: u32) -> Option<Vec<Sender<Msg>>> {
        self.shuffle_tx.lock().remove(&(mesh, writer))
    }

    /// Claim a shuffle reader's mesh receivers (one per writer).
    pub(crate) fn take_shuffle_receivers(
        &self,
        mesh: u32,
        partition: u32,
    ) -> Option<Vec<Receiver<Msg>>> {
        self.shuffle_rx.lock().remove(&(mesh, partition))
    }

    /// One shuffle writer of `mesh` finished; true when it was the last —
    /// the caller then owns the mesh's stage boundary.
    pub(crate) fn mesh_writer_finished(&self, mesh: u32) -> bool {
        self.mesh_writers_left
            .get(&mesh)
            .map(|left| left.fetch_sub(1, Ordering::AcqRel) == 1)
            .unwrap_or(false)
    }

    /// Snapshot the live counters of `mesh` into a
    /// [`crate::monitor::StageFeedback`]: the per-writer routing
    /// histograms and sketches merged across the mesh (via the
    /// non-destructive [`sip_common::TraceHub::drain`]) plus the current
    /// rows/finished state of every operator. Meant to be called by the
    /// mesh's last writer, after its own tracer flush, so the drain sees
    /// the whole mesh.
    pub fn stage_feedback(&self, mesh: u32) -> crate::monitor::StageFeedback {
        let mut writer_ops: FxHashSet<u32> = FxHashSet::default();
        let mut dop = 0u32;
        for node in &self.plan.nodes {
            if let PhysKind::ShuffleWrite {
                mesh: m, dop: d, ..
            } = node.kind
            {
                if m == mesh {
                    writer_ops.insert(node.id.0);
                    dop = d;
                }
            }
        }
        let mut rows_routed = vec![0u64; dop as usize];
        let mut hot_keys = 0u64;
        let mut sketch: Option<sip_common::SpaceSaving> = None;
        for t in &self.hub.trace.drain().threads {
            if !writer_ops.contains(&t.op) {
                continue;
            }
            for (slot, &n) in rows_routed.iter_mut().zip(t.routed.iter()) {
                *slot += n;
            }
            hot_keys += t.hot_keys;
            if let Some(s) = &t.sketch {
                match &mut sketch {
                    Some(merged) => merged.merge(s),
                    None => sketch = Some(s.clone()),
                }
            }
        }
        let op_rows = self
            .hub
            .ops
            .iter()
            .enumerate()
            .map(|(i, m)| {
                (
                    OpId(i as u32),
                    m.rows_out.load(Ordering::Relaxed),
                    m.finished.load(Ordering::Relaxed),
                )
            })
            .collect();
        crate::monitor::StageFeedback {
            mesh,
            writers: writer_ops.len() as u32,
            dop,
            rows_routed,
            hot_keys,
            sketch,
            op_rows,
        }
    }

    /// The output layout of an operator.
    pub fn layout(&self, op: OpId) -> &[AttrId] {
        &self.plan.node(op).layout
    }

    /// Inject a semijoin filter at `op`'s output. Counts toward
    /// `filters_injected`.
    pub fn inject_filter(&self, op: OpId, filter: InjectedFilter, policy: MergePolicy) {
        self.taps[op.index()].inject(filter, policy);
        self.hub.filters_injected.fetch_add(1, Ordering::Relaxed);
    }

    /// Install a per-input row collector (controllers call this from
    /// `on_query_start`; later installs are ignored by operators already
    /// past startup).
    pub fn install_collector(&self, op: OpId, input: usize, c: Box<dyn RowCollector>) {
        self.collectors.lock().insert((op.0, input), c);
    }

    /// Used by operator threads to claim their collectors.
    pub(crate) fn take_collector(&self, op: OpId, input: usize) -> Option<Box<dyn RowCollector>> {
        self.collectors.lock().remove(&(op.0, input))
    }

    /// A thread-local span tracer for `op`, tagged with the partition the
    /// operator runs in (when this context executes an expanded plan).
    pub fn tracer(&self, op: OpId) -> OpTracer {
        let partition = self.partitions.as_ref().and_then(|m| m.partition(op));
        self.hub.trace.tracer(op.0, partition)
    }

    /// Freeze this run's metrics: merge the flushed thread traces
    /// ([`MetricsHub::finish_with`]) and collect per-filter ROI from the
    /// taps. Uses the explicit cancel flag (not the self-arming deadline
    /// check), so a query whose final Eof drained just past its deadline
    /// without any thread observing the expiry still freezes as a clean,
    /// complete run.
    pub fn finish_metrics(&self, wall_time: Duration, rows_out: u64) -> ExecMetrics {
        let mut metrics = self
            .hub
            .finish_with(wall_time, rows_out, self.cancel.cancelled_flag());
        for (i, tap) in self.taps.iter().enumerate() {
            for f in tap.snapshot().iter() {
                metrics.filter_stats.push(FilterStat {
                    site: OpId(i as u32),
                    label: f.label.clone(),
                    probed: f.probed.load(Ordering::Relaxed),
                    dropped: f.dropped.load(Ordering::Relaxed),
                    keys: f.set.n_keys(),
                    bytes: f.set.size_bytes() as u64,
                });
            }
        }
        metrics
    }
}

impl std::fmt::Debug for ExecContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecContext")
            .field("nodes", &self.plan.nodes.len())
            .field("taps", &self.taps.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn delay_lookup_prefers_binding() {
        let opts = ExecOptions::default()
            .with_delay("partsupp", DelayModel::paper_delayed())
            .with_delay("ps2", DelayModel::initial_only(Duration::from_millis(1)));
        assert_eq!(
            opts.delay_for("ps2", "partsupp"),
            Some(&DelayModel::initial_only(Duration::from_millis(1)))
        );
        assert_eq!(
            opts.delay_for("ps1", "partsupp"),
            Some(&DelayModel::paper_delayed())
        );
        assert_eq!(opts.delay_for("l", "lineitem"), None);
    }

    #[test]
    fn defaults_are_sane() {
        let opts = ExecOptions::default();
        assert!(opts.validate().is_ok());
        assert!(opts.batch_size >= 64);
        assert!(opts.channel_capacity >= 1);
        assert!(opts.collect_rows);
    }

    #[test]
    fn validated_rejects_degenerate_sizes() {
        assert!(ExecOptions::validated(1024, 16).is_ok());
        assert!(ExecOptions::validated(1, 1).is_ok());
        let e = ExecOptions::validated(0, 16).unwrap_err();
        assert_eq!(e.layer(), "config");
        let e = ExecOptions::validated(1024, 0).unwrap_err();
        assert_eq!(e.layer(), "config");
    }

    #[test]
    fn merge_fanin_one_is_rejected() {
        let mut opts = ExecOptions::default();
        for fanin in [0usize, 2, 8] {
            opts.merge_fanin = fanin;
            assert!(opts.validate().is_ok(), "fanin {fanin}");
        }
        opts.merge_fanin = 1;
        assert_eq!(opts.validate().unwrap_err().layer(), "config");
    }
}
