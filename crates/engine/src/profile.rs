//! Schema-checked query profiles (`sip.query_profile/v1`).
//!
//! A [`QueryProfile`] is the single frozen view of one executed query that
//! every reporting surface renders from: the `repro --profile` JSON
//! artifact, [`crate::report::explain_analyze`]'s annotated tree, and the
//! per-worker lines the benchmarks print. It joins the plan shape with the
//! merged `sip-trace` metrics — per-operator phase breakdown, routing skew,
//! AIP filter ROI and lifecycle — so the three surfaces cannot drift apart.
//!
//! The JSON is hand-rolled (the workspace takes no serde dependency),
//! mirroring the `BENCH_*.json` convention in `sip-bench`.

use crate::context::PartitionMap;
use crate::metrics::{ExecMetrics, FilterStat};
use crate::physical::PhysPlan;
use sip_common::json::json_str;
use sip_common::trace::{FilterEvent, SpanEvent, TraceLevel, N_PHASES};
use sip_common::Phase;
use std::fmt::Write as _;

/// Schema identifier stamped into every profile artifact.
pub const PROFILE_SCHEMA: &str = "sip.query_profile/v1";

/// One operator's frozen row of the profile.
#[derive(Clone, Debug)]
pub struct OpProfile {
    /// Operator id (raw index).
    pub op: u32,
    /// Physical operator kind name (`HashJoin`, `ShuffleWrite`, ...).
    pub kind: String,
    /// Worker partition owning this clone, `None` for serial sections.
    pub partition: Option<u32>,
    /// Rows received per input.
    pub rows_in: [u64; 2],
    /// Batches received across inputs.
    pub batches_in: u64,
    /// Rows emitted.
    pub rows_out: u64,
    /// AIP probes at this operator.
    pub aip_probed: u64,
    /// AIP drops at this operator.
    pub aip_dropped: u64,
    /// Peak buffered bytes.
    pub state_peak: u64,
    /// Fragment retry rounds this operator was re-executed in.
    pub retries: u64,
    /// Speculative duplicate attempts launched for this operator's
    /// fragment (straggler speculation).
    pub speculated: u64,
    /// Nanoseconds attributed per [`Phase`] (zero with tracing off).
    pub phase_nanos: [u64; N_PHASES],
    /// Spans recorded per [`Phase`].
    pub phase_counts: [u64; N_PHASES],
    /// Rows routed per destination partition (routing operators only).
    pub routed: Vec<u64>,
    /// Heavy hitters the routing sketch observed.
    pub hot_keys_observed: u64,
    /// Mean sampled occupancy of the downstream channel, if sampled.
    pub occupancy_mean: Option<f64>,
}

impl OpProfile {
    /// Total attributed busy nanoseconds.
    pub fn busy_nanos(&self) -> u64 {
        self.phase_nanos.iter().sum()
    }

    /// AIP drop rate in percent, `None` when nothing was probed.
    pub fn drop_rate(&self) -> Option<f64> {
        (self.aip_probed > 0).then(|| 100.0 * self.aip_dropped as f64 / self.aip_probed as f64)
    }
}

/// One worker partition's rollup (parallel runs only).
#[derive(Clone, Debug)]
pub struct PartitionProfile {
    /// Partition index.
    pub partition: u32,
    /// Rows emitted inside the partition.
    pub rows_out: u64,
    /// AIP probes inside the partition.
    pub aip_probed: u64,
    /// AIP drops inside the partition.
    pub aip_dropped: u64,
    /// Summed peak state bytes.
    pub state_peak: u64,
    /// Rows routing operators sent *to* this partition.
    pub rows_routed_in: u64,
    /// Nanoseconds attributed per [`Phase`].
    pub phase_nanos: [u64; N_PHASES],
}

impl PartitionProfile {
    /// Total attributed busy nanoseconds.
    pub fn busy_nanos(&self) -> u64 {
        self.phase_nanos.iter().sum()
    }
}

/// The complete frozen profile of one executed query.
#[derive(Clone, Debug)]
pub struct QueryProfile {
    /// Always [`PROFILE_SCHEMA`].
    pub schema: &'static str,
    /// The trace level the run recorded at.
    pub trace_level: TraceLevel,
    /// Wall-clock nanoseconds.
    pub wall_nanos: u64,
    /// Rows the root produced.
    pub rows_out: u64,
    /// Peak intermediate state, bytes.
    pub peak_state_bytes: u64,
    /// Simulated network bytes (0 for local runs).
    pub network_bytes: u64,
    /// AIP filters injected.
    pub filters_injected: u64,
    /// Total rows AIP filters dropped.
    pub aip_dropped_total: u64,
    /// Operators whose phase attribution clamped at merge time (nested
    /// emitter time exceeded the Compute total). Should always be 0; a
    /// nonzero value flags under-reported compute in `phase_nanos`.
    pub attribution_underflow: u64,
    /// Whether the query was cancelled (failure, deadline, or external
    /// cancel) before completing. A cancelled profile is still coherent —
    /// its counters snapshot the work done up to teardown.
    pub cancelled: bool,
    /// Whether any recovery (fragment replay, whole-run retry, or
    /// straggler speculation) healed a failure on the way to this result.
    pub recovered: bool,
    /// Run-level attempts the result took (1 = first try succeeded).
    pub attempts: u32,
    /// Degree of parallelism (1 for serial runs).
    pub dop: u32,
    /// Whole-plan nanoseconds per phase.
    pub phase_totals: [u64; N_PHASES],
    /// Per-operator rows, indexed by operator id.
    pub ops: Vec<OpProfile>,
    /// Per-partition rollups (empty for serial runs).
    pub partitions: Vec<PartitionProfile>,
    /// max/mean of per-partition busy time, `None` without partitions or
    /// with tracing off.
    pub busy_skew: Option<f64>,
    /// max/mean of per-partition routed-in rows, `None` when nothing
    /// routed.
    pub routed_skew: Option<f64>,
    /// Per-filter ROI at query end.
    pub filters: Vec<FilterStat>,
    /// AIP filter lifecycle events (built/scoped/or_merged/shipped).
    pub events: Vec<FilterEvent>,
    /// Individual spans ([`TraceLevel::Spans`] runs only).
    pub spans: Vec<SpanEvent>,
}

/// max / mean over a slice, `None` when the slice is empty or all-zero.
pub(crate) fn skew_of(xs: &[u64]) -> Option<f64> {
    let total: u64 = xs.iter().sum();
    if xs.is_empty() || total == 0 {
        return None;
    }
    let max = *xs.iter().max().unwrap() as f64;
    Some(max / (total as f64 / xs.len() as f64))
}

fn partition_rows(metrics: &ExecMetrics, map: &PartitionMap) -> Vec<PartitionProfile> {
    metrics
        .per_partition(map)
        .into_iter()
        .map(|s| PartitionProfile {
            partition: s.partition,
            rows_out: s.rows_out,
            aip_probed: s.aip_probed,
            aip_dropped: s.aip_dropped,
            state_peak: s.state_peak,
            rows_routed_in: s.rows_routed_in,
            phase_nanos: s.phase_nanos,
        })
        .collect()
}

impl QueryProfile {
    /// Join an executed plan with its metrics (and the partition map of a
    /// parallel run) into one profile.
    pub fn from_run(plan: &PhysPlan, metrics: &ExecMetrics, map: Option<&PartitionMap>) -> Self {
        let ops: Vec<OpProfile> = metrics
            .per_op
            .iter()
            .map(|m| OpProfile {
                op: m.op.0,
                kind: plan.node(m.op).kind.name().to_string(),
                partition: map.and_then(|pm| pm.partition(m.op)),
                rows_in: m.rows_in,
                batches_in: m.batches_in,
                rows_out: m.rows_out,
                aip_probed: m.aip_probed,
                aip_dropped: m.aip_dropped,
                state_peak: m.state_peak,
                retries: m.retries,
                speculated: m.speculated,
                phase_nanos: m.phase_nanos,
                phase_counts: m.phase_counts,
                routed: m.routed.clone(),
                hot_keys_observed: m.hot_keys_observed,
                occupancy_mean: m.occupancy_mean(),
            })
            .collect();
        let partitions = map
            .map(|pm| partition_rows(metrics, pm))
            .unwrap_or_default();
        let busy: Vec<u64> = partitions.iter().map(|p| p.busy_nanos()).collect();
        let routed_in: Vec<u64> = partitions.iter().map(|p| p.rows_routed_in).collect();
        QueryProfile {
            schema: PROFILE_SCHEMA,
            trace_level: metrics.trace_level,
            wall_nanos: metrics.wall_time.as_nanos() as u64,
            rows_out: metrics.rows_out,
            peak_state_bytes: metrics.peak_state_bytes,
            network_bytes: metrics.network_bytes,
            filters_injected: metrics.filters_injected,
            aip_dropped_total: metrics.aip_dropped_total,
            attribution_underflow: metrics.attribution_underflow,
            cancelled: metrics.cancelled,
            recovered: metrics.recovered,
            attempts: metrics.attempts,
            dop: map.map_or(1, |pm| pm.dop),
            phase_totals: metrics.phase_totals(),
            ops,
            partitions,
            busy_skew: skew_of(&busy),
            routed_skew: skew_of(&routed_in),
            filters: metrics.filter_stats.clone(),
            events: metrics.filter_events.clone(),
            spans: metrics.spans.clone(),
        }
    }

    /// One rendered line per worker partition — the single formatter both
    /// `explain_analyze` and the benchmark harness print.
    pub fn worker_lines(&self) -> Vec<String> {
        self.partitions.iter().map(fmt_worker_line).collect()
    }

    /// Render as `sip.query_profile/v1` JSON (hand-rolled, like the
    /// `BENCH_*.json` artifacts).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": {},", json_str(self.schema));
        let _ = writeln!(
            out,
            "  \"trace_level\": {},",
            json_str(self.trace_level.name())
        );
        let _ = writeln!(out, "  \"wall_nanos\": {},", self.wall_nanos);
        let _ = writeln!(out, "  \"rows_out\": {},", self.rows_out);
        let _ = writeln!(out, "  \"peak_state_bytes\": {},", self.peak_state_bytes);
        let _ = writeln!(out, "  \"network_bytes\": {},", self.network_bytes);
        let _ = writeln!(out, "  \"filters_injected\": {},", self.filters_injected);
        let _ = writeln!(out, "  \"aip_dropped_total\": {},", self.aip_dropped_total);
        let _ = writeln!(
            out,
            "  \"attribution_underflow\": {},",
            self.attribution_underflow
        );
        let _ = writeln!(out, "  \"cancelled\": {},", self.cancelled);
        let _ = writeln!(out, "  \"recovered\": {},", self.recovered);
        let _ = writeln!(out, "  \"attempts\": {},", self.attempts);
        let _ = writeln!(out, "  \"dop\": {},", self.dop);
        let _ = writeln!(out, "  \"phase_names\": {},", json_phase_names());
        let _ = writeln!(
            out,
            "  \"phase_totals\": {},",
            json_u64s(&self.phase_totals)
        );
        out.push_str("  \"ops\": [\n");
        for (i, o) in self.ops.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"op\": {}, \"kind\": {}, \"partition\": {}, \"rows_in\": {}, \
\"batches_in\": {}, \"rows_out\": {}, \"aip_probed\": {}, \"aip_dropped\": {}, \
\"state_peak\": {}, \"retries\": {}, \"speculated\": {}, \"phase_nanos\": {}, \
\"phase_counts\": {}, \"busy_nanos\": {}, \"routed\": {}, \"hot_keys_observed\": {}, \
\"occupancy_mean\": {}}}",
                o.op,
                json_str(&o.kind),
                json_opt_u32(o.partition),
                json_u64s(&o.rows_in),
                o.batches_in,
                o.rows_out,
                o.aip_probed,
                o.aip_dropped,
                o.state_peak,
                o.retries,
                o.speculated,
                json_u64s(&o.phase_nanos),
                json_u64s(&o.phase_counts),
                o.busy_nanos(),
                json_u64s(&o.routed),
                o.hot_keys_observed,
                json_opt_f64(o.occupancy_mean),
            );
            out.push_str(if i + 1 < self.ops.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n  \"partitions\": [\n");
        for (i, p) in self.partitions.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"partition\": {}, \"rows_out\": {}, \"aip_probed\": {}, \
\"aip_dropped\": {}, \"state_peak\": {}, \"rows_routed_in\": {}, \"busy_nanos\": {}, \
\"phase_nanos\": {}}}",
                p.partition,
                p.rows_out,
                p.aip_probed,
                p.aip_dropped,
                p.state_peak,
                p.rows_routed_in,
                p.busy_nanos(),
                json_u64s(&p.phase_nanos),
            );
            out.push_str(if i + 1 < self.partitions.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");
        let _ = writeln!(
            out,
            "  \"skew\": {{\"busy_max_over_mean\": {}, \"routed_max_over_mean\": {}}},",
            json_opt_f64(self.busy_skew),
            json_opt_f64(self.routed_skew)
        );
        out.push_str("  \"filters\": [\n");
        for (i, f) in self.filters.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"site\": {}, \"label\": {}, \"probed\": {}, \"dropped\": {}, \
\"keys\": {}, \"bytes\": {}}}",
                f.site.0,
                json_str(&f.label),
                f.probed,
                f.dropped,
                f.keys,
                f.bytes,
            );
            out.push_str(if i + 1 < self.filters.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"events\": [\n");
        for (i, e) in self.events.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"kind\": {}, \"site\": {}, \"label\": {}, \"t_nanos\": {}, \
\"build_nanos\": {}, \"keys\": {}, \"bytes\": {}}}",
                json_str(e.kind.name()),
                e.site,
                json_str(&e.label),
                e.t_nanos,
                e.build_nanos,
                e.keys,
                e.bytes,
            );
            out.push_str(if i + 1 < self.events.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"spans\": [\n");
        for (i, s) in self.spans.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"op\": {}, \"partition\": {}, \"phase\": {}, \"t_start\": {}, \
\"t_end\": {}}}",
                s.op,
                json_opt_u32(s.partition),
                json_str(s.phase.name()),
                s.t_start,
                s.t_end,
            );
            out.push_str(if i + 1 < self.spans.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Per-worker lines straight from metrics — for call sites (the benchmark
/// harness) that hold a [`PartitionMap`] but not the executed plan. Same
/// formatter as [`QueryProfile::worker_lines`].
pub fn worker_lines(metrics: &ExecMetrics, map: &PartitionMap) -> Vec<String> {
    partition_rows(metrics, map)
        .iter()
        .map(fmt_worker_line)
        .collect()
}

fn fmt_worker_line(p: &PartitionProfile) -> String {
    let mut line = format!(
        "worker {}: rows_out {} aip_probed {} aip_dropped {} rows_routed_in {}",
        p.partition, p.rows_out, p.aip_probed, p.aip_dropped, p.rows_routed_in
    );
    let busy = p.busy_nanos();
    if busy > 0 {
        let _ = write!(
            line,
            " busy {:.1}ms ({})",
            busy as f64 / 1e6,
            fmt_phase_split(&p.phase_nanos)
        );
    }
    line
}

/// `compute 61% recv 30% send 9%`-style phase split (phases under 0.5% are
/// elided; empty when nothing was attributed).
pub(crate) fn fmt_phase_split(phase_nanos: &[u64; N_PHASES]) -> String {
    let busy: u64 = phase_nanos.iter().sum();
    if busy == 0 {
        return String::new();
    }
    let mut parts = Vec::new();
    for p in Phase::ALL {
        let share = 100.0 * phase_nanos[p as usize] as f64 / busy as f64;
        if share >= 0.5 {
            parts.push(format!("{} {share:.0}%", p.name()));
        }
    }
    parts.join(" ")
}

fn json_phase_names() -> String {
    let names: Vec<String> = Phase::ALL.iter().map(|p| json_str(p.name())).collect();
    format!("[{}]", names.join(", "))
}

fn json_u64s(xs: &[u64]) -> String {
    let items: Vec<String> = xs.iter().map(u64::to_string).collect();
    format!("[{}]", items.join(", "))
}

fn json_opt_u32(x: Option<u32>) -> String {
    match x {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    }
}

fn json_opt_f64(x: Option<f64>) -> String {
    match x {
        Some(v) if v.is_finite() => format!("{v:.4}"),
        _ => "null".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExecOptions;
    use crate::exec::execute_baseline;
    use crate::physical::lower;
    use sip_data::{generate, TpchConfig};
    use sip_plan::QueryBuilder;
    use std::sync::Arc;

    fn run_profile(level: TraceLevel) -> QueryProfile {
        let c = generate(&TpchConfig::uniform(0.002)).unwrap();
        let mut q = QueryBuilder::new(&c);
        let p = q.scan("part", "p", &["p_partkey", "p_size"]).unwrap();
        let ps = q
            .scan("partsupp", "ps", &["ps_partkey", "ps_availqty"])
            .unwrap();
        let j = q.join(p, ps, &[("p.p_partkey", "ps.ps_partkey")]).unwrap();
        let plan = Arc::new(lower(j.plan(), q.attrs().clone(), &c).unwrap());
        let opts = ExecOptions::default().with_trace(level);
        let out = execute_baseline(Arc::clone(&plan), opts).unwrap();
        QueryProfile::from_run(&plan, &out.metrics, None)
    }

    #[test]
    fn profile_json_has_schema_and_balanced_braces() {
        let p = run_profile(TraceLevel::Ops);
        let json = p.to_json();
        assert!(json.contains("\"schema\": \"sip.query_profile/v1\""));
        assert!(json.contains("\"trace_level\": \"ops\""));
        assert!(json.contains("\"phase_names\": [\"compute\", \"tap_probe\""));
        assert!(json.contains("\"ops\": ["));
        assert!(json.contains("\"partitions\": ["));
        assert!(json.contains("\"skew\": {"));
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close, "unbalanced braces:\n{json}");
        let open = json.matches('[').count();
        let close = json.matches(']').count();
        assert_eq!(open, close, "unbalanced brackets:\n{json}");
    }

    #[test]
    fn phases_sum_within_wall_and_counts_match_batches() {
        let p = run_profile(TraceLevel::Ops);
        assert!(p.phase_totals.iter().sum::<u64>() > 0, "no time attributed");
        for o in &p.ops {
            // Phases partition one thread's busy time, which cannot exceed
            // the query's wall clock (one OS thread per operator).
            assert!(
                o.busy_nanos() <= p.wall_nanos,
                "op {} {} busy {} > wall {}",
                o.op,
                o.kind,
                o.busy_nanos(),
                p.wall_nanos
            );
            // Batch operators record exactly one Compute span per batch.
            if o.kind == "HashJoin" {
                assert_eq!(
                    o.phase_counts[Phase::Compute as usize],
                    o.batches_in,
                    "op {} {}: compute spans != batches",
                    o.op,
                    o.kind
                );
            }
        }
    }

    #[test]
    fn off_level_attributes_no_time() {
        let p = run_profile(TraceLevel::Off);
        assert_eq!(p.phase_totals.iter().sum::<u64>(), 0);
        assert!(p.spans.is_empty());
        assert_eq!(p.trace_level.name(), "off");
    }

    #[test]
    fn spans_level_records_events_within_wall() {
        let p = run_profile(TraceLevel::Spans);
        assert!(!p.spans.is_empty(), "Spans level recorded no span events");
        for s in &p.spans {
            assert!(s.t_end >= s.t_start);
        }
        // Deterministic ordering by (t_start, op, phase).
        for w in p.spans.windows(2) {
            assert!(w[0].t_start <= w[1].t_start);
        }
    }

    #[test]
    fn skew_ratio_handles_edges() {
        assert_eq!(skew_of(&[]), None);
        assert_eq!(skew_of(&[0, 0]), None);
        assert_eq!(skew_of(&[2, 2]), Some(1.0));
        assert_eq!(skew_of(&[6, 2]), Some(1.5));
    }
}
