//! Differential test harnesses shared by the engine's and `sip-parallel`'s
//! integration suites. Not part of the public API surface — the types here
//! exist so the admit-batch parity checks (serial boundary-batch sweeps in
//! `crates/engine/tests/` and the dop sweeps in `crates/parallel/tests/`)
//! run one implementation instead of two drifting copies.
//!
//! [`SelfCheckCollector`] is a [`RowCollector`] that, installed at a
//! stateful operator's input, verifies the batched AIP build path against
//! the row-at-a-time reference *from inside the engine*:
//!
//! * the engine's digest contract — every `admit_batch` call hands a digest
//!   buffer covering exactly the admitted rows over exactly the named key
//!   columns;
//! * working-set parity — each entry builds one AIP set through the batch
//!   path ([`sip_filter::AipSetBuilder::extend_batch`], reusing the
//!   operator's digests when the source column matches, mirroring the
//!   feed-forward collector) and one through the per-row `admit` replay
//!   (`key_hash` + key clone + `insert`); at EOF the two must be
//!   byte-identical (key count, footprint, probe behavior) and yield
//!   exactly equal `aip_probed`/`aip_dropped` counters when probed as
//!   injected filters;
//! * accounting — the rows admitted equal the operator's `rows_in` counter.

use crate::context::ExecContext;
use crate::metrics::ExecMetrics;
use crate::monitor::{ExecMonitor, RowCollector};
use crate::physical::{PhysKind, PhysPlan};
use crate::taps::InjectedFilter;
use sip_common::{DigestBuffer, OpId, Row};
use sip_filter::{AipSetBuilder, AipSetKind};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};

/// An [`ExecMonitor`] that captures the frozen [`ExecMetrics`] of each
/// query it observes through the [`ExecMonitor::on_trace`] sink — the
/// harness tests assert on span/phase invariants through this instead of
/// re-plumbing metrics out of every executor entry point.
#[derive(Default)]
pub struct TraceProbe {
    /// One entry per completed query, in completion order.
    pub captured: Mutex<Vec<ExecMetrics>>,
}

impl ExecMonitor for TraceProbe {
    fn on_trace(&self, _ctx: &Arc<ExecContext>, metrics: &ExecMetrics) {
        self.captured.lock().unwrap().push(metrics.clone());
    }
}

/// One mirrored working set: a single source column built through both the
/// batch path and the per-row replay.
struct CheckEntry {
    pos: usize,
    kind: AipSetKind,
    batch: Option<AipSetBuilder>,
    row: Option<AipSetBuilder>,
}

/// Shared outcome of an installed fleet of self-checking collectors.
#[derive(Default)]
pub struct AdmitParity {
    /// Human-readable divergence reports; empty = parity held.
    pub errors: Mutex<Vec<String>>,
    /// Collectors whose `finish` ran (must equal the installed count).
    pub finished: Mutex<usize>,
}

/// The self-checking collector (see module docs).
pub struct SelfCheckCollector {
    op: OpId,
    input: usize,
    entries: Vec<CheckEntry>,
    scratch: DigestBuffer,
    seen: Vec<Row>,
    admitted: u64,
    outcome: Arc<AdmitParity>,
}

impl RowCollector for SelfCheckCollector {
    fn admit(&mut self, row: &Row) {
        // The engine's hot path no longer calls this, but the replay
        // semantics must stay available (the trait default routes
        // admit_batch here row by row).
        for e in &mut self.entries {
            let d = row.key_hash(&[e.pos]);
            let key = [row.get(e.pos).clone()];
            e.batch.as_mut().unwrap().insert(d, &key);
            e.row.as_mut().unwrap().insert(d, &key);
        }
        self.admitted += 1;
    }

    fn admit_batch(&mut self, rows: &[Row], key_positions: &[usize], digests: &DigestBuffer) {
        let mut errs = Vec::new();
        // The engine's digest contract.
        if digests.len() != rows.len() {
            errs.push(format!(
                "{}/in{}: digest buffer covers {} rows, batch has {}",
                self.op,
                self.input,
                digests.len(),
                rows.len()
            ));
        } else {
            for (i, row) in rows.iter().enumerate() {
                if digests.digests()[i] != row.key_hash(key_positions) {
                    errs.push(format!(
                        "{}/in{}: digest {i} does not match key_hash over {key_positions:?}",
                        self.op, self.input
                    ));
                    break;
                }
            }
        }
        // Batch build vs per-row replay.
        let SelfCheckCollector {
            entries, scratch, ..
        } = self;
        for e in entries {
            let pos = [e.pos];
            if key_positions == pos {
                e.batch.as_mut().unwrap().extend_batch(rows, &pos, digests);
            } else {
                scratch.compute(rows, &pos);
                e.batch.as_mut().unwrap().extend_batch(rows, &pos, scratch);
            }
            let rb = e.row.as_mut().unwrap();
            for row in rows {
                let d = row.key_hash(&pos);
                let key = [row.get(e.pos).clone()];
                rb.insert(d, &key);
            }
        }
        self.admitted += rows.len() as u64;
        if self.seen.len() < 4096 {
            self.seen.extend_from_slice(rows);
        }
        if !errs.is_empty() {
            self.outcome.errors.lock().unwrap().extend(errs);
        }
    }

    fn finish(&mut self, ctx: &Arc<ExecContext>) {
        let mut errs = Vec::new();
        let rows_in = ctx.hub.op(self.op).rows_in[self.input].load(Ordering::Relaxed);
        if rows_in != self.admitted {
            errs.push(format!(
                "{}/in{}: operator counted {rows_in} rows in, collector admitted {}",
                self.op, self.input, self.admitted
            ));
        }
        for e in self.entries.iter_mut() {
            let a = e.batch.take().unwrap().finish();
            let b = e.row.take().unwrap().finish();
            if a.n_keys() != b.n_keys() || a.size_bytes() != b.size_bytes() {
                errs.push(format!(
                    "{}/in{} pos {} {:?}: batch set ({} keys, {} B) != row set ({} keys, {} B)",
                    self.op,
                    self.input,
                    e.pos,
                    e.kind,
                    a.n_keys(),
                    a.size_bytes(),
                    b.n_keys(),
                    b.size_bytes()
                ));
                continue;
            }
            // Probe both sets identically: members (the seen rows at the
            // built column) and mostly-non-members (the seen rows probed
            // at a shifted column), comparing per-row verdicts and the
            // filters' probed/dropped counters exactly.
            let fa = InjectedFilter::new("batch", vec![e.pos], Arc::new(a));
            let fb = InjectedFilter::new("row", vec![e.pos], Arc::new(b));
            for row in &self.seen {
                if fa.admits(row) != fb.admits(row) {
                    errs.push(format!(
                        "{}/in{} pos {}: member probe diverged on {row:?}",
                        self.op, self.input, e.pos
                    ));
                    break;
                }
            }
            let arity = self.seen.first().map(|r| r.arity()).unwrap_or(1);
            let shifted = (e.pos + 1) % arity.max(1);
            let fa2 = InjectedFilter::new("batch2", vec![shifted], fa.set.clone());
            let fb2 = InjectedFilter::new("row2", vec![shifted], fb.set.clone());
            for row in &self.seen {
                if fa2.admits(row) != fb2.admits(row) {
                    errs.push(format!(
                        "{}/in{} pos {}: non-member probe diverged on {row:?}",
                        self.op, self.input, e.pos
                    ));
                    break;
                }
            }
            let counters = |f: &InjectedFilter| {
                (
                    f.probed.load(Ordering::Relaxed),
                    f.dropped.load(Ordering::Relaxed),
                )
            };
            if counters(&fa) != counters(&fb) || counters(&fa2) != counters(&fb2) {
                errs.push(format!(
                    "{}/in{} pos {}: counters diverged: {:?}/{:?} vs {:?}/{:?}",
                    self.op,
                    self.input,
                    e.pos,
                    counters(&fa),
                    counters(&fa2),
                    counters(&fb),
                    counters(&fb2)
                ));
            }
        }
        if !errs.is_empty() {
            self.outcome.errors.lock().unwrap().extend(errs);
        }
        *self.outcome.finished.lock().unwrap() += 1;
    }
}

/// Install self-checking collectors on every stateful (op, input) of
/// `plan`: one entry on the operator's own first key column (the
/// digest-reuse path) and, where the input is wide enough, one on a
/// different column (the scratch path), cycling through all three AIP-set
/// kinds. Returns the shared outcome and the number installed.
pub fn install_admit_parity(ctx: &Arc<ExecContext>, plan: &PhysPlan) -> (Arc<AdmitParity>, usize) {
    let outcome = Arc::new(AdmitParity::default());
    let mut installed = 0usize;
    let kinds = [AipSetKind::Bloom, AipSetKind::Hash, AipSetKind::MinMax];
    let mut k = 0usize;
    for node in &plan.nodes {
        let sites: Vec<(usize, usize)> = match &node.kind {
            PhysKind::Aggregate { group_cols, .. } => group_cols
                .first()
                .map(|&g| vec![(0usize, g)])
                .unwrap_or_default(),
            PhysKind::Distinct => vec![(0, 0)],
            PhysKind::HashJoin {
                left_keys,
                right_keys,
                ..
            } => vec![(0, left_keys[0]), (1, right_keys[0])],
            PhysKind::SemiJoin {
                probe_keys,
                build_keys,
            } => vec![(0, probe_keys[0]), (1, build_keys[0])],
            _ => vec![],
        };
        for (input, key_pos) in sites {
            let arity = plan.node(node.inputs[input]).layout.len();
            let mut new_entry = |pos: usize| {
                let kind = kinds[k % 3];
                k += 1;
                CheckEntry {
                    pos,
                    kind,
                    batch: Some(AipSetBuilder::new(kind, 64, 0.05, 1)),
                    row: Some(AipSetBuilder::new(kind, 64, 0.05, 1)),
                }
            };
            let mut entries = vec![new_entry(key_pos)];
            let off = (key_pos + 1) % arity;
            if off != key_pos {
                entries.push(new_entry(off));
            }
            ctx.install_collector(
                node.id,
                input,
                Box::new(SelfCheckCollector {
                    op: node.id,
                    input,
                    entries,
                    scratch: DigestBuffer::default(),
                    seen: Vec::new(),
                    admitted: 0,
                    outcome: Arc::clone(&outcome),
                }),
            );
            installed += 1;
        }
    }
    (outcome, installed)
}
