//! Post-execution plan reports (EXPLAIN ANALYZE-style).
//!
//! Renders the executed plan tree annotated with the per-operator counters
//! the engine collected: rows in/out, peak buffered bytes, AIP filter
//! activity, and — when `sip-trace` was on — the per-phase time breakdown,
//! routing skew, and channel occupancy. This is the operational view a user
//! reaches for first when asking "where did AIP actually prune?" and "where
//! did the time go?".
//!
//! Everything here renders from a [`QueryProfile`], the same frozen view
//! the `repro --profile` JSON artifact serializes — the tree and the
//! artifact cannot disagree.

use crate::context::PartitionMap;
use crate::metrics::ExecMetrics;
use crate::physical::PhysPlan;
use crate::profile::{fmt_phase_split, QueryProfile};
use sip_common::bytes::human_bytes;
use sip_common::OpId;
use std::fmt::Write as _;

/// Render an annotated plan tree for an executed (serial) query.
pub fn explain_analyze(plan: &PhysPlan, metrics: &ExecMetrics) -> String {
    explain_analyze_profiled(plan, metrics, None)
}

/// Render an annotated plan tree, attributing operators to worker
/// partitions when the run was partition-parallel.
pub fn explain_analyze_profiled(
    plan: &PhysPlan,
    metrics: &ExecMetrics,
    map: Option<&PartitionMap>,
) -> String {
    let profile = QueryProfile::from_run(plan, metrics, map);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "query: {} rows out, {:?}, peak state {}, {} AIP filters injected, {} rows pruned",
        profile.rows_out,
        metrics.wall_time,
        human_bytes(profile.peak_state_bytes),
        profile.filters_injected,
        profile.aip_dropped_total,
    );
    if profile.recovered {
        let _ = writeln!(
            out,
            "recovery: result healed by retry/speculation (run attempts {})",
            profile.attempts,
        );
    }
    let busy_total: u64 = profile.phase_totals.iter().sum();
    if busy_total > 0 {
        let _ = writeln!(
            out,
            "trace [{}]: {:.1}ms attributed across {} threads ({})",
            profile.trace_level.name(),
            busy_total as f64 / 1e6,
            profile.ops.len(),
            fmt_phase_split(&profile.phase_totals),
        );
    }
    fmt_node(plan, &profile, plan.root, 0, &mut out);
    fmt_partitions(&profile, &mut out);
    fmt_filters(&profile, &mut out);
    out
}

fn fmt_node(plan: &PhysPlan, profile: &QueryProfile, op: OpId, depth: usize, out: &mut String) {
    let node = plan.node(op);
    let o = &profile.ops[op.index()];
    let pad = "  ".repeat(depth);
    let part = match o.partition {
        Some(p) => format!("[p{p}] "),
        None => String::new(),
    };
    let rows_in = match node.inputs.len() {
        0 => String::new(),
        1 => format!("in={} ", o.rows_in[0]),
        _ => format!("in={}+{} ", o.rows_in[0], o.rows_in[1]),
    };
    let aip = match o.drop_rate() {
        Some(rate) => format!(
            " | aip probed={} dropped={} ({rate:.1}%)",
            o.aip_probed, o.aip_dropped
        ),
        None => String::new(),
    };
    let state = if o.state_peak > 0 {
        format!(" | state peak={}", human_bytes(o.state_peak))
    } else {
        String::new()
    };
    let phases = if o.busy_nanos() > 0 {
        format!(
            " | busy {:.1}ms ({})",
            o.busy_nanos() as f64 / 1e6,
            fmt_phase_split(&o.phase_nanos)
        )
    } else {
        String::new()
    };
    let routing = if o.routed.is_empty() {
        String::new()
    } else {
        let skew = match crate::profile::skew_of(&o.routed) {
            Some(s) => format!(" skew={s:.2}x"),
            None => String::new(),
        };
        let hot = if o.hot_keys_observed > 0 {
            format!(" hot_keys={}", o.hot_keys_observed)
        } else {
            String::new()
        };
        format!(" | routed={:?}{skew}{hot}", o.routed)
    };
    let occupancy = match o.occupancy_mean {
        Some(q) => format!(" | out-queue avg {q:.1}"),
        None => String::new(),
    };
    let recovery = if o.retries > 0 || o.speculated > 0 {
        format!(
            " | recovery retries={} speculated={}",
            o.retries, o.speculated
        )
    } else {
        String::new()
    };
    let _ = writeln!(
        out,
        "{pad}{} {}{}: {}out={}{}{}{}{}{}{}",
        node.id,
        part,
        node.kind.name(),
        rows_in,
        o.rows_out,
        state,
        aip,
        phases,
        routing,
        occupancy,
        recovery,
    );
    for &c in &node.inputs {
        fmt_node(plan, profile, c, depth + 1, out);
    }
}

fn fmt_partitions(profile: &QueryProfile, out: &mut String) {
    if profile.partitions.is_empty() {
        return;
    }
    let _ = writeln!(out, "workers (dop {}):", profile.dop);
    for line in profile.worker_lines() {
        let _ = writeln!(out, "  {line}");
    }
    match (profile.busy_skew, profile.routed_skew) {
        (Some(b), Some(r)) => {
            let _ = writeln!(
                out,
                "  skew: busy max/mean {b:.2}x, routed-in max/mean {r:.2}x"
            );
        }
        (Some(b), None) => {
            let _ = writeln!(out, "  skew: busy max/mean {b:.2}x");
        }
        (None, Some(r)) => {
            let _ = writeln!(out, "  skew: routed-in max/mean {r:.2}x");
        }
        (None, None) => {}
    }
}

fn fmt_filters(profile: &QueryProfile, out: &mut String) {
    for f in &profile.filters {
        let rate = 100.0 * f.dropped as f64 / f.probed.max(1) as f64;
        let _ = writeln!(
            out,
            "filter @{} {}: probed={} dropped={} ({rate:.1}%), {} keys, {}",
            f.site,
            f.label,
            f.probed,
            f.dropped,
            f.keys,
            human_bytes(f.bytes),
        );
    }
    for e in &profile.events {
        let build = if e.build_nanos > 0 {
            format!(", built in {:.2}ms", e.build_nanos as f64 / 1e6)
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "aip event +{:.2}ms {} {} (op {}): {} keys, {}{build}",
            e.t_nanos as f64 / 1e6,
            e.kind.name(),
            e.label,
            e.site,
            e.keys,
            human_bytes(e.bytes),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExecOptions;
    use crate::exec::execute_baseline;
    use crate::physical::lower;
    use sip_common::trace::TraceLevel;
    use sip_data::{generate, TpchConfig};
    use sip_expr::{AggFunc, Expr};
    use sip_plan::QueryBuilder;
    use std::sync::Arc;

    fn sample_run(level: TraceLevel) -> (Arc<PhysPlan>, ExecMetrics) {
        let c = generate(&TpchConfig::uniform(0.002)).unwrap();
        let mut q = QueryBuilder::new(&c);
        let p = q.scan("part", "p", &["p_partkey", "p_size"]).unwrap();
        let pred = p.col("p_size").unwrap().eq(Expr::lit(1i64));
        let p = q.filter(p, pred);
        let ps = q
            .scan("partsupp", "ps", &["ps_partkey", "ps_availqty"])
            .unwrap();
        let j = q.join(p, ps, &[("p.p_partkey", "ps.ps_partkey")]).unwrap();
        let qty = j.col("ps_availqty").unwrap();
        let agg = q
            .aggregate(j, &["p.p_partkey"], &[(AggFunc::Sum, qty, "total")])
            .unwrap();
        let plan = Arc::new(lower(agg.plan(), q.attrs().clone(), &c).unwrap());
        let out =
            execute_baseline(Arc::clone(&plan), ExecOptions::default().with_trace(level)).unwrap();
        (plan, out.metrics)
    }

    #[test]
    fn report_shows_counts_and_tree() {
        let (plan, metrics) = sample_run(TraceLevel::Off);
        let text = explain_analyze(&plan, &metrics);
        assert!(text.contains("HashJoin"), "{text}");
        assert!(text.contains("Aggregate"));
        assert!(text.contains("state peak="));
        assert!(text.contains("rows out"));
        // Scans show no input column; join shows both inputs.
        assert!(text.contains("in="));
        // Tracing off: no phase annotations appear.
        assert!(!text.contains("busy "), "{text}");
    }

    #[test]
    fn report_phase_annotations_match_profile() {
        let (plan, metrics) = sample_run(TraceLevel::Ops);
        let text = explain_analyze(&plan, &metrics);
        assert!(text.contains("trace [ops]:"), "{text}");
        assert!(text.contains("busy "), "{text}");
        assert!(text.contains("compute"), "{text}");
        // The tree renders the same numbers the profile serializes: the
        // header's attributed total is the profile's phase_totals sum.
        let profile = QueryProfile::from_run(&plan, &metrics, None);
        let total_ms = profile.phase_totals.iter().sum::<u64>() as f64 / 1e6;
        assert!(
            text.contains(&format!("{total_ms:.1}ms attributed")),
            "tree and profile disagree on attributed time:\n{text}"
        );
    }
}
