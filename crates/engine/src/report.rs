//! Post-execution plan reports (EXPLAIN ANALYZE-style).
//!
//! Renders the executed plan tree annotated with the per-operator counters
//! the engine collected: rows in/out, peak buffered bytes, and AIP filter
//! activity. This is the operational view a user reaches for first when
//! asking "where did AIP actually prune?".

use crate::metrics::ExecMetrics;
use crate::physical::PhysPlan;
use sip_common::bytes::human_bytes;
use sip_common::OpId;
use std::fmt::Write as _;

/// Render an annotated plan tree for an executed query.
pub fn explain_analyze(plan: &PhysPlan, metrics: &ExecMetrics) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "query: {} rows out, {:?}, peak state {}, {} AIP filters injected, {} rows pruned",
        metrics.rows_out,
        metrics.wall_time,
        human_bytes(metrics.peak_state_bytes),
        metrics.filters_injected,
        metrics.aip_dropped_total,
    );
    fmt_node(plan, metrics, plan.root, 0, &mut out);
    out
}

fn fmt_node(plan: &PhysPlan, metrics: &ExecMetrics, op: OpId, depth: usize, out: &mut String) {
    let node = plan.node(op);
    let m = &metrics.per_op[op.index()];
    let pad = "  ".repeat(depth);
    let rows_in = match node.inputs.len() {
        0 => String::new(),
        1 => format!("in={} ", m.rows_in[0]),
        _ => format!("in={}+{} ", m.rows_in[0], m.rows_in[1]),
    };
    let aip = if m.aip_probed > 0 {
        format!(
            " | aip probed={} dropped={} ({:.1}%)",
            m.aip_probed,
            m.aip_dropped,
            100.0 * m.aip_dropped as f64 / m.aip_probed.max(1) as f64
        )
    } else {
        String::new()
    };
    let state = if m.state_peak > 0 {
        format!(" | state peak={}", human_bytes(m.state_peak))
    } else {
        String::new()
    };
    let _ = writeln!(
        out,
        "{pad}{} {}: {}out={}{}{}",
        node.id,
        node.kind.name(),
        rows_in,
        m.rows_out,
        state,
        aip,
    );
    for &c in &node.inputs {
        fmt_node(plan, metrics, c, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute_baseline;
    use crate::physical::lower;
    use sip_data::{generate, TpchConfig};
    use sip_expr::{AggFunc, Expr};
    use sip_plan::QueryBuilder;
    use std::sync::Arc;

    #[test]
    fn report_shows_counts_and_tree() {
        let c = generate(&TpchConfig::uniform(0.002)).unwrap();
        let mut q = QueryBuilder::new(&c);
        let p = q.scan("part", "p", &["p_partkey", "p_size"]).unwrap();
        let pred = p.col("p_size").unwrap().eq(Expr::lit(1i64));
        let p = q.filter(p, pred);
        let ps = q
            .scan("partsupp", "ps", &["ps_partkey", "ps_availqty"])
            .unwrap();
        let j = q.join(p, ps, &[("p.p_partkey", "ps.ps_partkey")]).unwrap();
        let qty = j.col("ps_availqty").unwrap();
        let agg = q
            .aggregate(j, &["p.p_partkey"], &[(AggFunc::Sum, qty, "total")])
            .unwrap();
        let plan = Arc::new(lower(agg.plan(), q.attrs().clone(), &c).unwrap());
        let out = execute_baseline(Arc::clone(&plan), Default::default()).unwrap();
        let text = explain_analyze(&plan, &out.metrics);
        assert!(text.contains("HashJoin"), "{text}");
        assert!(text.contains("Aggregate"));
        assert!(text.contains("state peak="));
        assert!(text.contains("rows out"));
        // Scans show no input column; join shows both inputs.
        assert!(text.contains("in="));
    }
}
