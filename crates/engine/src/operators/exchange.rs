//! Partition-parallel plumbing operators: `Exchange` (hash-repartition
//! filter) and `Merge` (N-ary stream union).
//!
//! Both are pure plumbing for `sip-parallel`: an `Exchange` keeps exactly
//! the rows whose partition key hashes to its partition, so `dop` sibling
//! Exchanges over clones of the same input stream realize an all-to-all
//! repartition within the engine's tree-shaped channel topology; a `Merge`
//! fans partition clones back into one stream, selecting across its inputs
//! so no partition is stalled behind a slower sibling's backpressure
//! window.
//!
//! The operator itself is arity-agnostic; `sip-parallel` arranges `Merge`
//! nodes into a *tree* (fan-in from `PartitionConfig::merge_fanin` /
//! `ExecOptions::merge_fanin`, auto: binary above dop 4) so the per-batch
//! merge work — select registration, input counters, the emit hop — is
//! spread over several threads instead of funnelling every partition
//! through one serial merge at the root of large outputs.
//!
//! The Exchange fuses its filter tap with the ownership kernel: one digest
//! pass per batch feeds both the partition check and (when a filter probes
//! the partition column — the common AIP case) the tap stack.

use super::{count_in, Emitter, OpGuard};
use crate::context::{ExecContext, Msg};
use crate::physical::PhysKind;
use crate::taps::TapKernel;
use crossbeam::channel::{Receiver, Select, Sender};
use sip_common::trace::Phase;
use sip_common::{exec_err, hash::partition_of, OpId, Result};
use std::sync::Arc;

/// Run an `Exchange` node: forward rows owned by this partition.
pub(crate) fn run_exchange(
    ctx: &Arc<ExecContext>,
    op: OpId,
    input: Receiver<Msg>,
    out: Sender<Msg>,
) -> Result<()> {
    let node = ctx.plan.node(op);
    let (col, partition, dop) = match &node.kind {
        PhysKind::Exchange {
            col,
            partition,
            dop,
        } => (*col, *partition, *dop),
        other => return Err(exec_err!("run_exchange on {}", other.name())),
    };
    // The tap runs here, fused with the ownership kernel, so the emitter
    // must not apply it a second time.
    let mut emitter = Emitter::passthrough(ctx, op, out).outside_compute();
    let mut guard = OpGuard::new(ctx, op);
    let mut tr = ctx.tracer(op);
    let mut kernel = TapKernel::new();
    let mut kept = 0u64;
    loop {
        let t_recv = tr.begin();
        let msg = input.recv();
        tr.end(Phase::ChannelRecv, t_recv);
        // NULL keys hash like any value: every NULL row lands in the same
        // single partition, so the union over all partitions stays
        // multiset-correct even for rows that can never join. The columnar
        // and row paths run the same fused ownership-check + tap over the
        // shared digest pass; columnar batches stay columnar (survivors
        // gathered per column, or the view forwarded untouched when every
        // row survives).
        match msg {
            Ok(Msg::Batch(mut batch)) => {
                guard.on_batch()?;
                count_in(ctx, op, 0, batch.len());
                kernel.begin(batch.len());
                let t0 = tr.begin();
                kernel.retain_by_digest(&batch.rows, &[col], |d| partition_of(d, dop) == partition);
                tr.end(Phase::Compute, t0);
                // The tap applies to the rows this Exchange would emit —
                // its own partition's rows only — sharing the digest pass
                // above whenever a filter probes the partition column.
                let t0 = tr.begin();
                kernel.probe_op(ctx, op, &batch.rows);
                tr.end(Phase::TapProbe, t0);
                // Count after the tap, matching ShuffleWrite's routed
                // semantics (rows actually sent to the destination).
                kept += kernel.sel().len() as u64;
                let t_cmp = tr.begin();
                kernel.compact(&mut batch.rows);
                tr.add(Phase::Compute, t_cmp);
                emitter.push_rows(batch.rows)?;
                emitter.flush()?;
            }
            Ok(Msg::Cols(batch)) => {
                guard.on_batch()?;
                count_in(ctx, op, 0, batch.len());
                kernel.begin(batch.len());
                let t0 = tr.begin();
                kernel.retain_by_digest_cols(&batch, &[col], |d| partition_of(d, dop) == partition);
                tr.end(Phase::Compute, t0);
                let t0 = tr.begin();
                kernel.probe_op_cols(ctx, op, &batch);
                tr.end(Phase::TapProbe, t0);
                kept += kernel.sel().len() as u64;
                let t_cmp = tr.begin();
                let kept_batch = if kernel.sel().len() == batch.len() {
                    batch
                } else {
                    batch.gather(kernel.sel().as_slice())
                };
                tr.add(Phase::Compute, t_cmp);
                emitter.push_cols(kept_batch)?;
            }
            Ok(Msg::Eof) => break,
            Err(_) => return Err(ctx.disconnect_err(op)),
        }
        if emitter.cancelled() {
            // Downstream hung up: stop pulling so upstream winds down too.
            break;
        }
    }
    // An Exchange routes by keeping its own partition's rows: publish them
    // as this destination's routed count so the per-partition skew view
    // covers broadcast-pruned replicas too.
    let mut routed = vec![0u64; dop as usize];
    routed[partition as usize] = kept;
    tr.set_routed(&routed, 0);
    emitter.finish()?;
    tr.flush();
    Ok(())
}

/// Run a `Merge` node: union all inputs, ending when every input ends.
/// Batches are forwarded whole — the emitter adopts each incoming
/// allocation rather than re-buffering row by row.
pub(crate) fn run_merge(
    ctx: &Arc<ExecContext>,
    op: OpId,
    inputs: Vec<Receiver<Msg>>,
    out: Sender<Msg>,
) -> Result<()> {
    let node = ctx.plan.node(op);
    if !matches!(node.kind, PhysKind::Merge) {
        return Err(exec_err!("run_merge on {}", node.kind.name()));
    }
    let mut emitter = Emitter::new(ctx, op, out).outside_compute();
    let mut guard = OpGuard::new(ctx, op);
    let mut tr = ctx.tracer(op);
    // Indices of inputs that have not yet reached EOF. The Select session
    // is registered once per *live-set change* (EOF), not per batch —
    // registration takes a lock per input.
    let mut live: Vec<usize> = (0..inputs.len()).collect();
    'rebuild: while !live.is_empty() {
        let mut sel = Select::new();
        for &i in &live {
            sel.recv(&inputs[i]);
        }
        loop {
            let t_recv = tr.begin();
            let (slot, msg) = if live.len() == 1 {
                (0, inputs[live[0]].recv())
            } else {
                let opn = sel.select();
                let slot = opn.index();
                (slot, opn.recv(&inputs[live[slot]]))
            };
            tr.end(Phase::ChannelRecv, t_recv);
            match msg {
                Ok(Msg::Batch(batch)) => {
                    guard.on_batch()?;
                    count_in(ctx, op, 0, batch.len());
                    emitter.push_rows(batch.rows)?;
                    emitter.flush()?;
                    if emitter.cancelled() {
                        // Downstream hung up: dropping the inputs here lets
                        // every partition wind down instead of running the
                        // failed query to completion.
                        break 'rebuild;
                    }
                }
                Ok(Msg::Cols(batch)) => {
                    guard.on_batch()?;
                    count_in(ctx, op, 0, batch.len());
                    emitter.push_cols(batch)?;
                    if emitter.cancelled() {
                        break 'rebuild;
                    }
                }
                Ok(Msg::Eof) => {
                    live.remove(slot);
                    continue 'rebuild;
                }
                // One partition's stream died without Eof: the whole
                // union is unsalvageable. Erroring (instead of quietly
                // removing the slot, as the old code did) is what keeps
                // a panicked partition from producing a partial result.
                Err(_) => return Err(ctx.disconnect_err(op)),
            }
        }
    }
    emitter.finish()?;
    tr.flush();
    Ok(())
}
