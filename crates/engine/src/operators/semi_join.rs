//! Pipelined semijoin — the operator the magic-sets baseline injects.
//!
//! The probe input (0) is reduced to the rows whose key appears in the build
//! input (1). To stay fully pipelined (the paper's magic implementation
//! "performs full pipelining when computing the filter set"), probe rows
//! matching the partial build set are emitted immediately — matches only
//! ever grow — and unmatched probe rows are buffered. When the build side
//! completes, buffered rows are re-checked once and the rest discarded.
//!
//! Both inputs are hashed with one digest pass per batch; probe-side
//! membership checks compare key values positionally against the stored
//! build keys, so the probe path never materializes a key vector.

use super::{count_in, msg_rows, Emitter, OpGuard};
use crate::context::{ExecContext, Msg};
use crate::monitor::{CompletionEvent, ExecMonitor, StateView};
use crate::physical::PhysKind;
use crossbeam::channel::{Receiver, Sender};
use sip_common::trace::Phase;
use sip_common::{exec_err, AttrId, DigestBuffer, FxHashMap, OpId, Result, Row, Value};
use std::sync::Arc;

struct BuildSet {
    /// digest → distinct key values (exact re-check on probe).
    keys: FxHashMap<u64, Vec<Vec<Value>>>,
    bytes: usize,
    n_keys: usize,
}

impl BuildSet {
    fn insert(&mut self, digest: u64, key: Vec<Value>) -> i64 {
        let bucket = self.keys.entry(digest).or_default();
        if bucket.iter().any(|k| k == &key) {
            return 0;
        }
        let delta = key.iter().map(Value::size_bytes).sum::<usize>() as i64 + 24;
        self.bytes += delta as usize;
        self.n_keys += 1;
        bucket.push(key);
        delta
    }

    /// Does the set contain `row`'s key at `positions`? Positional compare
    /// against the stored key values — no clone, no re-hash.
    fn contains_row(&self, digest: u64, row: &Row, positions: &[usize]) -> bool {
        self.keys
            .get(&digest)
            .map(|b| {
                b.iter().any(|k| {
                    k.len() == positions.len()
                        && k.iter()
                            .zip(positions.iter())
                            .all(|(v, &p)| v == row.get(p))
                })
            })
            .unwrap_or(false)
    }
}

struct BuildStateView<'a> {
    layout: &'a [AttrId],
    set: &'a BuildSet,
    rows: Vec<Row>,
}

impl StateView for BuildStateView<'_> {
    fn layout(&self) -> &[AttrId] {
        self.layout
    }
    fn len(&self) -> usize {
        self.set.n_keys
    }
    fn state_bytes(&self) -> usize {
        self.set.bytes
    }
    fn complete(&self) -> bool {
        true
    }
    fn for_each(&self, f: &mut dyn FnMut(&Row)) {
        for r in &self.rows {
            f(r);
        }
    }
    fn distinct_hint(&self, pos: usize) -> Option<usize> {
        (self.layout.len() == 1 && pos == 0).then_some(self.set.n_keys)
    }
}

/// Run a `SemiJoin` node.
pub(crate) fn run_semi_join(
    ctx: &Arc<ExecContext>,
    monitor: &Arc<dyn ExecMonitor>,
    op: OpId,
    probe_rx: Receiver<Msg>,
    build_rx: Receiver<Msg>,
    out: Sender<Msg>,
) -> Result<()> {
    let node = ctx.plan.node(op);
    let (probe_keys, build_keys) = match &node.kind {
        PhysKind::SemiJoin {
            probe_keys,
            build_keys,
        } => (probe_keys.clone(), build_keys.clone()),
        other => return Err(exec_err!("run_semi_join on {}", other.name())),
    };
    let build_child = node.inputs[1];
    let build_key_layout: Vec<AttrId> = build_keys
        .iter()
        .map(|&p| ctx.plan.node(build_child).layout[p])
        .collect();
    let mut build = BuildSet {
        keys: FxHashMap::default(),
        bytes: 0,
        n_keys: 0,
    };
    // Unmatched probe rows waiting for the build side: digest → rows.
    let mut pending: FxHashMap<u64, Vec<Row>> = FxHashMap::default();
    let mut pending_bytes = 0usize;
    let mut probe_done = false;
    let mut build_done = false;
    let mut build_rows_in = 0u64;
    let mut collector_build = ctx.take_collector(op, 1);
    let mut collector_probe = ctx.take_collector(op, 0);
    let metrics = ctx.hub.op(op);
    let mut emitter = Emitter::new(ctx, op, out);
    let mut guard = OpGuard::new(ctx, op);
    let mut tr = ctx.tracer(op);
    // Reused per-batch digest scratch, one per input (key column sets
    // differ).
    let mut build_digests = DigestBuffer::default();
    let mut probe_digests = DigestBuffer::default();

    while !(probe_done && build_done) {
        let t_recv = tr.begin();
        let (is_build, msg) = if probe_done {
            (true, build_rx.recv())
        } else if build_done {
            (false, probe_rx.recv())
        } else {
            crossbeam::channel::select! {
                recv(probe_rx) -> m => (false, m),
                recv(build_rx) -> m => (true, m),
            }
        };
        tr.end(Phase::ChannelRecv, t_recv);
        // Both the build set and the pending buffer are row-shaped;
        // columnar input converts to rows at this seam.
        match (is_build, msg_rows(ctx, op, msg)?) {
            (true, Some(batch)) => {
                guard.on_batch()?;
                count_in(ctx, op, 1, batch.len());
                build_rows_in += batch.len() as u64;
                let t0 = tr.begin();
                build_digests.compute(&batch.rows, &build_keys);
                tr.end(Phase::Compute, t0);
                if let Some(c) = collector_build.as_mut() {
                    let t0 = tr.begin();
                    c.admit_batch(&batch.rows, &build_keys, &build_digests);
                    tr.end(Phase::AdmitBuild, t0);
                }
                let t_ins = tr.begin();
                for (i, row) in batch.rows.iter().enumerate() {
                    if build_digests.is_null_key(i) {
                        continue;
                    }
                    let digest = build_digests.digests()[i];
                    let delta = build.insert(digest, row.key_values(&build_keys));
                    if delta > 0 {
                        metrics.add_state(delta, &ctx.hub.state);
                        // Release any pending probe rows now matched.
                        if let Some(rows) = pending.remove(&digest) {
                            for r in rows {
                                if build.contains_row(digest, &r, &probe_keys) {
                                    pending_bytes -= r.size_bytes() + 16;
                                    metrics
                                        .add_state(-(r.size_bytes() as i64 + 16), &ctx.hub.state);
                                    emitter.push(r)?;
                                } else {
                                    // Same digest, different key: keep waiting.
                                    pending.entry(digest).or_default().push(r);
                                }
                            }
                        }
                    }
                }
                tr.add(Phase::Compute, t_ins);
                emitter.flush()?;
            }
            (false, Some(batch)) => {
                guard.on_batch()?;
                count_in(ctx, op, 0, batch.len());
                let t0 = tr.begin();
                probe_digests.compute(&batch.rows, &probe_keys);
                tr.end(Phase::Compute, t0);
                if let Some(c) = collector_probe.as_mut() {
                    let t0 = tr.begin();
                    c.admit_batch(&batch.rows, &probe_keys, &probe_digests);
                    tr.end(Phase::AdmitBuild, t0);
                }
                let t_probe = tr.begin();
                for (i, row) in batch.rows.into_iter().enumerate() {
                    if probe_digests.is_null_key(i) {
                        continue; // NULL keys never match
                    }
                    let digest = probe_digests.digests()[i];
                    if build.contains_row(digest, &row, &probe_keys) {
                        emitter.push(row)?;
                    } else if !build_done {
                        let delta = row.size_bytes() + 16;
                        pending_bytes += delta;
                        metrics.add_state(delta as i64, &ctx.hub.state);
                        pending.entry(digest).or_default().push(row);
                    }
                    // build done and no match: drop.
                }
                tr.add(Phase::Compute, t_probe);
                emitter.flush()?;
            }
            (true, None) => {
                build_done = true;
                if let Some(mut c) = collector_build.take() {
                    c.finish(ctx);
                }
                // Surface the completed build set (it is itself an AIP
                // candidate: a completed, keyed subexpression).
                let rows: Vec<Row> = build
                    .keys
                    .values()
                    .flatten()
                    .map(|k| Row::new(k.clone()))
                    .collect();
                let view = BuildStateView {
                    layout: &build_key_layout,
                    set: &build,
                    rows,
                };
                monitor.on_input_complete(
                    ctx,
                    &CompletionEvent {
                        op,
                        input: 1,
                        rows_in: build_rows_in,
                        view: &view,
                    },
                );
                // Resolve pending: emit late matches, discard the rest.
                let drained = std::mem::take(&mut pending);
                for (digest, rows) in drained {
                    for r in rows {
                        let delta = r.size_bytes() as i64 + 16;
                        metrics.add_state(-delta, &ctx.hub.state);
                        if build.contains_row(digest, &r, &probe_keys) {
                            emitter.push(r)?;
                        }
                    }
                }
                pending_bytes = 0;
                emitter.flush()?;
            }
            (false, None) => {
                probe_done = true;
                if let Some(mut c) = collector_probe.take() {
                    c.finish(ctx);
                }
            }
        }
    }
    // Release the build set.
    metrics.add_state(-(build.bytes as i64), &ctx.hub.state);
    debug_assert_eq!(pending_bytes, 0);
    emitter.finish()?;
    tr.flush();
    Ok(())
}
