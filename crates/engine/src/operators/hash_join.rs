//! The symmetric (doubly-pipelined) hash join — the workhorse of push-style
//! query processing (§I, [10], [11]).
//!
//! Each arriving tuple is inserted into its side's hash table and probed
//! against the opposite table, so results stream out as soon as both
//! matching tuples have arrived, regardless of input order or delays.
//! Arriving batches are hashed in **one pass** over the side's key columns
//! ([`DigestBuffer`]); the probe re-checks exact key equality positionally
//! against the buffered rows, so no per-row key vector is ever materialized.
//!
//! Implements the short-circuit optimization §VI-A describes: "if one of the
//! join inputs completes, the other input 'short-circuits' and stops
//! buffering input that will not be needed later" — when side X reaches
//! EOF, no future X-tuple will ever probe the opposite table, so the
//! opposite table is dropped and arriving tuples on that side become
//! probe-only.

use super::{count_in, msg_rows, Emitter, OpGuard};
use crate::context::{ExecContext, Msg};
use crate::monitor::{CompletionEvent, ExecMonitor, StateView};
use crate::physical::PhysKind;
use crossbeam::channel::{Receiver, Sender};
use sip_common::trace::Phase;
use sip_common::{exec_err, AttrId, DigestBuffer, FxHashMap, OpId, Result, Row};
use std::sync::Arc;

/// One side's buffered state.
struct Side {
    keys: Vec<usize>,
    table: FxHashMap<u64, Vec<Row>>,
    bytes: usize,
    rows_in: u64,
    done: bool,
    /// Set when the opposite side finished first and this table was dropped.
    dropped: bool,
}

impl Side {
    fn new(keys: Vec<usize>) -> Self {
        Side {
            keys,
            table: FxHashMap::default(),
            bytes: 0,
            rows_in: 0,
            done: false,
            dropped: false,
        }
    }

    fn insert(&mut self, digest: u64, row: Row) -> i64 {
        let delta = row.size_bytes() as i64 + 16;
        self.bytes += delta as usize;
        self.table.entry(digest).or_default().push(row);
        delta
    }

    /// Matching buffered rows for a probe row (hash bucket + positional
    /// exact key re-check, so 64-bit collisions cannot produce wrong joins
    /// and no key vector is cloned).
    fn probe<'a>(
        &'a self,
        digest: u64,
        probe: &'a Row,
        probe_keys: &'a [usize],
    ) -> impl Iterator<Item = &'a Row> + 'a {
        self.table
            .get(&digest)
            .into_iter()
            .flatten()
            .filter(move |r| {
                self.keys
                    .iter()
                    .zip(probe_keys.iter())
                    .all(|(&bp, &pp)| r.get(bp) == probe.get(pp))
            })
    }

    fn release(&mut self) -> i64 {
        let freed = self.bytes as i64;
        self.table = FxHashMap::default();
        self.bytes = 0;
        -freed
    }
}

struct JoinStateView<'a> {
    layout: &'a [AttrId],
    side: &'a Side,
}

impl StateView for JoinStateView<'_> {
    fn layout(&self) -> &[AttrId] {
        self.layout
    }
    fn len(&self) -> usize {
        self.side.table.values().map(Vec::len).sum()
    }
    fn state_bytes(&self) -> usize {
        self.side.bytes
    }
    fn complete(&self) -> bool {
        !self.side.dropped
    }
    fn for_each(&self, f: &mut dyn FnMut(&Row)) {
        for rows in self.side.table.values() {
            for r in rows {
                f(r);
            }
        }
    }
    fn distinct_hint(&self, pos: usize) -> Option<usize> {
        // The table is bucketed by the side's join-key digest; the bucket
        // count is the distinct count exactly when the probe column IS the
        // (single) join key.
        (self.side.keys.as_slice() == [pos]).then_some(self.side.table.len())
    }
}

/// Run a `HashJoin` node.
pub(crate) fn run_hash_join(
    ctx: &Arc<ExecContext>,
    monitor: &Arc<dyn ExecMonitor>,
    op: OpId,
    left_rx: Receiver<Msg>,
    right_rx: Receiver<Msg>,
    out: Sender<Msg>,
) -> Result<()> {
    let node = ctx.plan.node(op);
    let (lk, rk, residual) = match &node.kind {
        PhysKind::HashJoin {
            left_keys,
            right_keys,
            residual,
        } => (left_keys.clone(), right_keys.clone(), residual.clone()),
        other => return Err(exec_err!("run_hash_join on {}", other.name())),
    };
    let left_layout = ctx.plan.node(node.inputs[0]).layout.clone();
    let right_layout = ctx.plan.node(node.inputs[1]).layout.clone();
    let mut sides = [Side::new(lk), Side::new(rk)];
    let mut collectors = [ctx.take_collector(op, 0), ctx.take_collector(op, 1)];
    let mut emitter = Emitter::new(ctx, op, out);
    let mut guard = OpGuard::new(ctx, op);
    let mut tr = ctx.tracer(op);
    let metrics = ctx.hub.op(op);
    // One digest pass per arriving batch; the buffer is reused across
    // batches from either side.
    let mut digests = DigestBuffer::default();

    loop {
        // Receive from whichever side has data; block only on live sides.
        let t_recv = tr.begin();
        let (idx, msg) = if sides[0].done {
            (1, right_rx.recv())
        } else if sides[1].done {
            (0, left_rx.recv())
        } else {
            crossbeam::channel::select! {
                recv(left_rx) -> m => (0, m),
                recv(right_rx) -> m => (1, m),
            }
        };
        tr.end(Phase::ChannelRecv, t_recv);
        // Join state is row-shaped (buckets of buffered rows); columnar
        // input converts to rows at this seam.
        match msg_rows(ctx, op, msg)? {
            Some(batch) => {
                guard.on_batch()?;
                count_in(ctx, op, idx, batch.len());
                sides[idx].rows_in += batch.len() as u64;
                // Both sides hash the same key-value sequence, so this
                // side's digest doubles as the probe digest into the
                // opposite table — and as the collector's build digest.
                let t0 = tr.begin();
                digests.compute(&batch.rows, &sides[idx].keys);
                tr.end(Phase::Compute, t0);
                if let Some(c) = collectors[idx].as_mut() {
                    let t0 = tr.begin();
                    c.admit_batch(&batch.rows, &sides[idx].keys, &digests);
                    tr.end(Phase::AdmitBuild, t0);
                }
                let t_probe = tr.begin();
                let other = 1 - idx;
                for (i, row) in batch.rows.into_iter().enumerate() {
                    if digests.is_null_key(i) {
                        continue; // NULL keys never join
                    }
                    let digest = digests.digests()[i];
                    let probe_keys: &[usize] = &sides[idx].keys;
                    for m in sides[other].probe(digest, &row, probe_keys) {
                        let joined = if idx == 0 {
                            row.concat(m)
                        } else {
                            m.concat(&row)
                        };
                        match &residual {
                            Some(pred) if !pred.eval_bool(&joined)? => {}
                            _ => emitter.push(joined)?,
                        }
                    }
                    // Buffer for future arrivals from the other side
                    // (unless short-circuited).
                    if !sides[idx].dropped {
                        let delta = sides[idx].insert(digest, row);
                        metrics.add_state(delta, &ctx.hub.state);
                    }
                }
                // Same logical span as the digest pass (one Compute span
                // per batch; auto-flush time inside the loop is nested).
                tr.add(Phase::Compute, t_probe);
                emitter.flush()?;
            }
            None => {
                sides[idx].done = true;
                if let Some(mut c) = collectors[idx].take() {
                    c.finish(ctx);
                }
                // Notify the controller while this side's state is intact.
                let layout = if idx == 0 {
                    &left_layout
                } else {
                    &right_layout
                };
                let view = JoinStateView {
                    layout,
                    side: &sides[idx],
                };
                monitor.on_input_complete(
                    ctx,
                    &CompletionEvent {
                        op,
                        input: idx,
                        rows_in: sides[idx].rows_in,
                        view: &view,
                    },
                );
                // Short-circuit: the opposite table will never be probed
                // again; release it and stop building it.
                let other = 1 - idx;
                if !sides[other].dropped {
                    let delta = sides[other].release();
                    sides[other].dropped = true;
                    metrics.add_state(delta, &ctx.hub.state);
                }
                if sides[0].done && sides[1].done {
                    break;
                }
            }
        }
    }
    // Release any remaining state before EOF so peak accounting closes out.
    for side in sides.iter_mut() {
        let delta = side.release();
        if delta != 0 {
            metrics.add_state(delta, &ctx.hub.state);
        }
    }
    emitter.finish()?;
    tr.flush();
    Ok(())
}
